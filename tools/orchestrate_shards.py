#!/usr/bin/env python3
"""Fan a campaign out over k local processes, then merge and report.

A one-machine version of the k-machine workflow README describes: run the
same campaign spec as k disjoint shards (netcons_campaign --shard i/k,
each streaming records into its own directory), wait for all of them, fold
the records into the exact single-run summary (netcons_merge), compact the
generations into one archival stream (netcons_merge --compact), and emit
the distribution report (netcons_report).

    orchestrate_shards.py --shards 4 --out campaign-out --bin-dir build \\
        -- --protocols cycle-cover,global-star --ns 32,64 --trials 1000

Everything after `--` is passed to netcons_campaign verbatim (the campaign
spec: units, ns, trials, seed, faults, ...). Do not pass --shard/--records/
--json there; the orchestrator owns those. Because shards are deterministic
grid slices, the merged outputs are byte-identical to an unsharded run of
the same spec — independent of k.

Outputs under --out:
    records/      per-shard trial-record JSONL streams
    compact.jsonl the deduplicated, canonically ordered record stream
    summary.json / summary.csv   the campaign summary (netcons_merge)
    report.json / report.csv / report-ecdf.csv   distributions (netcons_report)

Exit status: 0 on success (even with trial-level failures, which are data),
2 on bad usage, 1 when a shard process dies or merge/report fail.

Stdlib only -- CI runners need nothing installed.
"""

import argparse
import pathlib
import subprocess
import sys


def run_tool(cmd):
    """Run a merge/report step, echoing the command line."""
    print("+", " ".join(str(part) for part in cmd), flush=True)
    return subprocess.run([str(part) for part in cmd]).returncode


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--shards", type=int, default=2,
                        help="number of local shard processes (default 2)")
    parser.add_argument("--bin-dir", default="build",
                        help="directory holding the netcons_* binaries (default build)")
    parser.add_argument("--out", default="campaign-out",
                        help="output directory (default campaign-out)")
    parser.add_argument("--bins", default="fd",
                        help="report histogram binning: fd or a bin count (default fd)")
    parser.add_argument("--skip-report", action="store_true",
                        help="merge only; skip the distribution report")
    parser.add_argument("campaign", nargs=argparse.REMAINDER,
                        help="-- followed by netcons_campaign spec flags")
    args = parser.parse_args()

    spec = args.campaign
    if spec and spec[0] == "--":
        spec = spec[1:]
    if args.shards < 1 or not spec:
        parser.print_usage(sys.stderr)
        print("need --shards >= 1 and a campaign spec after --", file=sys.stderr)
        return 2
    for owned in ("--shard", "--records", "--resume", "--json", "--csv"):
        if owned in spec:
            print(f"{owned} belongs to the orchestrator; pass only the campaign spec",
                  file=sys.stderr)
            return 2

    bin_dir = pathlib.Path(args.bin_dir)
    campaign_bin = bin_dir / "netcons_campaign"
    merge_bin = bin_dir / "netcons_merge"
    report_bin = bin_dir / "netcons_report"
    for binary in (campaign_bin, merge_bin, report_bin):
        if not binary.exists():
            print(f"missing binary: {binary} (build the tree first)", file=sys.stderr)
            return 2

    out = pathlib.Path(args.out)
    records = out / "records"
    records.mkdir(parents=True, exist_ok=True)

    # --- fan out: k shard processes, each with its own record stream -------
    children = []
    for shard in range(args.shards):
        cmd = [str(campaign_bin), *spec,
               "--shard", f"{shard}/{args.shards}",
               "--records", str(records), "--quiet"]
        print("+", " ".join(cmd), flush=True)
        children.append((shard, subprocess.Popen(cmd)))

    failures = 0
    exit_ones = []
    for shard, child in children:
        code = child.wait()
        # Exit 1 from a shard is ambiguous: trial-level failures
        # (non-convergence is data, recorded and merged like any other
        # outcome) share the code with real early deaths (unwritable
        # records, resume corruption). The merge's completeness check below
        # is the arbiter: a shard that died early leaves missing trials and
        # fails the merge. Anything other than 0/1 is an unambiguous error.
        if code not in (0, 1):
            print(f"shard {shard}/{args.shards} exited with status {code}",
                  file=sys.stderr)
            failures += 1
        elif code == 1:
            exit_ones.append(shard)
            print(f"note: shard {shard}/{args.shards} exited 1 — trial-level "
                  "failures were recorded, OR the shard died early (see its "
                  "output above); the merge below will fail on missing trials "
                  "if it was a death")
    if failures:
        return 1

    # --- fold: summary, compacted archive stream, distribution report ------
    if run_tool([merge_bin, records, "--json", out / "summary.json",
                 "--csv", out / "summary.csv"]) != 0:
        if exit_ones:
            print(f"merge failed after shard(s) {exit_ones} exited 1: those "
                  "shards likely died before finishing (not trial-level "
                  "failures)", file=sys.stderr)
        return 1
    if run_tool([merge_bin, "--compact", out / "compact.jsonl", records,
                 "--quiet"]) != 0:
        return 1
    if not args.skip_report:
        if run_tool([report_bin, out / "compact.jsonl", "--bins", args.bins,
                     "--json", out / "report.json", "--csv", out / "report.csv",
                     "--ecdf-csv", out / "report-ecdf.csv"]) != 0:
            return 1

    print(f"done: {args.shards} shards -> {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
