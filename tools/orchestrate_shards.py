#!/usr/bin/env python3
"""Fan a campaign out over k local processes, then merge and report.

A one-machine version of the k-machine workflow README describes, in two
flavors:

Static striping (default): run the same campaign spec as k disjoint shards
(netcons_campaign --shard i/k, each streaming records into its own
directory), wait for all of them, fold the records into the exact
single-run summary (netcons_merge), compact the generations into one
archival stream (netcons_merge --compact), and emit the distribution
report (netcons_report).

    orchestrate_shards.py --shards 4 --out campaign-out --bin-dir build \\
        -- --protocols cycle-cover,global-star --ns 32,64 --trials 1000

Dynamic fabric (--fabric k): launch one netcons_coord plus k local
netcons_worker processes that pull trial-range leases over TCP
(work-stealing; see docs/fabric-protocol.md). A worker that dies mid-run
forfeits only its in-flight leases — the coordinator reassigns them, and
the merged summary stays byte-identical to an unsharded run. --kill-one
SIGKILLs one worker as soon as the first trial record lands on disk, which
is exactly the robustness property CI gates on.

    orchestrate_shards.py --fabric 3 --kill-one --out fabric-out \\
        --bin-dir build -- --protocols cycle-cover --ns 32 --trials 1000

Everything after `--` is passed to netcons_campaign / netcons_coord /
netcons_worker verbatim (the campaign spec: units, ns, trials, seed,
faults, ...). Do not pass --shard/--records/--json there; the orchestrator
owns those. Because shards and leases are deterministic grid slices with
position-derived seeds, the merged outputs are byte-identical to an
unsharded run of the same spec — independent of k and of worker deaths.

Outputs under --out:
    records/      per-shard (or per-worker) trial-record JSONL streams
    compact.jsonl the deduplicated, canonically ordered record stream
    summary.json / summary.csv   the campaign summary (netcons_merge)
    report.json / report.csv / report-ecdf.csv   distributions (netcons_report)

Exit status: 0 on success (even with trial-level failures, which are data),
2 on bad usage, 1 when a process dies unexpectedly or merge/report fail.

Stdlib only -- CI runners need nothing installed.
"""

import argparse
import pathlib
import re
import signal
import subprocess
import sys
import time


def run_tool(cmd):
    """Run a merge/report step, echoing the command line."""
    print("+", " ".join(str(part) for part in cmd), flush=True)
    return subprocess.run([str(part) for part in cmd]).returncode


def fold_records(args, out, records):
    """Merge + compact + report over whatever landed in the records dir."""
    if run_tool([args.merge_bin, records, "--json", out / "summary.json",
                 "--csv", out / "summary.csv"]) != 0:
        return 1
    if run_tool([args.merge_bin, "--compact", out / "compact.jsonl", records,
                 "--quiet"]) != 0:
        return 1
    if not args.skip_report:
        if run_tool([args.report_bin, out / "compact.jsonl", "--bins", args.bins,
                     "--json", out / "report.json", "--csv", out / "report.csv",
                     "--ecdf-csv", out / "report-ecdf.csv"]) != 0:
            return 1
    return 0


def run_static(args, spec, out, records):
    """The classic --shard i/k fan-out."""
    children = []
    for shard in range(args.shards):
        cmd = [str(args.campaign_bin), *spec,
               "--shard", f"{shard}/{args.shards}",
               "--records", str(records), "--quiet"]
        print("+", " ".join(cmd), flush=True)
        children.append((shard, subprocess.Popen(cmd)))

    failures = 0
    exit_ones = []
    for shard, child in children:
        code = child.wait()
        # Exit 1 from a shard is ambiguous: trial-level failures
        # (non-convergence is data, recorded and merged like any other
        # outcome) share the code with real early deaths (unwritable
        # records, resume corruption). The merge's completeness check below
        # is the arbiter: a shard that died early leaves missing trials and
        # fails the merge. Anything other than 0/1 is an unambiguous error.
        if code not in (0, 1):
            print(f"shard {shard}/{args.shards} exited with status {code}",
                  file=sys.stderr)
            failures += 1
        elif code == 1:
            exit_ones.append(shard)
            print(f"note: shard {shard}/{args.shards} exited 1 — trial-level "
                  "failures were recorded, OR the shard died early (see its "
                  "output above); the merge below will fail on missing trials "
                  "if it was a death")
    if failures:
        return 1

    code = fold_records(args, out, records)
    if code != 0 and exit_ones:
        print(f"merge failed after shard(s) {exit_ones} exited 1: those "
              "shards likely died before finishing (not trial-level "
              "failures)", file=sys.stderr)
    if code == 0:
        print(f"done: {args.shards} shards -> {out}")
    return code


def first_record_landed(records):
    """True once some worker has streamed at least one trial record (file
    with more than the header line)."""
    for path in records.glob("*.jsonl"):
        try:
            if path.read_bytes().count(b"\n") >= 2:
                return True
        except OSError:
            pass
    return False


def run_fabric(args, spec, out, records):
    """Coordinator + k workers over TCP leases, optionally killing one."""
    coord_cmd = [str(args.coord_bin), *spec, "--port", "0",
                 "--lease", str(args.lease), "--deadline", str(args.deadline),
                 "--max-idle", "120"]
    print("+", " ".join(coord_cmd), flush=True)
    coord_log = open(out / "coord.stdout", "w+b", buffering=0)
    coord = subprocess.Popen(coord_cmd, stdout=coord_log)

    # The coordinator announces its kernel-assigned port on stdout.
    port = None
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        coord_log.seek(0)
        match = re.search(rb"listening on [^:]*:(\d+)", coord_log.read())
        if match:
            port = int(match.group(1))
            break
        if coord.poll() is not None:
            print("coordinator exited before announcing its port", file=sys.stderr)
            return 1
        time.sleep(0.05)
    if port is None:
        coord.kill()
        print("coordinator never announced its port", file=sys.stderr)
        return 1

    workers = []
    for _ in range(args.fabric):
        cmd = [str(args.worker_bin), *spec,
               "--connect", f"127.0.0.1:{port}", "--records", str(records)]
        print("+", " ".join(cmd), flush=True)
        workers.append(subprocess.Popen(cmd))

    if args.kill_one:
        # Wait until the doomed worker is plausibly mid-lease (some record
        # has landed), then SIGKILL it: no drain, no goodbye, a torn record
        # tail — the exact crash the lease reassignment must absorb.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline and not first_record_landed(records):
            time.sleep(0.05)
        victim = workers[0]
        print(f"+ kill -9 {victim.pid}  # killing worker 1 of {args.fabric}",
              flush=True)
        victim.send_signal(signal.SIGKILL)

    failures = 0
    for index, worker in enumerate(workers):
        code = worker.wait()
        killed = args.kill_one and index == 0
        if killed:
            print(f"worker {index + 1} exited {code} (killed on purpose)")
        elif code != 0:
            print(f"worker {index + 1} exited with status {code}", file=sys.stderr)
            failures += 1
    coord_code = coord.wait()
    coord_log.close()
    if coord_code != 0:
        print(f"coordinator exited with status {coord_code}", file=sys.stderr)
        return 1
    if failures:
        return 1

    code = fold_records(args, out, records)
    if code == 0:
        killed = " (one worker killed mid-run)" if args.kill_one else ""
        print(f"done: coordinator + {args.fabric} workers{killed} -> {out}")
    return code


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--shards", type=int, default=2,
                        help="number of local static-shard processes (default 2)")
    parser.add_argument("--fabric", type=int, default=0, metavar="K",
                        help="use the dynamic fabric instead: one netcons_coord "
                             "plus K local netcons_worker processes")
    parser.add_argument("--kill-one", action="store_true",
                        help="fabric mode: SIGKILL one worker once the first "
                             "record lands (robustness gate)")
    parser.add_argument("--lease", type=int, default=32,
                        help="fabric mode: max trials per lease (default 32)")
    parser.add_argument("--deadline", type=float, default=5.0,
                        help="fabric mode: worker heartbeat deadline in seconds "
                             "(default 5)")
    parser.add_argument("--bin-dir", default="build",
                        help="directory holding the netcons_* binaries (default build)")
    parser.add_argument("--out", default="campaign-out",
                        help="output directory (default campaign-out)")
    parser.add_argument("--bins", default="fd",
                        help="report histogram binning: fd or a bin count (default fd)")
    parser.add_argument("--skip-report", action="store_true",
                        help="merge only; skip the distribution report")
    parser.add_argument("campaign", nargs=argparse.REMAINDER,
                        help="-- followed by netcons_campaign spec flags")
    args = parser.parse_args()

    spec = args.campaign
    if spec and spec[0] == "--":
        spec = spec[1:]
    if (args.fabric < 0 or args.shards < 1 or not spec
            or (args.kill_one and args.fabric < 2)):
        parser.print_usage(sys.stderr)
        print("need a campaign spec after --, --shards >= 1 (or --fabric >= 1; "
              ">= 2 with --kill-one)", file=sys.stderr)
        return 2
    for owned in ("--shard", "--records", "--resume", "--json", "--csv",
                  "--connect", "--port"):
        if owned in spec:
            print(f"{owned} belongs to the orchestrator; pass only the campaign spec",
                  file=sys.stderr)
            return 2

    bin_dir = pathlib.Path(args.bin_dir)
    args.campaign_bin = bin_dir / "netcons_campaign"
    args.merge_bin = bin_dir / "netcons_merge"
    args.report_bin = bin_dir / "netcons_report"
    args.coord_bin = bin_dir / "netcons_coord"
    args.worker_bin = bin_dir / "netcons_worker"
    needed = [args.merge_bin, args.report_bin]
    needed += [args.coord_bin, args.worker_bin] if args.fabric else [args.campaign_bin]
    for binary in needed:
        if not binary.exists():
            print(f"missing binary: {binary} (build the tree first)", file=sys.stderr)
            return 2

    out = pathlib.Path(args.out)
    records = out / "records"
    records.mkdir(parents=True, exist_ok=True)

    if args.fabric:
        return run_fabric(args, spec, out, records)
    return run_static(args, spec, out, records)


if __name__ == "__main__":
    sys.exit(main())
