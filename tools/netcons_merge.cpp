// netcons_merge: fold trial-record JSONL files — from sharded machines,
// interrupted runs, or both — into the exact summary a single-process
// campaign run would have produced.
//
//   netcons_merge records/ --json merged.json --csv merged.csv
//   netcons_merge shard0/trials-*.jsonl shard1/ shard2/ --json merged.json
//
// Every input file must carry the same campaign header (spec fingerprint);
// a mismatch aborts with a message naming the differing field. Duplicate
// records for the same (point, trial) resolve last-wins in scan order
// (files sorted by name, lines in file order), and an unterminated final
// line — the partial write of a killed run — is silently discarded.
//
// Because per-trial seeds are position-derived and the reduction is the
// campaign engine's own (campaign::reduce_outcomes, sequential in (point,
// trial) order), the merged JSON and CSV are byte-identical to an
// unsharded, uninterrupted run's output. CI enforces this with cmp.
//
//   netcons_merge --compact all.jsonl records/ shard1/ shard2/
//
// --compact OUT folds the input record files — shard files, resume
// generations, earlier compactions — into one deduplicated stream at OUT:
// the shared header, then every winning record sorted by (point, trial).
// The order is canonical, so compacting a compacted file reproduces it
// byte-for-byte (a fixed point), and partial streams compact fine (--json/
// --csv still require a complete grid). Archive OUT instead of a directory
// of generations.
//
// Exit status: 0 on a complete merge, 2 on usage errors, 1 on missing
// trials / header mismatches / corrupt records.
#include "campaign/campaign.hpp"
#include "campaign/result_sink.hpp"
#include "campaign/trial_record.hpp"
#include "util/table.hpp"

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

namespace {

using namespace netcons;

void print_help(const char* argv0) {
  std::cout << "usage: " << argv0 << " [flags] RECORDS...\n"
            << "\nFold trial-record JSONL streams (netcons-trials-v2) from sharded, fabric,\n"
               "or interrupted runs into the byte-identical single-run campaign summary.\n"
               "RECORDS are .jsonl files and/or directories of them; every input must\n"
               "carry the same campaign fingerprint.\n"
            << "\nflags:\n"
               "  --json FILE             write the merged summary (netcons-campaign-v3)\n"
               "  --csv FILE              write the merged summary as CSV\n"
               "  --compact FILE          write one deduplicated, canonically ordered\n"
               "                          record stream (an archival fixed point)\n"
               "  --quiet                 suppress the result table and progress lines\n"
               "  --help                  this message\n";
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--json FILE] [--csv FILE] [--compact FILE] [--quiet] RECORDS...\n"
               "       RECORDS: trial-record .jsonl files and/or directories of them\n"
               "(--help for flag descriptions)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  std::string json_path;
  std::string csv_path;
  std::string compact_path;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help") {
      print_help(argv[0]);
      return 0;
    }
    if (arg == "--json" || arg == "--csv" || arg == "--compact") {
      if (i + 1 >= argc) return usage(argv[0]);
      (arg == "--json" ? json_path : arg == "--csv" ? csv_path : compact_path) = argv[++i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown argument: " << arg << "\n";
      return usage(argv[0]);
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return usage(argv[0]);

  if (!compact_path.empty()) {
    campaign::CompactionResult compacted;
    try {
      compacted = campaign::compact_records(inputs, compact_path);
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 1;
    }
    if (!quiet) {
      std::cout << "compacted " << compacted.records << " records from " << compacted.files
                << " files into " << compacted.written << " at " << compact_path << " ("
                << compacted.duplicates << " superseded duplicates, "
                << compacted.discarded_partial << " discarded partial lines)\n";
    }
    // A summary may still be requested alongside compaction; without one,
    // the compacted stream is the whole job. When both are asked for, the
    // summary folds from the just-written compacted file (already
    // deduplicated, and one scan of it instead of a second scan of every
    // input generation).
    if (json_path.empty() && csv_path.empty()) return 0;
    inputs.assign(1, compact_path);
  }

  campaign::LoadedRecords loaded;
  try {
    for (const std::string& input : inputs) campaign::load_records(input, loaded);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  if (!loaded.header) {
    std::cerr << "no trial records found in the given inputs\n";
    return 1;
  }

  const campaign::CampaignHeader& header = *loaded.header;
  const std::size_t point_count = header.points.size();
  const int trials = header.trials;

  // Completeness: the merged stream must cover the whole grid, or the
  // summary would silently misrepresent the missing trials.
  std::vector<std::string> missing;
  std::size_t missing_count = 0;
  for (std::size_t p = 0; p < point_count; ++p) {
    for (int t = 0; t < trials; ++t) {
      if (loaded.outcomes.count({p, t}) == 0) {
        ++missing_count;
        if (missing.size() < 5) {
          missing.push_back("(point " + std::to_string(p) + " [" + header.points[p].unit +
                            " n=" + std::to_string(header.points[p].n) + "], trial " +
                            std::to_string(t) + ")");
        }
      }
    }
  }
  if (missing_count > 0) {
    std::cerr << "incomplete record stream: " << missing_count << " of "
              << point_count * static_cast<std::size_t>(trials)
              << " trials missing; first missing:";
    for (const std::string& m : missing) std::cerr << ' ' << m;
    std::cerr << "\n(run the missing shards, or finish the interrupted run with "
                 "netcons_campaign --resume)\n";
    return 1;
  }

  std::vector<std::vector<campaign::TrialOutcome>> outcomes(point_count);
  for (std::size_t p = 0; p < point_count; ++p) {
    outcomes[p].resize(static_cast<std::size_t>(trials));
    for (int t = 0; t < trials; ++t) {
      outcomes[p][static_cast<std::size_t>(t)] = loaded.outcomes.at({p, t});
    }
  }
  const campaign::CampaignResult result =
      campaign::reduce_outcomes(header.points, trials, outcomes);

  if (!quiet) {
    std::cout << "merged " << loaded.records << " records from " << loaded.files << " files ("
              << loaded.duplicates << " superseded duplicates, " << loaded.discarded_partial
              << " discarded partial lines)\n";
    TextTable table({"unit", "scheduler", "faults", "n", "trials", "failures", "damaged",
                     "mean", "median", "recovery", "residual"});
    for (const auto& point : result.points) {
      table.add_row({point.unit, point.scheduler, point.faults,
                     TextTable::integer(static_cast<std::uint64_t>(point.n)),
                     TextTable::integer(static_cast<std::uint64_t>(point.trials)),
                     TextTable::integer(static_cast<std::uint64_t>(point.failures)),
                     TextTable::integer(static_cast<std::uint64_t>(point.damaged)),
                     TextTable::num(point.convergence_steps.mean()),
                     TextTable::num(point.convergence_steps.median()),
                     TextTable::num(point.recovery_steps.mean()),
                     TextTable::num(point.edges_residual.mean())});
    }
    std::cout << table;
  }

  if (!json_path.empty()) {
    std::ofstream file(json_path);
    file << campaign::to_json(result);
    if (!file) {
      std::cerr << "failed to write " << json_path << "\n";
      return 1;
    }
    if (!quiet) std::cout << "wrote " << json_path << '\n';
  }
  if (!csv_path.empty()) {
    std::ofstream file(csv_path);
    file << campaign::to_csv(result);
    if (!file) {
      std::cerr << "failed to write " << csv_path << "\n";
      return 1;
    }
    if (!quiet) std::cout << "wrote " << csv_path << '\n';
  }
  return 0;
}
