#!/usr/bin/env python3
"""Regression gate for the nightly bench workflow.

Compares two bench JSON documents (as written by bench_campaign_scaling
--json / bench_fault_recovery --json, or the combined BENCH_<sha>.json the
workflow assembles from them). Every numeric value found under a
"throughput" object, anywhere in the document, is treated as
higher-is-better; the gate fails if any current value falls more than
--threshold (default 25%) below its baseline.

Metrics present in only one of the two files are reported but never fail
the gate, so adding a new bench does not brick CI on its first night.

Usage: compare_bench.py BASELINE.json CURRENT.json [--threshold 0.25]

Exit status:
    0  within threshold
    1  regression beyond threshold
    2  the CURRENT file is missing/unreadable/malformed (this run's bug)
    3  the BASELINE is missing, unreadable, or carries no throughput
       metrics (schema mismatch) -- "seed a fresh baseline", never a
       traceback; the nightly workflow treats 3 as first-run success

Stdlib only -- CI runners need nothing installed.
"""

import argparse
import json
import sys


def throughput_metrics(document, prefix=""):
    """Flatten every numeric under any "throughput" object into {path: value}."""
    metrics = {}
    if isinstance(document, dict):
        for key, value in document.items():
            path = f"{prefix}.{key}" if prefix else key
            if key == "throughput" and isinstance(value, dict):
                for name, metric in value.items():
                    if isinstance(metric, (int, float)) and not isinstance(metric, bool):
                        metrics[f"{path}.{name}"] = float(metric)
            else:
                metrics.update(throughput_metrics(value, path))
    elif isinstance(document, list):
        for index, value in enumerate(document):
            metrics.update(throughput_metrics(value, f"{prefix}[{index}]"))
    return metrics


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="maximum tolerated fractional slowdown (default 0.25)")
    args = parser.parse_args()

    # The current document is this run's output: failing to read it is a
    # bug in the run itself.
    try:
        with open(args.current) as f:
            current = throughput_metrics(json.load(f))
    except (OSError, json.JSONDecodeError) as error:
        print(f"compare_bench: cannot read current metrics: {error}", file=sys.stderr)
        return 2

    # The baseline comes from a cache that may be absent (first run), stale,
    # or written by an older schema. None of those are this run's fault:
    # report distinctly (exit 3) so the caller can seed a fresh baseline.
    try:
        with open(args.baseline) as f:
            baseline = throughput_metrics(json.load(f))
    except (OSError, json.JSONDecodeError) as error:
        print(f"compare_bench: no usable baseline ({error}); "
              "this run should seed a fresh baseline", file=sys.stderr)
        return 3
    if not baseline:
        print(f"compare_bench: baseline {args.baseline} has no throughput metrics "
              "(schema mismatch?); this run should seed a fresh baseline",
              file=sys.stderr)
        return 3

    regressions = []
    for name in sorted(set(baseline) | set(current)):
        if name not in baseline:
            print(f"  NEW      {name} = {current[name]:.1f} (no baseline yet)")
            continue
        if name not in current:
            print(f"  MISSING  {name} (baseline {baseline[name]:.1f}; not failing the gate)")
            continue
        base, cur = baseline[name], current[name]
        change = (cur - base) / base if base > 0 else 0.0
        status = "ok"
        if base > 0 and cur < base * (1.0 - args.threshold):
            status = "REGRESSION"
            regressions.append(name)
        print(f"  {status:10s} {name}: {base:.1f} -> {cur:.1f} ({change:+.1%})")

    if regressions:
        print(f"compare_bench: {len(regressions)} metric(s) regressed more than "
              f"{args.threshold:.0%}: {', '.join(regressions)}", file=sys.stderr)
        return 1
    print("compare_bench: within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
