#!/usr/bin/env python3
"""Regression gate for the nightly bench workflow.

Compares two bench JSON documents (as written by bench_campaign_scaling
--json / bench_fault_recovery --json / bench_telemetry_overhead --json, or
the combined BENCH_<sha>.json the workflow assembles from them). Two metric
families are recognized, anywhere in the document:

  * every numeric under a "throughput" object is higher-is-better; the gate
    fails if a current value falls more than --threshold (default 25%)
    below its baseline (relative);
  * every numeric under an "overhead" object is lower-is-better; the gate
    fails if a current value exceeds its baseline by more than
    --overhead-threshold (default 0.02, absolute -- overheads are small
    fractions, where relative comparison would amplify noise).

Metrics present in only one of the two files are reported but never fail
the gate, so adding a new bench (or a new metric family) does not brick CI
on its first night -- older baselines without "overhead" objects simply
report the new metrics as NEW.

Usage: compare_bench.py BASELINE.json CURRENT.json [--threshold 0.25]
           [--overhead-threshold 0.02]

Exit status:
    0  within threshold
    1  regression beyond threshold
    2  the CURRENT file is missing/unreadable/malformed (this run's bug)
    3  the BASELINE is missing, unreadable, or carries no gated metrics
       (schema mismatch) -- "seed a fresh baseline", never a traceback;
       the nightly workflow treats 3 as first-run success

Stdlib only -- CI runners need nothing installed.
"""

import argparse
import json
import sys


def tagged_metrics(document, tag, prefix=""):
    """Flatten every numeric under any `tag` object into {path: value}."""
    metrics = {}
    if isinstance(document, dict):
        for key, value in document.items():
            path = f"{prefix}.{key}" if prefix else key
            if key == tag and isinstance(value, dict):
                for name, metric in value.items():
                    if isinstance(metric, (int, float)) and not isinstance(metric, bool):
                        metrics[f"{path}.{name}"] = float(metric)
            else:
                metrics.update(tagged_metrics(value, tag, path))
    elif isinstance(document, list):
        for index, value in enumerate(document):
            metrics.update(tagged_metrics(value, tag, f"{prefix}[{index}]"))
    return metrics


def throughput_metrics(document, prefix=""):
    """Higher-is-better metrics (kept as a named entry point for tests)."""
    return tagged_metrics(document, "throughput", prefix)


def overhead_metrics(document, prefix=""):
    """Lower-is-better metrics (absolute-tolerance gate)."""
    return tagged_metrics(document, "overhead", prefix)


def compare_family(baseline, current, *, regressed, describe):
    """Print one family's comparison; return the regressed metric names."""
    regressions = []
    for name in sorted(set(baseline) | set(current)):
        if name not in baseline:
            print(f"  NEW      {name} = {current[name]:.4f} (no baseline yet)")
            continue
        if name not in current:
            print(f"  MISSING  {name} (baseline {baseline[name]:.4f}; not failing the gate)")
            continue
        base, cur = baseline[name], current[name]
        status = "ok"
        if regressed(base, cur):
            status = "REGRESSION"
            regressions.append(name)
        print(f"  {status:10s} {name}: {base:.4f} -> {cur:.4f} ({describe(base, cur)})")
    return regressions


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="maximum tolerated fractional slowdown of a throughput "
                             "metric (default 0.25)")
    parser.add_argument("--overhead-threshold", type=float, default=0.02,
                        help="maximum tolerated absolute increase of an overhead "
                             "metric (default 0.02)")
    args = parser.parse_args()

    # The current document is this run's output: failing to read it is a
    # bug in the run itself.
    try:
        with open(args.current) as f:
            current_doc = json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        print(f"compare_bench: cannot read current metrics: {error}", file=sys.stderr)
        return 2

    # The baseline comes from a cache that may be absent (first run), stale,
    # or written by an older schema. None of those are this run's fault:
    # report distinctly (exit 3) so the caller can seed a fresh baseline.
    try:
        with open(args.baseline) as f:
            baseline_doc = json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        print(f"compare_bench: no usable baseline ({error}); "
              "this run should seed a fresh baseline", file=sys.stderr)
        return 3
    baseline_throughput = throughput_metrics(baseline_doc)
    baseline_overhead = overhead_metrics(baseline_doc)
    if not baseline_throughput and not baseline_overhead:
        print(f"compare_bench: baseline {args.baseline} has no throughput or overhead "
              "metrics (schema mismatch?); this run should seed a fresh baseline",
              file=sys.stderr)
        return 3

    regressions = compare_family(
        baseline_throughput, throughput_metrics(current_doc),
        regressed=lambda base, cur: base > 0 and cur < base * (1.0 - args.threshold),
        describe=lambda base, cur: f"{(cur - base) / base:+.1%}" if base > 0 else "n/a")
    regressions += compare_family(
        baseline_overhead, overhead_metrics(current_doc),
        regressed=lambda base, cur: cur > base + args.overhead_threshold,
        describe=lambda base, cur: f"{cur - base:+.4f} absolute")

    if regressions:
        print(f"compare_bench: {len(regressions)} metric(s) regressed beyond the gate: "
              f"{', '.join(regressions)}", file=sys.stderr)
        return 1
    print("compare_bench: within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
