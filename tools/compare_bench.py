#!/usr/bin/env python3
"""Regression gate for the nightly bench workflow.

Compares two bench JSON documents (as written by bench_campaign_scaling
--json / bench_fault_recovery --json / bench_telemetry_overhead --json, or
the combined BENCH_<sha>.json the workflow assembles from them). Two metric
families are recognized, anywhere in the document:

  * every numeric under a "throughput" object is higher-is-better; the gate
    fails if a current value falls more than --threshold (default 25%)
    below its baseline (relative);
  * every numeric under an "overhead" object is lower-is-better; the gate
    fails if a current value exceeds its baseline by more than
    --overhead-threshold (default 0.02, absolute -- overheads are small
    fractions, where relative comparison would amplify noise);
  * every numeric under a "serve_throughput" object
    (bench_serve_throughput --json) is gated relatively at --threshold:
    keys ending in "_rps" are higher-is-better (the sustained cache-hit
    request rate), every other numeric (e.g. mean_request_ms) is
    lower-is-better;
  * a "scaling_curve" object (bench_engine_speedup --scaling) holds one
    object per curve whose keys are "n_<population>" points and whose
    values are ns per effective interaction, e.g.

        {"scaling_curve": {"census_ns_per_effective":
            {"n_256": 160.1, ..., "n_65536": 290.4}}}

    Each point is lower-is-better and gated relatively at --threshold,
    AND two structural checks apply: the current document's own curves
    must be flat (largest-n point at most --flat-factor times the n_1024
    point, the paper-scaling acceptance bar -- enforced even on the first
    night, when there is no baseline), and the baseline's largest-n point
    must still exist in the current run (a sweep that silently shrinks
    its top population is a failure, not a MISSING notice).

Other metrics present in only one of the two files are reported but never
fail the gate, so adding a new bench (or a new metric family) does not
brick CI on its first night -- older baselines without "overhead" objects
simply report the new metrics as NEW.

Usage: compare_bench.py BASELINE.json CURRENT.json [--threshold 0.25]
           [--overhead-threshold 0.02] [--flat-factor 2.0]

Exit status:
    0  within threshold
    1  regression beyond threshold
    2  the CURRENT file is missing/unreadable/malformed (this run's bug)
    3  the BASELINE is missing, unreadable, or carries no gated metrics
       (schema mismatch) -- "seed a fresh baseline", never a traceback;
       the nightly workflow treats 3 as first-run success

Stdlib only -- CI runners need nothing installed.
"""

import argparse
import json
import sys


def tagged_metrics(document, tag, prefix=""):
    """Flatten every numeric under any `tag` object into {path: value}."""
    metrics = {}
    if isinstance(document, dict):
        for key, value in document.items():
            path = f"{prefix}.{key}" if prefix else key
            if key == tag and isinstance(value, dict):
                for name, metric in value.items():
                    if isinstance(metric, (int, float)) and not isinstance(metric, bool):
                        metrics[f"{path}.{name}"] = float(metric)
            else:
                metrics.update(tagged_metrics(value, tag, path))
    elif isinstance(document, list):
        for index, value in enumerate(document):
            metrics.update(tagged_metrics(value, tag, f"{prefix}[{index}]"))
    return metrics


def throughput_metrics(document, prefix=""):
    """Higher-is-better metrics (kept as a named entry point for tests)."""
    return tagged_metrics(document, "throughput", prefix)


def overhead_metrics(document, prefix=""):
    """Lower-is-better metrics (absolute-tolerance gate)."""
    return tagged_metrics(document, "overhead", prefix)


def serve_metrics(document, prefix=""):
    """The serving-layer family, split by direction.

    Returns (higher_is_better, lower_is_better): "*_rps" request rates
    regress by falling, every other numeric (latencies) by rising.
    """
    metrics = tagged_metrics(document, "serve_throughput", prefix)
    rates = {name: value for name, value in metrics.items()
             if name.endswith("_rps")}
    latencies = {name: value for name, value in metrics.items()
                 if not name.endswith("_rps")}
    return rates, latencies


def scaling_metrics(document, prefix=""):
    """ns-per-effective points under any "scaling_curve" object.

    One level deeper than the flat families: scaling_curve -> curve name ->
    n_<population> -> value, flattened to "<path>.<curve>.n_<population>".
    """
    metrics = {}
    if isinstance(document, dict):
        for key, value in document.items():
            path = f"{prefix}.{key}" if prefix else key
            if key == "scaling_curve" and isinstance(value, dict):
                for curve, points in value.items():
                    if not isinstance(points, dict):
                        continue
                    for name, metric in points.items():
                        if isinstance(metric, (int, float)) and not isinstance(metric, bool):
                            metrics[f"{path}.{curve}.{name}"] = float(metric)
            else:
                metrics.update(scaling_metrics(value, path))
    elif isinstance(document, list):
        for index, value in enumerate(document):
            metrics.update(scaling_metrics(value, f"{prefix}[{index}]"))
    return metrics


def curve_points(scaling):
    """Group flattened scaling metrics as {curve_path: {n: value}}."""
    curves = {}
    for name, value in scaling.items():
        head, _, tail = name.rpartition(".n_")
        try:
            n = int(tail)
        except ValueError:
            continue
        curves.setdefault(head, {})[n] = value
    return curves


def flat_curve_failures(scaling, flat_factor, reference_n=1024):
    """Curves whose largest-n point exceeds flat_factor x the reference.

    The reference is the n_1024 point when the sweep covers it (the
    acceptance bar is stated against n = 2^10), else the smallest n.
    """
    failures = []
    for curve, points in sorted(curve_points(scaling).items()):
        if len(points) < 2:
            continue
        top_n = max(points)
        ref_n = reference_n if reference_n in points else min(points)
        ref, top = points[ref_n], points[top_n]
        if ref > 0 and top > ref * flat_factor:
            failures.append(f"{curve}: n_{top_n} is {top / ref:.2f}x the n_{ref_n} "
                            f"point (flat-curve gate {flat_factor:.1f}x)")
    return failures


def shrunk_sweep_failures(baseline_scaling, current_scaling):
    """Baseline curves whose largest-n point vanished from the current run."""
    current_curves = curve_points(current_scaling)
    failures = []
    for curve, points in sorted(curve_points(baseline_scaling).items()):
        top_n = max(points)
        if curve not in current_curves:
            failures.append(f"{curve}: the whole curve is gone from the current run")
        elif top_n not in current_curves[curve]:
            failures.append(f"{curve}: baseline's largest point n_{top_n} is gone "
                            f"(current sweep tops out at n_{max(current_curves[curve])})")
    return failures


def compare_family(baseline, current, *, regressed, describe):
    """Print one family's comparison; return the regressed metric names."""
    regressions = []
    for name in sorted(set(baseline) | set(current)):
        if name not in baseline:
            print(f"  NEW      {name} = {current[name]:.4f} (no baseline yet)")
            continue
        if name not in current:
            print(f"  MISSING  {name} (baseline {baseline[name]:.4f}; not failing the gate)")
            continue
        base, cur = baseline[name], current[name]
        status = "ok"
        if regressed(base, cur):
            status = "REGRESSION"
            regressions.append(name)
        print(f"  {status:10s} {name}: {base:.4f} -> {cur:.4f} ({describe(base, cur)})")
    return regressions


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="maximum tolerated fractional slowdown of a throughput "
                             "metric (default 0.25)")
    parser.add_argument("--overhead-threshold", type=float, default=0.02,
                        help="maximum tolerated absolute increase of an overhead "
                             "metric (default 0.02)")
    parser.add_argument("--flat-factor", type=float, default=2.0,
                        help="maximum tolerated ratio of a scaling curve's largest-n "
                             "point over its n_1024 reference (default 2.0)")
    args = parser.parse_args()

    # The current document is this run's output: failing to read it is a
    # bug in the run itself.
    try:
        with open(args.current) as f:
            current_doc = json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        print(f"compare_bench: cannot read current metrics: {error}", file=sys.stderr)
        return 2

    # The flat-curve gate judges the current run on its own -- it must hold
    # on the very first night too, when there is no baseline to diff against.
    current_scaling = scaling_metrics(current_doc)
    flat_failures = flat_curve_failures(current_scaling, args.flat_factor)
    for failure in flat_failures:
        print(f"  REGRESSION {failure}")
    if flat_failures:
        print(f"compare_bench: {len(flat_failures)} scaling curve(s) violate the "
              "flat-curve gate", file=sys.stderr)
        return 1

    # The baseline comes from a cache that may be absent (first run), stale,
    # or written by an older schema. None of those are this run's fault:
    # report distinctly (exit 3) so the caller can seed a fresh baseline.
    try:
        with open(args.baseline) as f:
            baseline_doc = json.load(f)
    except (OSError, json.JSONDecodeError) as error:
        print(f"compare_bench: no usable baseline ({error}); "
              "this run should seed a fresh baseline", file=sys.stderr)
        return 3
    baseline_throughput = throughput_metrics(baseline_doc)
    baseline_overhead = overhead_metrics(baseline_doc)
    baseline_scaling = scaling_metrics(baseline_doc)
    baseline_serve_rates, baseline_serve_latencies = serve_metrics(baseline_doc)
    if (not baseline_throughput and not baseline_overhead and not baseline_scaling
            and not baseline_serve_rates and not baseline_serve_latencies):
        print(f"compare_bench: baseline {args.baseline} has no throughput, overhead, "
              "scaling, or serving metrics (schema mismatch?); this run should seed "
              "a fresh baseline", file=sys.stderr)
        return 3

    regressions = compare_family(
        baseline_throughput, throughput_metrics(current_doc),
        regressed=lambda base, cur: base > 0 and cur < base * (1.0 - args.threshold),
        describe=lambda base, cur: f"{(cur - base) / base:+.1%}" if base > 0 else "n/a")
    regressions += compare_family(
        baseline_overhead, overhead_metrics(current_doc),
        regressed=lambda base, cur: cur > base + args.overhead_threshold,
        describe=lambda base, cur: f"{cur - base:+.4f} absolute")
    current_serve_rates, current_serve_latencies = serve_metrics(current_doc)
    regressions += compare_family(
        baseline_serve_rates, current_serve_rates,
        regressed=lambda base, cur: base > 0 and cur < base * (1.0 - args.threshold),
        describe=lambda base, cur: f"{(cur - base) / base:+.1%}" if base > 0 else "n/a")
    regressions += compare_family(
        baseline_serve_latencies, current_serve_latencies,
        regressed=lambda base, cur: base > 0 and cur > base * (1.0 + args.threshold),
        describe=lambda base, cur: f"{(cur - base) / base:+.1%}" if base > 0 else "n/a")
    regressions += compare_family(
        baseline_scaling, current_scaling,
        regressed=lambda base, cur: base > 0 and cur > base * (1.0 + args.threshold),
        describe=lambda base, cur: f"{(cur - base) / base:+.1%}" if base > 0 else "n/a")
    shrunk = shrunk_sweep_failures(baseline_scaling, current_scaling)
    for failure in shrunk:
        print(f"  REGRESSION {failure}")
    regressions += shrunk

    if regressions:
        print(f"compare_bench: {len(regressions)} metric(s) regressed beyond the gate: "
              f"{', '.join(regressions)}", file=sys.stderr)
        return 1
    print("compare_bench: within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
