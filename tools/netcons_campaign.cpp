// netcons_campaign: declare and execute a Monte-Carlo campaign from flags.
//
//   netcons_campaign --protocols global-star,cycle-cover --ns 20,40,80
//       --trials 100 --threads 8 --json out.json
//   netcons_campaign --processes one-way-epidemic --ns 50,100 --trials 500
//       --schedulers uniform,permutation --csv out.csv
//   netcons_campaign --protocols all --ns 16 --trials 20
//   netcons_campaign --protocols simple-global-line --ns 32 --trials 100
//       --faults none,crash:k=1,edge-burst:f=0.1 --threads 8 --json out.json
//   netcons_campaign --protocols simple-global-line --ns 64,128 --trials 200
//       --engine naive,census --json engines.json   # engine-equivalence grid
//   netcons_campaign --engine list                  # registered engines
//   netcons_campaign --protocols cycle-cover --ns 64 --trials 100000
//       --shard 0/3 --records shard0/          # machine 0 of a 3-way fan-out
//   netcons_campaign --protocols cycle-cover --ns 64 --trials 100000
//       --resume records/ --json out.json      # finish an interrupted run
//   netcons_campaign --list
//
// Every (unit, scheduler, faults, engine, n) grid point runs `--trials` independent trials
// as sharded jobs on a thread pool. Per-trial seeds are pure functions of
// (--seed, grid position), so the aggregates are bit-identical for any
// --threads value. Results print as a table and optionally export to
// JSON/CSV via the campaign result sink.
//
// --records DIR streams one JSONL record per completed trial into DIR
// (crash-safe: flushed per line). --shard i/k executes only the i-th of k
// disjoint grid slices — run k machines with the same spec and distinct
// --shard values, then fold their record directories with netcons_merge to
// get the exact summary an unsharded run would produce. --resume DIR skips
// every trial already recorded in DIR (validating that the records match
// this campaign spec) and completes the rest. --trial-cap N stops after N
// executed trials (a deterministic stand-in for "the process was killed").
// --telemetry DIR writes machine-readable observability artifacts into DIR:
// metrics.json (counter/gauge/histogram snapshot), trace.json (Chrome
// trace-event JSON, loadable in Perfetto), and heartbeat.jsonl (one
// progress point per period; tail it live with netcons_top). --progress N
// prints a human-readable progress line to stderr every N seconds.
// Telemetry is purely observational: summary documents are byte-identical
// with or without it (CI-gated).
#include "campaign/campaign.hpp"
#include "campaign/registry.hpp"
#include "campaign/spec_cli.hpp"
#include "campaign/result_sink.hpp"
#include "campaign/trial_record.hpp"
#include "faults/fault_plan.hpp"
#include "telemetry/heartbeat.hpp"
#include "telemetry/telemetry.hpp"
#include "util/table.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace {

using namespace netcons;

struct Options {
  campaign::SpecCli spec;
  int threads = 0;  // all cores
  std::optional<std::string> json_path;
  std::optional<std::string> csv_path;
  std::optional<std::string> records_dir;
  std::optional<std::string> resume_dir;
  int shard_index = 0;
  int shard_count = 1;
  std::uint64_t trial_cap = 0;
  std::optional<std::string> telemetry_dir;
  int progress = 0;       // stderr progress period in seconds; 0: off
  int trace_sample = 16;  // record every k-th per-trial span
  bool list = false;
  bool quiet = false;
};

void print_help(const char* argv0) {
  std::cout
      << "usage: " << argv0 << " [spec flags] [run flags]\n"
      << "       " << argv0 << " --list\n"
      << "\nDeclare and execute a Monte-Carlo campaign grid "
         "(unit x scheduler x faults x engine x n).\n"
      << "\nspec flags:\n"
      << campaign::spec_usage()
      << "\nrun flags:\n"
         "  --threads K             worker threads (default: all cores)\n"
         "  --json FILE             write the summary document (netcons-campaign-v3)\n"
         "  --csv FILE              write the summary as CSV\n"
         "  --records DIR           stream one JSONL trial record per completed trial\n"
         "  --shard I/K             execute only slice I of K (requires --records)\n"
         "  --resume DIR            skip trials already recorded in DIR\n"
         "  --trial-cap N           stop after N executed trials (crash-test stand-in)\n"
         "  --telemetry DIR         write metrics.json, trace.json, heartbeat.jsonl\n"
         "  --progress SECONDS      human-readable progress on stderr every period\n"
         "  --trace-sample K        record every K-th per-trial trace span (default 16)\n"
         "  --list                  print registered protocols/processes/schedulers/engines\n"
         "  --quiet                 suppress the result table and informational lines\n"
         "  --help                  this message\n"
         "\nSee docs/OPERATIONS.md for the runbook and docs/FILE_FORMATS.md for the\n"
         "emitted schemas.\n";
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--protocols a,b|all] [--processes a,b|all] --ns N1,N2,...\n"
               "       [--trials T] [--threads K] [--seed S] [--schedulers s1,s2]\n"
               "       [--faults none,crash:k=1,...] [--engine naive,census,...|list]\n"
               "       [--k K] [--c C] [--d D]\n"
               "       [--json FILE] [--csv FILE] [--quiet]\n"
               "       [--records DIR] [--shard I/K] [--resume DIR] [--trial-cap N]\n"
               "       [--telemetry DIR] [--progress SECONDS] [--trace-sample K]\n"
               "       "
            << argv0 << " --list\n"
            << "(--help for flag descriptions)\n";
  return 2;
}

std::optional<Options> parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const int spec = campaign::consume_spec_flag(opt.spec, argc, argv, i);
    if (spec == -1) return std::nullopt;
    if (spec == 1) continue;
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return (i + 1 < argc) ? argv[++i] : nullptr; };
    if (arg == "--help") {
      print_help(argv[0]);
      std::exit(0);
    } else if (arg == "--list") {
      opt.list = true;
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--shard") {
      const char* v = next();
      if (!v) return std::nullopt;
      const std::string value = v;
      const std::size_t slash = value.find('/');
      const auto index = slash == std::string::npos
                             ? std::nullopt
                             : campaign::parse_i(value.substr(0, slash));
      const auto count = slash == std::string::npos
                             ? std::nullopt
                             : campaign::parse_i(value.substr(slash + 1));
      if (!index || !count || *count < 1 || *index < 0 || *index >= *count) {
        std::cerr << "--shard expects I/K with 0 <= I < K, got '" << value << "'\n";
        return std::nullopt;
      }
      opt.shard_index = *index;
      opt.shard_count = *count;
    } else if (arg == "--trial-cap") {
      const char* v = next();
      if (!v) return std::nullopt;
      char* end = nullptr;
      errno = 0;
      const std::uint64_t cap = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0' || errno == ERANGE || cap == 0) {
        std::cerr << "--trial-cap expects a positive integer, got '" << v << "'\n";
        return std::nullopt;
      }
      opt.trial_cap = cap;
    } else if (arg == "--json" || arg == "--csv" || arg == "--records" || arg == "--resume" ||
               arg == "--telemetry") {
      const char* v = next();
      if (!v) return std::nullopt;
      if (arg == "--json") opt.json_path = v;
      if (arg == "--csv") opt.csv_path = v;
      if (arg == "--records") opt.records_dir = v;
      if (arg == "--resume") opt.resume_dir = v;
      if (arg == "--telemetry") opt.telemetry_dir = v;
    } else if (arg == "--threads" || arg == "--progress" || arg == "--trace-sample") {
      const char* v = next();
      if (!v) return std::nullopt;
      const auto value = campaign::parse_i(v);
      if (!value) {
        std::cerr << arg << " expects an int-range integer, got '" << v << "'\n";
        return std::nullopt;
      }
      if (arg == "--threads") opt.threads = *value;
      if (arg == "--progress") {
        if (*value <= 0) {
          std::cerr << "--progress expects a positive period in seconds, got '" << v << "'\n";
          return std::nullopt;
        }
        opt.progress = *value;
      }
      if (arg == "--trace-sample") {
        if (*value <= 0) {
          std::cerr << "--trace-sample expects a positive integer, got '" << v << "'\n";
          return std::nullopt;
        }
        opt.trace_sample = *value;
      }
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return std::nullopt;
    }
  }
  return opt;
}

int list_engines() {
  std::cout << "engines:\n";
  for (const auto& name : campaign::engine_names()) std::cout << "  " << name << '\n';
  return 0;
}

int list_registry() {
  campaign::print_registry(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parse(argc, argv);
  if (!parsed) return usage(argv[0]);
  Options opt = *parsed;  // mutable: the compiled-out-telemetry path clears flags
  if (opt.list) return list_registry();
  // `--engine list` prints the engine registry, mirroring --list's other axes.
  if (opt.spec.engines.size() == 1 && opt.spec.engines[0] == "list") return list_engines();

  const auto built = campaign::build_spec(opt.spec);
  if (!built) return usage(argv[0]);
  const campaign::CampaignSpec& spec = *built;

  campaign::RunOptions run_options;
  run_options.threads = opt.threads;
  run_options.shard_index = opt.shard_index;
  run_options.shard_count = opt.shard_count;
  run_options.trial_cap = opt.trial_cap;

  // A shard run's work only survives through its record stream.
  const std::optional<std::string> records_dir =
      opt.records_dir ? opt.records_dir : opt.resume_dir;
  if (opt.shard_count > 1 && !records_dir) {
    std::cerr << "--shard without --records (or --resume) would discard the slice's "
                 "trials; pass --records DIR and merge with netcons_merge\n";
    return 2;
  }

  const campaign::CampaignHeader header = campaign::CampaignHeader::describe(spec);
  campaign::OutcomeMap resume_outcomes;
  std::optional<campaign::TrialRecordSink> sink;
  try {
    if (opt.resume_dir) {
      resume_outcomes = campaign::load_resume_outcomes(*opt.resume_dir, header);
      if (!resume_outcomes.empty()) run_options.resume = &resume_outcomes;
      if (!opt.quiet && std::filesystem::exists(*opt.resume_dir)) {
        std::cout << "resuming: " << resume_outcomes.size() << " trials already recorded in "
                  << *opt.resume_dir << '\n';
      }
    }
    if (records_dir) {
      std::filesystem::create_directories(*records_dir);
      const int generation =
          campaign::next_generation(*records_dir, opt.shard_index, opt.shard_count);
      const std::string path =
          (std::filesystem::path(*records_dir) /
           campaign::record_file_name(opt.shard_index, opt.shard_count, generation))
              .string();
      sink.emplace(path, header);
      run_options.on_trial = [&sink](std::size_t point, int trial, std::uint64_t seed,
                                     const campaign::TrialOutcome& outcome) {
        sink->write(campaign::TrialRecord{point, trial, seed, outcome});
      };
      if (!opt.quiet) std::cout << "recording trials to " << sink->path() << '\n';
    }
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 1;
  }

  // Telemetry stack: registry/tracer published process-wide (the engines
  // and the campaign hot path read the ambient pointers), monitor handed to
  // run(). All stack-owned; the ambient pointers are cleared before the
  // snapshot so nothing writes during serialization.
  std::optional<telemetry::Registry> registry;
  std::optional<telemetry::Tracer> tracer;
  std::optional<telemetry::CampaignMonitor> monitor;
  std::ofstream heartbeat_file;
#if defined(NETCONS_TELEMETRY_DISABLED)
  // Honest failure beats empty artifacts: with the instrumentation compiled
  // out, nothing would ever reach the registry or the tracer.
  if (opt.telemetry_dir || opt.progress > 0) {
    std::cerr << "netcons_campaign: telemetry support was compiled out "
                 "(NETCONS_TELEMETRY=OFF); ignoring --telemetry/--progress\n";
    opt.telemetry_dir.reset();
    opt.progress = 0;
  }
#endif
  if (opt.telemetry_dir) {
    try {
      std::filesystem::create_directories(*opt.telemetry_dir);
    } catch (const std::exception& e) {
      std::cerr << "--telemetry: " << e.what() << '\n';
      return 1;
    }
    registry.emplace();
    tracer.emplace();
    tracer->set_sample_every(static_cast<std::uint64_t>(opt.trace_sample));
    telemetry::set_registry(&*registry);
    telemetry::set_tracer(&*tracer);
    const std::string heartbeat_path =
        (std::filesystem::path(*opt.telemetry_dir) / "heartbeat.jsonl").string();
    heartbeat_file.open(heartbeat_path, std::ios::binary | std::ios::trunc);
    if (!heartbeat_file) {
      std::cerr << "--telemetry: cannot write " << heartbeat_path << '\n';
      return 1;
    }
  }
  if (opt.telemetry_dir || opt.progress > 0) {
    telemetry::CampaignMonitor::Options monitor_options;
    monitor_options.period_seconds = opt.progress > 0 ? opt.progress : 2.0;
    monitor_options.heartbeat = heartbeat_file.is_open() ? &heartbeat_file : nullptr;
    monitor_options.progress_stderr = opt.progress > 0;
    monitor_options.registry = registry ? &*registry : nullptr;
    monitor.emplace(monitor_options);
    run_options.monitor = &*monitor;
  }

  campaign::CampaignResult result;
  try {
    result = campaign::run(spec, run_options);
  } catch (const std::exception& e) {
    // Typically a record-sink write failure (disk full, file removed)
    // surfacing through the worker pool; trial-level throws are absorbed
    // into per-point failure counts and never land here.
    std::cerr << e.what() << '\n';
    return 1;
  }

  // Always tell stderr what the run cost, telemetry or not: the cheapest
  // observability there is, and the line scripts grep for.
  {
    const double rate =
        result.wall_seconds > 0.0
            ? static_cast<double>(result.executed_trials) / result.wall_seconds
            : 0.0;
    std::fprintf(stderr, "netcons_campaign: %llu trials in %.3f s (%.1f trials/s)\n",
                 static_cast<unsigned long long>(result.executed_trials),
                 result.wall_seconds, rate);
  }

  if (opt.telemetry_dir) {
    telemetry::set_registry(nullptr);
    telemetry::set_tracer(nullptr);
    try {
      registry->write_snapshot(
          (std::filesystem::path(*opt.telemetry_dir) / "metrics.json").string());
      tracer->write_json((std::filesystem::path(*opt.telemetry_dir) / "trace.json").string());
    } catch (const std::exception& e) {
      std::cerr << e.what() << '\n';
      return 1;
    }
    if (!opt.quiet) std::cout << "wrote telemetry to " << *opt.telemetry_dir << '\n';
  }

  if (!result.complete) {
    // Sharded and/or capped: only the record stream holds the truth; a
    // summary over a partial grid would misrepresent the unrun trials.
    if (!opt.quiet) {
      std::cout << "partial run: executed " << result.executed_trials << " trials ("
                << result.resumed_trials << " resumed, grid "
                << result.total_trials << ") in " << result.wall_seconds << " s, "
                << result.total_failures << " failures\n";
      if (opt.trial_cap > 0 && result.executed_trials >= opt.trial_cap) {
        std::cout << "stopped at --trial-cap " << opt.trial_cap
                  << "; finish with --resume " << (records_dir ? *records_dir : "DIR") << '\n';
      }
    }
    if (opt.json_path || opt.csv_path) {
      std::cerr << "note: --json/--csv skipped for a partial run; merge the records with "
                   "netcons_merge instead\n";
    }
    return result.total_failures == 0 ? 0 : 1;
  }

  if (!opt.quiet) {
    TextTable table({"unit", "scheduler", "faults", "engine", "n", "trials", "failures",
                     "damaged", "mean", "median", "recovery", "residual"});
    for (const auto& point : result.points) {
      table.add_row({point.unit, point.scheduler, point.faults, point.engine,
                     TextTable::integer(static_cast<std::uint64_t>(point.n)),
                     TextTable::integer(static_cast<std::uint64_t>(point.trials)),
                     TextTable::integer(static_cast<std::uint64_t>(point.failures)),
                     TextTable::integer(static_cast<std::uint64_t>(point.damaged)),
                     TextTable::num(point.convergence_steps.mean()),
                     TextTable::num(point.convergence_steps.median()),
                     TextTable::num(point.recovery_steps.mean()),
                     TextTable::num(point.edges_residual.mean())});
    }
    std::cout << table;
    for (const auto& point : result.points) {
      if (point.failures > 0 && !point.first_error.empty()) {
        std::cerr << "note: " << point.unit << " n=" << point.n << ": first failure: "
                  << point.first_error << '\n';
      }
    }
    std::cout << result.total_trials << " trials over " << result.points.size()
              << " grid points in " << result.jobs << " jobs on " << result.threads
              << " threads: " << result.wall_seconds << " s, " << result.total_failures
              << " failures\n";
  }

  if (opt.json_path) {
    std::ofstream file(*opt.json_path);
    file << campaign::to_json(result);
    if (!opt.quiet) std::cout << "wrote " << *opt.json_path << '\n';
  }
  if (opt.csv_path) {
    std::ofstream file(*opt.csv_path);
    file << campaign::to_csv(result);
    if (!opt.quiet) std::cout << "wrote " << *opt.csv_path << '\n';
  }
  return result.total_failures == 0 ? 0 : 1;
}
