// netcons_serve: campaign-as-a-service — the long-lived daemon that
// accepts campaign specs over HTTP/1.1 JSON, deduplicates work by the spec
// fingerprint, and serves completed artifacts from an on-disk cache.
//
//   netcons_serve --cache cache/ --port 7460
//   netcons_serve --cache cache/ --port 0      # kernel-assigned; parse
//                                              # "netcons_serve listening on HOST:PORT"
//   curl -s -X POST localhost:7460/v1/campaigns
//       -d '{"protocols": ["cycle-cover"], "ns": [32], "trials": 50}'
//   curl -s localhost:7460/v1/campaigns/<id>            # status + progress
//   curl -s localhost:7460/v1/campaigns/<id>/summary    # netcons-campaign-v3
//   curl -s localhost:7460/v1/metrics                   # netcons-metrics-v1
//
// Identical in-flight specs coalesce onto one job; a completed spec's
// summary/records/report persist keyed by fingerprint, so re-submits are
// O(1) cache lookups and the bytes served are cmp-identical to what
// netcons_campaign / netcons_report emit for the same spec (CI-gated).
// With "dispatch": "fabric" a job runs as an embedded coordinator handing
// leases to external netcons_worker processes (see docs/serving-api.md).
//
// Trust model: plain HTTP; bind to loopback or a trusted network only,
// exactly like the fabric port (docs/fabric-protocol.md). --token SECRET
// additionally requires "Authorization: Bearer SECRET" on every request
// (401 otherwise) — a shared secret, not a substitute for network trust:
// the token and all traffic still travel in cleartext.
#include "campaign/scheduler.hpp"
#include "campaign/spec_cli.hpp"
#include "serve/api.hpp"
#include "serve/http.hpp"
#include "telemetry/metrics.hpp"

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <thread>

namespace {

using namespace netcons;

struct Options {
  std::string cache_dir;
  std::string host = "127.0.0.1";
  int port = 7460;
  int threads = 0;       // engine threads per job; 0: all cores
  int jobs = 1;          // campaign jobs executed concurrently
  int http_threads = 4;  // HTTP connection workers
  std::size_t cache_max = 0;
  double max_idle = 600.0;  // fabric dispatch idle give-up
  std::string token;
  bool quiet = false;
};

void print_help(const char* argv0) {
  std::cout
      << "usage: " << argv0 << " --cache DIR [flags]\n"
      << "\nServe campaign specs over HTTP/1.1 JSON: POST /v1/campaigns submits a\n"
         "spec (deduplicated by fingerprint, answered from the cache when already\n"
         "computed), GET /v1/campaigns/ID polls status, GET /v1/campaigns/ID/\n"
         "{summary,summary.csv,records,report} streams artifacts byte-identical\n"
         "to the netcons_campaign / netcons_report CLIs, GET /v1/metrics snapshots\n"
         "telemetry. Wire spec: docs/serving-api.md.\n"
      << "\nflags:\n"
         "  --cache DIR             fingerprint-keyed result cache directory (required)\n"
         "  --host H                address to bind (default 127.0.0.1)\n"
         "  --port P                HTTP port (default 7460; 0: kernel-assigned,\n"
         "                          printed in the announce line on stdout)\n"
         "  --threads K             engine threads per campaign job (default: all cores)\n"
         "  --jobs N                campaign jobs executed concurrently (default 1)\n"
         "  --http-threads N        HTTP connection worker threads (default 4)\n"
         "  --cache-max N           keep at most N cache entries, evicting the\n"
         "                          least-recently-hit (default 0: unbounded)\n"
         "  --max-idle SECONDS      fabric dispatch: give up on a job with no\n"
         "                          connected workers for this long (default 600)\n"
         "  --token SECRET          require \"Authorization: Bearer SECRET\" on every\n"
         "                          request; anything else is answered 401\n"
         "                          (default: no authentication)\n"
         "  --quiet                 suppress informational lines on stderr\n"
         "  --help                  this message\n"
         "\nRunbook: docs/OPERATIONS.md. Emitted schemas: docs/FILE_FORMATS.md.\n";
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --cache DIR [--host H] [--port P] [--threads K] [--jobs N]\n"
               "       [--http-threads N] [--cache-max N] [--max-idle SECONDS]\n"
               "       [--token SECRET] [--quiet]\n"
               "(--help for flag descriptions)\n";
  return 2;
}

std::optional<Options> parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return (i + 1 < argc) ? argv[++i] : nullptr; };
    if (arg == "--help") {
      print_help(argv[0]);
      std::exit(0);
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--cache" || arg == "--host" || arg == "--token") {
      const char* v = next();
      if (!v) return std::nullopt;
      if (arg == "--cache") opt.cache_dir = v;
      if (arg == "--host") opt.host = v;
      if (arg == "--token") opt.token = v;
    } else if (arg == "--port" || arg == "--threads" || arg == "--jobs" ||
               arg == "--http-threads" || arg == "--cache-max") {
      const char* v = next();
      if (!v) return std::nullopt;
      const auto value = campaign::parse_i(v);
      if (!value || *value < 0) {
        std::cerr << arg << " expects a non-negative integer, got '" << v << "'\n";
        return std::nullopt;
      }
      if (arg == "--port") opt.port = *value;
      if (arg == "--threads") opt.threads = *value;
      if (arg == "--jobs") opt.jobs = *value > 0 ? *value : 1;
      if (arg == "--http-threads") opt.http_threads = *value > 0 ? *value : 1;
      if (arg == "--cache-max") opt.cache_max = static_cast<std::size_t>(*value);
    } else if (arg == "--max-idle") {
      const char* v = next();
      if (!v) return std::nullopt;
      char* end = nullptr;
      const double value = std::strtod(v, &end);
      if (end == v || *end != '\0' || value < 0.0) {
        std::cerr << "--max-idle expects a non-negative number of seconds, got '" << v << "'\n";
        return std::nullopt;
      }
      opt.max_idle = value;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return std::nullopt;
    }
  }
  if (opt.cache_dir.empty()) {
    std::cerr << "--cache DIR is required (the fingerprint-keyed result cache)\n";
    return std::nullopt;
  }
  return opt;
}

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parse(argc, argv);
  if (!parsed) return usage(argv[0]);
  const Options& opt = *parsed;

  telemetry::Registry registry;

  campaign::Scheduler::Options scheduler_options;
  scheduler_options.cache_dir = opt.cache_dir;
  scheduler_options.threads = opt.threads;
  scheduler_options.job_workers = opt.jobs;
  scheduler_options.cache_max_entries = opt.cache_max;
  scheduler_options.fabric_host = opt.host;
  scheduler_options.fabric_max_idle_seconds = opt.max_idle;
  scheduler_options.registry = &registry;

  try {
    campaign::Scheduler scheduler(scheduler_options);
    serve::Api api(scheduler, registry, opt.token);

    serve::HttpServer::Options server_options;
    server_options.host = opt.host;
    server_options.port = opt.port;
    server_options.threads = opt.http_threads;
    serve::HttpServer server(server_options,
                             [&api](const serve::HttpRequest& request) {
                               return api.handle(request);
                             });
    server.start();

    // Orchestrators parse this line to learn a kernel-assigned port
    // (mirrors netcons_coord's announce line).
    std::cout << "netcons_serve listening on " << opt.host << ":" << server.port() << "\n"
              << std::flush;
    if (!opt.quiet) {
      std::cerr << "netcons_serve: cache " << opt.cache_dir << ", " << opt.jobs
                << " job worker(s), " << opt.http_threads << " http thread(s)\n";
    }

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    while (g_stop == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    if (!opt.quiet) std::cerr << "netcons_serve: shutting down\n";
    server.stop();
    // The scheduler destructor lets running jobs finish; their results
    // land in the cache for the next process.
  } catch (const std::exception& error) {
    std::cerr << error.what() << "\n";
    return 1;
  }
  return 0;
}
