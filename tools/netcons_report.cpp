// netcons_report: per-trial distribution analytics over trial-record
// streams — the paper's figure-style views (stabilization-time histograms,
// ECDFs, tail quantiles) computed exactly from any set of record files.
//
//   netcons_report records/ --json report.json --csv report.csv
//   netcons_report shard0/ shard1/ shard2/ --bins 32 --json report.json
//   netcons_report records/ --metrics convergence_steps,recovery_steps
//   netcons_report --compare fault-free/ faulted/ --json compare.json
//   netcons_report --compare naive/ census/ --max-ks 0.2   # equivalence gate
//   netcons_report --trend records/ --csv trend.csv        # percentiles over n
//
// Inputs are trial-record .jsonl files and/or directories of them (see
// netcons_merge); all must carry the same campaign fingerprint. Records
// stream through a bounded-memory pipeline (value -> multiplicity maps per
// grid point), so million-trial record sets never materialize. Duplicates
// resolve last-wins in scan order, and the emitted statistics are computed
// in canonical (point, trial) order — the output bytes depend only on the
// record *set*, never on file arrangement or arrival order. CI enforces
// this with cmp: report-on-shards == report-on-compacted, run twice.
//
// --compare A B matches grid points across two record sets by
// (unit, scheduler, n) — e.g. a faulted campaign against its fault-free
// twin — and reports the exact two-sample Kolmogorov–Smirnov distance per
// metric.
//
// Exit status: 0 on success, 2 on usage errors, 1 on incomplete streams
// (unless --allow-partial), header mismatches, or corrupt records.
#include "analysis/distribution.hpp"
#include "analysis/report.hpp"
#include "campaign/campaign.hpp"
#include "campaign/json.hpp"
#include "util/table.hpp"

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace {

using namespace netcons;

struct Options {
  std::vector<std::string> inputs;
  std::optional<std::string> json_path;
  std::optional<std::string> csv_path;
  std::optional<std::string> ecdf_csv_path;
  std::vector<analysis::Metric> metrics;  // Empty: all, in canonical order.
  int bins = 0;                           // <= 0: Freedman–Diaconis.
  double max_ks = -1.0;                   // < 0: report only, never gate.
  bool compare = false;
  bool trend = false;
  bool allow_partial = false;
  bool quiet = false;
};

void print_help(const char* argv0) {
  std::cout << "usage: " << argv0 << " RECORDS... [flags]\n"
            << "       " << argv0 << " --compare A B [--max-ks D] [flags]\n"
            << "       " << argv0 << " --trend RECORDS... [flags]\n"
            << "\nCompute per-trial distribution statistics (histograms, ECDFs, tail\n"
               "quantiles) exactly from trial-record streams, compare two record\n"
               "sets with the two-sample Kolmogorov-Smirnov distance, or trace\n"
               "percentiles over the population-size axis (--trend).\n"
               "RECORDS are .jsonl files and/or directories of them; every input must\n"
               "carry the same campaign fingerprint.\n"
            << "\nflags:\n"
               "  --json FILE             write the report (netcons-report-v1) or, with\n"
               "                          --compare, KS distances (netcons-compare-v1)\n"
               "  --csv FILE              write per-point histograms as CSV\n"
               "  --ecdf-csv FILE         write per-point ECDFs as CSV\n"
               "  --bins N|fd             histogram binning: a fixed count or\n"
               "                          Freedman-Diaconis (default fd)\n"
               "  --metrics m1,m2,...     restrict to these metrics (default all):\n"
               "                          convergence_steps, steps_executed,\n"
               "                          recovery_steps, edges_residual\n"
               "  --compare               compare exactly two record sets point-by-point\n"
               "  --max-ks D              with --compare: exit 1 if any KS distance\n"
               "                          exceeds D (an equivalence gate)\n"
               "  --trend                 percentile-over-n trend view: one row per n for\n"
               "                          each (unit, scheduler, faults, engine, metric)\n"
               "                          series; --json/--csv emit netcons-trend-v1 and\n"
               "                          trend rows instead of the report forms\n"
               "  --allow-partial         report incomplete record streams instead of\n"
               "                          failing on missing trials\n"
               "  --quiet                 suppress tables and progress lines\n"
               "  --help                  this message\n";
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " RECORDS... [--json FILE] [--csv FILE] [--ecdf-csv FILE]\n"
               "       [--bins N|fd] [--metrics m1,m2,...] [--allow-partial] [--quiet]\n"
               "       "
            << argv0
            << " --compare A B [--max-ks D] [--json FILE] [--quiet]\n"
               "       "
            << argv0
            << " --trend RECORDS... [--json FILE] [--csv FILE] [--quiet]\n"
               "       RECORDS: trial-record .jsonl files and/or directories of them\n"
               "       metrics: convergence_steps, steps_executed, recovery_steps, "
               "edges_residual\n"
               "(--help for flag descriptions)\n";
  return 2;
}

std::optional<Options> parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return (i + 1 < argc) ? argv[++i] : nullptr; };
    if (arg == "--help") {
      print_help(argv[0]);
      std::exit(0);
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--allow-partial") {
      opt.allow_partial = true;
    } else if (arg == "--compare") {
      opt.compare = true;
    } else if (arg == "--trend") {
      opt.trend = true;
    } else if (arg == "--max-ks") {
      const char* v = next();
      if (!v) return std::nullopt;
      char* end = nullptr;
      errno = 0;
      const double max_ks = std::strtod(v, &end);
      if (end == v || *end != '\0' || errno == ERANGE || !(max_ks >= 0.0) || max_ks > 1.0) {
        std::cerr << "--max-ks expects a threshold in [0, 1], got '" << v << "'\n";
        return std::nullopt;
      }
      opt.max_ks = max_ks;
    } else if (arg == "--json" || arg == "--csv" || arg == "--ecdf-csv") {
      const char* v = next();
      if (!v) return std::nullopt;
      if (arg == "--json") opt.json_path = v;
      if (arg == "--csv") opt.csv_path = v;
      if (arg == "--ecdf-csv") opt.ecdf_csv_path = v;
    } else if (arg == "--bins") {
      const char* v = next();
      if (!v) return std::nullopt;
      const std::string value = v;
      if (value == "fd") {
        opt.bins = 0;
      } else {
        // Strict parse: the whole token must be a number ("32abc" and
        // "1e3" are typos, not bin counts).
        char* end = nullptr;
        errno = 0;
        const long bins = std::strtol(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0' || errno == ERANGE || bins < 1 ||
            bins > analysis::kMaxHistogramBins) {
          std::cerr << "--bins expects fd or an integer in [1, "
                    << analysis::kMaxHistogramBins << "], got '" << value << "'\n";
          return std::nullopt;
        }
        opt.bins = static_cast<int>(bins);
      }
    } else if (arg == "--metrics") {
      const char* v = next();
      if (!v) return std::nullopt;
      std::stringstream stream{std::string(v)};
      std::string item;
      while (std::getline(stream, item, ',')) {
        if (item.empty()) continue;
        const auto metric = analysis::metric_from_name(item);
        if (!metric) {
          std::cerr << "unknown metric '" << item << "'; metrics:";
          for (const auto m : analysis::all_metrics()) {
            std::cerr << ' ' << analysis::metric_name(m);
          }
          std::cerr << "\n";
          return std::nullopt;
        }
        opt.metrics.push_back(*metric);
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown argument: " << arg << "\n";
      return std::nullopt;
    } else {
      opt.inputs.push_back(arg);
    }
  }
  if (opt.inputs.empty()) return std::nullopt;
  if (opt.compare && opt.trend) {
    std::cerr << "--compare and --trend are distinct modes; pick one\n";
    return std::nullopt;
  }
  if (opt.compare) {
    if (opt.inputs.size() != 2) {
      std::cerr << "--compare expects exactly two record sets\n";
      return std::nullopt;
    }
  } else if (opt.max_ks >= 0.0) {
    std::cerr << "--max-ks only applies to --compare\n";
    return std::nullopt;
  }
  if (opt.compare) {
    // Refuse flags compare mode would silently ignore: a requested output
    // file that never appears is a broken pipeline, not a no-op.
    if (opt.csv_path || opt.ecdf_csv_path || opt.bins != 0) {
      std::cerr << "--compare emits KS distances only (--json/--metrics); "
                   "--csv, --ecdf-csv and --bins do not apply\n";
      return std::nullopt;
    }
  }
  if (opt.trend && (opt.ecdf_csv_path || opt.bins != 0)) {
    // Same refusal discipline: trend rows carry no histograms or ECDFs.
    std::cerr << "--trend emits percentile rows only (--json/--csv/--metrics); "
                 "--ecdf-csv and --bins do not apply\n";
    return std::nullopt;
  }
  if (opt.metrics.empty()) {
    opt.metrics.assign(analysis::all_metrics().begin(), analysis::all_metrics().end());
  }
  return opt;
}

/// The rendering spec the parsed flags describe (analysis/report.hpp holds
/// the shared implementation the serve cache also renders through).
analysis::ReportSpec report_spec(const Options& opt) {
  analysis::ReportSpec spec;
  spec.metrics = opt.metrics;
  spec.bins = opt.bins;
  return spec;
}

bool write_file(const std::string& path, const std::string& content, bool quiet) {
  std::ofstream file(path);
  file << content;
  if (!file) {
    std::cerr << "failed to write " << path << "\n";
    return false;
  }
  if (!quiet) std::cout << "wrote " << path << '\n';
  return true;
}

int run_report(const Options& opt) {
  analysis::RecordDistributionBuilder builder = analysis::load_distributions(opt.inputs);
  if (builder.missing() > 0 && !opt.allow_partial) {
    const auto missing = builder.first_missing();
    std::cerr << "incomplete record stream: " << builder.missing() << " of "
              << builder.filled() + builder.missing() << " trials missing; first missing: (point "
              << missing->first << " [" << builder.header().points[missing->first].unit
              << " n=" << builder.header().points[missing->first].n << "], trial "
              << missing->second
              << ")\n(run the missing shards or netcons_campaign --resume, or pass "
                 "--allow-partial to report the recorded trials only)\n";
    return 1;
  }

  const std::vector<analysis::PointDistributions> dists = builder.build();
  const campaign::CampaignHeader& header = builder.header();

  if (!opt.quiet) {
    std::cout << "report over " << builder.filled() << " trials ("
              << builder.duplicates() << " superseded duplicates, " << builder.missing()
              << " missing)\n";
    TextTable table({"unit", "scheduler", "faults", "engine", "n", "metric", "count", "mean",
                     "p50", "p90", "p99", "max"});
    for (std::size_t p = 0; p < header.points.size(); ++p) {
      for (const analysis::Metric metric : opt.metrics) {
        if (!analysis::metric_applicable(metric, header.points[p].faulted)) continue;
        const analysis::ValueDistribution& dist = dists[p].metric(metric);
        table.add_row({header.points[p].unit, header.points[p].scheduler,
                       header.points[p].faults, header.points[p].engine,
                       TextTable::integer(static_cast<std::uint64_t>(header.points[p].n)),
                       std::string(analysis::metric_name(metric)),
                       TextTable::integer(dist.count()), TextTable::num(dist.mean()),
                       TextTable::num(dist.quantile(0.50)), TextTable::num(dist.quantile(0.90)),
                       TextTable::num(dist.quantile(0.99)),
                       TextTable::integer(dist.max())});
      }
    }
    std::cout << table;
  }

  bool ok = true;
  const analysis::ReportSpec spec = report_spec(opt);
  if (opt.json_path) {
    ok = write_file(*opt.json_path, analysis::report_json(builder, dists, spec), opt.quiet) && ok;
  }
  if (opt.csv_path) {
    ok = write_file(*opt.csv_path, analysis::histogram_csv(header, dists, spec), opt.quiet) && ok;
  }
  if (opt.ecdf_csv_path) {
    ok = write_file(*opt.ecdf_csv_path, analysis::ecdf_csv(header, dists, spec), opt.quiet) && ok;
  }
  return ok ? 0 : 1;
}

int run_trend(const Options& opt) {
  analysis::RecordDistributionBuilder builder = analysis::load_distributions(opt.inputs);
  if (builder.missing() > 0 && !opt.allow_partial) {
    std::cerr << "incomplete record stream (" << builder.missing() << " of "
              << builder.filled() + builder.missing()
              << " trials missing); complete it or pass --allow-partial\n";
    return 1;
  }
  const std::vector<analysis::PointDistributions> dists = builder.build();
  const campaign::CampaignHeader& header = builder.header();
  const analysis::ReportSpec spec = report_spec(opt);

  if (!opt.quiet) {
    std::cout << "trend over " << builder.filled() << " trials ("
              << builder.duplicates() << " superseded duplicates, " << builder.missing()
              << " missing)\n";
    TextTable table({"unit", "scheduler", "faults", "engine", "metric", "n", "count", "mean",
                     "p50", "p90", "p99", "max"});
    for (const analysis::TrendRow& row : analysis::trend_rows(header, spec)) {
      const campaign::GridPoint& point = header.points[row.point];
      const analysis::ValueDistribution& dist = dists[row.point].metric(row.metric);
      table.add_row({point.unit, point.scheduler, point.faults, point.engine,
                     std::string(analysis::metric_name(row.metric)),
                     TextTable::integer(static_cast<std::uint64_t>(point.n)),
                     TextTable::integer(dist.count()), TextTable::num(dist.mean()),
                     TextTable::num(dist.quantile(0.50)), TextTable::num(dist.quantile(0.90)),
                     TextTable::num(dist.quantile(0.99)), TextTable::integer(dist.max())});
    }
    std::cout << table;
  }

  bool ok = true;
  if (opt.json_path) {
    ok = write_file(*opt.json_path, analysis::trend_json(header, dists, spec), opt.quiet) && ok;
  }
  if (opt.csv_path) {
    ok = write_file(*opt.csv_path, analysis::trend_csv(header, dists, spec), opt.quiet) && ok;
  }
  return ok ? 0 : 1;
}

int run_compare(const Options& opt) {
  const analysis::RecordDistributionBuilder a = analysis::load_distributions({opt.inputs[0]});
  const analysis::RecordDistributionBuilder b = analysis::load_distributions({opt.inputs[1]});
  // An incomplete stream would make the comparison (and especially a
  // --max-ks gate) vacuously optimistic: missing trials contribute no
  // samples, and an all-header record set would "pass" with ks = 0.
  for (const auto* side : {&a, &b}) {
    if (side->missing() > 0 && !opt.allow_partial) {
      std::cerr << "incomplete record stream (" << side->missing() << " of "
                << side->filled() + side->missing()
                << " trials missing); complete it or pass --allow-partial\n";
      return 1;
    }
  }
  const std::vector<analysis::PointDistributions> dists_a = a.build();
  const std::vector<analysis::PointDistributions> dists_b = b.build();

  struct Pair {
    std::size_t a = 0;
    std::size_t b = 0;
  };
  // Match by (unit, scheduler, n) so a faulted campaign lines up with its
  // fault-free twin; one A point may pair with several B points (e.g. one
  // fault-free baseline against every fault plan).
  std::vector<Pair> pairs;
  for (std::size_t i = 0; i < a.header().points.size(); ++i) {
    for (std::size_t j = 0; j < b.header().points.size(); ++j) {
      const campaign::GridPoint& pa = a.header().points[i];
      const campaign::GridPoint& pb = b.header().points[j];
      if (pa.unit == pb.unit && pa.scheduler == pb.scheduler && pa.n == pb.n) {
        pairs.push_back({i, j});
      }
    }
  }
  if (pairs.empty()) {
    std::cerr << "no grid points match between the two record sets "
                 "(matching is by unit, scheduler, n)\n";
    return 1;
  }

  std::string json = "{\n  \"schema\": \"netcons-compare-v1\",\n  \"pairs\": [\n";
  TextTable table({"unit", "scheduler", "n", "faults a", "faults b", "engine a", "engine b",
                   "metric", "count a", "count b", "ks"});
  bool first = true;
  double worst_ks = 0.0;
  std::string worst_label;
  std::size_t compared = 0;
  for (const Pair& pair : pairs) {
    const campaign::GridPoint& pa = a.header().points[pair.a];
    const campaign::GridPoint& pb = b.header().points[pair.b];
    for (const analysis::Metric metric : opt.metrics) {
      const analysis::ValueDistribution& da = dists_a[pair.a].metric(metric);
      const analysis::ValueDistribution& db = dists_b[pair.b].metric(metric);
      if (da.count() == 0 || db.count() == 0) continue;
      ++compared;
      const double ks = analysis::ks_distance(da, db);
      if (!first) json += ",\n";
      first = false;
      json += "    {\"unit\": ";
      campaign::json::append_escaped(json, pa.unit);
      json += ", \"scheduler\": ";
      campaign::json::append_escaped(json, pa.scheduler);
      json += ", \"n\": " + std::to_string(pa.n);
      json += ", \"faults_a\": ";
      campaign::json::append_escaped(json, pa.faults);
      json += ", \"faults_b\": ";
      campaign::json::append_escaped(json, pb.faults);
      json += ", \"engine_a\": ";
      campaign::json::append_escaped(json, pa.engine);
      json += ", \"engine_b\": ";
      campaign::json::append_escaped(json, pb.engine);
      json += ", \"metric\": ";
      campaign::json::append_escaped(json, std::string(analysis::metric_name(metric)));
      json += ", \"count_a\": " + std::to_string(da.count());
      json += ", \"count_b\": " + std::to_string(db.count());
      json += ", \"ks\": ";
      campaign::json::append_double(json, ks);
      json += "}";
      table.add_row({pa.unit, pa.scheduler, TextTable::integer(static_cast<std::uint64_t>(pa.n)),
                     pa.faults, pb.faults, pa.engine, pb.engine,
                     std::string(analysis::metric_name(metric)),
                     TextTable::integer(da.count()), TextTable::integer(db.count()),
                     TextTable::num(ks)});
      if (ks > worst_ks) {
        worst_ks = ks;
        worst_label = pa.unit + " n=" + std::to_string(pa.n) + " " +
                      std::string(analysis::metric_name(metric)) + " (" + pa.engine + "/" +
                      pa.faults + " vs " + pb.engine + "/" + pb.faults + ")";
      }
    }
  }
  json += "\n  ]\n}\n";

  if (!opt.quiet) std::cout << table;
  if (opt.json_path && !write_file(*opt.json_path, json, opt.quiet)) return 1;
  if (compared == 0) {
    // Matched grid points but no metric had samples on both sides -- a
    // comparison that compared nothing must not read as agreement.
    std::cerr << "no metric had samples on both sides for any matched grid point\n";
    return 1;
  }
  if (opt.max_ks >= 0.0 && worst_ks > opt.max_ks) {
    std::cerr << "KS gate failed: worst distance " << worst_ks << " > --max-ks " << opt.max_ks
              << " at " << worst_label << "\n";
    return 1;
  }
  if (opt.max_ks >= 0.0 && !opt.quiet) {
    std::cout << "KS gate passed: worst distance " << worst_ks << " <= " << opt.max_ks << '\n';
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parse(argc, argv);
  if (!parsed) return usage(argv[0]);
  try {
    if (parsed->compare) return run_compare(*parsed);
    if (parsed->trend) return run_trend(*parsed);
    return run_report(*parsed);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
}
