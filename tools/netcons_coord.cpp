// netcons_coord: the campaign-fabric coordinator (see src/fabric/).
//
//   netcons_coord --protocols cycle-cover --ns 64 --trials 1000 --port 7450
//   netcons_coord --protocols cycle-cover --ns 64 --trials 1000 --port 0
//       # kernel-assigned port; parse "netcons_coord listening on HOST:PORT"
//   netcons_coord ... --resume records/   # skip trials already on disk
//
// The coordinator owns the campaign grid and hands out trial-range leases
// to whatever netcons_worker processes connect with the same spec flags.
// It executes nothing and writes no records; workers stream their own
// record files, and `netcons_merge` folds them into the byte-identical
// single-host summary afterwards. A worker silent past --deadline is
// declared dead and its leases are reassigned, so a SIGKILLed worker costs
// at most its in-flight trials.
#include "campaign/spec_cli.hpp"
#include "campaign/trial_record.hpp"
#include "fabric/coordinator.hpp"
#include "telemetry/metrics.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>

namespace {

using namespace netcons;

struct Options {
  campaign::SpecCli spec;
  int port = 0;
  int lease = 32;
  double deadline = 10.0;
  double max_idle = 60.0;
  std::optional<std::string> resume_dir;
  std::optional<std::string> telemetry_dir;
  std::string token;
  bool quiet = false;
};

void print_help(const char* argv0) {
  std::cout
      << "usage: " << argv0 << " [spec flags] [fabric flags]\n"
      << "\nServe a campaign grid as trial-range leases to netcons_worker "
         "processes\n(the spec flags must match the workers' exactly; the hello "
         "handshake enforces it).\n"
      << "\nspec flags:\n"
      << campaign::spec_usage()
      << "\nfabric flags:\n"
         "  --port P                TCP port to listen on (0: kernel-assigned;\n"
         "                          the chosen port is printed on stdout)\n"
         "  --lease N               max trials per lease (default 32)\n"
         "  --deadline SECONDS      declare a silent worker dead after this (default 10)\n"
         "  --max-idle SECONDS      give up when no workers are connected and work\n"
         "                          remains for this long (default 60; 0: wait forever)\n"
         "  --resume DIR            precommit trials already recorded in DIR\n"
         "  --telemetry DIR         write a fabric metrics.json snapshot into DIR\n"
         "  --token SECRET          refuse workers whose hello does not carry this\n"
         "                          shared secret (default: no authentication)\n"
         "  --list                  print registered protocols/processes/schedulers/engines\n"
         "  --quiet                 suppress worker lifecycle lines on stderr\n"
         "  --help                  this message\n"
         "\nProtocol spec: docs/fabric-protocol.md. Runbook: docs/OPERATIONS.md.\n";
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [spec flags] [--port P] [--lease N] [--deadline SECONDS]\n"
               "       [--max-idle SECONDS] [--resume DIR] [--telemetry DIR]\n"
               "       [--token SECRET] [--quiet]\n"
               "(--help for flag descriptions)\n";
  return 2;
}

std::optional<Options> parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const int spec = campaign::consume_spec_flag(opt.spec, argc, argv, i);
    if (spec == -1) return std::nullopt;
    if (spec == 1) continue;
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return (i + 1 < argc) ? argv[++i] : nullptr; };
    if (arg == "--help") {
      print_help(argv[0]);
      std::exit(0);
    } else if (arg == "--list") {
      campaign::print_registry(std::cout);
      std::exit(0);
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--resume" || arg == "--telemetry" || arg == "--token") {
      const char* v = next();
      if (!v) return std::nullopt;
      if (arg == "--resume") opt.resume_dir = v;
      if (arg == "--telemetry") opt.telemetry_dir = v;
      if (arg == "--token") opt.token = v;
    } else if (arg == "--port" || arg == "--lease") {
      const char* v = next();
      if (!v) return std::nullopt;
      const auto value = campaign::parse_i(v);
      if (!value || *value < 0) {
        std::cerr << arg << " expects a non-negative integer, got '" << v << "'\n";
        return std::nullopt;
      }
      if (arg == "--port") opt.port = *value;
      if (arg == "--lease") opt.lease = *value > 0 ? *value : 1;
    } else if (arg == "--deadline" || arg == "--max-idle") {
      const char* v = next();
      if (!v) return std::nullopt;
      char* end = nullptr;
      const double value = std::strtod(v, &end);
      if (end == v || *end != '\0' || value < 0.0) {
        std::cerr << arg << " expects a non-negative number of seconds, got '" << v << "'\n";
        return std::nullopt;
      }
      if (arg == "--deadline") opt.deadline = value;
      if (arg == "--max-idle") opt.max_idle = value;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return std::nullopt;
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parse(argc, argv);
  if (!parsed) return usage(argv[0]);
  const Options& opt = *parsed;

  const auto spec = campaign::build_spec(opt.spec);
  if (!spec) return usage(argv[0]);
  const campaign::CampaignHeader header = campaign::CampaignHeader::describe(*spec);

  campaign::OutcomeMap resume_outcomes;
  if (opt.resume_dir) {
    try {
      resume_outcomes = campaign::load_resume_outcomes(*opt.resume_dir, header);
      if (!opt.quiet && std::filesystem::exists(*opt.resume_dir)) {
        std::cerr << "[coord] resuming: " << resume_outcomes.size()
                  << " trials already recorded in " << *opt.resume_dir << "\n";
      }
    } catch (const std::exception& error) {
      std::cerr << error.what() << "\n";
      return 1;
    }
  }

  // The fabric gauges go through an explicit registry, so they work even
  // in NETCONS_TELEMETRY=OFF builds (the macros compile out, Registry
  // itself never does).
  std::optional<telemetry::Registry> registry;
  if (opt.telemetry_dir) {
    try {
      std::filesystem::create_directories(*opt.telemetry_dir);
    } catch (const std::exception& error) {
      std::cerr << "--telemetry: " << error.what() << "\n";
      return 1;
    }
    registry.emplace();
  }

  fabric::CoordinatorOptions coordinator_options;
  coordinator_options.port = opt.port;
  coordinator_options.lease_size = opt.lease;
  coordinator_options.deadline_seconds = opt.deadline;
  coordinator_options.max_idle_seconds = opt.max_idle;
  coordinator_options.token = opt.token;
  coordinator_options.quiet = opt.quiet;
  coordinator_options.registry = registry ? &*registry : nullptr;

  fabric::CoordinatorSummary summary;
  try {
    fabric::Coordinator coordinator(header, resume_outcomes.empty() ? nullptr : &resume_outcomes,
                                    coordinator_options);
    summary = coordinator.serve();
  } catch (const std::exception& error) {
    std::cerr << error.what() << "\n";
    return 1;
  }

  if (registry) {
    try {
      registry->write_snapshot(
          (std::filesystem::path(*opt.telemetry_dir) / "metrics.json").string());
    } catch (const std::exception& error) {
      std::cerr << error.what() << "\n";
      return 1;
    }
  }

  std::fprintf(stderr,
               "netcons_coord: %llu/%llu trials committed in %.3f s "
               "(%llu leases, %llu requeued, %llu workers, %llu dead)\n",
               static_cast<unsigned long long>(summary.trials_committed),
               static_cast<unsigned long long>(summary.trials_total), summary.wall_seconds,
               static_cast<unsigned long long>(summary.stats.leases_granted),
               static_cast<unsigned long long>(summary.stats.leases_requeued),
               static_cast<unsigned long long>(summary.stats.workers_seen),
               static_cast<unsigned long long>(summary.stats.workers_dead));
  return summary.complete ? 0 : 1;
}
