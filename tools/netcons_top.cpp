// netcons_top: tail a campaign's heartbeat stream as a live progress view.
//
//   netcons_top telemetry-dir/                # reads DIR/heartbeat.jsonl
//   netcons_top telemetry-dir/heartbeat.jsonl # or the file directly
//   netcons_top --follow telemetry-dir/       # poll until the final point
//
// The heartbeat stream is the JSONL file netcons_campaign --telemetry
// writes (schema "netcons-heartbeat-v1", one object per line; see
// telemetry/heartbeat.hpp). Each point prints as one table row: elapsed
// wall time, trials done/total, throughput, ETA, mean worker utilization,
// and worker count. --follow re-polls the file (~2x a second) until a
// "final" point arrives, so it can watch a campaign that is still running.
//
// Robustness: a line that fails to parse -- typically the torn tail of a
// heartbeat being written right now -- ends the current scan instead of
// aborting; --follow simply retries it on the next poll.
#include "campaign/json.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace {

using netcons::campaign::json::field;
using netcons::campaign::json::parse;
using netcons::campaign::json::Value;

struct Heartbeat {
  bool final = false;
  std::uint64_t seq = 0;
  double elapsed_s = 0.0;
  std::uint64_t trials_done = 0;
  std::uint64_t trials_total = 0;
  double trials_per_sec = 0.0;
  double eta_s = 0.0;
  std::uint64_t queue_depth = 0;
  std::uint64_t workers = 0;
  double mean_utilization = 0.0;
};

std::optional<Heartbeat> parse_heartbeat(const std::string& line) {
  try {
    const Value document = parse(line);
    const auto& object = document.as_object();
    if (field(object, "schema").as_string() != "netcons-heartbeat-v1") return std::nullopt;
    Heartbeat hb;
    hb.final = field(object, "type").as_string() == "final";
    hb.seq = field(object, "seq").as_u64();
    hb.elapsed_s = field(object, "elapsed_s").as_double();
    hb.trials_done = field(object, "trials_done").as_u64();
    hb.trials_total = field(object, "trials_total").as_u64();
    hb.trials_per_sec = field(object, "trials_per_sec").as_double();
    hb.eta_s = field(object, "eta_s").as_double();
    hb.queue_depth = field(object, "queue_depth").as_u64();
    hb.workers = field(object, "workers").as_u64();
    const auto& utilization = field(object, "utilization").as_array();
    double sum = 0.0;
    for (const Value& u : utilization) sum += u.as_double();
    hb.mean_utilization =
        utilization.empty() ? 0.0 : sum / static_cast<double>(utilization.size());
    return hb;
  } catch (const std::exception&) {
    return std::nullopt;  // torn tail or foreign line
  }
}

void print_header() {
  std::printf("%10s %18s %6s %12s %10s %6s %8s\n", "elapsed", "trials", "%", "trials/s",
              "eta", "util", "workers");
}

void print_row(const Heartbeat& hb) {
  const double percent = hb.trials_total > 0
                             ? 100.0 * static_cast<double>(hb.trials_done) /
                                   static_cast<double>(hb.trials_total)
                             : 100.0;
  std::string trials = std::to_string(hb.trials_done) + "/" + std::to_string(hb.trials_total);
  std::printf("%9.1fs %18s %5.1f%% %12.1f %9.0fs %5.0f%% %8llu%s\n", hb.elapsed_s,
              trials.c_str(), percent, hb.trials_per_sec, hb.eta_s,
              100.0 * hb.mean_utilization, static_cast<unsigned long long>(hb.workers),
              hb.final ? "  done" : "");
}

/// DIR -> DIR/heartbeat.jsonl; a file path passes through.
std::string resolve_path(const std::string& arg) {
  if (std::filesystem::is_directory(arg)) {
    return (std::filesystem::path(arg) / "heartbeat.jsonl").string();
  }
  return arg;
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " [--follow] DIR|heartbeat.jsonl\n"
            << "  DIR: a netcons_campaign --telemetry output directory\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool follow = false;
  std::string target;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--follow") {
      follow = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown argument: " << arg << "\n";
      return usage(argv[0]);
    } else if (target.empty()) {
      target = arg;
    } else {
      std::cerr << "only one heartbeat source expected\n";
      return usage(argv[0]);
    }
  }
  if (target.empty()) return usage(argv[0]);
  const std::string path = resolve_path(target);

  print_header();
  std::uint64_t printed = 0;  // lines already consumed across polls
  bool saw_final = false;
  while (true) {
    std::ifstream file(path, std::ios::binary);
    if (!file) {
      if (!follow) {
        std::cerr << "cannot read " << path << "\n";
        return 1;
      }
      // The campaign may not have written its first heartbeat yet.
      std::this_thread::sleep_for(std::chrono::milliseconds(500));
      continue;
    }
    std::string line;
    std::uint64_t index = 0;
    while (std::getline(file, line)) {
      if (index++ < printed) continue;
      if (line.empty()) {
        ++printed;
        continue;
      }
      const auto hb = parse_heartbeat(line);
      if (!hb) break;  // torn tail: retry this line on the next poll
      ++printed;
      print_row(*hb);
      if (hb->final) saw_final = true;
    }
    if (!follow || saw_final) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
  }

  if (printed == 0) {
    std::cerr << "no heartbeat points in " << path << "\n";
    return 1;
  }
  return 0;
}
