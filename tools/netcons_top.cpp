// netcons_top: tail a campaign's heartbeat stream as a live progress view.
//
//   netcons_top telemetry-dir/                # reads DIR/heartbeat.jsonl
//   netcons_top telemetry-dir/heartbeat.jsonl # or the file directly
//   netcons_top --follow telemetry-dir/       # poll until the final point
//
// The heartbeat stream is the JSONL file netcons_campaign --telemetry
// writes (schema "netcons-heartbeat-v1", one object per line; see
// telemetry/heartbeat.hpp). Each point prints as one table row: elapsed
// wall time, trials done/total, throughput, ETA, mean worker utilization,
// and worker count. --follow re-polls the file (~2x a second) until a
// "final" point arrives, so it can watch a campaign that is still running.
//
// Robustness: a line that fails to parse -- typically the torn tail of a
// heartbeat being written right now -- ends the current scan instead of
// aborting; --follow simply retries it on the next poll.
#include "telemetry/heartbeat.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

namespace {

using netcons::telemetry::HeartbeatPoint;
using netcons::telemetry::parse_heartbeat_line;

void print_header() {
  std::printf("%10s %18s %6s %12s %10s %6s %8s\n", "elapsed", "trials", "%", "trials/s",
              "eta", "util", "workers");
}

void print_row(const HeartbeatPoint& hb) {
  const double percent = hb.trials_total > 0
                             ? 100.0 * static_cast<double>(hb.trials_done) /
                                   static_cast<double>(hb.trials_total)
                             : 100.0;
  std::string trials = std::to_string(hb.trials_done) + "/" + std::to_string(hb.trials_total);
  std::printf("%9.1fs %18s %5.1f%% %12.1f %9.0fs %5.0f%% %8llu%s\n", hb.elapsed_s,
              trials.c_str(), percent, hb.trials_per_sec, hb.eta_s,
              100.0 * hb.mean_utilization(), static_cast<unsigned long long>(hb.workers),
              hb.final ? "  done" : "");
}

/// DIR -> DIR/heartbeat.jsonl; a file path passes through.
std::string resolve_path(const std::string& arg) {
  if (std::filesystem::is_directory(arg)) {
    return (std::filesystem::path(arg) / "heartbeat.jsonl").string();
  }
  return arg;
}

void print_help(const char* argv0) {
  std::cout << "usage: " << argv0 << " [--follow] DIR|heartbeat.jsonl\n"
            << "\nTail a campaign's heartbeat stream (netcons-heartbeat-v1) as a live\n"
               "progress table: elapsed time, trials done/total, throughput, ETA, mean\n"
               "worker utilization, worker count.\n"
            << "\nflags:\n"
               "  --follow                poll the file (~2x a second) until the final\n"
               "                          heartbeat arrives\n"
               "  --help                  this message\n"
            << "\nDIR is a netcons_campaign --telemetry output directory (reads\n"
               "DIR/heartbeat.jsonl); a file path passes through.\n";
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " [--follow] DIR|heartbeat.jsonl\n"
            << "  DIR: a netcons_campaign --telemetry output directory\n"
               "(--help for flag descriptions)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool follow = false;
  std::string target;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help") {
      print_help(argv[0]);
      return 0;
    } else if (arg == "--follow") {
      follow = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown argument: " << arg << "\n";
      return usage(argv[0]);
    } else if (target.empty()) {
      target = arg;
    } else {
      std::cerr << "only one heartbeat source expected\n";
      return usage(argv[0]);
    }
  }
  if (target.empty()) return usage(argv[0]);
  const std::string path = resolve_path(target);

  print_header();
  std::uint64_t printed = 0;  // lines already consumed across polls
  bool saw_final = false;
  while (true) {
    std::ifstream file(path, std::ios::binary);
    if (!file) {
      if (!follow) {
        std::cerr << "cannot read " << path << "\n";
        return 1;
      }
      // The campaign may not have written its first heartbeat yet.
      std::this_thread::sleep_for(std::chrono::milliseconds(500));
      continue;
    }
    std::string line;
    std::uint64_t index = 0;
    while (std::getline(file, line)) {
      if (index++ < printed) continue;
      if (line.empty()) {
        ++printed;
        continue;
      }
      const auto hb = parse_heartbeat_line(line);
      if (!hb) break;  // torn tail: retry this line on the next poll
      ++printed;
      print_row(*hb);
      if (hb->final) saw_final = true;
    }
    if (!follow || saw_final) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
  }

  if (printed == 0) {
    std::cerr << "no heartbeat points in " << path << "\n";
    return 1;
  }
  return 0;
}
