// netcons_run: command-line driver for every constructor in the library.
//
//   netcons_run --protocol global-star --n 50 --seed 7
//   netcons_run --protocol fast-global-line --n 30 --trials 10
//   netcons_run --protocol simple-global-line --n 256 --engine census
//   netcons_run --protocol krc --k 3 --n 16 --dot out.dot
//   netcons_run --protocol c-cliques --c 4 --n 20 --ascii
//   netcons_run --list
//
// Runs the protocol to certified stability, validates the output against the
// paper's target topology, and optionally exports the constructed network
// as Graphviz DOT or ASCII art. With --trials > 1, reports mean/median/CI
// of the convergence time instead.
// --telemetry DIR writes metrics.json (engine internals: effective vs.
// skipped steps, census rebuilds, ...) and trace.json (Perfetto-loadable)
// into DIR after the run.
#include "analysis/experiment.hpp"
#include "campaign/registry.hpp"
#include "core/census_engine.hpp"
#include "graph/render.hpp"
#include "protocols/protocols.hpp"
#include "telemetry/telemetry.hpp"
#include "util/table.hpp"

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>

namespace {

using namespace netcons;

struct Options {
  std::string protocol;
  std::string engine = "naive";
  int n = 20;
  std::uint64_t seed = 1;
  int trials = 1;
  int k = 2;
  int c = 3;
  int d = 3;
  std::optional<std::string> dot_path;
  std::optional<std::string> telemetry_dir;
  bool ascii = false;
  bool list = false;
  bool describe = false;
};

// The shared campaign registry covers every protocol whose spec is
// independent of the population size; Graph-Replication needs n (its input
// graph scales with the population), so it stays a local special case.
std::optional<ProtocolSpec> make_spec(const std::string& name, const Options& opt) {
  if (name == "replication-ring") return protocols::replication(Graph::ring(opt.n / 2));
  return campaign::make_protocol(name, campaign::ProtocolParams{opt.k, opt.c, opt.d});
}

std::vector<std::string> spec_names() {
  std::vector<std::string> names = campaign::protocol_names();
  names.push_back("replication-ring");
  return names;
}

void print_help(const char* argv0) {
  std::cout << "usage: " << argv0 << " --protocol NAME [flags]\n"
            << "       " << argv0 << " --list\n"
            << "\nRun one constructor protocol to certified stability and validate the\n"
               "output graph against the paper's target topology.\n"
            << "\nflags:\n"
               "  --protocol NAME         protocol to run (see --list)\n"
               "  --n N                   population size (default 20)\n"
               "  --seed S                trial seed (default 1)\n"
               "  --trials T              trials; > 1 reports mean/median/CI (default 1)\n"
               "  --engine NAME           execution engine: naive, census, census-leap\n"
               "                          (default naive)\n"
               "  --k K  --c C  --d D     protocol-family parameters\n"
               "  --dot FILE              export the constructed network as Graphviz DOT\n"
               "  --ascii                 render the constructed network as ASCII art\n"
               "  --describe              print the protocol's transition table\n"
               "  --telemetry DIR         write metrics.json and trace.json into DIR\n"
               "  --list                  print registered protocols\n"
               "  --help                  this message\n";
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --protocol <name> [--n N] [--seed S] [--trials T]\n"
               "       [--engine naive|census|census-leap] [--k K] [--c C] [--d D]\n"
               "       [--dot FILE] [--ascii] [--describe] [--telemetry DIR]\n"
               "       " << argv0 << " --list\n"
            << "(--help for flag descriptions)\n";
  return 2;
}

std::optional<Options> parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return (i + 1 < argc) ? argv[++i] : nullptr; };
    if (arg == "--help") {
      print_help(argv[0]);
      std::exit(0);
    } else if (arg == "--list") {
      opt.list = true;
    } else if (arg == "--ascii") {
      opt.ascii = true;
    } else if (arg == "--describe") {
      opt.describe = true;
    } else if (arg == "--protocol") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.protocol = v;
    } else if (arg == "--engine") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.engine = v;
    } else if (arg == "--dot") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.dot_path = v;
    } else if (arg == "--telemetry") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.telemetry_dir = v;
    } else if (arg == "--n" || arg == "--seed" || arg == "--trials" || arg == "--k" ||
               arg == "--c" || arg == "--d") {
      const char* v = next();
      if (!v) return std::nullopt;
      const long long value = std::atoll(v);
      if (arg == "--n") opt.n = static_cast<int>(value);
      if (arg == "--seed") opt.seed = static_cast<std::uint64_t>(value);
      if (arg == "--trials") opt.trials = static_cast<int>(value);
      if (arg == "--k") opt.k = static_cast<int>(value);
      if (arg == "--c") opt.c = static_cast<int>(value);
      if (arg == "--d") opt.d = static_cast<int>(value);
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return std::nullopt;
    }
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parse(argc, argv);
  if (!parsed) return usage(argv[0]);
  Options opt = *parsed;  // mutable: the compiled-out-telemetry path clears flags

  if (opt.list) {
    std::cout << "available protocols:\n";
    for (const auto& name : spec_names()) {
      const ProtocolSpec spec = *make_spec(name, opt);
      std::cout << "  " << name << "  (|Q| = " << spec.protocol.state_count() << ")  "
                << spec.notes << '\n';
    }
    return 0;
  }
  const auto maybe_spec = make_spec(opt.protocol, opt);
  if (!maybe_spec) {
    std::cerr << "unknown protocol '" << opt.protocol << "' (try --list)\n";
    return 2;
  }

  const ProtocolSpec& spec = *maybe_spec;
  if (opt.describe) std::cout << spec.protocol.describe() << '\n';

  const auto engine_option = campaign::make_engine(opt.engine);
  if (!engine_option) {
    std::cerr << "unknown engine '" << opt.engine << "'; registered engines:";
    for (const auto& name : campaign::engine_names()) std::cerr << ' ' << name;
    std::cerr << "\n";
    return 2;
  }

  // Telemetry: ambient registry/tracer for the run (the trial drivers and
  // engines publish through them), snapshotted to DIR before exit.
  std::optional<telemetry::Registry> registry;
  std::optional<telemetry::Tracer> tracer;
#if defined(NETCONS_TELEMETRY_DISABLED)
  // Honest failure beats empty artifacts: with the instrumentation compiled
  // out, nothing would ever reach the registry or the tracer.
  if (opt.telemetry_dir) {
    std::cerr << "netcons_run: telemetry support was compiled out "
                 "(NETCONS_TELEMETRY=OFF); ignoring --telemetry\n";
    opt.telemetry_dir.reset();
  }
#endif
  if (opt.telemetry_dir) {
    try {
      std::filesystem::create_directories(*opt.telemetry_dir);
    } catch (const std::exception& e) {
      std::cerr << "--telemetry: " << e.what() << '\n';
      return 1;
    }
    registry.emplace();
    tracer.emplace();
    telemetry::set_registry(&*registry);
    telemetry::set_tracer(&*tracer);
  }
  const auto flush_telemetry = [&]() -> bool {
    if (!opt.telemetry_dir) return true;
    telemetry::set_registry(nullptr);
    telemetry::set_tracer(nullptr);
    try {
      registry->write_snapshot(
          (std::filesystem::path(*opt.telemetry_dir) / "metrics.json").string());
      tracer->write_json((std::filesystem::path(*opt.telemetry_dir) / "trace.json").string());
    } catch (const std::exception& e) {
      std::cerr << e.what() << '\n';
      return false;
    }
    std::cout << "wrote telemetry to " << *opt.telemetry_dir << '\n';
    return true;
  };

  if (opt.trials > 1) {
    const auto point =
        analysis::measure(spec, opt.n, opt.trials, opt.seed, 0, {}, *engine_option);
    TextTable table({"n", "trials", "failures", "mean steps", "median", "ci95", "min", "max"});
    table.add_row({TextTable::integer(static_cast<std::uint64_t>(point.n)),
                   TextTable::integer(static_cast<std::uint64_t>(point.trials)),
                   TextTable::integer(static_cast<std::uint64_t>(point.failures)),
                   TextTable::num(point.convergence_steps.mean()),
                   TextTable::num(point.convergence_steps.median()),
                   TextTable::num(point.convergence_steps.ci95_halfwidth()),
                   TextTable::num(point.convergence_steps.min()),
                   TextTable::num(point.convergence_steps.max())});
    std::cout << table;
    if (!flush_telemetry()) return 1;
    return point.failures == 0 ? 0 : 1;
  }

  const std::unique_ptr<Engine> engine =
      campaign::instantiate_engine(engine_option->make, spec.protocol, opt.n, opt.seed, {});
  Engine& sim = *engine;
  if (spec.initialize) spec.initialize(sim.mutable_world());
  Engine::StabilityOptions options;
  if (spec.max_steps) options.max_steps = spec.max_steps(opt.n);
  options.certificate = spec.certificate;
  ConvergenceReport report;
  {
    NETCONS_TM_SPAN(run_span, "run_until_stable", "run");
    report = sim.run_until_stable(options);
  }
  if (registry) sim.publish_metrics(*registry);
  const Graph output = sim.world().output_graph(spec.protocol);
  const bool ok = report.stabilized && (!spec.target || spec.target(output));

  std::cout << spec.protocol.name() << " on n = " << opt.n << " [" << sim.engine_name()
            << " engine], seed = " << opt.seed << '\n'
            << "stabilized: " << (report.stabilized ? "yes" : "NO")
            << (report.quiescent ? " (quiescent)" : report.certified ? " (certified)" : "")
            << ", convergence step: " << report.convergence_step << '\n'
            << "target topology: " << (ok ? "reached" : "NOT reached") << '\n'
            << "output: " << output.order() << " nodes, " << output.edge_count()
            << " edges; " << degree_histogram(output) << '\n';

  if (opt.ascii) std::cout << '\n' << ascii_adjacency(output);
  if (opt.dot_path) {
    DotOptions dot;
    dot.graph_name = spec.protocol.name();
    for (int u = 0; u < sim.world().size(); ++u) {
      dot.node_labels.push_back(spec.protocol.state_name(sim.world().state(u)));
    }
    std::ofstream file(*opt.dot_path);
    file << to_dot(output, dot);
    std::cout << "wrote " << *opt.dot_path << '\n';
  }
  if (!flush_telemetry()) return 1;
  return ok ? 0 : 1;
}
