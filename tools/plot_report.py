#!/usr/bin/env python3
"""Paper-style figures from netcons_report outputs.

Two figure families, both read straight from the CSV companions the report
tool writes (never from record files -- the exact statistics pipeline stays
in C++):

  * --trend trend.csv: convergence-steps-vs-n curves (log-log), one line
    per (unit, scheduler, faults, engine) series per metric -- the paper's
    "expected running time against the population size" view. The p50 line
    is drawn solid with a shaded p50..p90 tail band.
  * --ecdf ecdf.csv: ECDF overlays, one figure per metric with a step
    curve per (series, n) -- the distribution-shape view behind the tail
    quantiles.

Inputs come from:

    netcons_report --trend records/ --csv trend.csv
    netcons_report records/ --ecdf-csv ecdf.csv

One figure file per metric lands in --out (default figures/), named
trend_<metric>.<fmt> / ecdf_<metric>.<fmt>; filenames and draw order are
sorted, so reruns produce the same files.

Matplotlib is optional: when it is not importable the script prints a
notice and exits 0, so CI can invoke it unconditionally and bare runners
skip gracefully instead of failing the job.

Usage: plot_report.py [--trend FILE] [--ecdf FILE] [--out DIR]
           [--metrics m1,m2,...] [--format png|svg|pdf]

Exit status: 0 on success or matplotlib-missing skip, 1 on unreadable or
malformed inputs, 2 on usage errors.
Stdlib only (plus optional matplotlib).
"""

import argparse
import csv
import pathlib
import sys


def load_rows(path, required):
    """CSV rows as dicts; fails loudly when the header lacks a column."""
    try:
        with open(path, newline="", encoding="utf-8") as f:
            reader = csv.DictReader(f)
            header = set(reader.fieldnames or [])
            missing = sorted(set(required) - header)
            if missing:
                raise ValueError(
                    f"{path}: missing column(s) {', '.join(missing)} -- is this "
                    "the right netcons_report CSV?")
            return list(reader)
    except OSError as error:
        raise ValueError(f"cannot read {path}: {error}") from error


def series_label(row):
    """Legend label for a grid series; quiet defaults are elided."""
    parts = [row["unit"], row["scheduler"], row["engine"]]
    if row["faults"] != "none":
        parts.append(row["faults"])
    return "/".join(parts)


def group(rows, key):
    grouped = {}
    for row in rows:
        grouped.setdefault(key(row), []).append(row)
    return grouped


def wanted_metrics(rows, only):
    metrics = sorted({row["metric"] for row in rows})
    if only:
        metrics = [m for m in metrics if m in only]
    return metrics


def plot_trend(plt, rows, metrics, out_dir, fmt):
    written = []
    for metric in metrics:
        metric_rows = [r for r in rows if r["metric"] == metric]
        series = group(metric_rows, series_label)
        if not series:
            continue
        fig, ax = plt.subplots(figsize=(6.4, 4.8))
        for label in sorted(series):
            points = sorted(series[label], key=lambda r: int(r["n"]))
            ns = [int(r["n"]) for r in points]
            p50 = [float(r["p50"]) for r in points]
            p90 = [float(r["p90"]) for r in points]
            (line,) = ax.plot(ns, p50, marker="o", label=label)
            ax.fill_between(ns, p50, p90, alpha=0.15, color=line.get_color())
        ax.set_xscale("log", base=2)
        ax.set_yscale("log")
        ax.set_xlabel("population size n")
        ax.set_ylabel(f"{metric} (p50, band to p90)")
        ax.set_title(f"{metric} vs n")
        ax.grid(True, which="both", alpha=0.3)
        ax.legend(fontsize="small")
        path = out_dir / f"trend_{metric}.{fmt}"
        fig.savefig(path, bbox_inches="tight")
        plt.close(fig)
        written.append(path)
    return written


def plot_ecdf(plt, rows, metrics, out_dir, fmt):
    written = []
    for metric in metrics:
        metric_rows = [r for r in rows if r["metric"] == metric]
        curves = group(metric_rows,
                       lambda r: f"{series_label(r)} n={int(r['n'])}")
        if not curves:
            continue
        fig, ax = plt.subplots(figsize=(6.4, 4.8))
        for label in sorted(curves):
            points = sorted(curves[label], key=lambda r: int(r["value"]))
            values = [int(r["value"]) for r in points]
            fractions = [float(r["fraction"]) for r in points]
            ax.step(values, fractions, where="post", label=label)
        ax.set_xlabel(metric)
        ax.set_ylabel("fraction of trials")
        ax.set_ylim(0.0, 1.0)
        ax.set_title(f"ECDF of {metric}")
        ax.grid(True, alpha=0.3)
        ax.legend(fontsize="small")
        path = out_dir / f"ecdf_{metric}.{fmt}"
        fig.savefig(path, bbox_inches="tight")
        plt.close(fig)
        written.append(path)
    return written


def main():
    parser = argparse.ArgumentParser(
        description="Paper-style figures from netcons_report CSVs "
                    "(see the module docstring for the full contract).")
    parser.add_argument("--trend", metavar="FILE",
                        help="trend CSV from netcons_report (trend mode, CSV output)")
    parser.add_argument("--ecdf", metavar="FILE",
                        help="ECDF CSV from netcons_report (ECDF CSV export)")
    parser.add_argument("--out", metavar="DIR", default="figures",
                        help="output directory (default figures/)")
    parser.add_argument("--metrics", metavar="m1,m2,...",
                        help="restrict to these metrics (default: all present)")
    parser.add_argument("--format", default="png", choices=("png", "svg", "pdf"),
                        help="figure file format (default png)")
    args = parser.parse_args()
    if not args.trend and not args.ecdf:
        parser.error("nothing to plot: pass --trend and/or --ecdf")

    try:
        import matplotlib
    except ImportError:
        print("plot_report: matplotlib is not installed; skipping figure "
              "generation (install matplotlib to produce figures)")
        return 0
    matplotlib.use("Agg")  # offscreen: no display needed on CI runners
    import matplotlib.pyplot as plt

    only = set(args.metrics.split(",")) if args.metrics else None
    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)

    written = []
    try:
        if args.trend:
            rows = load_rows(args.trend, ("unit", "scheduler", "faults",
                                          "engine", "metric", "n", "p50", "p90"))
            written += plot_trend(plt, rows, wanted_metrics(rows, only),
                                  out_dir, args.format)
        if args.ecdf:
            rows = load_rows(args.ecdf, ("unit", "scheduler", "faults",
                                         "engine", "metric", "n", "value",
                                         "fraction"))
            written += plot_ecdf(plt, rows, wanted_metrics(rows, only),
                                 out_dir, args.format)
    except (ValueError, KeyError) as error:
        print(f"plot_report: {error}", file=sys.stderr)
        return 1

    if not written:
        print("plot_report: inputs held no rows for the requested metrics",
              file=sys.stderr)
        return 1
    for path in written:
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
