// netcons_worker: one campaign-fabric worker process (see src/fabric/).
//
//   netcons_worker --protocols cycle-cover --ns 64 --trials 1000
//       --connect 127.0.0.1:7450 --records records/
//
// The worker must be launched with the same spec flags as its
// netcons_coord: the hello handshake compares campaign fingerprints and
// refuses a mismatch, naming the differing field. Granted leases execute
// through the stock campaign engine (same seeds, same engines, same fault
// plans) and stream records into --records as fabric-wNNNN-gNNNN.jsonl;
// merge all workers' files with netcons_merge for the byte-identical
// single-host summary.
#include "campaign/spec_cli.hpp"
#include "fabric/worker.hpp"

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

namespace {

using namespace netcons;

struct Options {
  campaign::SpecCli spec;
  std::string host = "127.0.0.1";
  int port = 0;
  std::string records_dir;
  int threads = 0;
  double io_timeout = 30.0;
  std::string token;
  bool quiet = false;
};

void print_help(const char* argv0) {
  std::cout
      << "usage: " << argv0
      << " [spec flags] --connect HOST:PORT --records DIR [worker flags]\n"
      << "\nExecute trial-range leases granted by a netcons_coord serving the same\n"
         "campaign spec, streaming trial records into the records directory.\n"
      << "\nspec flags:\n"
      << campaign::spec_usage()
      << "\nworker flags:\n"
         "  --connect HOST:PORT     the coordinator's address (required)\n"
         "  --records DIR           directory for this worker's record file (required)\n"
         "  --threads K             worker threads (default: all cores)\n"
         "  --io-timeout SECONDS    treat a silent coordinator as dead after this\n"
         "                          (default 30; 0: block forever)\n"
         "  --token SECRET          shared secret for the hello handshake; must match\n"
         "                          the coordinator's --token (default: none)\n"
         "  --list                  print registered protocols/processes/schedulers/engines\n"
         "  --quiet                 suppress per-lease progress lines on stderr\n"
         "  --help                  this message\n"
         "\nProtocol spec: docs/fabric-protocol.md. Runbook: docs/OPERATIONS.md.\n";
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [spec flags] --connect HOST:PORT --records DIR\n"
               "       [--threads K] [--io-timeout SECONDS] [--token SECRET] [--quiet]\n"
               "(--help for flag descriptions)\n";
  return 2;
}

std::optional<Options> parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const int spec = campaign::consume_spec_flag(opt.spec, argc, argv, i);
    if (spec == -1) return std::nullopt;
    if (spec == 1) continue;
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return (i + 1 < argc) ? argv[++i] : nullptr; };
    if (arg == "--help") {
      print_help(argv[0]);
      std::exit(0);
    } else if (arg == "--list") {
      campaign::print_registry(std::cout);
      std::exit(0);
    } else if (arg == "--quiet") {
      opt.quiet = true;
    } else if (arg == "--connect") {
      const char* v = next();
      if (!v) return std::nullopt;
      const std::string value = v;
      const std::size_t colon = value.rfind(':');
      const auto port =
          colon == std::string::npos ? std::nullopt : campaign::parse_i(value.substr(colon + 1));
      if (!port || *port <= 0 || *port > 65535 || colon == 0) {
        std::cerr << "--connect expects HOST:PORT, got '" << value << "'\n";
        return std::nullopt;
      }
      opt.host = value.substr(0, colon);
      opt.port = *port;
    } else if (arg == "--records") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.records_dir = v;
    } else if (arg == "--token") {
      const char* v = next();
      if (!v) return std::nullopt;
      opt.token = v;
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return std::nullopt;
      const auto value = campaign::parse_i(v);
      if (!value) {
        std::cerr << "--threads expects an int-range integer, got '" << v << "'\n";
        return std::nullopt;
      }
      opt.threads = *value;
    } else if (arg == "--io-timeout") {
      const char* v = next();
      if (!v) return std::nullopt;
      char* end = nullptr;
      const double value = std::strtod(v, &end);
      if (end == v || *end != '\0' || value < 0.0) {
        std::cerr << "--io-timeout expects a non-negative number of seconds, got '" << v
                  << "'\n";
        return std::nullopt;
      }
      opt.io_timeout = value;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return std::nullopt;
    }
  }
  if (opt.port == 0 || opt.records_dir.empty()) {
    std::cerr << "--connect HOST:PORT and --records DIR are required\n";
    return std::nullopt;
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parse(argc, argv);
  if (!parsed) return usage(argv[0]);
  const Options& opt = *parsed;

  const auto spec = campaign::build_spec(opt.spec);
  if (!spec) return usage(argv[0]);

  fabric::WorkerOptions worker_options;
  worker_options.host = opt.host;
  worker_options.port = opt.port;
  worker_options.records_dir = opt.records_dir;
  worker_options.threads = opt.threads;
  worker_options.io_timeout_seconds = opt.io_timeout;
  worker_options.token = opt.token;
  worker_options.quiet = opt.quiet;

  try {
    const fabric::WorkerSummary summary = fabric::run_worker(*spec, worker_options);
    std::fprintf(stderr, "netcons_worker: worker %d executed %llu trials over %llu leases\n",
                 summary.worker, static_cast<unsigned long long>(summary.executed_trials),
                 static_cast<unsigned long long>(summary.leases));
    return 0;
  } catch (const std::exception& error) {
    std::cerr << error.what() << "\n";
    return 1;
  }
}
