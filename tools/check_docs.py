#!/usr/bin/env python3
"""Docs-tree health gate: dead links and schema coverage.

Two checks over README.md and docs/*.md:

1. Every relative markdown link resolves: the target file exists, and when
   the link carries a #fragment, a heading in the target actually slugs to
   that anchor (GitHub slugging: lowercase, punctuation dropped, spaces to
   hyphens). External links (http/https/mailto) are not touched -- this
   gate must pass offline.

2. Every schema name the code can emit is documented: any string matching
   netcons-<name>-v<N> in src/ or tools/ must appear in
   docs/FILE_FORMATS.md. (tests/ are excluded on purpose: they mint fake
   versions like netcons-fabric-v99 to exercise mismatch errors.)

3. Every schema name the docs *talk about* is documented too: a
   netcons-<name>-v<N> mentioned in README.md or any docs/*.md (other
   than FILE_FORMATS.md itself) must appear in docs/FILE_FORMATS.md --
   prose must not reference a format the formats reference has dropped
   or never defined.

Usage: check_docs.py [REPO_ROOT]        (default: the script's repo)

Exit status: 0 clean, 1 findings (each printed as file:line: message).
Stdlib only -- CI runners need nothing installed.
"""

import pathlib
import re
import sys

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SCHEMA = re.compile(r"netcons-[a-z0-9][a-z0-9-]*-v[0-9]+")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
EXTERNAL = ("http://", "https://", "mailto:")


def slug(heading):
    """GitHub's anchor slug for a heading line (backticks stripped)."""
    text = heading.strip().replace("`", "")
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE).lower()
    return text.replace(" ", "-")


def anchors(markdown):
    return {slug(m.group(1)) for m in HEADING.finditer(markdown)}


def check_links(doc_paths):
    findings = []
    texts = {path: path.read_text(encoding="utf-8") for path in doc_paths}
    for path, text in texts.items():
        for lineno, line in enumerate(text.splitlines(), 1):
            for match in LINK.finditer(line):
                target = match.group(1)
                if target.startswith(EXTERNAL):
                    continue
                file_part, _, fragment = target.partition("#")
                resolved = (path.parent / file_part).resolve() if file_part else path
                if file_part and not resolved.exists():
                    findings.append(f"{path}:{lineno}: dead link -> {target}")
                    continue
                if fragment:
                    if resolved.suffix != ".md" or not resolved.is_file():
                        continue  # anchors are only checkable in markdown
                    content = texts.get(resolved)
                    if content is None:
                        content = resolved.read_text(encoding="utf-8")
                    if fragment not in anchors(content):
                        findings.append(
                            f"{path}:{lineno}: dead anchor -> {target}")
    return findings


def check_schema_coverage(root, formats_doc):
    findings = []
    emitted = set()
    self_path = pathlib.Path(__file__).resolve()
    for top in ("src", "tools"):
        for path in sorted((root / top).rglob("*")):
            if path.suffix not in (".cpp", ".hpp", ".py"):
                continue
            if path.resolve() == self_path:  # this docstring names a fake v99
                continue
            emitted |= set(SCHEMA.findall(path.read_text(encoding="utf-8")))
    documented = set(SCHEMA.findall(formats_doc.read_text(encoding="utf-8")))
    for name in sorted(emitted - documented):
        findings.append(
            f"{formats_doc}: schema {name} is emitted by src/ or tools/ "
            "but never mentioned in docs/FILE_FORMATS.md")
    return findings


def check_schema_mentions(doc_paths, formats_doc):
    """Schema names the prose docs mention but FILE_FORMATS.md does not."""
    findings = []
    documented = set(SCHEMA.findall(formats_doc.read_text(encoding="utf-8")))
    for path in doc_paths:
        if path.resolve() == formats_doc.resolve():
            continue
        text = path.read_text(encoding="utf-8")
        for lineno, line in enumerate(text.splitlines(), 1):
            for name in SCHEMA.findall(line):
                if name not in documented:
                    findings.append(
                        f"{path}:{lineno}: schema {name} is referenced but "
                        "not documented in docs/FILE_FORMATS.md")
    return findings


def main():
    root = pathlib.Path(
        sys.argv[1] if len(sys.argv) > 1
        else pathlib.Path(__file__).resolve().parent.parent)
    docs = sorted((root / "docs").glob("*.md"))
    readme = root / "README.md"
    formats = root / "docs" / "FILE_FORMATS.md"
    for required in [readme, formats]:
        if not required.exists():
            print(f"missing required file: {required}", file=sys.stderr)
            return 1

    findings = check_links([readme] + docs)
    findings += check_schema_coverage(root, formats)
    findings += check_schema_mentions([readme] + docs, formats)
    for finding in findings:
        print(finding, file=sys.stderr)
    if findings:
        print(f"check_docs: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"check_docs: {1 + len(docs)} documents clean "
          "(links resolve, schemas covered)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
