// Engine speedup gate: CensusEngine vs NaiveEngine on Simple-Global-Line
// to stabilization.
//
// Simple-Global-Line is the paper's Omega(n^4) protocol: at n = 256 the
// naive engine executes tens of millions of scheduler calls per trial,
// almost all of them ineffective, while the census engine samples only the
// effective encounters and advances the step clock over the rest. Both
// engines run the same per-trial seed stream; every trial must stabilize
// to the spanning line, and the two engines' mean convergence steps are
// printed side by side (they agree in distribution -- the CI KS gate
// enforces that property on recorded campaigns; this bench enforces the
// speed claim).
//
// Exit status: under ctest (--min-speedup 5) the census engine must be at
// least 5x faster in wall-clock per trial; --min-speedup 0 disables the
// gate. --json FILE writes throughput metrics for the nightly bench
// workflow's regression gate (tools/compare_bench.py).
#include "campaign/campaign.hpp"
#include "campaign/registry.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

int main(int argc, char** argv) {
  using namespace netcons;

  int n = 256;
  int trials = 5;
  std::uint64_t seed = 0x5eedull;
  double min_speedup = 5.0;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) n = std::atoi(argv[++i]);
    if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) trials = std::atoi(argv[++i]);
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    }
    if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    }
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  }

  const ProtocolSpec spec = *campaign::make_protocol("simple-global-line");

  struct EngineRun {
    std::string name;
    double wall_seconds = 0.0;
    double mean_convergence = 0.0;
    int failures = 0;
  };

  std::cout << "=== Engine speedup: Simple-Global-Line, n = " << n << ", " << trials
            << " trials per engine ===\n\n";

  std::vector<EngineRun> runs;
  for (const std::string& name : campaign::engine_names()) {
    const campaign::EngineOption engine = *campaign::make_engine(name);
    EngineRun run;
    run.name = name;
    double total_convergence = 0.0;
    const auto start = std::chrono::steady_clock::now();
    for (int t = 0; t < trials; ++t) {
      const campaign::ProtocolTrialReport report = campaign::run_protocol_trial_report(
          spec, n, trial_seed(seed, static_cast<std::uint64_t>(t)), {}, {}, engine.make);
      if (!report.stabilized || !report.target_ok) ++run.failures;
      total_convergence += static_cast<double>(report.convergence_step);
    }
    run.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    run.mean_convergence = trials > 0 ? total_convergence / trials : 0.0;
    runs.push_back(run);
  }

  TextTable table({"engine", "trials", "failures", "wall s", "s/trial", "mean conv. steps"});
  for (const EngineRun& run : runs) {
    table.add_row({run.name, TextTable::integer(static_cast<std::uint64_t>(trials)),
                   TextTable::integer(static_cast<std::uint64_t>(run.failures)),
                   TextTable::num(run.wall_seconds, 3),
                   TextTable::num(trials > 0 ? run.wall_seconds / trials : 0.0, 4),
                   TextTable::num(run.mean_convergence)});
  }
  std::cout << table << '\n';

  // Look the two gated engines up by name: the registry is built for
  // extension, and a reordered or grown engine list must not silently
  // change which ratio the nightly gate enforces.
  const auto find_run = [&runs](const std::string& name) -> const EngineRun& {
    for (const EngineRun& run : runs) {
      if (run.name == name) return run;
    }
    std::cerr << "engine '" << name << "' missing from the registry\n";
    std::exit(1);
  };
  const EngineRun& naive = find_run("naive");
  const EngineRun& census = find_run("census");
  const double speedup =
      census.wall_seconds > 0.0 ? naive.wall_seconds / census.wall_seconds : 0.0;
  std::cout << "census speedup vs naive: " << TextTable::num(speedup, 2) << "x (same seeds, "
            << "same stabilization criterion; convergence-step distributions agree -- see the "
               "CI KS gate)\n";

  if (!json_path.empty()) {
    std::ofstream file(json_path);
    file << "{\n  \"bench\": \"engine_speedup\",\n"
         << "  \"n\": " << n << ",\n"
         << "  \"trials\": " << trials << ",\n"
         << "  \"naive_wall_seconds\": " << naive.wall_seconds << ",\n"
         << "  \"census_wall_seconds\": " << census.wall_seconds << ",\n"
         << "  \"throughput\": {\n"
         << "    \"census_trials_per_second\": "
         << (census.wall_seconds > 0.0 ? trials / census.wall_seconds : 0.0) << ",\n"
         << "    \"census_speedup_vs_naive\": " << speedup << "\n  }\n}\n";
    file.flush();
    if (!file) {
      std::cerr << "failed to write " << json_path << '\n';
      return 1;
    }
    std::cout << "wrote " << json_path << '\n';
  }

  bool ok = true;
  for (const EngineRun& run : runs) {
    if (run.failures > 0) {
      std::cout << "FAIL: " << run.failures << " of " << trials << " " << run.name
                << " trials did not stabilize to the target line\n";
      ok = false;
    }
  }
  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::cout << "FAIL: census speedup " << TextTable::num(speedup, 2) << "x is below the "
              << TextTable::num(min_speedup, 1) << "x gate\n";
    ok = false;
  }
  if (ok && min_speedup > 0.0) {
    std::cout << "PASS: census engine is >= " << TextTable::num(min_speedup, 1)
              << "x faster to stabilization\n";
  }
  return ok ? 0 : 1;
}
