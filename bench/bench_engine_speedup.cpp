// Engine speedup and scaling gates for the census engine.
//
// Default mode -- CensusEngine vs NaiveEngine on Simple-Global-Line to
// stabilization. Simple-Global-Line is the paper's Omega(n^4) protocol: at
// n = 256 the naive engine executes tens of millions of scheduler calls
// per trial, almost all of them ineffective, while the census engine
// samples only the effective encounters and advances the step clock over
// the rest. Both engines run the same per-trial seed stream; every trial
// must stabilize to the spanning line, and the two engines' mean
// convergence steps are printed side by side (they agree in distribution
// -- the CI KS gate enforces that property on recorded campaigns; this
// bench enforces the speed claim). Under ctest (--min-speedup 5) the
// census engine must be at least 5x faster in wall-clock per trial;
// --min-speedup 0 disables the gate.
//
// --scaling -- the web-scale curve: ns per effective interaction for the
// census and census-leap engines on Simple-Global-Line over
// n in {2^8 .. 2^16}, each point a run bounded to --scaling-eff effective
// interactions (the whole curve costs seconds; the top points cross
// World::kDenseNodeLimit, so the sparse edge storage is on the measured
// path). A near-flat curve is the point: per-interaction cost must not
// grow with the population. The in-binary gate fails if the largest-n
// point exceeds --flat-factor times the n = 1024 point; the nightly
// workflow additionally gates every point against the cached baseline
// ("scaling_curve" family in tools/compare_bench.py).
//
// --web-scale N -- nightly stabilization carry: Simple-Global-Line and
// Cycle-Cover to stabilization at n = N (default 100000) under the census
// engine, stabilization enforced in-binary. The step budget is passed
// saturated: Simple-Global-Line's own O(n^5) budget formula overflows
// uint64 past n ~ 2^12, and at n = 10^5 even the paper clock itself
// (Theta(n^4) ~ 10^20 steps) exceeds 2^64 -- the step counter wraps, so
// only quiescence (W == 0, clock-independent) certifies the run and the
// printed step figures are mod 2^64.
//
// --smoke N -- web-scale smoke (default 1000000): Cycle-Cover to
// stabilization at n = N plus a bounded-effective-interaction
// Simple-Global-Line run, proving the sparse world and census tables
// operate at 10^6 nodes without carrying the full Simple-Global-Line
// stabilization cost.
//
// --json FILE writes the mode's metrics for the nightly bench workflow's
// regression gate (tools/compare_bench.py).
#include "campaign/campaign.hpp"
#include "campaign/registry.hpp"
#include "core/census_engine.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

namespace {

using namespace netcons;

double seconds_since(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

struct CurvePoint {
  int n = 0;
  std::uint64_t effective = 0;
  double ns_per_effective = 0.0;
};

/// One bounded run: construct the engine, execute until `eff_budget`
/// effective interactions (or quiescence, whichever first -- small
/// populations stabilize inside the budget), and price each one.
CurvePoint measure_once(const ProtocolSpec& spec, int n, std::uint64_t eff_budget,
                        std::uint64_t seed, bool leap_enabled) {
  CensusLeapOptions leap;
  leap.enabled = leap_enabled;
  CensusEngine engine(spec.protocol, n, seed, nullptr, leap);
  const auto budget_reached = [&engine, eff_budget](const World&) {
    return engine.effective_steps() >= eff_budget;
  };
  const auto start = std::chrono::steady_clock::now();
  (void)engine.run_until(budget_reached, std::numeric_limits<std::uint64_t>::max());
  const double wall = seconds_since(start);
  CurvePoint point;
  point.n = n;
  point.effective = engine.effective_steps();
  point.ns_per_effective =
      point.effective > 0 ? wall * 1e9 / static_cast<double>(point.effective) : 0.0;
  return point;
}

/// Min-of-`repeats` wrapper: the minimum is the standard noise-robust
/// estimator of intrinsic cost on a shared machine -- scheduler
/// preemptions and cache pollution only ever push a timing up.
CurvePoint measure_point(const ProtocolSpec& spec, int n, std::uint64_t eff_budget,
                         std::uint64_t seed, bool leap_enabled, int repeats = 3) {
  CurvePoint best = measure_once(spec, n, eff_budget, seed, leap_enabled);
  for (int r = 1; r < repeats; ++r) {
    const CurvePoint next =
        measure_once(spec, n, eff_budget, seed + static_cast<std::uint64_t>(r), leap_enabled);
    if (next.ns_per_effective < best.ns_per_effective) best = next;
  }
  return best;
}

int run_scaling(int min_exp, int max_exp, std::uint64_t eff_budget, double flat_factor,
                std::uint64_t seed, const std::string& json_path) {
  const ProtocolSpec spec = *campaign::make_protocol("simple-global-line");
  std::cout << "=== Census scaling curve: Simple-Global-Line, " << eff_budget
            << " effective interactions per point ===\n\n";

  std::vector<CurvePoint> census_curve;
  std::vector<CurvePoint> leap_curve;
  TextTable table({"n", "storage", "census ns/eff", "census-leap ns/eff", "eff (census)"});
  for (int exp = min_exp; exp <= max_exp; ++exp) {
    const int n = 1 << exp;
    const std::uint64_t point_seed = trial_seed(seed, static_cast<std::uint64_t>(exp));
    census_curve.push_back(measure_point(spec, n, eff_budget, point_seed, false));
    leap_curve.push_back(measure_point(spec, n, eff_budget, point_seed, true));
    table.add_row({TextTable::integer(static_cast<std::uint64_t>(n)),
                   n > World::kDenseNodeLimit ? "sparse" : "dense",
                   TextTable::num(census_curve.back().ns_per_effective, 1),
                   TextTable::num(leap_curve.back().ns_per_effective, 1),
                   TextTable::integer(census_curve.back().effective)});
  }
  std::cout << table << '\n';

  const auto point_at = [](const std::vector<CurvePoint>& curve, int n) -> const CurvePoint* {
    for (const CurvePoint& point : curve) {
      if (point.n == n) return &point;
    }
    return nullptr;
  };

  if (!json_path.empty()) {
    std::ofstream file(json_path);
    file << "{\n  \"bench\": \"engine_scaling\",\n"
         << "  \"protocol\": \"simple-global-line\",\n"
         << "  \"effective_budget\": " << eff_budget << ",\n"
         << "  \"scaling_curve\": {\n";
    const auto emit = [&file](const char* name, const std::vector<CurvePoint>& curve,
                              bool last) {
      file << "    \"" << name << "\": {\n";
      for (std::size_t i = 0; i < curve.size(); ++i) {
        file << "      \"n_" << curve[i].n << "\": " << curve[i].ns_per_effective
             << (i + 1 < curve.size() ? ",\n" : "\n");
      }
      file << "    }" << (last ? "\n" : ",\n");
    };
    emit("census_ns_per_effective", census_curve, false);
    emit("census_leap_ns_per_effective", leap_curve, true);
    file << "  }\n}\n";
    file.flush();
    if (!file) {
      std::cerr << "failed to write " << json_path << '\n';
      return 1;
    }
    std::cout << "wrote " << json_path << '\n';
  }

  bool ok = true;
  if (flat_factor > 0.0) {
    const int reference_n = 1 << std::min(std::max(10, min_exp), max_exp);
    for (const auto* curve : {&census_curve, &leap_curve}) {
      const CurvePoint* reference = point_at(*curve, reference_n);
      const CurvePoint& top = curve->back();
      const char* name = curve == &census_curve ? "census" : "census-leap";
      if (reference == nullptr || reference->ns_per_effective <= 0.0) {
        std::cout << "FAIL: " << name << " curve has no usable n = " << reference_n
                  << " reference point\n";
        ok = false;
        continue;
      }
      const double ratio = top.ns_per_effective / reference->ns_per_effective;
      if (ratio > flat_factor) {
        std::cout << "FAIL: " << name << " ns/effective at n = " << top.n << " is "
                  << TextTable::num(ratio, 2) << "x the n = " << reference_n
                  << " figure (flat-curve gate: " << TextTable::num(flat_factor, 1) << "x)\n";
        ok = false;
      } else {
        std::cout << "PASS: " << name << " curve is flat to " << TextTable::num(ratio, 2)
                  << "x across n = " << (1 << min_exp) << " .. " << top.n << " (gate "
                  << TextTable::num(flat_factor, 1) << "x)\n";
      }
    }
  }
  return ok ? 0 : 1;
}

struct StabilizationRun {
  std::string protocol;
  bool stabilized = false;
  bool target_ok = false;
  std::uint64_t effective = 0;
  double wall_seconds = 0.0;
};

/// Census-engine run to stabilization with a saturated step budget:
/// termination comes from quiescence (W == 0), never the clock, which may
/// wrap past 2^64 total steps at these populations. The target predicate
/// takes a dense triangular Graph (n^2/2 bits: 625 MB at 10^5, 62 GB at
/// 10^6), so callers past the web-scale leg pass check_target = false and
/// let quiescence alone certify.
StabilizationRun stabilize(const std::string& name, int n, std::uint64_t seed,
                           bool check_target = true) {
  const ProtocolSpec spec = *campaign::make_protocol(name);
  CensusEngine engine(spec.protocol, n, seed);
  Engine::StabilityOptions options;
  options.max_steps = std::numeric_limits<std::uint64_t>::max();
  options.certificate = spec.certificate;
  const auto start = std::chrono::steady_clock::now();
  const ConvergenceReport report = engine.run_until_stable(options);
  StabilizationRun run;
  run.protocol = name;
  run.wall_seconds = seconds_since(start);
  run.stabilized = report.stabilized;
  run.effective = engine.effective_steps();
  run.target_ok = report.stabilized &&
                  (!check_target || spec.target(engine.world().output_graph(spec.protocol)));
  return run;
}

void print_stabilization(const std::vector<StabilizationRun>& runs, int n) {
  TextTable table({"protocol", "stabilized", "target", "effective", "wall s", "eff/s"});
  for (const StabilizationRun& run : runs) {
    table.add_row({run.protocol, run.stabilized ? "yes" : "NO", run.target_ok ? "ok" : "NO",
                   TextTable::integer(run.effective), TextTable::num(run.wall_seconds, 2),
                   TextTable::num(run.wall_seconds > 0.0
                                      ? static_cast<double>(run.effective) / run.wall_seconds
                                      : 0.0,
                                  0)});
  }
  std::cout << "n = " << n << " (storage: "
            << (n > World::kDenseNodeLimit ? "sparse" : "dense") << ")\n"
            << table << '\n';
}

int run_web_scale(int n, std::uint64_t seed, const std::string& json_path) {
  std::cout << "=== Web-scale stabilization: census engine, n = " << n << " ===\n\n";
  std::vector<StabilizationRun> runs;
  runs.push_back(stabilize("cycle-cover", n, trial_seed(seed, 1)));
  runs.push_back(stabilize("simple-global-line", n, trial_seed(seed, 2)));
  print_stabilization(runs, n);

  if (!json_path.empty()) {
    std::ofstream file(json_path);
    file << "{\n  \"bench\": \"web_scale\",\n  \"n\": " << n << ",\n  \"throughput\": {\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
      std::string key = runs[i].protocol;
      for (char& c : key) {
        if (c == '-') c = '_';
      }
      file << "    \"" << key << "_effective_per_second\": "
           << (runs[i].wall_seconds > 0.0
                   ? static_cast<double>(runs[i].effective) / runs[i].wall_seconds
                   : 0.0)
           << (i + 1 < runs.size() ? ",\n" : "\n");
    }
    file << "  }\n}\n";
    file.flush();
    if (!file) {
      std::cerr << "failed to write " << json_path << '\n';
      return 1;
    }
    std::cout << "wrote " << json_path << '\n';
  }

  bool ok = true;
  for (const StabilizationRun& run : runs) {
    if (!run.stabilized || !run.target_ok) {
      std::cout << "FAIL: " << run.protocol << " did not stabilize to its target at n = " << n
                << '\n';
      ok = false;
    }
  }
  if (ok) std::cout << "PASS: both protocols stabilized to their targets at n = " << n << '\n';
  return ok ? 0 : 1;
}

int run_smoke(int n, std::uint64_t eff_budget, std::uint64_t seed) {
  std::cout << "=== Web-scale smoke: census engine, n = " << n << " ===\n\n";
  std::vector<StabilizationRun> runs;
  runs.push_back(stabilize("cycle-cover", n, trial_seed(seed, 1), /*check_target=*/false));

  // Simple-Global-Line needs ~n^1.5 effective interactions to stabilize --
  // too many to carry at 10^6 nightly, so the smoke only proves the
  // machinery runs: a bounded slice of effective interactions.
  const ProtocolSpec sgl = *campaign::make_protocol("simple-global-line");
  const CurvePoint slice = measure_point(sgl, n, eff_budget, trial_seed(seed, 2), false);
  StabilizationRun sgl_run;
  sgl_run.protocol = "simple-global-line (bounded)";
  sgl_run.stabilized = slice.effective >= eff_budget;  // "ran the full slice"
  sgl_run.target_ok = sgl_run.stabilized;
  sgl_run.effective = slice.effective;
  sgl_run.wall_seconds = slice.ns_per_effective * static_cast<double>(slice.effective) / 1e9;
  runs.push_back(sgl_run);
  print_stabilization(runs, n);

  const bool ok = runs[0].stabilized && runs[0].target_ok && slice.effective >= eff_budget;
  std::cout << (ok ? "PASS" : "FAIL") << ": cycle-cover stabilized and simple-global-line ran "
            << slice.effective << " effective interactions at n = " << n << '\n';
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace netcons;

  int n = 256;
  int trials = 5;
  std::uint64_t seed = 0x5eedull;
  double min_speedup = 5.0;
  bool scaling = false;
  int scaling_min_exp = 8;
  int scaling_max_exp = 16;
  std::uint64_t scaling_eff = 150000;
  double flat_factor = 2.0;
  int web_scale_n = 0;
  int smoke_n = 0;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) n = std::atoi(argv[++i]);
    if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) trials = std::atoi(argv[++i]);
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    }
    if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    }
    if (std::strcmp(argv[i], "--scaling") == 0) scaling = true;
    if (std::strcmp(argv[i], "--scaling-min-exp") == 0 && i + 1 < argc) {
      scaling_min_exp = std::atoi(argv[++i]);
    }
    if (std::strcmp(argv[i], "--scaling-max-exp") == 0 && i + 1 < argc) {
      scaling_max_exp = std::atoi(argv[++i]);
    }
    if (std::strcmp(argv[i], "--scaling-eff") == 0 && i + 1 < argc) {
      scaling_eff = std::strtoull(argv[++i], nullptr, 10);
    }
    if (std::strcmp(argv[i], "--flat-factor") == 0 && i + 1 < argc) {
      flat_factor = std::atof(argv[++i]);
    }
    if (std::strcmp(argv[i], "--web-scale") == 0 && i + 1 < argc) {
      web_scale_n = std::atoi(argv[++i]);
    }
    if (std::strcmp(argv[i], "--smoke") == 0 && i + 1 < argc) smoke_n = std::atoi(argv[++i]);
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  }

  if (scaling) return run_scaling(scaling_min_exp, scaling_max_exp, scaling_eff, flat_factor,
                                  seed, json_path);
  if (web_scale_n > 0) return run_web_scale(web_scale_n, seed, json_path);
  if (smoke_n > 0) return run_smoke(smoke_n, scaling_eff, seed);

  const ProtocolSpec spec = *campaign::make_protocol("simple-global-line");

  struct EngineRun {
    std::string name;
    double wall_seconds = 0.0;
    double mean_convergence = 0.0;
    int failures = 0;
  };

  std::cout << "=== Engine speedup: Simple-Global-Line, n = " << n << ", " << trials
            << " trials per engine ===\n\n";

  std::vector<EngineRun> runs;
  for (const std::string& name : campaign::engine_names()) {
    const campaign::EngineOption engine = *campaign::make_engine(name);
    EngineRun run;
    run.name = name;
    double total_convergence = 0.0;
    const auto start = std::chrono::steady_clock::now();
    for (int t = 0; t < trials; ++t) {
      const campaign::ProtocolTrialReport report = campaign::run_protocol_trial_report(
          spec, n, trial_seed(seed, static_cast<std::uint64_t>(t)), {}, {}, engine.make);
      if (!report.stabilized || !report.target_ok) ++run.failures;
      total_convergence += static_cast<double>(report.convergence_step);
    }
    run.wall_seconds = seconds_since(start);
    run.mean_convergence = trials > 0 ? total_convergence / trials : 0.0;
    runs.push_back(run);
  }

  TextTable table({"engine", "trials", "failures", "wall s", "s/trial", "mean conv. steps"});
  for (const EngineRun& run : runs) {
    table.add_row({run.name, TextTable::integer(static_cast<std::uint64_t>(trials)),
                   TextTable::integer(static_cast<std::uint64_t>(run.failures)),
                   TextTable::num(run.wall_seconds, 3),
                   TextTable::num(trials > 0 ? run.wall_seconds / trials : 0.0, 4),
                   TextTable::num(run.mean_convergence)});
  }
  std::cout << table << '\n';

  // Look the two gated engines up by name: the registry is built for
  // extension, and a reordered or grown engine list must not silently
  // change which ratio the nightly gate enforces.
  const auto find_run = [&runs](const std::string& name) -> const EngineRun& {
    for (const EngineRun& run : runs) {
      if (run.name == name) return run;
    }
    std::cerr << "engine '" << name << "' missing from the registry\n";
    std::exit(1);
  };
  const EngineRun& naive = find_run("naive");
  const EngineRun& census = find_run("census");
  const double speedup =
      census.wall_seconds > 0.0 ? naive.wall_seconds / census.wall_seconds : 0.0;
  std::cout << "census speedup vs naive: " << TextTable::num(speedup, 2) << "x (same seeds, "
            << "same stabilization criterion; convergence-step distributions agree -- see the "
               "CI KS gate)\n";

  if (!json_path.empty()) {
    std::ofstream file(json_path);
    file << "{\n  \"bench\": \"engine_speedup\",\n"
         << "  \"n\": " << n << ",\n"
         << "  \"trials\": " << trials << ",\n"
         << "  \"naive_wall_seconds\": " << naive.wall_seconds << ",\n"
         << "  \"census_wall_seconds\": " << census.wall_seconds << ",\n"
         << "  \"throughput\": {\n"
         << "    \"census_trials_per_second\": "
         << (census.wall_seconds > 0.0 ? trials / census.wall_seconds : 0.0) << ",\n"
         << "    \"census_speedup_vs_naive\": " << speedup << "\n  }\n}\n";
    file.flush();
    if (!file) {
      std::cerr << "failed to write " << json_path << '\n';
      return 1;
    }
    std::cout << "wrote " << json_path << '\n';
  }

  bool ok = true;
  for (const EngineRun& run : runs) {
    if (run.failures > 0) {
      std::cout << "FAIL: " << run.failures << " of " << trials << " " << run.name
                << " trials did not stabilize to the target line\n";
      ok = false;
    }
  }
  if (min_speedup > 0.0 && speedup < min_speedup) {
    std::cout << "FAIL: census speedup " << TextTable::num(speedup, 2) << "x is below the "
              << TextTable::num(min_speedup, 1) << "x gate\n";
    ok = false;
  }
  if (ok && min_speedup > 0.0) {
    std::cout << "PASS: census engine is >= " << TextTable::num(min_speedup, 1)
              << "x faster to stabilization\n";
  }
  return ok ? 0 : 1;
}
