// Fault-recovery sweep: fault intensity x protocol, via the campaign
// engine's fault axis (src/faults/).
//
// For each (protocol, fault plan) cell we report the re-stabilization rate,
// the mean recovery time (steps after the last fault until the output graph
// last changed), and the damage ledger: output edges destroyed by the
// faults vs. rebuilt vs. residual, plus the fraction of re-stabilized
// trials whose final topology missed the paper's target ("damaged").
//
// The headline result mirrors Fault Tolerant Network Constructors (2019):
// every protocol here reaches a stable configuration again after crashes
// (the model cannot livelock), but only repair-capable rule sets --
// Global-Star's (c, p, 0) -> (c, p, 1) -- restore the target topology;
// the line and cycle-cover constructors keep residual damage.
//
// Exit status enforces the recovery claim: at least two protocols must
// re-stabilize >= 90% of crash:k=1 trials (run under ctest with
// --trials 10 --n 16).
// --json FILE writes throughput metrics for the nightly bench workflow's
// regression gate (tools/compare_bench.py): "throughput" values are
// higher-is-better.
#include "campaign/campaign.hpp"
#include "campaign/registry.hpp"
#include "faults/fault_plan.hpp"
#include "util/table.hpp"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

int main(int argc, char** argv) {
  using namespace netcons;

  int trials = 20;
  int n = 24;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) trials = std::atoi(argv[++i]);
    if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) n = std::atoi(argv[++i]);
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  }

  const std::vector<std::string> protocol_names = {"simple-global-line", "cycle-cover",
                                                   "global-star"};
  // crash:k=1:target=max-degree is the adversarial selector: instead of a
  // random victim it always removes the busiest hub (for Global-Star, the
  // center itself), probing worst-case rather than average-case recovery.
  const std::vector<std::string> plan_names = {
      "crash:k=1",        "crash:k=2",        "crash:k=1:target=max-degree",
      "edge-burst:f=0.1", "edge-burst:f=0.3", "edge-rate:p=1e-3",
      "reset:k=2"};

  campaign::CampaignSpec spec;
  for (const std::string& name : protocol_names) {
    spec.units.push_back(campaign::Unit::protocol(name, *campaign::make_protocol(name)));
  }
  for (const std::string& name : plan_names) {
    spec.faults.push_back(faults::parse_fault_plan(name));
  }
  spec.ns = {n};
  spec.trials = trials;
  spec.base_seed = 0xFA17ull;

  std::cout << "=== Fault recovery sweep: " << protocol_names.size() << " protocols x "
            << plan_names.size() << " fault plans, n = " << n << ", " << trials
            << " trials/cell ===\n\n";

  const campaign::CampaignResult result = campaign::run(spec);

  // restabilized rate of crash:k=1 per protocol, for the exit-status gate.
  std::map<std::string, double> crash_restabilized;

  TextTable table({"protocol", "faults", "restab%", "damaged%", "recovery", "deleted",
                   "repaired", "residual"});
  for (const auto& point : result.points) {
    const double total = static_cast<double>(point.trials);
    const double restabilized =
        total > 0 ? 100.0 * static_cast<double>(point.trials - point.failures) / total : 0.0;
    const double successes = static_cast<double>(point.trials - point.failures);
    const double damaged =
        successes > 0 ? 100.0 * static_cast<double>(point.damaged) / successes : 0.0;
    if (point.faults == "crash:k=1") crash_restabilized[point.unit] = restabilized;
    table.add_row({point.unit, point.faults, TextTable::num(restabilized, 1),
                   TextTable::num(damaged, 1), TextTable::num(point.recovery_steps.mean()),
                   TextTable::num(point.edges_deleted.mean(), 2),
                   TextTable::num(point.edges_repaired.mean(), 2),
                   TextTable::num(point.edges_residual.mean(), 2)});
  }
  std::cout << table;
  std::cout << "\nrecovery = mean steps from last fault to last output-graph change "
               "(re-stabilized trials)\ndeleted/repaired/residual = mean output-graph "
               "edges destroyed by faults / rebuilt / never rebuilt\n\n";

  if (!json_path.empty()) {
    std::ofstream file(json_path);
    file << "{\n  \"bench\": \"fault_recovery\",\n"
         << "  \"trials\": " << result.total_trials << ",\n"
         << "  \"wall_seconds\": " << result.wall_seconds << ",\n"
         << "  \"throughput\": {\n"
         << "    \"faulted_trials_per_second\": "
         << (result.wall_seconds > 0
                 ? static_cast<double>(result.total_trials) / result.wall_seconds
                 : 0.0)
         << "\n  }\n}\n";
    file.flush();
    if (!file) {
      std::cerr << "failed to write " << json_path << '\n';
      return 1;
    }
    std::cout << "wrote " << json_path << '\n';
  }

  int recovering = 0;
  for (const auto& [unit, rate] : crash_restabilized) {
    std::cout << unit << ": crash:k=1 re-stabilization " << TextTable::num(rate, 1) << "%\n";
    if (rate >= 90.0) ++recovering;
  }
  if (recovering < 2) {
    std::cout << "FAIL: expected >= 2 protocols with >= 90% re-stabilization under "
                 "crash:k=1, got "
              << recovering << "\n";
    return 1;
  }
  std::cout << "OK: " << recovering << " protocols re-stabilize under crash:k=1\n";
  return 0;
}
