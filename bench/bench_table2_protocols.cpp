// Reproduces Table 2: every direct constructor of Sections 4 and 5 with its
// state count, measured expected convergence time, and the paper's
// bounds. Sizes are chosen per protocol so the slowest (Omega(n^4)) rows
// stay tractable; the *shape* columns (fitted exponent, mean normalized by
// the proven bound) are what the paper's Theta/O/Omega entries predict.
#include "analysis/experiment.hpp"
#include "protocols/protocols.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

#include <cmath>
#include <cstdlib>
#include <iostream>

namespace {

int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value ? std::atoi(value) : fallback;
}

struct Row {
  netcons::ProtocolSpec spec;
  std::string paper_time;
  std::string paper_lower;
  std::vector<int> ns;
  int trials;
};

}  // namespace

int main() {
  using namespace netcons;
  const int t = env_int("NETCONS_TRIALS", 10);

  std::vector<Row> rows;
  rows.push_back({protocols::simple_global_line(), "Omega(n^4), O(n^5)", "Omega(n^2)",
                  {8, 12, 16, 24}, t});
  rows.push_back({protocols::fast_global_line(), "O(n^3)", "Omega(n^2)",
                  {16, 24, 32, 48, 64}, t});
  rows.push_back({protocols::faster_global_line(), "open (conjectured faster)", "Omega(n^2)",
                  {16, 24, 32, 48, 64}, t});
  rows.push_back({protocols::cycle_cover(), "Theta(n^2) optimal", "Omega(n^2)",
                  {16, 32, 64, 96, 128}, t});
  rows.push_back({protocols::global_star(), "Theta(n^2 log n) optimal", "Omega(n^2 log n)",
                  {16, 32, 64, 96, 128}, t});
  rows.push_back({protocols::global_ring(), "not analyzed", "Omega(n^2)", {6, 8, 10, 12}, t});
  rows.push_back({protocols::two_rc(), "not analyzed", "Omega(n log n)", {6, 8, 10, 12}, t});
  rows.push_back({protocols::krc(3), "not analyzed", "Omega(n log n)", {8, 10, 12}, t});
  rows.push_back({protocols::c_cliques(3), "not analyzed", "Omega(n log n)", {9, 12, 15}, t});
  rows.push_back({protocols::replication(Graph::ring(4)), "Theta(n^4 log n)", "-",
                  {8, 10, 12, 16}, t});

  std::cout << "=== Table 2: direct constructors (uniform random scheduler) ===\n"
            << "mean convergence steps over " << t << " trials per size\n\n";

  TextTable summary(
      {"protocol", "states", "paper expected time", "paper LB", "fitted exponent", "failures"});

  for (const auto& row : rows) {
    const auto points = analysis::sweep(row.spec, row.ns, row.trials, 0x7AB2ull);
    TextTable table({"n", "mean steps", "ci95", "min", "max"});
    int failures = 0;
    for (const auto& p : points) {
      failures += p.failures;
      table.add_row({TextTable::integer(static_cast<std::uint64_t>(p.n)),
                     TextTable::num(p.convergence_steps.mean()),
                     TextTable::num(p.convergence_steps.ci95_halfwidth()),
                     TextTable::num(p.convergence_steps.min()),
                     TextTable::num(p.convergence_steps.max())});
    }
    const LinearFit fit = analysis::fit_exponent(points);
    std::cout << "--- " << row.spec.protocol.name() << "  |Q| = "
              << row.spec.protocol.state_count() << "  [" << row.paper_time << "] ---\n"
              << table << "fitted steps ~ n^" << TextTable::num(fit.slope, 2)
              << "  (R^2 = " << TextTable::num(fit.r_squared, 4) << ")\n\n";
    summary.add_row({row.spec.protocol.name(),
                     TextTable::integer(static_cast<std::uint64_t>(
                         row.spec.protocol.state_count())),
                     row.paper_time, row.paper_lower, TextTable::num(fit.slope, 2),
                     TextTable::integer(static_cast<std::uint64_t>(failures))});
  }

  std::cout << "=== Table 2 summary (states column matches the paper; Global-Ring is 10\n"
            << "    as listed in the journal version's Protocol 5 with the l_bar fix) ===\n"
            << summary;
  return 0;
}
