// Theorem 18 bench: partitioning the population into k supernodes of
// ~log k nodes each, with unique names. We sweep n, report the achieved
// (k, line length) against the theorem's k * ceil(log k) <= n target, the
// naming overhead, and the convergence time.
#include "generic/supernodes.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <set>

int main() {
  using namespace netcons;

  std::cout << "=== Theorem 18: supernode construction ===\n\n";
  TextTable table({"n", "supernodes k", "leader line len", "k*len", "names unique",
                   "mean steps (5 seeds)"});
  for (int n : {8, 16, 24, 32, 48, 64, 96, 128}) {
    RunningStats steps;
    int k = 0;
    int len = 0;
    bool names_ok = true;
    int used = 0;
    for (int seed = 0; seed < 5; ++seed) {
      generic::SupernodeConstructor ctor(
          n, trial_seed(0x54E0ull, static_cast<std::uint64_t>(seed)));
      const auto report = ctor.run_until_stable(2'000'000'000ULL);
      if (!report.stabilized) continue;
      steps.add(static_cast<double>(report.steps_executed));
      k = report.supernode_count;
      len = report.leader_line_length;
      used = 0;
      for (int length : report.line_lengths) used += length;
      std::set<int> names(report.names.begin(), report.names.end());
      names_ok = names_ok && names.size() == report.names.size();
    }
    table.add_row({TextTable::integer(static_cast<std::uint64_t>(n)),
                   TextTable::integer(static_cast<std::uint64_t>(k)),
                   TextTable::integer(static_cast<std::uint64_t>(len)),
                   TextTable::integer(static_cast<std::uint64_t>(used)),
                   names_ok ? "yes" : "NO", TextTable::num(steps.mean())});
  }
  std::cout << table
            << "\nPhase boundaries (n = 2^j * j: 8, 24, 64, 160...) give exactly 2^j lines\n"
            << "of length j = log2(k); between boundaries the extra nodes extend/add lines\n"
            << "mid-phase. Every node is organized (k*len column equals n).\n";
  return 0;
}
