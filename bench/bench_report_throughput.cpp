// bench_report_throughput: the distribution-analytics pipeline, measured.
//
// Generates a synthetic trial-record stream (deterministic SplitMix64
// samples over a realistic grid), writes it to disk, then times the two
// stages netcons_report is built from:
//
//  1. Stream — TrialRecordReader + RecordDistributionBuilder over the
//     record file (parse, dedup, slot fill).
//  2. Report — folding the slots into per-point distributions and
//     evaluating every metric's ECDF, histogram, and tail quantiles.
//
// Correctness is enforced, not assumed: the streamed statistics of one
// point are checked against a brute-force recomputation from the raw
// samples; any mismatch fails the run (and the ctest entry).
//
// Usage: bench_report_throughput [--records N] [--json FILE]
//
// --json FILE writes the machine-readable throughput metrics consumed by
// the nightly bench workflow's regression gate (tools/compare_bench.py):
// every value under "throughput" is higher-is-better.
#include "analysis/distribution.hpp"
#include "campaign/campaign.hpp"
#include "campaign/seeds.hpp"
#include "campaign/trial_record.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include <unistd.h>

using namespace netcons;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Deletes the scratch directory on every exit path (early failure
/// returns, exceptions from the reader/builder), not just the happy one.
struct ScratchDir {
  std::filesystem::path path;
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

/// Brute-force interpolated percentile (the RunningStats convention) over a
/// raw sample vector — the reference the streamed pipeline must match.
double reference_quantile(std::vector<double> samples, double p) {
  std::sort(samples.begin(), samples.end());
  const double position = p * static_cast<double>(samples.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  const double fraction = position - static_cast<double>(lower);
  if (lower + 1 >= samples.size()) return samples.back();
  return samples[lower] * (1.0 - fraction) + samples[lower + 1] * fraction;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t records = 200000;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--records") == 0 && i + 1 < argc) {
      records = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  if (records == 0) records = 1;

  // A synthetic 4-point grid; trials fill the requested record count.
  campaign::CampaignHeader header;
  header.base_seed = 0xBEEF;
  header.trials = static_cast<int>((records + 3) / 4);
  for (int p = 0; p < 4; ++p) {
    campaign::GridPoint point;
    point.unit = "synthetic";
    point.scheduler = "uniform";
    point.n = 16 << p;
    point.seed = campaign::point_seed(header.base_seed, static_cast<std::uint64_t>(p));
    header.points.push_back(point);
  }
  const std::uint64_t total =
      static_cast<std::uint64_t>(header.trials) * header.points.size();

  // Per-process scratch dir: concurrent invocations (nightly job + a local
  // run on the same machine) must not truncate or delete each other's data.
  const ScratchDir scratch{std::filesystem::temp_directory_path() /
                           ("netcons_bench_report_" +
                            std::to_string(static_cast<long>(::getpid())))};
  const std::filesystem::path& dir = scratch.path;
  std::filesystem::create_directories(dir);
  const std::filesystem::path file = dir / "synthetic.jsonl";

  // Deterministic synthetic samples: geometric-ish step counts so the
  // histogram/ECDF paths see a realistic spread of distinct values.
  {
    std::ofstream out(file, std::ios::out | std::ios::trunc);
    out << campaign::header_line(header) << '\n';
    for (std::size_t p = 0; p < header.points.size(); ++p) {
      for (int t = 0; t < header.trials; ++t) {
        const std::uint64_t draw =
            campaign::stream_seed(header.points[p].seed, static_cast<std::uint64_t>(t));
        campaign::TrialRecord record;
        record.point = p;
        record.trial = t;
        record.seed = draw;
        record.outcome.success = (draw % 100) != 0;  // 1% failures.
        record.outcome.value = 100 + draw % (1000 * (p + 1));
        record.outcome.steps_executed = record.outcome.value + draw % 64;
        out << campaign::record_line(record) << '\n';
      }
    }
    out.flush();
    if (!out) {
      std::cerr << "failed to write " << file << '\n';
      return 1;
    }
  }
  std::cout << "synthetic stream: " << total << " records over " << header.points.size()
            << " points at " << file << "\n\n";

  // --- stage 1: stream the records through the builder --------------------
  const auto stream_start = std::chrono::steady_clock::now();
  campaign::TrialRecordReader reader({file.string()});
  analysis::RecordDistributionBuilder builder(header);
  while (const auto record = reader.next()) builder.add(*record);
  const double stream_seconds = seconds_since(stream_start);

  // --- stage 2: fold into distributions and evaluate every view -----------
  const auto report_start = std::chrono::steady_clock::now();
  const std::vector<analysis::PointDistributions> dists = builder.build();
  double checksum = 0.0;
  std::size_t ecdf_points = 0;
  for (const auto& point : dists) {
    for (const analysis::Metric metric : analysis::all_metrics()) {
      const analysis::ValueDistribution& dist = point.metric(metric);
      if (dist.count() == 0) continue;
      checksum += dist.mean() + dist.quantile(0.5) + dist.quantile(0.9) + dist.quantile(0.99);
      ecdf_points += analysis::ecdf(dist).size();
      checksum += static_cast<double>(analysis::histogram(dist).counts.size());
    }
  }
  const double report_seconds = seconds_since(report_start);

  // --- enforced contract: streamed stats == brute force on point 0 --------
  std::vector<double> reference;
  for (int t = 0; t < header.trials; ++t) {
    const std::uint64_t draw =
        campaign::stream_seed(header.points[0].seed, static_cast<std::uint64_t>(t));
    if ((draw % 100) != 0) reference.push_back(static_cast<double>(100 + draw % 1000));
  }
  const analysis::ValueDistribution& convergence =
      dists[0].metric(analysis::Metric::kConvergenceSteps);
  bool ok = builder.missing() == 0 && convergence.count() == reference.size();
  if (ok) {
    double sum = 0.0;
    for (const double sample : reference) sum += sample;
    const double mean = sum / static_cast<double>(reference.size());
    ok = std::abs(convergence.mean() - mean) < 1e-9 * std::max(1.0, std::abs(mean)) &&
         std::abs(convergence.quantile(0.9) - reference_quantile(reference, 0.9)) < 1e-9;
  }
  std::cout << "streamed stats match brute force: " << (ok ? "yes" : "NO") << '\n';

  const double stream_rate = stream_seconds > 0 ? static_cast<double>(total) / stream_seconds : 0;
  const double report_rate = report_seconds > 0 ? static_cast<double>(total) / report_seconds : 0;
  std::cout << "stream: " << stream_seconds << " s (" << stream_rate << " records/s)\n"
            << "report: " << report_seconds << " s (" << report_rate
            << " records/s, " << ecdf_points << " ecdf points, checksum " << checksum << ")\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"report_throughput\",\n"
        << "  \"records\": " << total << ",\n"
        << "  \"throughput\": {\n"
        << "    \"stream_records_per_second\": " << stream_rate << ",\n"
        << "    \"report_records_per_second\": " << report_rate << "\n  }\n}\n";
    out.flush();
    if (!out) {
      std::cerr << "failed to write " << json_path << '\n';
      return 1;
    }
    std::cout << "wrote " << json_path << '\n';
  }

  return ok ? 0 : 1;
}
