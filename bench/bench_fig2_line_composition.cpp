// Reproduces Figure 2: "a typical configuration of Protocol Simple-Global-
// Line after some time has passed" -- a collection of lines (each with a
// unique leader, either an endpoint l or a walking w), plus isolated q0
// nodes. We print the component census and leader census as the execution
// progresses, ending in a single spanning line.
#include "core/trace.hpp"
#include "graph/predicates.hpp"
#include "protocols/protocols.hpp"
#include "util/table.hpp"

#include <iostream>

int main() {
  using namespace netcons;
  const int n = 60;
  const auto spec = protocols::simple_global_line();
  const StateId q0 = *spec.protocol.state_by_name("q0");
  const StateId l = *spec.protocol.state_by_name("l");
  const StateId w = *spec.protocol.state_by_name("w");
  Simulator sim(spec.protocol, n, 0xF162ull);

  std::cout << "=== Figure 2: Simple-Global-Line typical configurations (n = " << n
            << ") ===\n\n";
  TextTable table({"step", "isolated q0", "lines", "largest line", "l leaders", "w walkers",
                   "spanning line?"});
  auto emit = [&]() {
    const Graph g = sim.world().active_graph();
    const ComponentCensus census = component_census(g);
    table.add_row(
        {TextTable::integer(sim.steps()),
         TextTable::integer(static_cast<std::uint64_t>(sim.world().census(q0))),
         TextTable::integer(static_cast<std::uint64_t>(census.lines)),
         TextTable::integer(static_cast<std::uint64_t>(census.largest)),
         TextTable::integer(static_cast<std::uint64_t>(sim.world().census(l))),
         TextTable::integer(static_cast<std::uint64_t>(sim.world().census(w))),
         is_spanning_line(sim.world().output_graph(spec.protocol)) ? "yes" : "no"});
  };

  emit();
  Simulator::StabilityOptions options;
  options.max_steps = spec.max_steps(n);
  std::uint64_t next_emit = 1;
  while (sim.steps() < options.max_steps) {
    sim.run(next_emit);  // geometric snapshots: early dynamics are the story
    emit();
    next_emit *= 2;
    if (sim.is_quiescent()) break;
  }
  std::cout << table << "\nInvariant throughout (Theorem 3's proof): every component is a "
               "line with a unique\nleader in state l (endpoint) or w (walking), or an "
               "isolated q0 node.\n";
  return 0;
}
