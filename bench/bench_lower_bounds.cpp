// Empirical companions to the paper's lower bounds:
//
//   Theorem 1: spanning network needs Omega(n log n); Spanning-Net matches.
//   Theorem 2: spanning line needs Omega(n^2).
//   Theorem 6: spanning star needs Omega(n^2 log n); Global-Star matches.
//   Theorem 8: spanning ring needs Omega(n^2).
//   Theorem 5: cycle cover's Theta(n^2) is optimal.
//
// For each, we print the measured mean normalized by the bound's leading
// term: a lower-bounded ratio (bounded away from 0 as n grows) is the
// empirical signature of the Omega; a bounded-above ratio for matching
// protocols shows tightness.
#include "analysis/experiment.hpp"
#include "protocols/protocols.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

#include <cstdlib>
#include <iostream>

namespace {
int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value ? std::atoi(value) : fallback;
}
}  // namespace

int main() {
  using namespace netcons;
  const int trials = env_int("NETCONS_TRIALS", 12);

  struct Row {
    const char* theorem;
    ProtocolSpec spec;
    double (*bound)(std::uint64_t);
    const char* bound_label;
    std::vector<int> ns;
  };
  std::vector<Row> rows;
  rows.push_back({"Thm 1 (spanning net)", protocols::spanning_net(), theory::n_log_n,
                  "n log n", {32, 64, 128, 256}});
  rows.push_back({"Thm 2 (line, via P2)", protocols::fast_global_line(), theory::n_squared,
                  "n^2", {16, 32, 64}});
  rows.push_back({"Thm 2 (line, via P10)", protocols::faster_global_line(), theory::n_squared,
                  "n^2", {16, 32, 64, 128}});
  rows.push_back({"Thm 6 (star)", protocols::global_star(), theory::n_squared_log_n,
                  "n^2 log n", {16, 32, 64, 96}});
  rows.push_back({"Thm 8 (ring, via 2RC)", protocols::two_rc(), theory::n_squared, "n^2",
                  {6, 8, 10, 12}});
  rows.push_back({"Thm 5 (cycle cover)", protocols::cycle_cover(), theory::n_squared, "n^2",
                  {16, 32, 64, 128}});

  std::cout << "=== Lower bounds: measured mean / bound leading term ===\n"
            << "(" << trials << " trials per point)\n\n";
  for (const auto& row : rows) {
    TextTable table({"n", "mean steps", "bound term", "ratio"});
    const auto points = analysis::sweep(row.spec, row.ns, trials, 0x10B5ull);
    for (const auto& p : points) {
      const double term = row.bound(static_cast<std::uint64_t>(p.n));
      table.add_row({TextTable::integer(static_cast<std::uint64_t>(p.n)),
                     TextTable::num(p.convergence_steps.mean()), TextTable::num(term),
                     TextTable::num(p.convergence_steps.mean() / term, 3)});
    }
    std::cout << "--- " << row.theorem << ": protocol " << row.spec.protocol.name()
              << ", bound " << row.bound_label << " ---\n"
              << table << '\n';
  }

  std::cout
      << "Reading: ratios stay bounded away from zero (the Omega holds empirically);\n"
      << "for Spanning-Net vs n log n, Global-Star vs n^2 log n, and Cycle-Cover vs n^2\n"
      << "the ratio is also bounded above -- those protocols are tight, as proven.\n";
  return 0;
}
