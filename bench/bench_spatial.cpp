// bench_spatial: the spatial workload's O(1) scaling contract, measured.
//
// The proximity sampler promises O(1) expected next() regardless of the
// population (grid-bucketed alias table + rejection), and the weighted
// census path promises per-effective-interaction cost that does not grow
// with n. Both are swept over n = 2^8 .. 2^14 and reported as
// ns-per-operation scaling curves; a curve that bends upward is a
// regression in the cell bucketing or the thinning acceptance rate.
//
// Usage: bench_spatial [--samples K] [--effective K] [--json FILE]
//
// --json FILE writes the machine-readable metrics consumed by the nightly
// bench workflow (tools/compare_bench.py). The sampler curve lands under
// "scaling_curve" (lower-is-better ns keyed n_<population>, held flat by
// the --flat-factor gate -- the O(1) next() acceptance bar). The weighted
// census path lands under "throughput" as effective interactions per
// second per population (higher-is-better, gated against the baseline):
// its per-interaction cost is O(1) algorithmically but rises with the
// working-set size once the census buckets outgrow cache, so asserting
// cross-n flatness would gate on the memory hierarchy, not the code.
#include "campaign/registry.hpp"
#include "core/census_engine.hpp"
#include "sched/proximity.hpp"
#include "util/table.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

using namespace netcons;

namespace {

double elapsed_ns(std::chrono::steady_clock::time_point start) {
  return static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now() - start)
                                 .count());
}

ProximityParams bench_params() {
  ProximityParams params;  // the spec's defaults: alpha=2, r=0.1, uniform
  return params;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t samples = 1000000;    // sampler draws per population size
  std::uint64_t effective = 20000;    // census effective-interaction budget
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--samples") == 0 && i + 1 < argc) {
      samples = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--effective") == 0 && i + 1 < argc) {
      effective = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: bench_spatial [--samples K] [--effective K] [--json FILE]\n";
      return 2;
    }
  }

  const std::vector<int> ns = {256, 512, 1024, 2048, 4096, 8192, 16384};
  const ProtocolSpec protocol = *campaign::make_protocol("cycle-cover");

  std::cout << "spatial scaling: proximity:alpha=2:r=0.1:layout=uniform, " << samples
            << " sampler draws + " << effective
            << " weighted-census effective interactions per point\n\n";

  TextTable table({"n", "build ms", "sample ns", "census ns/effective"});
  std::vector<double> sample_ns;
  std::vector<double> census_ns;
  for (const int n : ns) {
    // --- sampler: ns per next()-equivalent draw --------------------------
    ProximityScheduler scheduler(bench_params());
    Rng rng(trial_seed(0x59A7ull, static_cast<std::uint64_t>(n)));
    const auto build_start = std::chrono::steady_clock::now();
    SchedulerWeightModel* model = scheduler.weight_model(rng, n);
    const double build_ms = elapsed_ns(build_start) / 1e6;
    if (model == nullptr) {
      std::cerr << "proximity scheduler exported no weight model\n";
      return 1;
    }
    std::uint64_t sink = 0;  // keep the draws observable
    const auto sample_start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < samples; ++i) {
      const Encounter e = model->sample(rng);
      sink += static_cast<std::uint64_t>(e.first) + static_cast<std::uint64_t>(e.second);
    }
    const double per_sample = elapsed_ns(sample_start) / static_cast<double>(samples);
    sample_ns.push_back(per_sample);

    // --- weighted census: ns per effective interaction -------------------
    // A fixed effective budget, well below cycle-cover's stabilization
    // point at every swept n, so the loop never idles at quiescence.
    CensusEngine engine(protocol.protocol, n,
                        trial_seed(0xCE45ull, static_cast<std::uint64_t>(n)),
                        std::make_unique<ProximityScheduler>(bench_params()));
    const auto census_start = std::chrono::steady_clock::now();
    while (engine.effective_steps() < effective && !engine.is_quiescent()) {
      (void)engine.step();
    }
    const double census_elapsed = elapsed_ns(census_start);
    const double per_effective =
        engine.effective_steps() > 0
            ? census_elapsed / static_cast<double>(engine.effective_steps())
            : 0.0;
    census_ns.push_back(per_effective);

    table.add_row({TextTable::integer(static_cast<std::uint64_t>(n)),
                   TextTable::num(build_ms), TextTable::num(per_sample),
                   TextTable::num(per_effective)});
    if (sink == 0xFFFFFFFFFFFFFFFFull) std::cout << "";  // defeat dead-code elision
  }
  std::cout << table;

  if (!json_path.empty()) {
    std::ofstream file(json_path);
    file << "{\n  \"bench\": \"spatial_scaling\",\n"
         << "  \"scheduler\": \"proximity:alpha=2:r=0.1:layout=uniform\",\n"
         << "  \"samples\": " << samples << ",\n"
         << "  \"effective_target\": " << effective << ",\n"
         << "  \"scaling_curve\": {\n    \"proximity_sample_ns\": {";
    for (std::size_t i = 0; i < ns.size(); ++i) {
      file << (i == 0 ? "" : ", ") << "\"n_" << ns[i] << "\": " << sample_ns[i];
    }
    file << "}\n  },\n  \"throughput\": {\n";
    for (std::size_t i = 0; i < ns.size(); ++i) {
      const double per_second = census_ns[i] > 0.0 ? 1e9 / census_ns[i] : 0.0;
      file << "    \"weighted_census_effective_per_s_n_" << ns[i] << "\": " << per_second
           << (i + 1 < ns.size() ? ",\n" : "\n");
    }
    file << "  }\n}\n";
    file.flush();
    if (!file) {
      std::cerr << "failed to write " << json_path << '\n';
      return 1;
    }
    std::cout << "\nwrote " << json_path << '\n';
  }
  return 0;
}
