// Telemetry overhead gate: the instrumented campaign hot path with the
// full telemetry stack live (registry + tracer + heartbeat monitor) must
// run within --max-overhead (default 2%) of the telemetry-off baseline.
//
// The workload is a realistic campaign slice -- Cycle-Cover under the
// census engine, many small trials -- because that is where the
// instrumentation sits: per-job spans, sampled per-trial spans, per-trial
// engine metric publication, and the heartbeat's record_job on every
// chunk.
//
// Measuring a 2% budget on a shared runner needs care, so the gate uses
// an interleaved sum-of-CPU-time ratio:
//
//   * process CPU time, not wall clock -- identical wall-clock runs vary
//     by tens of percent on shared runners (neighbor tenants, steal
//     time). CPU time still charges everything telemetry actually burns,
//     including the heartbeat ticker thread, while excluding time the
//     process never got.
//   * many short off/on repetitions strictly interleaved (off, on, off,
//     on, ...), scored as sum(on) / sum(off) - 1. CPU seconds still
//     drift with frequency scaling; interleaving puts both sides under
//     the same drift so the ratio of totals cancels it. (Best-of-N was
//     measurably worse here: each side's minimum lands on a different
//     boost-frequency window, which alone swings the estimate by +-3%.)
//
// Wall-clock trial rates are reported alongside for the throughput family.
//
// Exit status: non-zero when the overhead gate fails (--max-overhead 0 or
// --advisory disables failing). --json FILE writes a document with a
// "throughput" object (higher-is-better, tracked by compare_bench.py) and
// an "overhead" object (lower-is-better, absolute-tolerance gate).
#include "campaign/campaign.hpp"
#include "campaign/registry.hpp"
#include "telemetry/heartbeat.hpp"
#include "telemetry/telemetry.hpp"
#include "util/table.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

namespace {

/// CPU seconds consumed by the whole process (all threads) so far.
double process_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

struct Sample {
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace netcons;

  int n = 32;
  int trials = 5000;
  int reps = 20;
  std::uint64_t seed = 0x5eedull;
  double max_overhead = 0.02;
  bool advisory = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) n = std::atoi(argv[++i]);
    if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) trials = std::atoi(argv[++i]);
    if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) reps = std::atoi(argv[++i]);
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    }
    if (std::strcmp(argv[i], "--max-overhead") == 0 && i + 1 < argc) {
      max_overhead = std::atof(argv[++i]);
    }
    if (std::strcmp(argv[i], "--advisory") == 0) advisory = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  }

  campaign::CampaignSpec spec;
  spec.units.push_back(
      campaign::Unit::protocol("cycle-cover", *campaign::make_protocol("cycle-cover")));
  spec.ns = {n};
  spec.trials = trials;
  spec.engines.push_back(*campaign::make_engine("census"));
  spec.base_seed = seed;

  std::cout << "=== Telemetry overhead: cycle-cover/census, n = " << n << ", " << trials
            << " trials, " << reps << " interleaved reps per side ===\n\n";

  // One campaign run, optionally under the full telemetry stack. The
  // telemetry-on side is the worst realistic case: a short heartbeat
  // period, the default trace sampling, and a live heartbeat stream
  // (into memory, so the comparison measures instrumentation, not disk).
  const auto run_once = [&](bool telemetry_on) -> Sample {
    telemetry::Registry registry;
    telemetry::Tracer tracer;
    std::ostringstream heartbeat;
    telemetry::CampaignMonitor::Options monitor_options;
    monitor_options.period_seconds = 0.05;
    monitor_options.heartbeat = &heartbeat;
    monitor_options.progress_stderr = false;
    monitor_options.registry = &registry;
    telemetry::CampaignMonitor monitor(monitor_options);

    campaign::RunOptions options;
    options.threads = 1;  // single-thread: overhead is not hidden by idle cores
    if (telemetry_on) {
      tracer.set_sample_every(16);
      telemetry::set_registry(&registry);
      telemetry::set_tracer(&tracer);
      options.monitor = &monitor;
    }
    const auto wall_start = std::chrono::steady_clock::now();
    const double cpu_start = process_cpu_seconds();
    const campaign::CampaignResult result = campaign::run(spec, options);
    Sample sample;
    sample.cpu_seconds = process_cpu_seconds() - cpu_start;
    sample.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
    telemetry::set_registry(nullptr);
    telemetry::set_tracer(nullptr);
    if (result.total_failures > 0) {
      std::cerr << "FAIL: " << result.total_failures << " trial failures in the workload\n";
      std::exit(1);
    }
    return sample;
  };

  // Warm-up both sides: page in code, data, and each side's thread_local
  // caches before anything scores.
  run_once(false);
  run_once(true);

  Sample total_off;
  Sample total_on;
  for (int r = 0; r < reps; ++r) {
    const Sample off = run_once(false);
    const Sample on = run_once(true);
    total_off.cpu_seconds += off.cpu_seconds;
    total_off.wall_seconds += off.wall_seconds;
    total_on.cpu_seconds += on.cpu_seconds;
    total_on.wall_seconds += on.wall_seconds;
  }

  const double total_trials = static_cast<double>(trials) * reps;
  const double off_rate =
      total_off.wall_seconds > 0.0 ? total_trials / total_off.wall_seconds : 0.0;
  const double on_rate = total_on.wall_seconds > 0.0 ? total_trials / total_on.wall_seconds : 0.0;
  const double overhead =
      total_off.cpu_seconds > 0.0 ? total_on.cpu_seconds / total_off.cpu_seconds - 1.0 : 0.0;

  TextTable table({"config", "total cpu s", "total wall s", "trials/s"});
  table.add_row({"telemetry off", TextTable::num(total_off.cpu_seconds, 4),
                 TextTable::num(total_off.wall_seconds, 4), TextTable::num(off_rate, 1)});
  table.add_row({"telemetry on", TextTable::num(total_on.cpu_seconds, 4),
                 TextTable::num(total_on.wall_seconds, 4), TextTable::num(on_rate, 1)});
  std::cout << table << '\n';
  std::cout << "telemetry overhead: " << TextTable::num(100.0 * overhead, 2) << "% (gate: <= "
            << TextTable::num(100.0 * max_overhead, 1) << "%)\n";

  if (!json_path.empty()) {
    std::ofstream file(json_path);
    file << "{\n  \"bench\": \"telemetry_overhead\",\n"
         << "  \"n\": " << n << ",\n"
         << "  \"trials\": " << trials << ",\n"
         << "  \"reps\": " << reps << ",\n"
         << "  \"total_cpu_seconds_off\": " << total_off.cpu_seconds << ",\n"
         << "  \"total_cpu_seconds_on\": " << total_on.cpu_seconds << ",\n"
         << "  \"throughput\": {\n"
         << "    \"telemetry_off_trials_per_second\": " << off_rate << ",\n"
         << "    \"telemetry_on_trials_per_second\": " << on_rate << "\n  },\n"
         << "  \"overhead\": {\n"
         << "    \"telemetry_fraction\": " << overhead << "\n  }\n}\n";
    file.flush();
    if (!file) {
      std::cerr << "failed to write " << json_path << '\n';
      return 1;
    }
    std::cout << "wrote " << json_path << '\n';
  }

  if (max_overhead > 0.0 && overhead > max_overhead) {
    std::cout << (advisory ? "NOTE" : "FAIL") << ": telemetry overhead "
              << TextTable::num(100.0 * overhead, 2) << "% exceeds the "
              << TextTable::num(100.0 * max_overhead, 1) << "% gate\n";
    return advisory ? 0 : 1;
  }
  if (max_overhead > 0.0) {
    std::cout << "PASS: telemetry overhead is within "
              << TextTable::num(100.0 * max_overhead, 1) << "%\n";
  }
  return 0;
}
