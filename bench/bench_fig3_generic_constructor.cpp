// Reproduces Figures 3-8 (Section 6): the generic constructors.
//
//  * Figure 3 (the accept/reject loop) + Figure 4 (U/D matching) + Figure 6
//    (counter-addressed reads/writes): Theorem 14's linear-waste
//    constructor, run for several decidable languages; we report draw
//    passes (rejection-loop iterations), useful space, and language
//    membership of the output.
//  * Figure 5 (head direction marks): the line-tape TM execution, with the
//    interaction overhead of distributed head movement quantified.
//  * Figures 7-8 ((U, D, M) partition): the Theorem 15 substrate.
//  * Theorem 16: the logarithmic-waste constructor.
#include "analysis/experiment.hpp"
#include "generic/linear_waste.hpp"
#include "generic/log_waste.hpp"
#include "generic/no_waste.hpp"
#include "protocols/protocols.hpp"
#include "tm/line_tape.hpp"
#include "util/table.hpp"

#include <iostream>

int main() {
  using namespace netcons;

  std::cout << "=== Figure 3/4/6 + Theorem 14: linear-waste generic constructor ===\n"
            << "pipeline: partition -> spanning line on U -> draw G(n/2, 1/2) on D\n"
            << "          -> decide L on the line -> accept (release) or redraw\n\n";
  {
    TextTable table({"language", "n", "useful", "draw passes", "steps", "output in L?"});
    const std::vector<tm::GraphLanguage> langs{
        tm::even_edges_language(), tm::connected_language(), tm::has_triangle_language()};
    for (const auto& lang : langs) {
      for (int n : {8, 12, 16}) {
        generic::LinearWasteConstructor ctor(lang, n, 0xF163ull + static_cast<unsigned>(n));
        const auto report = ctor.run_until_stable(2'000'000'000ULL);
        table.add_row({lang.name, TextTable::integer(static_cast<std::uint64_t>(n)),
                       TextTable::integer(static_cast<std::uint64_t>(report.output.order())),
                       TextTable::integer(static_cast<std::uint64_t>(report.draw_passes)),
                       TextTable::integer(report.steps_executed),
                       !report.stabilized        ? "TIMEOUT"
                       : lang.decide(report.output) ? "yes"
                                                     : "NO"});
      }
    }
    std::cout << table << '\n';
  }

  std::cout << "=== Figure 5: TM head simulation on a constructed line ===\n";
  {
    TextTable table({"machine", "input", "TM steps", "interactions", "overhead", "accepted"});
    struct Case {
      tm::TuringMachine machine;
      std::string input;
    };
    for (auto& [machine, input] : {Case{tm::binary_increment(), "010110"},
                                   Case{tm::palindrome(), "0110110"},
                                   Case{tm::zeros_then_ones(), "000111"}}) {
      std::vector<int> cells;
      for (int i = 0; i < static_cast<int>(input.size()) + 2; ++i) cells.push_back(i);
      tm::LineTape tape(machine, cells, input);
      Rng rng(0xF164ull);
      const int n = static_cast<int>(cells.size()) + 4;
      std::uint64_t steps = 0;
      while (!tape.halted() && steps < 50'000'000) {
        const int u = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
        int v = static_cast<int>(rng.below(static_cast<std::uint64_t>(n - 1)));
        if (v >= u) ++v;
        tape.on_interaction(u, v);
        ++steps;
      }
      const double tm_steps =
          static_cast<double>(std::max<std::uint64_t>(1, tape.tm_steps()));
      table.add_row({machine.name, input, TextTable::integer(tape.tm_steps()),
                     TextTable::integer(steps),
                     TextTable::num(static_cast<double>(steps) / tm_steps),
                     tape.accepted() ? "yes" : "no"});
    }
    std::cout << table << '\n';
  }

  std::cout << "=== Figures 7/8 + Theorem 15: (U, D, M) partition substrate ===\n";
  {
    const auto spec = protocols::partition_udm();
    TextTable table({"n", "triples", "waste", "steps"});
    for (int n : {9, 15, 30, 60}) {
      Simulator sim(spec.protocol, n, 0xF165ull);
      Simulator::StabilityOptions options;
      options.max_steps = spec.max_steps(n);
      options.certificate = spec.certificate;
      const auto report = sim.run_until_stable(options);
      const int qu = sim.world().census(*spec.protocol.state_by_name("qu"));
      table.add_row({TextTable::integer(static_cast<std::uint64_t>(n)),
                     TextTable::integer(static_cast<std::uint64_t>(qu)),
                     TextTable::integer(static_cast<std::uint64_t>(n - 3 * qu)),
                     report.stabilized ? TextTable::integer(report.convergence_step)
                                       : "TIMEOUT"});
    }
    std::cout << table << '\n';
  }

  std::cout << "=== Theorem 16: logarithmic-waste constructor ===\n";
  {
    TextTable table({"language", "n", "useful", "memory line", "draw passes", "output in L?"});
    const std::vector<tm::GraphLanguage> langs{tm::even_edges_language(),
                                               tm::triangle_free_language()};
    for (const auto& lang : langs) {
      for (int n : {10, 14}) {
        generic::LogWasteConstructor ctor(lang, n, 0xF166ull + static_cast<unsigned>(n));
        const auto report = ctor.run_until_stable(2'000'000'000ULL);
        table.add_row({lang.name, TextTable::integer(static_cast<std::uint64_t>(n)),
                       TextTable::integer(static_cast<std::uint64_t>(report.useful_space)),
                       TextTable::integer(static_cast<std::uint64_t>(report.memory_length)),
                       TextTable::integer(static_cast<std::uint64_t>(report.draw_passes)),
                       !report.stabilized        ? "TIMEOUT"
                       : lang.decide(report.output) ? "yes"
                                                     : "NO"});
      }
    }
    std::cout << table << '\n';
  }

  std::cout << "=== Theorem 17: no-waste constructor (TM lives inside the output) ===\n";
  {
    TextTable table({"language", "n", "useful", "TM subgraph", "draw passes", "output in L?"});
    const std::vector<tm::GraphLanguage> langs{tm::even_edges_language(),
                                               tm::has_triangle_language()};
    for (const auto& lang : langs) {
      for (int n : {10, 14}) {
        generic::NoWasteConstructor ctor(lang, n, 0xF167ull + static_cast<unsigned>(n));
        const auto report = ctor.run_until_stable(2'000'000'000ULL);
        table.add_row({lang.name, TextTable::integer(static_cast<std::uint64_t>(n)),
                       TextTable::integer(static_cast<std::uint64_t>(report.useful_space)),
                       TextTable::integer(static_cast<std::uint64_t>(report.tm_subgraph_order)),
                       TextTable::integer(static_cast<std::uint64_t>(report.draw_passes)),
                       !report.stabilized        ? "TIMEOUT"
                       : lang.decide(report.output) ? "yes"
                                                     : "NO"});
      }
    }
    std::cout << table << "useful == n throughout: the logarithmic TM subgraph is part of\n"
              << "the constructed network, not discarded scaffolding.\n";
  }
  return 0;
}
