// bench_serve_throughput: the serving hot path, measured end to end.
//
// Stands up the real serving stack in-process — telemetry Registry,
// campaign::Scheduler over a scratch cache, serve::Api, serve::HttpServer
// on a loopback port — warms the cache with one tiny campaign, then drives
// it with concurrent clients issuing the cache-hit request pair the
// daemon exists to make cheap:
//
//   POST /v1/campaigns   (identical spec -> fingerprint cache hit, 200)
//   GET  /v1/campaigns/{id}/summary   (file-streamed artifact)
//
// Reported as sustained requests/second across all clients. Correctness
// is enforced, not assumed: every POST must answer 200 with
// "cached": true and every summary body must be byte-identical to the
// first one fetched; any deviation fails the run (and the ctest entry).
//
// Usage: bench_serve_throughput [--clients N] [--requests M]
//                               [--min-rps R] [--json FILE]
//
// --min-rps R fails the run when the sustained rate drops below R.
// --json FILE writes the machine-readable metrics consumed by the nightly
// bench workflow's regression gate (tools/compare_bench.py, family
// "serve_throughput"): *_rps values are higher-is-better.
#include "campaign/scheduler.hpp"
#include "campaign/spec_cli.hpp"
#include "serve/api.hpp"
#include "serve/http.hpp"
#include "telemetry/metrics.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace netcons;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Deletes the scratch cache on every exit path, not just the happy one.
struct ScratchDir {
  std::filesystem::path path;
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

constexpr const char* kSpecBody =
    "{\"protocols\": [\"cycle-cover\"], \"ns\": [24], \"trials\": 8, \"seed\": 7}";

}  // namespace

int main(int argc, char** argv) {
  int clients = 8;
  int requests = 200;  // request pairs per client
  double min_rps = 0.0;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      clients = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--min-rps") == 0 && i + 1 < argc) {
      min_rps = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  if (clients < 1) clients = 1;
  if (requests < 1) requests = 1;

  // Per-process scratch cache: concurrent invocations must not collide.
  const ScratchDir scratch{std::filesystem::temp_directory_path() /
                           ("netcons_bench_serve_" +
                            std::to_string(static_cast<long>(::getpid())))};

  telemetry::Registry registry;
  campaign::Scheduler::Options scheduler_options;
  scheduler_options.cache_dir = scratch.path.string();
  scheduler_options.registry = &registry;
  campaign::Scheduler scheduler(scheduler_options);
  serve::Api api(scheduler, registry);

  serve::HttpServer::Options server_options;
  server_options.threads = clients < 8 ? clients : 8;
  serve::HttpServer server(server_options, [&api](const serve::HttpRequest& request) {
    return api.handle(request);
  });
  server.start();
  const int port = server.port();

  // --- warm: run the spec once so every timed request is a cache hit ------
  const auto warm_start = std::chrono::steady_clock::now();
  const serve::FetchResult accepted =
      serve::http_fetch("127.0.0.1", port, "POST", "/v1/campaigns", kSpecBody);
  if (accepted.status != 200 && accepted.status != 202) {
    std::cerr << "warm-up submit failed: " << accepted.status << " " << accepted.body;
    return 1;
  }
  const std::string id_marker = "\"id\": \"";
  const std::size_t id_at = accepted.body.find(id_marker);
  if (id_at == std::string::npos) {
    std::cerr << "warm-up submit returned no id: " << accepted.body;
    return 1;
  }
  std::string id = accepted.body.substr(id_at + id_marker.size());
  id = id.substr(0, id.find('"'));
  scheduler.wait(id);
  const double warm_seconds = seconds_since(warm_start);

  const std::string summary_target = "/v1/campaigns/" + id + "/summary";
  const serve::FetchResult reference = serve::http_fetch("127.0.0.1", port, "GET", summary_target);
  if (reference.status != 200 || reference.body.empty()) {
    std::cerr << "warm-up summary fetch failed: " << reference.status << "\n";
    return 1;
  }
  std::cout << "warm-up: campaign " << id << " computed in " << warm_seconds << " s, summary "
            << reference.body.size() << " bytes\n";

  // --- timed: concurrent clients hammer the cache-hit pair ----------------
  std::atomic<long> failures{0};
  const auto bench_start = std::chrono::steady_clock::now();
  std::vector<std::thread> drivers;
  drivers.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    drivers.emplace_back([&, c]() {
      for (int r = 0; r < requests; ++r) {
        try {
          const serve::FetchResult hit =
              serve::http_fetch("127.0.0.1", port, "POST", "/v1/campaigns", kSpecBody);
          if (hit.status != 200 || hit.body.find("\"cached\": true") == std::string::npos) {
            failures.fetch_add(1);
            continue;
          }
          const serve::FetchResult summary =
              serve::http_fetch("127.0.0.1", port, "GET", summary_target);
          if (summary.status != 200 || summary.body != reference.body) failures.fetch_add(1);
        } catch (const std::exception& error) {
          failures.fetch_add(1);
          if (c == 0 && r == 0) std::cerr << "client error: " << error.what() << "\n";
        }
      }
    });
  }
  for (std::thread& driver : drivers) driver.join();
  const double bench_seconds = seconds_since(bench_start);
  server.stop();

  const long total_requests = 2L * clients * requests;  // POST + GET per iteration
  const double rps = bench_seconds > 0 ? static_cast<double>(total_requests) / bench_seconds : 0;
  const double mean_ms =
      total_requests > 0 ? bench_seconds * 1000.0 * clients / static_cast<double>(total_requests)
                         : 0;
  const bool ok = failures.load() == 0 && (min_rps <= 0.0 || rps >= min_rps);

  std::cout << clients << " clients x " << requests << " request pairs: " << total_requests
            << " requests in " << bench_seconds << " s (" << rps << " req/s, mean "
            << mean_ms << " ms/request, " << failures.load() << " failures)\n";
  if (min_rps > 0.0 && rps < min_rps) {
    std::cerr << "FAIL: " << rps << " req/s below the required " << min_rps << "\n";
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    // warm_campaign_seconds stays outside the gated "serve_throughput"
    // object: it times a millisecond-scale campaign, far too noisy for the
    // nightly relative gate, but worth recording.
    out << "{\n  \"bench\": \"serve_throughput\",\n"
        << "  \"clients\": " << clients << ",\n"
        << "  \"requests\": " << total_requests << ",\n"
        << "  \"warm_campaign_seconds\": " << warm_seconds << ",\n"
        << "  \"serve_throughput\": {\n"
        << "    \"cache_hit_rps\": " << rps << ",\n"
        << "    \"mean_request_ms\": " << mean_ms << "\n  }\n}\n";
    out.flush();
    if (!out) {
      std::cerr << "failed to write " << json_path << '\n';
      return 1;
    }
    std::cout << "wrote " << json_path << '\n';
  }

  return ok ? 0 : 1;
}
