// bench_campaign_scaling: the campaign engine's two contracts, measured.
//
//  1. Determinism — the same 500-trial sweep at 1 thread and at N threads
//     produces bit-identical aggregate statistics (mean/variance/min/max/
//     median compared with exact equality).
//  2. Scaling — on a machine with >= 4 cores the parallel run must be
//     >= 3x faster than the serial path (the acceptance bar for the
//     engine; on smaller machines the speedup is reported but not judged).
//
// Exit status: nonzero if determinism fails, or if the machine has >= 4
// cores and the speedup is < 3x. With --advisory the speedup is reported
// but never failed on (used by the ctest registration, where shared CI
// runners make wall-clock gates flaky); determinism is always enforced.
//
// Usage: bench_campaign_scaling [trials_per_point] [--advisory]
#include "campaign/campaign.hpp"
#include "campaign/registry.hpp"
#include "campaign/result_sink.hpp"
#include "util/table.hpp"

#include <cstdlib>
#include <cstring>
#include <iostream>

using namespace netcons;

int main(int argc, char** argv) {
  int trials = 100;  // per grid point; 5 points => 500-trial sweep
  bool advisory = false;  // report the speedup but never fail on it
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--advisory") == 0) {
      advisory = true;
    } else {
      trials = std::atoi(argv[i]);
    }
  }

  campaign::CampaignSpec spec;
  spec.units.push_back(
      campaign::Unit::protocol("cycle-cover", *campaign::make_protocol("cycle-cover")));
  spec.ns = {16, 24, 32, 48, 64};
  spec.trials = trials;
  spec.base_seed = 0xCA3Dull;

  const int hw_threads = campaign::resolve_threads(0);
  std::cout << "campaign: cycle-cover x ns{16,24,32,48,64} x " << trials
            << " trials = " << spec.ns.size() * static_cast<std::size_t>(trials)
            << " trials total; hardware threads: " << hw_threads << "\n\n";

  campaign::RunOptions serial;
  serial.threads = 1;
  const campaign::CampaignResult serial_result = campaign::run(spec, serial);

  campaign::RunOptions parallel;
  parallel.threads = hw_threads;
  const campaign::CampaignResult parallel_result = campaign::run(spec, parallel);

  // --- contract 1: bit-identical aggregates -------------------------------
  bool identical = serial_result.points.size() == parallel_result.points.size();
  if (identical) {
    for (std::size_t i = 0; i < serial_result.points.size(); ++i) {
      identical = identical && campaign::summarize(serial_result.points[i]) ==
                                   campaign::summarize(parallel_result.points[i]);
    }
  }

  TextTable table({"threads", "jobs", "wall s", "mean(n=64)"});
  for (const auto* r : {&serial_result, &parallel_result}) {
    table.add_row({TextTable::integer(static_cast<std::uint64_t>(r->threads)),
                   TextTable::integer(static_cast<std::uint64_t>(r->jobs)),
                   TextTable::num(r->wall_seconds),
                   TextTable::num(r->points.back().convergence_steps.mean())});
  }
  std::cout << table;

  const double speedup = parallel_result.wall_seconds > 0.0
                             ? serial_result.wall_seconds / parallel_result.wall_seconds
                             : 0.0;
  std::cout << "\naggregates bit-identical across thread counts: "
            << (identical ? "yes" : "NO") << '\n'
            << "speedup (" << hw_threads << " threads vs serial): " << speedup << "x\n";

  bool ok = identical;
  if (hw_threads >= 4) {
    const bool fast_enough = speedup >= 3.0;
    std::cout << ">= 3x on >= 4 cores: " << (fast_enough ? "PASS" : "FAIL")
              << (advisory ? " (advisory: not enforced)" : "") << '\n';
    if (!advisory) ok = ok && fast_enough;
  } else {
    std::cout << "(fewer than 4 hardware threads: speedup reported, not judged)\n";
  }
  return ok ? 0 : 1;
}
