// bench_campaign_scaling: the campaign engine's two contracts, measured.
//
//  1. Determinism — the same 500-trial sweep at 1 thread and at N threads
//     produces bit-identical aggregate statistics (mean/variance/min/max/
//     median compared with exact equality).
//  2. Scaling — on a machine with >= 4 cores the parallel run must be
//     >= 3x faster than the serial path (the acceptance bar for the
//     engine; on smaller machines the speedup is reported but not judged).
//
// Exit status: nonzero if determinism fails, or if the machine has >= 4
// cores and the speedup is < 3x. With --advisory the speedup is reported
// but never failed on (used by the ctest registration, where shared CI
// runners make wall-clock gates flaky); determinism is always enforced.
//
// Usage: bench_campaign_scaling [trials_per_point] [--advisory] [--json FILE]
//
// --json FILE writes the machine-readable throughput metrics consumed by
// the nightly bench workflow's regression gate (tools/compare_bench.py):
// every value under "throughput" is higher-is-better.
#include "campaign/campaign.hpp"
#include "campaign/registry.hpp"
#include "campaign/result_sink.hpp"
#include "util/table.hpp"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

using namespace netcons;

int main(int argc, char** argv) {
  int trials = 100;  // per grid point; 5 points => 500-trial sweep
  bool advisory = false;  // report the speedup but never fail on it
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--advisory") == 0) {
      advisory = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      trials = std::atoi(argv[i]);
    }
  }

  campaign::CampaignSpec spec;
  spec.units.push_back(
      campaign::Unit::protocol("cycle-cover", *campaign::make_protocol("cycle-cover")));
  spec.ns = {16, 24, 32, 48, 64};
  spec.trials = trials;
  spec.base_seed = 0xCA3Dull;

  const int hw_threads = campaign::resolve_threads(0);
  std::cout << "campaign: cycle-cover x ns{16,24,32,48,64} x " << trials
            << " trials = " << spec.ns.size() * static_cast<std::size_t>(trials)
            << " trials total; hardware threads: " << hw_threads << "\n\n";

  campaign::RunOptions serial;
  serial.threads = 1;
  const campaign::CampaignResult serial_result = campaign::run(spec, serial);

  campaign::RunOptions parallel;
  parallel.threads = hw_threads;
  const campaign::CampaignResult parallel_result = campaign::run(spec, parallel);

  // --- contract 1: bit-identical aggregates -------------------------------
  bool identical = serial_result.points.size() == parallel_result.points.size();
  if (identical) {
    for (std::size_t i = 0; i < serial_result.points.size(); ++i) {
      identical = identical && campaign::summarize(serial_result.points[i]) ==
                                   campaign::summarize(parallel_result.points[i]);
    }
  }

  TextTable table({"threads", "jobs", "wall s", "mean(n=64)"});
  for (const auto* r : {&serial_result, &parallel_result}) {
    table.add_row({TextTable::integer(static_cast<std::uint64_t>(r->threads)),
                   TextTable::integer(static_cast<std::uint64_t>(r->jobs)),
                   TextTable::num(r->wall_seconds),
                   TextTable::num(r->points.back().convergence_steps.mean())});
  }
  std::cout << table;

  const double speedup = parallel_result.wall_seconds > 0.0
                             ? serial_result.wall_seconds / parallel_result.wall_seconds
                             : 0.0;
  std::cout << "\naggregates bit-identical across thread counts: "
            << (identical ? "yes" : "NO") << '\n'
            << "speedup (" << hw_threads << " threads vs serial): " << speedup << "x\n";

  if (!json_path.empty()) {
    const double total = static_cast<double>(serial_result.total_trials);
    std::ofstream file(json_path);
    file << "{\n  \"bench\": \"campaign_scaling\",\n"
         << "  \"threads\": " << hw_threads << ",\n"
         << "  \"trials\": " << serial_result.total_trials << ",\n"
         << "  \"speedup\": " << speedup << ",\n"
         << "  \"throughput\": {\n"
         << "    \"serial_trials_per_second\": "
         << (serial_result.wall_seconds > 0 ? total / serial_result.wall_seconds : 0.0)
         << ",\n"
         << "    \"parallel_trials_per_second\": "
         << (parallel_result.wall_seconds > 0 ? total / parallel_result.wall_seconds : 0.0)
         << "\n  }\n}\n";
    file.flush();
    if (!file) {
      std::cerr << "failed to write " << json_path << '\n';
      return 1;
    }
    std::cout << "wrote " << json_path << '\n';
  }

  bool ok = identical;
  if (hw_threads >= 4) {
    const bool fast_enough = speedup >= 3.0;
    std::cout << ">= 3x on >= 4 cores: " << (fast_enough ? "PASS" : "FAIL")
              << (advisory ? " (advisory: not enforced)" : "") << '\n';
    if (!advisory) ok = ok && fast_enough;
  } else {
    std::cout << "(fewer than 4 hardware threads: speedup reported, not judged)\n";
  }
  return ok ? 0 : 1;
}
