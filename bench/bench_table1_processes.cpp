// Reproduces Table 1: expected time to convergence of the seven fundamental
// probabilistic processes of Section 3.3 (Propositions 1-7).
//
// For each process we measure the mean number of scheduler steps to
// completion over many trials and sizes, print it against the closed-form
// expectation (exact where the proposition pins it down), and fit the
// power-law exponent to confirm the Theta-shape.
#include "analysis/experiment.hpp"
#include "processes/processes.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

#include <cstdlib>
#include <iostream>

namespace {

int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value ? std::atoi(value) : fallback;
}

}  // namespace

int main() {
  using namespace netcons;
  const int trials = env_int("NETCONS_TRIALS", 25);
  const std::vector<int> ns{16, 24, 32, 48, 64, 96};

  std::cout << "=== Table 1: basic probabilistic processes (uniform random scheduler) ===\n"
            << "steps are sequential interactions; mean over " << trials
            << " trials; theory = closed form of Propositions 1-7\n\n";

  TextTable summary({"process", "paper Theta", "fitted exponent", "R^2", "mean/theory @ n=64"});
  int total_failures = 0;

  for (const auto& spec : all_processes()) {
    TextTable table({"n", "mean steps", "ci95", "theory", "mean/theory"});
    const auto points = analysis::sweep_process(spec, ns, trials, 0x71B1ull);
    double ratio_at_64 = 0;
    for (const auto& p : points) {
      if (p.failures > 0) {
        std::cerr << "WARNING: " << spec.name << " n=" << p.n << ": " << p.failures << '/'
                  << p.trials << " trials failed (timeout or error); stats cover the remainder\n";
        if (!p.first_error.empty()) {
          std::cerr << "         first error: " << p.first_error << '\n';
        }
        total_failures += p.failures;
      }
      const double theory_value = spec.expected_steps(static_cast<std::uint64_t>(p.n));
      const double ratio = p.convergence_steps.mean() / theory_value;
      if (p.n == 64) ratio_at_64 = ratio;
      table.add_row({TextTable::integer(static_cast<std::uint64_t>(p.n)),
                     TextTable::num(p.convergence_steps.mean()),
                     TextTable::num(p.convergence_steps.ci95_halfwidth()),
                     TextTable::num(theory_value), TextTable::num(ratio, 3)});
    }
    const LinearFit fit = analysis::fit_exponent(points);
    std::cout << "--- " << spec.name << "  [" << spec.theta << "]"
              << (spec.expectation_exact ? "  (exact expectation)" : "  (shape reference)")
              << " ---\n"
              << table << "fitted steps ~ n^" << TextTable::num(fit.slope, 2)
              << "  (R^2 = " << TextTable::num(fit.r_squared, 4) << ")\n\n";
    summary.add_row({spec.name, spec.theta, TextTable::num(fit.slope, 2),
                     TextTable::num(fit.r_squared, 4), TextTable::num(ratio_at_64, 3)});
  }

  std::cout << "=== Table 1 summary ===\n" << summary;
  return total_failures == 0 ? 0 : 1;
}
