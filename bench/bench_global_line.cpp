// Section 4 focus bench: the spanning-line race.
//
//   * Protocol 1 (Simple-Global-Line, 5 states): Omega(n^4), O(n^5)
//   * Protocol 2 (Fast-Global-Line, 9 states): O(n^3)
//   * Protocol 10 (Faster-Global-Line, 6 states): open question
//
// We measure all three across a shared n-sweep, report fitted exponents and
// the crossover, and address the paper's Section 7 open question with data:
// does follower-dissolution beat the O(n^3) protocol?
#include "analysis/experiment.hpp"
#include "protocols/protocols.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

#include <cmath>
#include <cstdlib>
#include <iostream>

namespace {
int env_int(const char* name, int fallback) {
  const char* value = std::getenv(name);
  return value ? std::atoi(value) : fallback;
}
}  // namespace

int main() {
  using namespace netcons;
  const int trials = env_int("NETCONS_TRIALS", 8);

  struct Entry {
    ProtocolSpec spec;
    std::vector<int> ns;
    std::vector<analysis::MeasurePoint> points;
  };
  std::vector<Entry> entries;
  entries.push_back({protocols::simple_global_line(), {8, 12, 16, 24, 32, 48}, {}});
  entries.push_back({protocols::fast_global_line(), {8, 12, 16, 24, 32, 48, 64, 96}, {}});
  entries.push_back({protocols::faster_global_line(), {8, 12, 16, 24, 32, 48, 64, 96}, {}});
  // Section 7's pre-elected-leader baseline: Theta(n^2 log n), the target
  // for any future composition of leader election with line construction.
  entries.push_back({protocols::preelected_line(), {8, 12, 16, 24, 32, 48, 64, 96}, {}});

  std::cout << "=== Section 4: spanning line constructors (" << trials << " trials/point) ===\n\n";
  for (auto& entry : entries) {
    entry.points = analysis::sweep(entry.spec, entry.ns, trials, 0x61D1ull);
    TextTable table({"n", "mean steps", "ci95", "mean/n^3", "mean/n^4"});
    for (const auto& p : entry.points) {
      const double n3 = std::pow(static_cast<double>(p.n), 3.0);
      const double n4 = std::pow(static_cast<double>(p.n), 4.0);
      table.add_row({TextTable::integer(static_cast<std::uint64_t>(p.n)),
                     TextTable::num(p.convergence_steps.mean()),
                     TextTable::num(p.convergence_steps.ci95_halfwidth()),
                     TextTable::num(p.convergence_steps.mean() / n3, 4),
                     TextTable::num(p.convergence_steps.mean() / n4, 5)});
    }
    const LinearFit fit = analysis::fit_exponent(entry.points);
    std::cout << "--- " << entry.spec.protocol.name() << " (|Q| = "
              << entry.spec.protocol.state_count() << ") ---\n"
              << table << "fitted steps ~ n^" << TextTable::num(fit.slope, 2)
              << " (R^2 = " << TextTable::num(fit.r_squared, 4) << ")\n\n";
  }

  // Head-to-head at shared sizes.
  TextTable head({"n", "Simple (P1)", "Fast (P2)", "Faster (P10)", "Pre-elected", "winner"});
  for (std::size_t i = 0; i < entries[0].ns.size(); ++i) {
    const int n = entries[0].ns[i];
    double best = 1e300;
    std::string winner;
    std::vector<std::string> row{TextTable::integer(static_cast<std::uint64_t>(n))};
    for (const auto& entry : entries) {
      double mean = -1;
      for (const auto& p : entry.points) {
        if (p.n == n) mean = p.convergence_steps.mean();
      }
      row.push_back(mean < 0 ? "-" : TextTable::num(mean));
      if (mean >= 0 && mean < best) {
        best = mean;
        winner = entry.spec.protocol.name();
      }
    }
    row.push_back(winner);
    head.add_row(row);
  }
  std::cout << "=== head-to-head (mean steps) ===\n"
            << head
            << "\nReading: Protocol 1's small constants win below n~40; Protocol 2's O(n^3)\n"
            << "asymptotics take over beyond; Protocol 10 (the paper's open question)\n"
            << "dominates both throughout this range, supporting the conjecture that\n"
            << "follower-dissolution is an asymptotic improvement.\n";
  return 0;
}
