// google-benchmark microbenchmarks of the simulation hot loop: raw step
// throughput, quiescence scan cost, and output-graph extraction. These keep
// the engine honest -- the scientific benches above report step *counts*,
// and this binary reports how fast those steps execute.
#include "core/simulator.hpp"
#include "graph/predicates.hpp"
#include "protocols/protocols.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace netcons;

void BM_StepThroughputStar(benchmark::State& state) {
  const auto spec = protocols::global_star();
  Simulator sim(spec.protocol, static_cast<int>(state.range(0)), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.step());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StepThroughputStar)->Arg(64)->Arg(256)->Arg(1024);

void BM_StepThroughputKrc(benchmark::State& state) {
  const auto spec = protocols::krc(3);
  Simulator sim(spec.protocol, static_cast<int>(state.range(0)), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.step());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StepThroughputKrc)->Arg(64)->Arg(256);

void BM_QuiescenceScan(benchmark::State& state) {
  const auto spec = protocols::global_star();
  Simulator sim(spec.protocol, static_cast<int>(state.range(0)), 42);
  sim.run(10000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.is_quiescent());
  }
}
BENCHMARK(BM_QuiescenceScan)->Arg(64)->Arg(256)->Arg(1024);

void BM_OutputGraphExtraction(benchmark::State& state) {
  const auto spec = protocols::cycle_cover();
  Simulator sim(spec.protocol, static_cast<int>(state.range(0)), 42);
  sim.run(10000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.world().output_graph(spec.protocol));
  }
}
BENCHMARK(BM_OutputGraphExtraction)->Arg(64)->Arg(256);

void BM_FullStarConvergence(benchmark::State& state) {
  const auto spec = protocols::global_star();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Simulator sim(spec.protocol, static_cast<int>(state.range(0)), seed++);
    Simulator::StabilityOptions options;
    options.max_steps = spec.max_steps(static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(sim.run_until_stable(options));
  }
}
BENCHMARK(BM_FullStarConvergence)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace
