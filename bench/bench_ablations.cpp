// Ablations of the design choices DESIGN.md calls out:
//
//  1. Degree-doubling (Section 7): protocol size Theta(d) vs constructed
//     degree 2^d -- the "states vs degree" decoupling.
//  2. Scheduler sensitivity: the same protocol under the uniform random
//     scheduler vs a fair round-based permutation scheduler vs a
//     stale-biased scheduler. Correctness is invariant; timing shifts.
//  3. Replication cost vs input size: Theta(n^4 log n) dominated by the
//     unique-leader copying phase.
//  4. kRC state growth: 2(k+1) states buys degree-k connectivity.
#include "analysis/experiment.hpp"
#include "protocols/protocols.hpp"
#include "sched/schedulers.hpp"
#include "util/table.hpp"

#include <iostream>
#include <memory>

int main() {
  using namespace netcons;

  std::cout << "=== Ablation 1: degree-doubling -- states vs constructed degree ===\n";
  {
    TextTable table({"d", "states", "target degree 2^d", "n", "steps", "ok"});
    for (int d : {1, 2, 3, 4, 5}) {
      const auto spec = protocols::degree_doubling(d);
      const int n = (1 << d) + 6;
      const auto r = analysis::run_trial(spec, n, 0xAB1Aull);
      table.add_row({TextTable::integer(static_cast<std::uint64_t>(d)),
                     TextTable::integer(static_cast<std::uint64_t>(spec.protocol.state_count())),
                     TextTable::integer(std::uint64_t{1} << d),
                     TextTable::integer(static_cast<std::uint64_t>(n)),
                     TextTable::integer(r.convergence_step),
                     r.stabilized && r.target_ok ? "yes" : "NO"});
    }
    std::cout << table << "states grow linearly in d while the degree doubles: the maximum\n"
              << "degree of the target is not a lower bound on protocol size (Section 7).\n\n";
  }

  std::cout << "=== Ablation 2: scheduler sensitivity (Global-Star, n = 24) ===\n";
  {
    TextTable table({"scheduler", "mean steps (10 seeds)", "all stabilized to star"});
    for (int which = 0; which < 3; ++which) {
      const auto spec = protocols::global_star();
      RunningStats stats;
      bool all_ok = true;
      for (int seed = 0; seed < 10; ++seed) {
        std::unique_ptr<Scheduler> sched;
        std::string name;
        if (which == 0) {
          sched = std::make_unique<UniformRandomScheduler>();
        } else if (which == 1) {
          sched = std::make_unique<RandomPermutationScheduler>();
        } else {
          sched = std::make_unique<StaleBiasedScheduler>(0.5);
        }
        Simulator sim(spec.protocol, 24, trial_seed(0xAB2Bull, static_cast<std::uint64_t>(seed)),
                      std::move(sched));
        Simulator::StabilityOptions options;
        options.max_steps = spec.max_steps(24);
        const auto report = sim.run_until_stable(options);
        all_ok = all_ok && report.stabilized &&
                 spec.target(sim.world().output_graph(spec.protocol));
        stats.add(static_cast<double>(report.convergence_step));
      }
      const char* names[] = {"uniform random", "random permutation rounds", "stale-biased 0.5"};
      table.add_row({names[which], TextTable::num(stats.mean()), all_ok ? "yes" : "NO"});
    }
    std::cout << table << "correctness only needs fairness (the proofs' assumption); the\n"
              << "uniform scheduler is merely the timing model.\n\n";
  }

  std::cout << "=== Ablation 3: replication cost vs input size ===\n";
  {
    TextTable table({"|V1|", "n", "mean steps (4 seeds)", "ok"});
    for (int v1 : {3, 4, 5, 6}) {
      const auto spec = protocols::replication(Graph::ring(v1));
      const int n = 2 * v1;
      RunningStats stats;
      bool all_ok = true;
      for (int seed = 0; seed < 4; ++seed) {
        const auto r =
            analysis::run_trial(spec, n, trial_seed(0xAB3Cull, static_cast<std::uint64_t>(seed)));
        all_ok = all_ok && r.stabilized && r.target_ok;
        stats.add(static_cast<double>(r.convergence_step));
      }
      table.add_row({TextTable::integer(static_cast<std::uint64_t>(v1)),
                     TextTable::integer(static_cast<std::uint64_t>(n)),
                     TextTable::num(stats.mean()), all_ok ? "yes" : "NO"});
    }
    std::cout << table << '\n';
  }

  std::cout << "=== Ablation 4: kRC state budget vs degree ===\n";
  {
    TextTable table({"k", "states 2(k+1)", "n", "steps", "ok"});
    for (int k : {2, 3, 4}) {
      const auto spec = protocols::krc(k);
      const int n = 4 * k;
      const auto r = analysis::run_trial(spec, n, 0xAB4Dull);
      table.add_row({TextTable::integer(static_cast<std::uint64_t>(k)),
                     TextTable::integer(static_cast<std::uint64_t>(spec.protocol.state_count())),
                     TextTable::integer(static_cast<std::uint64_t>(n)),
                     TextTable::integer(r.convergence_step),
                     r.stabilized && r.target_ok ? "yes" : "NO"});
    }
    std::cout << table;
  }
  return 0;
}
