// Reproduces Figure 1: the self-organization of the spanning star.
//
// The figure shows three snapshots: (a) all nodes black (centers), no active
// edges; (b) a few black survivors each with red (peripheral) neighborhoods
// and some red-red edges; (c) one black center attached to all reds, red-red
// edges dissolved. We print the same trajectory as a time series: number of
// centers, center-peripheral edges, peripheral-peripheral edges, and whether
// the configuration is a stable spanning star.
#include "core/trace.hpp"
#include "graph/predicates.hpp"
#include "protocols/protocols.hpp"
#include "util/table.hpp"

#include <iostream>

int main() {
  using namespace netcons;
  const int n = 40;
  const auto spec = protocols::global_star();
  const StateId center = *spec.protocol.state_by_name("c");
  Simulator sim(spec.protocol, n, 0xF161ull);

  std::cout << "=== Figure 1: spanning star self-organization (n = " << n << ") ===\n"
            << "blacks = centers (state c), reds = peripherals (state p)\n\n";

  TextTable table({"step", "blacks", "c-p edges", "p-p edges", "spanning star?"});
  auto emit = [&]() {
    const World& w = sim.world();
    int cp = 0, pp = 0;
    for (int v = 1; v < n; ++v) {
      for (int u = 0; u < v; ++u) {
        if (!w.edge(u, v)) continue;
        const bool uc = w.state(u) == center;
        const bool vc = w.state(v) == center;
        if (uc || vc) {
          ++cp;
        } else {
          ++pp;
        }
      }
    }
    const bool star = is_spanning_star(w.output_graph(spec.protocol));
    table.add_row({TextTable::integer(sim.steps()),
                   TextTable::integer(static_cast<std::uint64_t>(w.census(center))),
                   TextTable::integer(static_cast<std::uint64_t>(cp)),
                   TextTable::integer(static_cast<std::uint64_t>(pp)), star ? "yes" : "no"});
  };

  emit();  // Figure 1(a): all black, no edges
  Simulator::StabilityOptions options;
  options.max_steps = spec.max_steps(n);
  while (true) {
    sim.run(2000);
    emit();
    if (sim.is_quiescent()) break;  // Figure 1(c): stable spanning star
    if (sim.steps() >= options.max_steps) break;
  }
  std::cout << table << "\nfinal census: " << census_summary(spec.protocol, sim.world())
            << "\nstable spanning star reached at step " << sim.last_output_change() << "\n";
  return 0;
}
