#include "analysis/report.hpp"

#include "campaign/json.hpp"
#include "campaign/result_sink.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <utility>

namespace netcons::analysis {

namespace {

void append_metric_json(std::string& out, Metric metric, const ValueDistribution& dist,
                        int bins) {
  out += "{\"metric\": ";
  campaign::json::append_escaped(out, std::string(metric_name(metric)));
  out += ", \"count\": " + std::to_string(dist.count());
  out += ", \"min\": " + std::to_string(dist.min());
  out += ", \"max\": " + std::to_string(dist.max());
  out += ", \"mean\": ";
  campaign::json::append_double(out, dist.mean());
  out += ", \"stddev\": ";
  campaign::json::append_double(out, dist.stddev());
  for (const auto& [name, p] :
       {std::pair{"p50", 0.50}, std::pair{"p90", 0.90}, std::pair{"p99", 0.99}}) {
    out += ", \"";
    out += name;
    out += "\": ";
    campaign::json::append_double(out, dist.quantile(p));
  }
  const Histogram h = histogram(dist, bins);
  out += ", \"histogram\": {\"bins\": ";
  out += std::to_string(h.bins());
  out += ", \"lo\": ";
  campaign::json::append_double(out, h.lo);
  out += ", \"width\": ";
  campaign::json::append_double(out, h.width);
  out += ", \"counts\": [";
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(h.counts[i]);
  }
  out += "]}";
  out += ", \"ecdf\": [";
  bool first = true;
  for (const EcdfPoint& point : ecdf(dist)) {
    if (!first) out += ", ";
    first = false;
    out += "[" + std::to_string(point.value) + ", " + std::to_string(point.cumulative) + "]";
  }
  out += "]}";
}

void append_point_prefix(std::string& out, const campaign::GridPoint& point, Metric metric) {
  out += campaign::csv_field(point.unit) + ',' + campaign::csv_field(point.scheduler) + ',' +
         campaign::csv_field(point.faults) + ',' + campaign::csv_field(point.engine) + ',' +
         std::to_string(point.n) + ',';
  out += metric_name(metric);
}

/// Same trend series: everything but n (and the metric, handled separately).
bool same_series(const campaign::GridPoint& a, const campaign::GridPoint& b) {
  return a.unit == b.unit && a.scheduler == b.scheduler && a.faults == b.faults &&
         a.engine == b.engine;
}

}  // namespace

ReportSpec default_report_spec() {
  ReportSpec spec;
  spec.metrics.assign(all_metrics().begin(), all_metrics().end());
  return spec;
}

RecordDistributionBuilder load_distributions(const std::vector<std::string>& inputs) {
  campaign::TrialRecordReader reader(inputs);
  std::optional<RecordDistributionBuilder> builder;
  while (const auto record = reader.next()) {
    if (!builder) builder.emplace(*reader.header());
    builder->add(*record);
  }
  if (!builder) {
    if (!reader.header()) throw std::runtime_error("no trial records found in the given inputs");
    builder.emplace(*reader.header());
  }
  return std::move(*builder);
}

bool metric_applicable(Metric metric, bool faulted) {
  return faulted || (metric != Metric::kRecoverySteps && metric != Metric::kEdgesResidual);
}

std::string report_json(const RecordDistributionBuilder& builder,
                        const std::vector<PointDistributions>& dists, const ReportSpec& spec) {
  const campaign::CampaignHeader& header = builder.header();
  std::string out = "{\n  \"schema\": \"netcons-report-v1\",\n";
  out += "  \"base_seed\": " + std::to_string(header.base_seed) + ",\n";
  out += "  \"trials\": " + std::to_string(header.trials) + ",\n";
  out += "  \"trials_recorded\": " + std::to_string(builder.filled()) + ",\n";
  out += "  \"binning\": ";
  campaign::json::append_escaped(
      out, spec.bins <= 0 ? std::string("fd") : "fixed:" + std::to_string(spec.bins));
  out += ",\n  \"points\": [\n";
  for (std::size_t p = 0; p < header.points.size(); ++p) {
    const campaign::GridPoint& point = header.points[p];
    out += "    {\"unit\": ";
    campaign::json::append_escaped(out, point.unit);
    out += ", \"scheduler\": ";
    campaign::json::append_escaped(out, point.scheduler);
    out += ", \"faults\": ";
    campaign::json::append_escaped(out, point.faults);
    out += ", \"engine\": ";
    campaign::json::append_escaped(out, point.engine);
    out += ", \"n\": " + std::to_string(point.n);
    out += ", \"seed\": " + std::to_string(point.seed);
    out += ",\n     \"metrics\": [\n";
    bool first = true;
    for (const Metric metric : spec.metrics) {
      if (!metric_applicable(metric, point.faulted)) continue;
      if (!first) out += ",\n";
      first = false;
      out += "      ";
      append_metric_json(out, metric, dists[p].metric(metric), spec.bins);
    }
    out += "\n     ]}";
    out += (p + 1 < header.points.size()) ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string histogram_csv(const campaign::CampaignHeader& header,
                          const std::vector<PointDistributions>& dists,
                          const ReportSpec& spec) {
  std::string out = "unit,scheduler,faults,engine,n,metric,bin,lo,hi,count\n";
  for (std::size_t p = 0; p < header.points.size(); ++p) {
    for (const Metric metric : spec.metrics) {
      if (!metric_applicable(metric, header.points[p].faulted)) continue;
      const Histogram h = histogram(dists[p].metric(metric), spec.bins);
      for (std::size_t bin = 0; bin < h.counts.size(); ++bin) {
        append_point_prefix(out, header.points[p], metric);
        out += ',' + std::to_string(bin) + ',';
        campaign::json::append_double(out, h.edge(bin));
        out += ',';
        campaign::json::append_double(out, h.edge(bin + 1));
        out += ',' + std::to_string(h.counts[bin]) + '\n';
      }
    }
  }
  return out;
}

std::vector<TrendRow> trend_rows(const campaign::CampaignHeader& header,
                                 const ReportSpec& spec) {
  // Series in first-appearance order over the header's points; within a
  // series, points sorted by n ascending (stably, so equal-n duplicates
  // keep header order). Pure function of the grid -- byte-stable.
  std::vector<std::vector<std::size_t>> series;
  for (std::size_t p = 0; p < header.points.size(); ++p) {
    bool placed = false;
    for (auto& members : series) {
      if (same_series(header.points[members.front()], header.points[p])) {
        members.push_back(p);
        placed = true;
        break;
      }
    }
    if (!placed) series.push_back({p});
  }
  std::vector<TrendRow> rows;
  for (auto& members : series) {
    std::stable_sort(members.begin(), members.end(), [&](std::size_t a, std::size_t b) {
      return header.points[a].n < header.points[b].n;
    });
    for (const Metric metric : spec.metrics) {
      if (!metric_applicable(metric, header.points[members.front()].faulted)) continue;
      for (const std::size_t p : members) rows.push_back({p, metric});
    }
  }
  return rows;
}

std::string trend_csv(const campaign::CampaignHeader& header,
                      const std::vector<PointDistributions>& dists, const ReportSpec& spec) {
  std::string out = "unit,scheduler,faults,engine,metric,n,count,mean,p50,p90,p99,max\n";
  for (const TrendRow& row : trend_rows(header, spec)) {
    const campaign::GridPoint& point = header.points[row.point];
    const ValueDistribution& dist = dists[row.point].metric(row.metric);
    out += campaign::csv_field(point.unit) + ',' + campaign::csv_field(point.scheduler) + ',' +
           campaign::csv_field(point.faults) + ',' + campaign::csv_field(point.engine) + ',';
    out += metric_name(row.metric);
    out += ',' + std::to_string(point.n) + ',' + std::to_string(dist.count()) + ',';
    campaign::json::append_double(out, dist.mean());
    for (const double p : {0.50, 0.90, 0.99}) {
      out += ',';
      campaign::json::append_double(out, dist.quantile(p));
    }
    out += ',' + std::to_string(dist.max()) + '\n';
  }
  return out;
}

std::string trend_json(const campaign::CampaignHeader& header,
                       const std::vector<PointDistributions>& dists, const ReportSpec& spec) {
  const std::vector<TrendRow> rows = trend_rows(header, spec);
  std::string out = "{\n  \"schema\": \"netcons-trend-v1\",\n  \"series\": [\n";
  bool open = false;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const campaign::GridPoint& point = header.points[rows[i].point];
    const bool fresh = i == 0 || rows[i - 1].metric != rows[i].metric ||
                       !same_series(header.points[rows[i - 1].point], point);
    if (fresh) {
      if (open) out += "\n    ]},\n";
      open = true;
      out += "    {\"unit\": ";
      campaign::json::append_escaped(out, point.unit);
      out += ", \"scheduler\": ";
      campaign::json::append_escaped(out, point.scheduler);
      out += ", \"faults\": ";
      campaign::json::append_escaped(out, point.faults);
      out += ", \"engine\": ";
      campaign::json::append_escaped(out, point.engine);
      out += ", \"metric\": ";
      campaign::json::append_escaped(out, std::string(metric_name(rows[i].metric)));
      out += ",\n     \"rows\": [\n";
    } else {
      out += ",\n";
    }
    const ValueDistribution& dist = dists[rows[i].point].metric(rows[i].metric);
    out += "      {\"n\": " + std::to_string(point.n);
    out += ", \"count\": " + std::to_string(dist.count());
    out += ", \"mean\": ";
    campaign::json::append_double(out, dist.mean());
    for (const auto& [name, p] :
         {std::pair{"p50", 0.50}, std::pair{"p90", 0.90}, std::pair{"p99", 0.99}}) {
      out += ", \"";
      out += name;
      out += "\": ";
      campaign::json::append_double(out, dist.quantile(p));
    }
    out += ", \"max\": " + std::to_string(dist.max()) + "}";
  }
  if (open) out += "\n    ]}\n";
  out += "  ]\n}\n";
  return out;
}

std::string ecdf_csv(const campaign::CampaignHeader& header,
                     const std::vector<PointDistributions>& dists, const ReportSpec& spec) {
  std::string out = "unit,scheduler,faults,engine,n,metric,value,cumulative,fraction\n";
  for (std::size_t p = 0; p < header.points.size(); ++p) {
    for (const Metric metric : spec.metrics) {
      if (!metric_applicable(metric, header.points[p].faulted)) continue;
      for (const EcdfPoint& point : ecdf(dists[p].metric(metric))) {
        append_point_prefix(out, header.points[p], metric);
        out += ',' + std::to_string(point.value) + ',' + std::to_string(point.cumulative) + ',';
        campaign::json::append_double(out, point.fraction);
        out += '\n';
      }
    }
  }
  return out;
}

}  // namespace netcons::analysis
