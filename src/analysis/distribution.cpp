#include "analysis/distribution.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <stdexcept>

namespace netcons::analysis {

void ValueDistribution::add(std::uint64_t value, std::uint64_t weight) {
  if (weight == 0) return;
  counts_[value] += weight;
  n_ += weight;
}

std::uint64_t ValueDistribution::min() const noexcept {
  return counts_.empty() ? 0 : counts_.begin()->first;
}

std::uint64_t ValueDistribution::max() const noexcept {
  return counts_.empty() ? 0 : counts_.rbegin()->first;
}

double ValueDistribution::mean() const noexcept {
  if (n_ == 0) return 0.0;
  double sum = 0.0;
  for (const auto& [value, weight] : counts_) {
    sum += static_cast<double>(value) * static_cast<double>(weight);
  }
  return sum / static_cast<double>(n_);
}

double ValueDistribution::variance() const noexcept {
  if (n_ < 2) return 0.0;
  const double mu = mean();
  double m2 = 0.0;
  for (const auto& [value, weight] : counts_) {
    const double delta = static_cast<double>(value) - mu;
    m2 += delta * delta * static_cast<double>(weight);
  }
  return m2 / static_cast<double>(n_ - 1);
}

double ValueDistribution::stddev() const noexcept { return std::sqrt(variance()); }

double ValueDistribution::quantile(double p) const {
  if (n_ == 0) return 0.0;
  if (p <= 0.0) return static_cast<double>(min());
  if (p >= 1.0) return static_cast<double>(max());
  // The interpolated order statistic at h = p * (n - 1), found by walking
  // the cumulative counts (RunningStats' exact-mode convention).
  const double position = p * static_cast<double>(n_ - 1);
  const auto lower = static_cast<std::uint64_t>(position);
  const double fraction = position - static_cast<double>(lower);

  std::uint64_t cumulative = 0;
  double lower_value = 0.0;
  auto it = counts_.begin();
  for (; it != counts_.end(); ++it) {
    cumulative += it->second;
    if (cumulative > lower) {
      lower_value = static_cast<double>(it->first);
      break;
    }
  }
  if (fraction == 0.0 || lower + 1 >= n_) return lower_value;
  // The (lower + 1)-th order statistic is either the same value (its run
  // extends past the position) or the next distinct one.
  double upper_value = lower_value;
  if (cumulative <= lower + 1) upper_value = static_cast<double>(std::next(it)->first);
  return lower_value * (1.0 - fraction) + upper_value * fraction;
}

std::vector<EcdfPoint> ecdf(const ValueDistribution& distribution) {
  std::vector<EcdfPoint> out;
  out.reserve(distribution.distinct());
  const double n = static_cast<double>(distribution.count());
  std::uint64_t cumulative = 0;
  for (const auto& [value, weight] : distribution.counts()) {
    cumulative += weight;
    out.push_back({value, cumulative, static_cast<double>(cumulative) / n});
  }
  return out;
}

int freedman_diaconis_bins(const ValueDistribution& distribution) {
  const std::uint64_t n = distribution.count();
  if (n == 0) return 0;
  const double span = static_cast<double>(distribution.max() - distribution.min());
  if (span == 0.0) return 1;
  const double iqr = distribution.quantile(0.75) - distribution.quantile(0.25);
  double bins;
  if (iqr > 0.0) {
    const double width = 2.0 * iqr / std::cbrt(static_cast<double>(n));
    bins = std::ceil(span / width);
  } else {
    // Degenerate IQR (half the mass on one value): Sturges.
    bins = std::floor(std::log2(static_cast<double>(n))) + 1.0;
  }
  if (bins < 1.0) return 1;
  if (bins > static_cast<double>(kMaxHistogramBins)) return kMaxHistogramBins;
  return static_cast<int>(bins);
}

Histogram histogram(const ValueDistribution& distribution, int bins) {
  Histogram out;
  if (distribution.count() == 0) return out;
  if (bins <= 0) bins = freedman_diaconis_bins(distribution);

  const std::uint64_t lo = distribution.min();
  const std::uint64_t hi = distribution.max();
  out.lo = static_cast<double>(lo);
  if (lo == hi) {
    // All mass on one value: a single zero-width bin.
    out.width = 0.0;
    out.counts.assign(1, distribution.count());
    return out;
  }
  out.width = static_cast<double>(hi - lo) / static_cast<double>(bins);
  out.counts.assign(static_cast<std::size_t>(bins), 0);
  for (const auto& [value, weight] : distribution.counts()) {
    auto bin = static_cast<std::size_t>(static_cast<double>(value - lo) / out.width);
    if (bin >= out.counts.size()) bin = out.counts.size() - 1;  // max: last bin is closed.
    out.counts[bin] += weight;
  }
  return out;
}

double ks_distance(const ValueDistribution& a, const ValueDistribution& b) {
  if (a.count() == 0 || b.count() == 0) return 0.0;
  const double na = static_cast<double>(a.count());
  const double nb = static_cast<double>(b.count());
  auto ia = a.counts().begin();
  auto ib = b.counts().begin();
  std::uint64_t ca = 0;
  std::uint64_t cb = 0;
  double sup = 0.0;
  // Walk the merged support; the ECDF difference only changes at support
  // points, and just after one is where it is extremal.
  while (ia != a.counts().end() || ib != b.counts().end()) {
    std::uint64_t value;
    if (ib == b.counts().end() || (ia != a.counts().end() && ia->first < ib->first)) {
      value = ia->first;
    } else {
      value = ib->first;
    }
    while (ia != a.counts().end() && ia->first == value) ca += (ia++)->second;
    while (ib != b.counts().end() && ib->first == value) cb += (ib++)->second;
    const double gap = std::abs(static_cast<double>(ca) / na - static_cast<double>(cb) / nb);
    if (gap > sup) sup = gap;
  }
  return sup;
}

const std::array<Metric, kMetricCount>& all_metrics() noexcept {
  static const std::array<Metric, kMetricCount> metrics = {
      Metric::kConvergenceSteps,
      Metric::kStepsExecuted,
      Metric::kRecoverySteps,
      Metric::kEdgesResidual,
  };
  return metrics;
}

std::string_view metric_name(Metric metric) noexcept {
  switch (metric) {
    case Metric::kConvergenceSteps: return "convergence_steps";
    case Metric::kStepsExecuted: return "steps_executed";
    case Metric::kRecoverySteps: return "recovery_steps";
    case Metric::kEdgesResidual: return "edges_residual";
  }
  return "unknown";
}

std::optional<Metric> metric_from_name(std::string_view name) noexcept {
  for (const Metric metric : all_metrics()) {
    if (metric_name(metric) == name) return metric;
  }
  return std::nullopt;
}

std::optional<std::uint64_t> metric_sample(Metric metric, const campaign::TrialOutcome& outcome,
                                           bool faulted) noexcept {
  // Inclusion rules mirror campaign::reduce_outcomes so report counts match
  // the summary sinks.
  switch (metric) {
    case Metric::kConvergenceSteps:
      if (!outcome.success) return std::nullopt;
      return outcome.value;
    case Metric::kStepsExecuted: return outcome.steps_executed;
    case Metric::kRecoverySteps:
      if (!faulted || !outcome.success) return std::nullopt;
      return outcome.recovery_steps;
    case Metric::kEdgesResidual:
      if (!faulted) return std::nullopt;
      return outcome.edges_residual;
  }
  return std::nullopt;
}

RecordDistributionBuilder::RecordDistributionBuilder(campaign::CampaignHeader header)
    : header_(std::move(header)) {
  slots_.resize(header_.points.size() * static_cast<std::size_t>(std::max(header_.trials, 0)));
}

void RecordDistributionBuilder::add(const campaign::TrialRecord& record) {
  if (record.point >= header_.points.size() || record.trial < 0 ||
      record.trial >= header_.trials) {
    throw std::out_of_range("RecordDistributionBuilder: record outside the campaign grid");
  }
  Slot& slot = slots_[record.point * static_cast<std::size_t>(header_.trials) +
                      static_cast<std::size_t>(record.trial)];
  if (slot.filled) {
    ++duplicates_;  // Last wins, matching the loaders' scan-order rule.
  } else {
    slot.filled = true;
    ++filled_;
  }
  slot.success = record.outcome.success;
  slot.value = record.outcome.value;
  slot.steps_executed = record.outcome.steps_executed;
  slot.recovery_steps = record.outcome.recovery_steps;
  slot.edges_residual = record.outcome.edges_residual;
}

std::optional<std::pair<std::size_t, int>> RecordDistributionBuilder::first_missing() const {
  const auto trials = static_cast<std::size_t>(std::max(header_.trials, 0));
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].filled) return std::pair{i / trials, static_cast<int>(i % trials)};
  }
  return std::nullopt;
}

std::vector<PointDistributions> RecordDistributionBuilder::build() const {
  std::vector<PointDistributions> out(header_.points.size());
  const auto trials = static_cast<std::size_t>(std::max(header_.trials, 0));
  for (std::size_t p = 0; p < header_.points.size(); ++p) {
    const bool faulted = header_.points[p].faulted;
    for (std::size_t t = 0; t < trials; ++t) {
      const Slot& slot = slots_[p * trials + t];
      if (!slot.filled) continue;
      campaign::TrialOutcome outcome;
      outcome.success = slot.success;
      outcome.value = slot.value;
      outcome.steps_executed = slot.steps_executed;
      outcome.recovery_steps = slot.recovery_steps;
      outcome.edges_residual = slot.edges_residual;
      for (const Metric metric : all_metrics()) {
        if (const auto sample = metric_sample(metric, outcome, faulted)) {
          out[p].metrics[static_cast<std::size_t>(metric)].add(*sample);
        }
      }
    }
  }
  return out;
}

}  // namespace netcons::analysis
