#include "analysis/experiment.hpp"

#include "campaign/campaign.hpp"

namespace netcons::analysis {

namespace {

/// Shared wrapper: a one-unit campaign over `ns`, converted back to the
/// harness's MeasurePoint view. The campaign engine guarantees that the
/// aggregates are bit-identical for any thread count.
std::vector<MeasurePoint> run_as_campaign(campaign::Unit unit, const std::vector<int>& ns,
                                          int trials, std::uint64_t base_seed, int threads,
                                          const faults::FaultPlan& fault_plan = {},
                                          const campaign::EngineOption& engine = {}) {
  campaign::CampaignSpec spec;
  spec.units.push_back(std::move(unit));
  spec.ns = ns;
  spec.trials = trials;
  spec.base_seed = base_seed;
  if (!fault_plan.empty()) spec.faults.push_back(fault_plan);
  // A one-option engine axis leaves grid positions -- hence per-trial
  // seeds -- identical to a spec with no engine axis at all.
  if (engine.make || engine.name != "naive") spec.engines.push_back(engine);

  campaign::RunOptions options;
  options.threads = threads;
  return points_from_campaign(campaign::run(spec, options));
}

}  // namespace

std::vector<MeasurePoint> points_from_campaign(const campaign::CampaignResult& result) {
  std::vector<MeasurePoint> out;
  out.reserve(result.points.size());
  for (const campaign::PointResult& point : result.points) {
    MeasurePoint mp;
    mp.n = point.n;
    mp.trials = point.trials;
    mp.failures = point.failures;
    mp.damaged = point.damaged;
    mp.first_error = point.first_error;
    mp.convergence_steps = point.convergence_steps;
    mp.recovery_steps = point.recovery_steps;
    out.push_back(std::move(mp));
  }
  return out;
}

TrialResult run_trial(const ProtocolSpec& spec, int n, std::uint64_t seed,
                      const faults::FaultPlan& fault_plan,
                      const campaign::EngineOption& engine) {
  // One canonical trial-driving sequence for single runs and campaigns.
  const campaign::ProtocolTrialReport report =
      campaign::run_protocol_trial_report(spec, n, seed, {}, fault_plan, engine.make);
  TrialResult result;
  result.stabilized = report.stabilized;
  result.target_ok = report.target_ok;
  result.convergence_step = report.convergence_step;
  result.steps_executed = report.steps_executed;
  result.faults_injected = report.faults_injected;
  result.recovery_steps = report.recovery_steps;
  result.output_edges_deleted = report.output_edges_deleted;
  result.output_edges_repaired = report.output_edges_repaired;
  result.output_edges_residual = report.output_edges_residual;
  return result;
}

MeasurePoint measure(const ProtocolSpec& spec, int n, int trials, std::uint64_t base_seed,
                     int threads, const faults::FaultPlan& fault_plan,
                     const campaign::EngineOption& engine) {
  return run_as_campaign(campaign::Unit::protocol("protocol", spec), {n}, trials, base_seed,
                         threads, fault_plan, engine)
      .front();
}

std::vector<MeasurePoint> sweep(const ProtocolSpec& spec, const std::vector<int>& ns, int trials,
                                std::uint64_t base_seed, int threads,
                                const faults::FaultPlan& fault_plan,
                                const campaign::EngineOption& engine) {
  return run_as_campaign(campaign::Unit::protocol("protocol", spec), ns, trials, base_seed,
                         threads, fault_plan, engine);
}

LinearFit fit_exponent(const std::vector<MeasurePoint>& points) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (const auto& p : points) {
    if (p.convergence_steps.count() == 0) continue;
    xs.push_back(static_cast<double>(p.n));
    ys.push_back(p.convergence_steps.mean());
  }
  return fit_power_law(xs, ys);
}

MeasurePoint measure_process(const ProcessSpec& spec, int n, int trials,
                             std::uint64_t base_seed, int threads,
                             const campaign::EngineOption& engine) {
  return run_as_campaign(campaign::Unit::process(spec), {n}, trials, base_seed, threads, {},
                         engine)
      .front();
}

std::vector<MeasurePoint> sweep_process(const ProcessSpec& spec, const std::vector<int>& ns,
                                        int trials, std::uint64_t base_seed, int threads,
                                        const campaign::EngineOption& engine) {
  return run_as_campaign(campaign::Unit::process(spec), ns, trials, base_seed, threads, {},
                         engine);
}

}  // namespace netcons::analysis
