#include "analysis/experiment.hpp"

#include "util/rng.hpp"

namespace netcons::analysis {

TrialResult run_trial(const ProtocolSpec& spec, int n, std::uint64_t seed) {
  Simulator sim(spec.protocol, n, seed);
  if (spec.initialize) spec.initialize(sim.mutable_world());

  Simulator::StabilityOptions options;
  if (spec.max_steps) options.max_steps = spec.max_steps(n);
  options.certificate = spec.certificate;
  const ConvergenceReport report = sim.run_until_stable(options);

  TrialResult result;
  result.stabilized = report.stabilized;
  result.convergence_step = report.convergence_step;
  result.steps_executed = report.steps_executed;
  if (report.stabilized && spec.target) {
    result.target_ok = spec.target(sim.world().output_graph(spec.protocol));
  } else {
    result.target_ok = report.stabilized;
  }
  return result;
}

MeasurePoint measure(const ProtocolSpec& spec, int n, int trials, std::uint64_t base_seed) {
  MeasurePoint point;
  point.n = n;
  point.trials = trials;
  for (int t = 0; t < trials; ++t) {
    const TrialResult r = run_trial(spec, n, trial_seed(base_seed, static_cast<std::uint64_t>(t)));
    if (r.stabilized && r.target_ok) {
      point.convergence_steps.add(static_cast<double>(r.convergence_step));
    } else {
      ++point.failures;
    }
  }
  return point;
}

std::vector<MeasurePoint> sweep(const ProtocolSpec& spec, const std::vector<int>& ns, int trials,
                                std::uint64_t base_seed) {
  std::vector<MeasurePoint> out;
  out.reserve(ns.size());
  for (std::size_t i = 0; i < ns.size(); ++i) {
    out.push_back(measure(spec, ns[i], trials, base_seed + 0x1000 * (i + 1)));
  }
  return out;
}

LinearFit fit_exponent(const std::vector<MeasurePoint>& points) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (const auto& p : points) {
    if (p.convergence_steps.count() == 0) continue;
    xs.push_back(static_cast<double>(p.n));
    ys.push_back(p.convergence_steps.mean());
  }
  return fit_power_law(xs, ys);
}

MeasurePoint measure_process(const ProcessSpec& spec, int n, int trials,
                             std::uint64_t base_seed) {
  MeasurePoint point;
  point.n = n;
  point.trials = trials;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t steps =
        run_process(spec, n, trial_seed(base_seed, static_cast<std::uint64_t>(t)));
    point.convergence_steps.add(static_cast<double>(steps));
  }
  return point;
}

std::vector<MeasurePoint> sweep_process(const ProcessSpec& spec, const std::vector<int>& ns,
                                        int trials, std::uint64_t base_seed) {
  std::vector<MeasurePoint> out;
  out.reserve(ns.size());
  for (std::size_t i = 0; i < ns.size(); ++i) {
    out.push_back(measure_process(spec, ns[i], trials, base_seed + 0x1000 * (i + 1)));
  }
  return out;
}

}  // namespace netcons::analysis
