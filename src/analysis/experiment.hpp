// The experiment harness: repeated-trial convergence measurement, n-sweeps,
// and empirical exponent fits. Used by every bench binary and by the
// integration tests.
//
// Since the campaign engine landed, `measure`/`sweep` (and the process
// variants) are thin wrappers over campaign::run: trials execute on a
// thread pool (all cores by default) with deterministic per-trial
// SplitMix64 seed streams, so results are bit-identical regardless of
// thread count. Pass `threads = 1` to force serial execution.
#pragma once

#include "campaign/campaign.hpp"
#include "core/spec.hpp"
#include "faults/fault_plan.hpp"
#include "processes/processes.hpp"
#include "util/stats.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace netcons::analysis {

struct TrialResult {
  bool stabilized = false;
  bool target_ok = false;
  std::uint64_t convergence_step = 0;  ///< Paper's running time (last output change).
  std::uint64_t steps_executed = 0;    ///< Steps run until stability was certified.
  // Recovery metrics (zero for fault-free trials); see ConvergenceReport.
  std::uint64_t faults_injected = 0;
  std::uint64_t recovery_steps = 0;
  std::uint64_t output_edges_deleted = 0;
  std::uint64_t output_edges_repaired = 0;
  std::uint64_t output_edges_residual = 0;
};

/// Run one trial of a protocol on n nodes with the given seed: simulate to
/// certified stability -- under fault injection when `fault_plan` is
/// non-empty -- then validate the output graph against the target. The
/// default engine is the reference NaiveEngine; pass
/// campaign::make_engine("census")-style options for the fast path.
[[nodiscard]] TrialResult run_trial(const ProtocolSpec& spec, int n, std::uint64_t seed,
                                    const faults::FaultPlan& fault_plan = {},
                                    const campaign::EngineOption& engine = {});

struct MeasurePoint {
  int n = 0;
  RunningStats convergence_steps;  ///< Over successful trials.
  RunningStats recovery_steps;     ///< Over successful faulted trials.
  int trials = 0;
  int failures = 0;  ///< Timeouts, target mismatches, or throws (should be 0).
  int damaged = 0;   ///< Re-stabilized faulted trials that missed the target.
  std::string first_error;  ///< Message of the first throwing trial, if any.
};

/// `trials` independent trials at size n (per-trial seeds are a pure
/// function of `base_seed`; see campaign/seeds.hpp). `threads` 0: all
/// cores. A non-empty `fault_plan` runs every trial under fault injection
/// (success then means re-stabilization; see campaign::run_protocol_trial).
[[nodiscard]] MeasurePoint measure(const ProtocolSpec& spec, int n, int trials,
                                   std::uint64_t base_seed, int threads = 0,
                                   const faults::FaultPlan& fault_plan = {},
                                   const campaign::EngineOption& engine = {});

/// A full n-sweep, parallelized across the whole (n, trial) grid.
[[nodiscard]] std::vector<MeasurePoint> sweep(const ProtocolSpec& spec,
                                              const std::vector<int>& ns, int trials,
                                              std::uint64_t base_seed, int threads = 0,
                                              const faults::FaultPlan& fault_plan = {},
                                              const campaign::EngineOption& engine = {});

/// The harness view of an arbitrary campaign result, one MeasurePoint per
/// grid point in grid order. This is how distributed measurements re-enter
/// the analysis pipeline: run sharded campaigns on a fleet with --records,
/// fold the record streams with netcons_merge (or campaign::reduce_outcomes
/// over load_records), and hand the reduced result to fit_exponent — the
/// statistics are byte-identical to a local single-process sweep.
[[nodiscard]] std::vector<MeasurePoint> points_from_campaign(
    const campaign::CampaignResult& result);

/// Fit mean convergence steps ~ C * n^alpha over the sweep.
[[nodiscard]] LinearFit fit_exponent(const std::vector<MeasurePoint>& points);

/// Same trial machinery for the Section 3.3 processes (completion time of a
/// census condition rather than stabilization). A process timeout is
/// counted in `failures` rather than thrown.
[[nodiscard]] MeasurePoint measure_process(const ProcessSpec& spec, int n, int trials,
                                           std::uint64_t base_seed, int threads = 0,
                                           const campaign::EngineOption& engine = {});
[[nodiscard]] std::vector<MeasurePoint> sweep_process(const ProcessSpec& spec,
                                                      const std::vector<int>& ns, int trials,
                                                      std::uint64_t base_seed, int threads = 0,
                                                      const campaign::EngineOption& engine = {});

}  // namespace netcons::analysis
