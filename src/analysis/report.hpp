// Shared rendering of the netcons-report-v1 document and its CSV
// companions over per-point distribution builders.
//
// This is the one implementation behind every surface that emits a report:
// the netcons_report CLI and the serve-layer result cache both call these
// functions, so a daemon-served report is byte-identical to the CLI's for
// the same record set — the property the serve CI gate cmp-enforces.
// Statistics are computed in canonical (point, metric) order from the
// builder's exact distributions; the output bytes depend only on the
// record *set*, never on file arrangement or arrival order.
#pragma once

#include "analysis/distribution.hpp"
#include "campaign/trial_record.hpp"

#include <string>
#include <vector>

namespace netcons::analysis {

/// What to render: which metrics (in emission order) and how to bin
/// histograms. default_report_spec() — every metric, Freedman–Diaconis —
/// is what the CLI emits with no --metrics/--bins flags and what the serve
/// cache stores.
struct ReportSpec {
  std::vector<Metric> metrics;
  int bins = 0;  ///< <= 0: Freedman–Diaconis.
};

[[nodiscard]] ReportSpec default_report_spec();

/// Stream every record under `inputs` (files and/or directories) into a
/// distribution builder. Throws std::runtime_error when the inputs hold no
/// records, on header mismatches, and on corrupt record lines.
[[nodiscard]] RecordDistributionBuilder load_distributions(
    const std::vector<std::string>& inputs);

/// Metrics that can ever have samples at this point (recovery metrics only
/// exist under a fault plan); emitting on applicability — not on observed
/// counts — keeps the document layout a pure function of the grid.
[[nodiscard]] bool metric_applicable(Metric metric, bool faulted);

/// The netcons-report-v1 JSON document. `dists` must be `builder.build()`.
[[nodiscard]] std::string report_json(const RecordDistributionBuilder& builder,
                                      const std::vector<PointDistributions>& dists,
                                      const ReportSpec& spec);

/// Per-point histogram rows ("unit,scheduler,...,bin,lo,hi,count").
[[nodiscard]] std::string histogram_csv(const campaign::CampaignHeader& header,
                                        const std::vector<PointDistributions>& dists,
                                        const ReportSpec& spec);

/// Per-point exact ECDF rows ("unit,scheduler,...,value,cumulative,fraction").
[[nodiscard]] std::string ecdf_csv(const campaign::CampaignHeader& header,
                                   const std::vector<PointDistributions>& dists,
                                   const ReportSpec& spec);

/// One row of the percentile-over-n trend view: a (unit, scheduler,
/// faults, engine, metric) series traced across the grid's population
/// sizes. Rows are grouped by series in header first-appearance order with
/// n ascending within a series -- a pure function of the grid, so the
/// rendering is byte-stable like the rest of report-v1.
struct TrendRow {
  std::size_t point = 0;  ///< Index into header.points.
  Metric metric = Metric::kConvergenceSteps;
};

/// The trend row order over the header's grid points (shared by the CSV,
/// the JSON, and the CLI table so all three agree line-for-line).
[[nodiscard]] std::vector<TrendRow> trend_rows(const campaign::CampaignHeader& header,
                                               const ReportSpec& spec);

/// Trend rows as CSV
/// ("unit,scheduler,faults,engine,metric,n,count,mean,p50,p90,p99,max").
[[nodiscard]] std::string trend_csv(const campaign::CampaignHeader& header,
                                    const std::vector<PointDistributions>& dists,
                                    const ReportSpec& spec);

/// Trend rows as the netcons-trend-v1 JSON document.
[[nodiscard]] std::string trend_json(const campaign::CampaignHeader& header,
                                     const std::vector<PointDistributions>& dists,
                                     const ReportSpec& spec);

}  // namespace netcons::analysis
