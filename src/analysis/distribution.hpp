// Distribution analytics over trial-record streams: the paper's figures are
// *distributions* of stabilization time, not just means, so this module
// turns the per-trial records of src/campaign/trial_record.* into exact
// ECDFs, histograms (fixed-width or Freedman–Diaconis-binned), and tail
// quantiles for any recorded metric.
//
// Everything is exact and deterministic. Recorded metrics are integers
// (step counts, edge counts), so a distribution is a value -> multiplicity
// map: memory is O(distinct values), independent of how many trials a
// campaign ran, and every statistic is computed from the sorted counts —
// the same bytes out for any record arrival order, which is what the
// netcons_report CI determinism gate enforces.
#pragma once

#include "campaign/campaign.hpp"
#include "campaign/trial_record.hpp"

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

namespace netcons::analysis {

/// Exact distribution of an integer-valued sample stream, stored as
/// value -> multiplicity. All statistics are evaluated over the sorted
/// support, so they depend only on the sample multiset, never on insertion
/// order.
class ValueDistribution {
 public:
  void add(std::uint64_t value, std::uint64_t weight = 1);

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] std::size_t distinct() const noexcept { return counts_.size(); }
  /// Undefined (0) when empty; callers gate on count().
  [[nodiscard]] std::uint64_t min() const noexcept;
  [[nodiscard]] std::uint64_t max() const noexcept;
  [[nodiscard]] double mean() const noexcept;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// p in [0, 1]: the linear-interpolated order statistic at position
  /// p * (n - 1) — the same convention as RunningStats' exact mode.
  [[nodiscard]] double quantile(double p) const;

  [[nodiscard]] const std::map<std::uint64_t, std::uint64_t>& counts() const noexcept {
    return counts_;
  }

 private:
  std::map<std::uint64_t, std::uint64_t> counts_;
  std::uint64_t n_ = 0;
};

/// One step of the empirical CDF: F(value) = fraction of samples <= value.
struct EcdfPoint {
  std::uint64_t value = 0;
  std::uint64_t cumulative = 0;  ///< Samples <= value.
  double fraction = 0.0;         ///< cumulative / n.
};

/// The exact ECDF: one point per distinct value, ascending.
[[nodiscard]] std::vector<EcdfPoint> ecdf(const ValueDistribution& distribution);

/// Uniform-width histogram. Bin i covers [edge(i), edge(i + 1)); the last
/// bin is closed so max lands in it.
struct Histogram {
  double lo = 0.0;     ///< Left edge of bin 0 (== min over the samples).
  double width = 0.0;  ///< Uniform bin width; 0 for a single degenerate bin.
  std::vector<std::uint64_t> counts;

  [[nodiscard]] std::size_t bins() const noexcept { return counts.size(); }
  [[nodiscard]] double edge(std::size_t i) const noexcept {
    return lo + width * static_cast<double>(i);
  }
};

/// Histograms never exceed this many bins (Freedman–Diaconis on a heavy
/// tail can ask for millions); the cap is part of the documented schema.
inline constexpr int kMaxHistogramBins = 512;

/// Freedman–Diaconis bin count for this sample: width 2·IQR/n^(1/3),
/// falling back to Sturges (floor(log2 n) + 1) when the IQR is zero, and
/// clamped to [1, kMaxHistogramBins]. 0 when the distribution is empty.
[[nodiscard]] int freedman_diaconis_bins(const ValueDistribution& distribution);

/// Bin the distribution into `bins` uniform bins over [min, max]
/// (bins <= 0 selects freedman_diaconis_bins). Deterministic: edges are a
/// pure function of (min, max, bins). Empty distribution: no bins.
[[nodiscard]] Histogram histogram(const ValueDistribution& distribution, int bins = 0);

/// Two-sample Kolmogorov–Smirnov distance: sup over the merged support of
/// |F_a(x) - F_b(x)|, exact on the ECDFs. 0 when either side is empty.
[[nodiscard]] double ks_distance(const ValueDistribution& a, const ValueDistribution& b);

/// The recorded metrics a report can plot, in canonical order.
enum class Metric : int {
  kConvergenceSteps = 0,  ///< Convergence/completion step, successful trials.
  kStepsExecuted,         ///< Steps until certification, all trials.
  kRecoverySteps,         ///< Re-stabilization time, successful faulted trials.
  kEdgesResidual,         ///< Unrepaired damage, all faulted trials.
};
inline constexpr int kMetricCount = 4;

[[nodiscard]] const std::array<Metric, kMetricCount>& all_metrics() noexcept;
[[nodiscard]] std::string_view metric_name(Metric metric) noexcept;
[[nodiscard]] std::optional<Metric> metric_from_name(std::string_view name) noexcept;

/// The sample this trial contributes to `metric`'s distribution, or
/// std::nullopt when it contributes none. `faulted` is the grid point's
/// fault flag. The inclusion rules mirror campaign::reduce_outcomes, so a
/// report's count column matches the summary sinks' aggregates.
[[nodiscard]] std::optional<std::uint64_t> metric_sample(Metric metric,
                                                         const campaign::TrialOutcome& outcome,
                                                         bool faulted) noexcept;

/// Per-grid-point distributions of every metric.
struct PointDistributions {
  std::array<ValueDistribution, kMetricCount> metrics;

  [[nodiscard]] const ValueDistribution& metric(Metric m) const noexcept {
    return metrics[static_cast<std::size_t>(m)];
  }
};

/// Streaming consumer of trial records: feed it every record of a stream
/// (any arrival order, duplicates welcome) and it keeps only the winning
/// (last-wins) metric tuple per (point, trial) slot — a few machine words,
/// never the record line or its error string — then folds winners into
/// per-point distributions in canonical (point, trial) order. Memory is
/// O(grid) + O(distinct metric values); a million-trial record set streams
/// through without ever materializing.
class RecordDistributionBuilder {
 public:
  explicit RecordDistributionBuilder(campaign::CampaignHeader header);

  /// Record indices must lie inside the header's grid (TrialRecordReader
  /// already guarantees this); out-of-grid records throw std::out_of_range.
  void add(const campaign::TrialRecord& record);

  [[nodiscard]] const campaign::CampaignHeader& header() const noexcept { return header_; }
  [[nodiscard]] std::uint64_t filled() const noexcept { return filled_; }
  [[nodiscard]] std::uint64_t missing() const noexcept {
    return static_cast<std::uint64_t>(slots_.size()) - filled_;
  }
  [[nodiscard]] std::size_t duplicates() const noexcept { return duplicates_; }
  /// First unfilled (point, trial) slot in canonical order, if any.
  [[nodiscard]] std::optional<std::pair<std::size_t, int>> first_missing() const;

  /// Distributions over the filled slots, one entry per grid point, built
  /// in canonical slot order (deterministic in the record *set*).
  [[nodiscard]] std::vector<PointDistributions> build() const;

 private:
  /// The metric tuple of one winning trial (TrialOutcome minus everything
  /// distributions never read — notably the error string).
  struct Slot {
    bool filled = false;
    bool success = false;
    std::uint64_t value = 0;
    std::uint64_t steps_executed = 0;
    std::uint64_t recovery_steps = 0;
    std::uint64_t edges_residual = 0;
  };

  campaign::CampaignHeader header_;
  std::vector<Slot> slots_;  ///< points x trials, trial-minor.
  std::uint64_t filled_ = 0;
  std::size_t duplicates_ = 0;
};

}  // namespace netcons::analysis
