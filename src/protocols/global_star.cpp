// Protocol 4 (Global-Star), Section 5 -- the paper's introductory example:
// centers attract everything, peripherals repel each other.
//
//   (c, c, 0) -> (c, p, 1)
//   (p, p, 1) -> (p, p, 0)
//   (c, p, 0) -> (c, p, 1)
//
// 2 states, Theta(n^2 log n); optimal in both size (Theorem 6) and time.
// Stable configurations are quiescent.
#include "protocols/protocols.hpp"

#include "graph/predicates.hpp"

#include <algorithm>
#include <cmath>

namespace netcons::protocols {

ProtocolSpec global_star() {
  ProtocolBuilder b("Global-Star");
  const StateId c = b.add_state("c");
  const StateId p = b.add_state("p");
  b.set_initial(c);

  b.add_rule(c, c, false, c, p, true);
  b.add_rule(p, p, true, p, p, false);
  b.add_rule(c, p, false, c, p, true);

  ProtocolSpec spec;
  spec.protocol = b.build();
  spec.target = [](const Graph& g) { return is_spanning_star(g); };
  spec.max_steps = [](int n) {
    const auto nn = static_cast<std::uint64_t>(n);
    const auto log_n = static_cast<std::uint64_t>(std::max(1.0, std::log(static_cast<double>(n))));
    return 256 * nn * nn * log_n + 1'000'000;
  };
  spec.notes = "Protocol 4; Theorem 7: Theta(n^2 log n), optimal size and time.";
  return spec;
}

}  // namespace netcons::protocols
