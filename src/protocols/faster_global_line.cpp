// Protocol 10 (Faster-Global-Line), Section 7.
//
// The conjectured improvement over Fast-Global-Line: when two leaders meet,
// the loser becomes a follower f and *dissolves its own line* node by node,
// releasing nodes into the recyclable state q that awake leaders absorb
// like q0.
//
//   (q0, q0, 0) -> (q1, l, 1)
//   (l,  q0, 0) -> (q2, l, 1)
//   (l,  q,  0) -> (q2, l, 1)
//   (l,  l,  0) -> (l,  f, 0)     no edge is formed; one leader dies
//   (f,  q2, 1) -> (q,  f, 0)     the dissolving front advances
//   (f,  q1, 1) -> (q,  q, 0)     the line has fully dissolved
//
// 6 states. The paper leaves its running time open; bench_global_line
// measures it against Protocols 1 and 2. Stable configurations are
// quiescent.
#include "protocols/protocols.hpp"

#include "graph/predicates.hpp"

namespace netcons::protocols {

ProtocolSpec faster_global_line() {
  ProtocolBuilder b("Faster-Global-Line");
  const StateId q0 = b.add_state("q0");
  const StateId q1 = b.add_state("q1");
  const StateId q2 = b.add_state("q2");
  const StateId q = b.add_state("q");
  const StateId l = b.add_state("l");
  const StateId f = b.add_state("f");
  b.set_initial(q0);

  b.add_rule(q0, q0, false, q1, l, true);
  b.add_rule(l, q0, false, q2, l, true);
  b.add_rule(l, q, false, q2, l, true);
  b.add_rule(l, l, false, l, f, false);
  b.add_rule(f, q2, true, q, f, false);
  b.add_rule(f, q1, true, q, q, false);

  ProtocolSpec spec;
  spec.protocol = b.build();
  spec.target = [](const Graph& g) { return is_spanning_line(g); };
  spec.max_steps = [](int n) {
    const auto nn = static_cast<std::uint64_t>(n);
    return 512 * nn * nn * nn + 1'000'000;
  };
  spec.notes = "Protocol 10; running time open (conjectured faster than O(n^3)).";
  return spec;
}

}  // namespace netcons::protocols
