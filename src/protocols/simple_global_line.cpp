// Protocol 1 (Simple-Global-Line), Section 4.1.
//
//   (q0, q0, 0) -> (q1, l, 1)      two isolated nodes start a line
//   (l,  q0, 0) -> (q2, l, 1)      a line expands towards an isolated node
//   (l,  l,  0) -> (q2, w, 1)      two lines merge; a random walk starts
//   (w,  q2, 1) -> (q2, w, 1)      the walking leader moves along the line
//   (w,  q1, 1) -> (q2, l, 1)      the walk reaches an endpoint
//
// 5 states; expected time Omega(n^4) and O(n^5) (Theorem 3). Stable
// configurations (the spanning line) are quiescent, so no certificate is
// needed.
#include "protocols/protocols.hpp"

#include "graph/predicates.hpp"

namespace netcons::protocols {

ProtocolSpec simple_global_line() {
  ProtocolBuilder b("Simple-Global-Line");
  const StateId q0 = b.add_state("q0");
  const StateId q1 = b.add_state("q1");
  const StateId q2 = b.add_state("q2");
  const StateId l = b.add_state("l");
  const StateId w = b.add_state("w");
  b.set_initial(q0);

  b.add_rule(q0, q0, false, q1, l, true);
  b.add_rule(l, q0, false, q2, l, true);
  b.add_rule(l, l, false, q2, w, true);
  b.add_rule(w, q2, true, q2, w, true);
  b.add_rule(w, q1, true, q2, l, true);

  ProtocolSpec spec;
  spec.protocol = b.build();
  spec.target = [](const Graph& g) { return is_spanning_line(g); };
  spec.max_steps = [](int n) {
    const auto nn = static_cast<std::uint64_t>(n);
    return 64 * nn * nn * nn * nn * nn + 1'000'000;  // O(n^5) with headroom
  };
  spec.notes = "Protocol 1; Theorem 3: Omega(n^4), O(n^5).";
  return spec;
}

}  // namespace netcons::protocols
