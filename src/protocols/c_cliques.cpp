// Protocol 8 (c-Cliques), Section 5: partition the population into
// floor(n/c) cliques of order c.
//
// Mechanism (Theorem 12): chain leaders l_0..l_{c-2} attract isolated nodes
// (or swallow smaller leaders, whose old followers are released) until their
// component has c nodes; the leader then walks the l-bar chain converting
// its plain followers f into counter-followers 1..c-1, which connect to each
// other to complete the clique. Counter-followers cannot distinguish
// followers of other components, so wrong cross-component edges can appear;
// the home leader l perpetually visits its followers (l <-> l'_i via the
// placeholder r) and two visiting leaders meeting across an active edge
// certify that edge as wrong and deactivate it.
//
// Stable configurations are NOT quiescent (leaders visit forever); the spec
// carries a structural certificate: every component is a complete c-clique
// in a valid role pattern (leader home, or mid-visit), plus at most one
// inert leftover chain component of order < c.
//
// Requires c >= 3 (the paper's state chart assumes it; c = 2 would be the
// maximum-matching process). Size: 5c - 3 states, as the paper reports.
#include "protocols/protocols.hpp"

#include "graph/predicates.hpp"

#include <stdexcept>
#include <vector>

namespace netcons::protocols {

ProtocolSpec c_cliques(int c) {
  if (c < 3) throw std::invalid_argument("c_cliques: need c >= 3 (c = 2 is maximum matching)");
  ProtocolBuilder b("c-Cliques(c=" + std::to_string(c) + ")");

  const auto uc = static_cast<std::size_t>(c);
  std::vector<StateId> lc(uc - 1);   // chain leaders l_0 .. l_{c-2}
  std::vector<StateId> fr(uc - 1);   // releasing followers f_1 .. f_{c-2} (index 0 unused)
  std::vector<StateId> lb(uc - 1);   // l-bar_0 .. l-bar_{c-2}
  std::vector<StateId> cnt(uc);      // counter followers 1 .. c-1 (index 0 unused)
  std::vector<StateId> lv(uc);       // visiting leaders l'_1 .. l'_{c-1} (index 0 unused)

  for (int i = 0; i <= c - 2; ++i)
    lc[static_cast<std::size_t>(i)] = b.add_state("l" + std::to_string(i));
  const StateId f = b.add_state("f");
  for (int i = 1; i <= c - 2; ++i)
    fr[static_cast<std::size_t>(i)] = b.add_state("f" + std::to_string(i));
  for (int i = 0; i <= c - 2; ++i)
    lb[static_cast<std::size_t>(i)] = b.add_state("lb" + std::to_string(i));
  const StateId l = b.add_state("l");
  for (int i = 1; i <= c - 1; ++i)
    cnt[static_cast<std::size_t>(i)] = b.add_state("c" + std::to_string(i));
  for (int i = 1; i <= c - 1; ++i)
    lv[static_cast<std::size_t>(i)] = b.add_state("lv" + std::to_string(i));
  const StateId r = b.add_state("r");
  b.set_initial(lc[0]);

  auto LC = [&](int i) { return lc[static_cast<std::size_t>(i)]; };
  auto FR = [&](int i) { return fr[static_cast<std::size_t>(i)]; };
  auto LB = [&](int i) { return lb[static_cast<std::size_t>(i)]; };
  auto CNT = [&](int i) { return cnt[static_cast<std::size_t>(i)]; };
  auto LV = [&](int i) { return lv[static_cast<std::size_t>(i)]; };

  // Attract isolated nodes; completing the component starts the l-bar chain
  // with the last-attracted node going directly to counter state 1.
  for (int i = 0; i < c - 2; ++i) b.add_rule(LC(i), LC(0), false, LC(i + 1), f, true);
  b.add_rule(LC(c - 2), LC(0), false, LB(1), CNT(1), true);

  // Swallow smaller-or-equal leaders to avoid deadlock among incomplete
  // components; the swallowed leader becomes f_j and must first release its
  // j old followers (back to l0) before serving as a plain follower.
  for (int i = 1; i < c - 2; ++i) {
    for (int j = 1; j <= i; ++j) b.add_rule(LC(i), LC(j), false, LC(i + 1), FR(j), true);
  }
  for (int j = 1; j <= c - 2; ++j) b.add_rule(LC(c - 2), LC(j), false, LB(0), FR(j), true);

  // Releasing.
  for (int i = 2; i <= c - 2; ++i) b.add_rule(FR(i), f, true, FR(i - 1), LC(0), false);
  b.add_rule(FR(1), f, true, f, LC(0), false);

  // The l-bar chain converts plain followers to counter state 1.
  for (int i = 0; i < c - 2; ++i) b.add_rule(LB(i), f, true, LB(i + 1), CNT(1), true);
  b.add_rule(LB(c - 2), f, true, l, CNT(1), true);

  // Counter followers connect to (what they hope are) their component's
  // followers (j <= i canonical orientation).
  for (int i = 1; i < c - 1; ++i) {
    for (int j = 1; j <= i; ++j) b.add_rule(CNT(i), CNT(j), false, CNT(i + 1), CNT(j + 1), true);
  }

  // The home leader visits a follower, leaving the placeholder r behind.
  for (int i = 1; i <= c - 1; ++i) b.add_rule(l, CNT(i), true, r, LV(i), true);

  // Two visiting leaders across an active edge: that edge joins two distinct
  // components, so deactivate it and decrement both counters. Counters are
  // >= 2 here: a follower with a wrong edge has at least one
  // follower-connection. (j <= i canonical.)
  for (int i = 2; i <= c - 1; ++i) {
    for (int j = 2; j <= i; ++j) b.add_rule(LV(i), LV(j), true, LV(i - 1), LV(j - 1), false);
  }

  // The leader returns home nondeterministically.
  for (int i = 1; i <= c - 1; ++i) b.add_rule(LV(i), r, true, CNT(i), l, true);

  ProtocolSpec spec;
  spec.protocol = b.build();
  spec.target = [c](const Graph& g) { return is_clique_partition(g, c); };

  const StateId home = l;
  const StateId placeholder = r;
  const StateId vis_full = LV(c - 1);
  const StateId cnt_full = CNT(c - 1);
  const std::vector<StateId> chain = lc;
  const StateId plain_f = f;
  spec.certificate = [c, home, placeholder, vis_full, cnt_full, chain, plain_f](
                         const Protocol&, const World& w) {
    const Graph g = w.active_graph();
    int complete = 0;
    int leftovers = 0;
    for (const auto& comp : g.components()) {
      const auto size = static_cast<int>(comp.size());
      if (size == c) {
        for (std::size_t a = 0; a < comp.size(); ++a) {
          for (std::size_t d = a + 1; d < comp.size(); ++d) {
            if (!w.edge(comp[a], comp[d])) return false;  // must be a clique
          }
        }
        int n_home = 0, n_r = 0, n_vis = 0, n_cnt = 0;
        for (int u : comp) {
          const StateId s = w.state(u);
          if (s == home) {
            ++n_home;
          } else if (s == placeholder) {
            ++n_r;
          } else if (s == vis_full) {
            ++n_vis;
          } else if (s == cnt_full) {
            ++n_cnt;
          } else {
            return false;
          }
        }
        const bool at_home = n_home == 1 && n_r == 0 && n_vis == 0 && n_cnt == c - 1;
        const bool visiting = n_home == 0 && n_r == 1 && n_vis == 1 && n_cnt == c - 2;
        if (!at_home && !visiting) return false;
        ++complete;
      } else if (size < c) {
        if (++leftovers > 1) return false;
        int n_lead = 0, n_f = 0;
        for (int u : comp) {
          const StateId s = w.state(u);
          if (s == chain[static_cast<std::size_t>(size - 1)]) {
            if (w.active_degree(u) != size - 1) return false;
            ++n_lead;
          } else if (s == plain_f) {
            if (w.active_degree(u) != 1) return false;
            ++n_f;
          } else {
            return false;
          }
        }
        if (n_lead != 1 || n_f != size - 1) return false;
      } else {
        return false;
      }
    }
    return complete == w.size() / c;
  };
  spec.max_steps = [](int n) {
    const auto nn = static_cast<std::uint64_t>(n);
    return 64 * nn * nn * nn * nn + 2'000'000;
  };
  spec.notes = "Protocol 8; Theorem 12. 5c-3 states; certificate required (leaders visit forever).";
  return spec;
}

}  // namespace netcons::protocols
