// Protocol 2 (Fast-Global-Line), Section 4.2.
//
// Avoids mergings entirely: when two line leaders meet, the survivor
// *steals* a node from the eliminated leader's line, which falls asleep;
// sleeping lines only ever shrink. 9 states, O(n^3) (Theorem 4).
//
//   (q0, q0, 0) -> (q1, l,  1)
//   (l,  q0, 0) -> (q2, l,  1)
//   (l,  l,  0) -> (q2', l', 1)    winner expands onto the loser's endpoint
//   (l', q2, 1) -> (l'', f1, 0)    detach from the sleeping line (len >= 2)
//   (l', q1, 1) -> (l'', f0, 0)    detach from a sleeping line of one edge
//   (l'', q2', 1) -> (l, q2, 1)    finish the increment
//   (l,  f0, 0) -> (q2, l,  1)     absorb a sleeping isolated node
//   (l,  f1, 0) -> (q2', l', 1)    steal from a sleeping line
//
// Stable configurations are quiescent.
#include "protocols/protocols.hpp"

#include "graph/predicates.hpp"

namespace netcons::protocols {

ProtocolSpec fast_global_line() {
  ProtocolBuilder b("Fast-Global-Line");
  const StateId q0 = b.add_state("q0");
  const StateId q1 = b.add_state("q1");
  const StateId q2 = b.add_state("q2");
  const StateId q2p = b.add_state("q2'");
  const StateId l = b.add_state("l");
  const StateId lp = b.add_state("l'");
  const StateId lpp = b.add_state("l''");
  const StateId f0 = b.add_state("f0");
  const StateId f1 = b.add_state("f1");
  b.set_initial(q0);

  b.add_rule(q0, q0, false, q1, l, true);
  b.add_rule(l, q0, false, q2, l, true);
  b.add_rule(l, l, false, q2p, lp, true);
  b.add_rule(lp, q2, true, lpp, f1, false);
  b.add_rule(lp, q1, true, lpp, f0, false);
  b.add_rule(lpp, q2p, true, l, q2, true);
  b.add_rule(l, f0, false, q2, l, true);
  b.add_rule(l, f1, false, q2p, lp, true);

  ProtocolSpec spec;
  spec.protocol = b.build();
  spec.target = [](const Graph& g) { return is_spanning_line(g); };
  spec.max_steps = [](int n) {
    const auto nn = static_cast<std::uint64_t>(n);
    return 256 * nn * nn * nn + 1'000'000;  // O(n^3) with headroom
  };
  spec.notes = "Protocol 2; Theorem 4: O(n^3).";
  return spec;
}

}  // namespace netcons::protocols
