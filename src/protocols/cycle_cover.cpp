// Protocol 3 (Cycle-Cover), Section 5.
//
//   (q0, q0, 0) -> (q1, q1, 1)
//   (q1, q0, 0) -> (q2, q1, 1)
//   (q1, q1, 0) -> (q2, q2, 1)
//
// Invariant: a node in state q_i has active degree exactly i. 3 states,
// Theta(n^2), optimal; waste <= 2 (one isolated node or one matched pair may
// be left over). Stable configurations are quiescent.
#include "protocols/protocols.hpp"

#include "graph/predicates.hpp"

namespace netcons::protocols {

ProtocolSpec cycle_cover() {
  ProtocolBuilder b("Cycle-Cover");
  const StateId q0 = b.add_state("q0");
  const StateId q1 = b.add_state("q1");
  const StateId q2 = b.add_state("q2");
  b.set_initial(q0);

  b.add_rule(q0, q0, false, q1, q1, true);
  b.add_rule(q1, q0, false, q2, q1, true);
  b.add_rule(q1, q1, false, q2, q2, true);

  ProtocolSpec spec;
  spec.protocol = b.build();
  spec.target = [](const Graph& g) { return is_cycle_cover(g, /*waste=*/2); };
  spec.max_steps = [](int n) {
    const auto nn = static_cast<std::uint64_t>(n);
    return 256 * nn * nn + 1'000'000;  // Theta(n^2) with headroom
  };
  spec.notes = "Protocol 3; Theorem 5: Theta(n^2), optimal, waste 2.";
  return spec;
}

}  // namespace netcons::protocols
