// Theorem 15's (U, D, M) partition rules -- the substrate that splits the
// population into three matched thirds (U simulates the TM, M's edges form
// the Theta(n^2) tape, D carries the constructed network):
//
//   (q0,  q0,  0) -> (qu', qd,  1)   U-node takes a D-partner, unsatisfied
//   (qu', q0,  0) -> (qu,  qm,  1)   ... then an M-partner from a free node
//   (qu', qu', 0) -> (qu,  qm', 1)   or from another unsatisfied U-node,
//   (qm', qd,  1) -> (qm,  q0,  0)   which releases its D-partner.
//
// Stable configurations are quiescent: no q0/qu'/qm' can remain (any two of
// them still have an applicable rule), except for at most one leftover node.
#include "protocols/protocols.hpp"

namespace netcons::protocols {

ProtocolSpec partition_udm() {
  ProtocolBuilder b("Partition-UDM");
  const StateId q0 = b.add_state("q0");
  const StateId qu_p = b.add_state("qu'");
  const StateId qu = b.add_state("qu");
  const StateId qd = b.add_state("qd");
  const StateId qm_p = b.add_state("qm'");
  const StateId qm = b.add_state("qm");
  b.set_initial(q0);

  b.add_rule(q0, q0, false, qu_p, qd, true);
  b.add_rule(qu_p, q0, false, qu, qm, true);
  b.add_rule(qu_p, qu_p, false, qu, qm_p, true);
  b.add_rule(qm_p, qd, true, qm, q0, false);

  ProtocolSpec spec;
  spec.protocol = b.build();
  // Target: a valid (U, D, M) structure -- every qu has exactly one qd and
  // one qm active neighbor, every qd/qm exactly one qu neighbor; at most two
  // nodes wasted (one unfinished qu' with its qd, or one leftover q0).
  spec.target = [](const Graph&) { return true; };  // structure checked via certificate
  spec.certificate = [q0, qu_p, qu, qd, qm_p, qm](const Protocol&, const World& w) {
    if (w.census(qm_p) != 0) return false;
    // At most one unsatisfied node can survive (two would still interact),
    // and a q0 plus a qu' would also still interact.
    if (w.census(q0) + w.census(qu_p) > 1) return false;
    for (int u = 0; u < w.size(); ++u) {
      const StateId s = w.state(u);
      const int deg = w.active_degree(u);
      if (s == qu && deg != 2) return false;
      if ((s == qd || s == qm) && deg != 1) return false;
      if (s == q0 && deg != 0) return false;
      if (s == qu_p && deg != 1) return false;
      if (s == qu) {
        int d_partners = 0;
        int m_partners = 0;
        for (int v : w.active_neighbors(u)) {
          if (w.state(v) == qd) ++d_partners;
          if (w.state(v) == qm) ++m_partners;
        }
        if (d_partners != 1 || m_partners != 1) return false;
      }
    }
    return true;
  };
  spec.max_steps = [](int n) {
    const auto nn = static_cast<std::uint64_t>(n);
    return 256 * nn * nn + 1'000'000;
  };
  spec.notes = "Theorem 15 partition substrate; waste <= 2 (n mod 3 leftovers).";
  return spec;
}

}  // namespace netcons::protocols
