// Protocol 9 (Graph-Replication), Section 5 -- the paper's only randomized
// (PREL) direct constructor: replicates a connected input graph G1 = (V1, E1)
// onto the fresh nodes V2, provided |V2| >= |V1|.
//
// Mechanism (Theorem 13): V1 nodes match 1-1 with V2 nodes; a unique leader
// is elected in V1 by pairwise elimination; the leader performs a random
// walk over V1 (the probability-1/2 swap branch) and, with the other half of
// the coin, freezes the edge under its feet, instructing the two matched V2
// nodes (through the a/d marks) to copy that edge's state. With a unique
// leader exactly one copy operation is in flight at a time, so every E1
// value is eventually copied and never corrupted again.
//
// Output-set note (see protocols.hpp): Qout here is the set of V2 states
// {r0, r, ra, rd, r'}, implementing the Section 3.2 problem statement
// ("the output induced by the active edges between the nodes of V2").
// 12 states; Theta(n^4 log n).
#include "protocols/protocols.hpp"

#include "graph/isomorphism.hpp"
#include "graph/predicates.hpp"

#include <algorithm>
#include <cmath>

#include <stdexcept>
#include <vector>

namespace netcons::protocols {

ProtocolSpec replication(const Graph& g1) {
  if (g1.order() < 1) throw std::invalid_argument("replication: empty input graph");
  if (g1.order() >= 2 && !is_connected(g1)) {
    throw std::invalid_argument("replication: input graph must be connected");
  }

  ProtocolBuilder b("Graph-Replication");
  const StateId q0 = b.add_state("q0");
  const StateId r0 = b.add_state("r0");
  const StateId l = b.add_state("l");
  const StateId la = b.add_state("la");
  const StateId ld = b.add_state("ld");
  const StateId f = b.add_state("f");
  const StateId fa = b.add_state("fa");
  const StateId fd = b.add_state("fd");
  const StateId r = b.add_state("r");
  const StateId ra = b.add_state("ra");
  const StateId rd = b.add_state("rd");
  const StateId rp = b.add_state("r'");
  b.set_initial(q0);
  b.set_output_states({r0, r, ra, rd, rp});

  // Matching every u in V1 to a distinct v in V2.
  b.add_rule(q0, r0, false, l, r, true);

  // Leader election in V1 (both edge states).
  for (bool x : {false, true}) b.add_rule(l, l, x, l, f, x);

  // Random walk / copy-freeze coin on inactive edges (copy a non-edge) and
  // active edges (copy an edge).
  b.add_coin_rule(l, f, false, Outcome{ld, fd, false}, Outcome{f, l, false});
  b.add_coin_rule(l, f, true, Outcome{la, fa, true}, Outcome{f, l, true});

  // Marked V1 nodes instruct their matched V2 nodes.
  b.add_rule(la, r, true, la, ra, true);
  b.add_rule(ld, r, true, ld, rd, true);
  b.add_rule(fa, r, true, fa, ra, true);
  b.add_rule(fd, r, true, fd, rd, true);

  // The copy is applied in V2.
  for (bool x : {false, true}) b.add_rule(ra, ra, x, rp, rp, true);
  for (bool x : {false, true}) b.add_rule(rd, rd, x, rp, rp, false);

  // The matched V1 nodes learn that the copy has been performed.
  b.add_rule(rp, la, true, r, l, true);
  b.add_rule(rp, ld, true, r, l, true);
  b.add_rule(rp, fa, true, r, f, true);
  b.add_rule(rp, fd, true, r, f, true);

  // Leader election also covers marked leaders, preventing blocking. The
  // paper's family (l_i, l_j, x) -> (l_i, f_j, x) is instantiated at one
  // orientation per unordered pair (Section 3.1's partial-delta convention).
  for (bool x : {false, true}) {
    b.add_rule(la, l, x, la, f, x);
    b.add_rule(ld, l, x, ld, f, x);
    b.add_rule(la, la, x, la, fa, x);
    b.add_rule(la, ld, x, la, fd, x);
    b.add_rule(ld, ld, x, ld, fd, x);
  }

  ProtocolSpec spec;
  spec.protocol = b.build();

  const Graph input = g1;
  spec.initialize = [input, q0, r0](World& w) {
    const int n1 = input.order();
    if (w.size() < 2 * n1) {
      throw std::invalid_argument("replication: need |V2| >= |V1| (n >= 2|V1|)");
    }
    for (int u = 0; u < n1; ++u) w.set_state(u, q0);
    for (int u = n1; u < w.size(); ++u) w.set_state(u, r0);
    for (const auto& [u, v] : input.edges()) w.set_edge(u, v, true);
  };

  spec.target = [input](const Graph& out) {
    // Strip isolated nodes (unmatched V2 spares); the rest must be a replica.
    std::vector<int> used;
    for (int u = 0; u < out.order(); ++u) {
      if (out.degree(u) > 0) used.push_back(u);
    }
    if (input.order() == 1) return used.empty();
    return are_isomorphic(out.induced(used), input);
  };

  spec.certificate = [q0, l, la, ld, f, fa, fd, r, ra, rd, rp, input](const Protocol&,
                                                                      const World& w) {
    if (w.census(q0) != 0) return false;       // all of V1 matched
    if (w.census(l) != 1) return false;        // unique, unmarked leader
    for (StateId s : {la, ld, fa, fd, ra, rd, rp}) {
      if (w.census(s) != 0) return false;      // no copy operation in flight
    }
    // Recover the matching: every l/f node has exactly one active r-partner.
    const int n1 = input.order();
    std::vector<int> match(static_cast<std::size_t>(n1), -1);
    for (int u = 0; u < n1; ++u) {
      const StateId su = w.state(u);
      if (su != l && su != f) return false;
      int partner = -1;
      for (int v = n1; v < w.size(); ++v) {
        if (w.state(v) == r && w.edge(u, v)) {
          if (partner != -1) return false;
          partner = v;
        }
      }
      if (partner == -1) return false;
      match[static_cast<std::size_t>(u)] = partner;
    }
    // Copy consistency: every V1 edge value equals its matched V2 value.
    for (int u = 0; u < n1; ++u) {
      for (int v = u + 1; v < n1; ++v) {
        if (w.edge(u, v) != w.edge(match[static_cast<std::size_t>(u)],
                                   match[static_cast<std::size_t>(v)])) {
          return false;
        }
      }
    }
    return true;
  };

  spec.max_steps = [](int n) {
    const auto nn = static_cast<std::uint64_t>(n);
    const auto log_n = static_cast<std::uint64_t>(
        std::max<double>(1.0, std::log(static_cast<double>(n))));
    return 64 * nn * nn * nn * nn * log_n + 2'000'000;  // Theta(n^4 log n) + headroom
  };
  spec.notes = "Protocol 9; Theorem 13: Theta(n^4 log n); randomized (PREL).";
  return spec;
}

}  // namespace netcons::protocols
