// Theorem 1's upper-bound protocol: a node-cover variant that activates the
// edge of every node-state-effective transition, yielding a spanning network
// (every node covered by at least one active edge) in Theta(n log n) --
// matching the generic Omega(n log n) lower bound for spanning networks.
//
//   (a, a, 0) -> (b, b, 1)
//   (a, b, 0) -> (b, b, 1)
#include "protocols/protocols.hpp"

#include "graph/predicates.hpp"

#include <algorithm>
#include <cmath>

namespace netcons::protocols {

ProtocolSpec spanning_net() {
  ProtocolBuilder b("Spanning-Net");
  const StateId a = b.add_state("a");
  const StateId bb = b.add_state("b");
  b.set_initial(a);

  b.add_rule(a, a, false, bb, bb, true);
  b.add_rule(a, bb, false, bb, bb, true);

  ProtocolSpec spec;
  spec.protocol = b.build();
  spec.target = [](const Graph& g) { return is_spanning_network(g); };
  spec.max_steps = [](int n) {
    const auto nn = static_cast<std::uint64_t>(n);
    return 4096 * nn + 1'000'000;  // Theta(n log n) with headroom
  };
  spec.notes = "Theorem 1 upper bound: spanning network in Theta(n log n).";
  return spec;
}

ProtocolSpec preelected_line() {
  ProtocolBuilder b("Preelected-Line");
  const StateId q0 = b.add_state("q0");
  const StateId q1 = b.add_state("q1");
  const StateId l = b.add_state("l");
  b.set_initial(q0);

  // The leader repeatedly attaches the next isolated node and moves onto it.
  b.add_rule(l, q0, false, q1, l, true);

  ProtocolSpec spec;
  spec.protocol = b.build();
  spec.initialize = [l](World& w) { w.set_state(0, l); };
  spec.target = [](const Graph& g) { return is_spanning_line(g); };
  spec.max_steps = [](int n) {
    const auto nn = static_cast<std::uint64_t>(n);
    const auto log_n =
        static_cast<std::uint64_t>(std::max(1.0, std::log(static_cast<double>(n))));
    return 256 * nn * nn * log_n + 1'000'000;  // Theta(n^2 log n) + headroom
  };
  spec.notes =
      "Section 7: the meet-everybody-paced line built from a pre-elected leader; "
      "Theta(n^2 log n), nearly matching the Omega(n^2) line lower bound.";
  return spec;
}

std::vector<ProtocolSpec> line_protocols() {
  std::vector<ProtocolSpec> out;
  out.push_back(simple_global_line());
  out.push_back(fast_global_line());
  out.push_back(faster_global_line());
  return out;
}

}  // namespace netcons::protocols
