// Factories for every direct constructor in the paper (Sections 4, 5, 7 and
// the Theorem 15 partition rules), each bundled as a ProtocolSpec with its
// target-topology predicate, a sound stability certificate where stable
// configurations are not quiescent, and a per-n step budget reflecting the
// proven running-time bound.
//
//   Protocol 1   Simple-Global-Line      5 states   Omega(n^4), O(n^5)
//   Protocol 2   Fast-Global-Line        9 states   O(n^3)
//   Protocol 3   Cycle-Cover             3 states   Theta(n^2)
//   Protocol 4   Global-Star             2 states   Theta(n^2 log n)
//   Protocol 5   Global-Ring            10 states   (correctness only)
//   Protocol 6   2RC                     6 states   (correctness only)
//   Protocol 7   kRC                 2(k+1) states  (correctness only)
//   Protocol 8   c-Cliques            5c-3 states   (correctness only)
//   Protocol 9   Graph-Replication      12 states   Theta(n^4 log n)
//   Protocol 10  Faster-Global-Line      6 states   (open question)
//   Theorem 1    Spanning-Net            2 states   Theta(n log n)
//   Section 7    Degree-doubling      ~2d+4 states  (size discussion)
//   Theorem 15   (U,D,M) partition       6 states   (substrate)
#pragma once

#include "core/spec.hpp"

namespace netcons::protocols {

/// Protocol 1. Lines with a unique leader merge until one spans.
[[nodiscard]] ProtocolSpec simple_global_line();

/// Protocol 2. Merging-free: awake lines steal nodes from sleeping lines.
[[nodiscard]] ProtocolSpec fast_global_line();

/// Protocol 10 (Section 7). Conjectured improvement: followers dissolve
/// their own lines, feeding the surviving leader.
[[nodiscard]] ProtocolSpec faster_global_line();

/// Protocol 3. Degree-counting up to 2; waste <= 2.
[[nodiscard]] ProtocolSpec cycle_cover();

/// Protocol 4. Centers attract peripherals; peripherals repel each other.
[[nodiscard]] ProtocolSpec global_star();

/// Protocol 5 (journal version, with the PODC'14 bug fixed via the l-bar
/// state). Spanning ring via line formation + guarded closing.
[[nodiscard]] ProtocolSpec global_ring();

/// Protocol 6 == krc(2).
[[nodiscard]] ProtocolSpec two_rc();

/// Protocol 7. Connected spanning network where >= n-k+1 nodes reach
/// degree k (Theorem 11). Requires k >= 2.
[[nodiscard]] ProtocolSpec krc(int k);

/// Protocol 8. Partition into floor(n/c) cliques of order c. Requires c >= 3
/// (the paper's state chart implicitly assumes it; c = 2 is the
/// maximum-matching process).
[[nodiscard]] ProtocolSpec c_cliques(int c);

/// Protocol 9 (randomized / PREL). Replicates the input graph `g1`, provided
/// the population has >= 2 * g1.order() nodes. `g1` must be connected.
///
/// Output-set note: we take the output graph to be the active subgraph on
/// the V2 states {r0, r, ra, rd, r'} -- the problem definition in
/// Section 3.2 ("the output induced by the active edges between the nodes
/// of V2"). The paper's Qout = {r, ra, rd} would make the output node set
/// oscillate through the transient r' state forever.
[[nodiscard]] ProtocolSpec replication(const Graph& g1);

/// Theorem 1's upper bound: (a,a,0) -> (b,b,1), (a,b,0) -> (b,b,1)
/// constructs a spanning network in Theta(n log n).
[[nodiscard]] ProtocolSpec spanning_net();

/// Section 7 size-lower-bound discussion: a distinguished node acquires
/// exactly 2^d neighbors using Theta(d) states.
[[nodiscard]] ProtocolSpec degree_doubling(int d);

/// Theorem 15's (U, D, M) partition rules: matches every U-node with a
/// D-node and an M-node.
[[nodiscard]] ProtocolSpec partition_udm();

/// Section 7 discussion: with a pre-elected unique leader, the single rule
/// (l, q0, 0) -> (q1, l, 1) builds a stable spanning line in
/// Theta(n^2 log n) -- the target the paper's open question about composing
/// leader election with line construction is chasing. The spec's
/// initializer plants the leader (the "pre-elected" assumption).
[[nodiscard]] ProtocolSpec preelected_line();

/// All line constructors (for the Section 4 comparison bench).
[[nodiscard]] std::vector<ProtocolSpec> line_protocols();

}  // namespace netcons::protocols
