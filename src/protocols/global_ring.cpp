// Protocol 5 (Global-Ring), Section 5 -- the journal version, which fixes
// the PODC'14 bug by introducing the l-bar state so that lines of a single
// edge cannot close on each other.
//
// The protocol behaves like Simple-Global-Line, but an l-leader may also
// close its own line into a ring by connecting to a q1 endpoint; both nodes
// then become "blocked" (primed). A blocked node that detects evidence of
// another component (any l, l-bar, w, q1, q0, or another blocked node over
// an inactive edge) becomes double-primed, and a double-primed pair over the
// closing edge backtracks, reopening the cycle. A spanning ring has no other
// components to detect, so it stays closed -- and is quiescent.
#include "protocols/protocols.hpp"

#include "graph/predicates.hpp"

#include <array>

namespace netcons::protocols {

ProtocolSpec global_ring() {
  ProtocolBuilder b("Global-Ring");
  const StateId q0 = b.add_state("q0");
  const StateId q1 = b.add_state("q1");
  const StateId q2 = b.add_state("q2");
  const StateId l = b.add_state("l");
  const StateId w = b.add_state("w");
  const StateId lbar = b.add_state("l_bar");
  const StateId lp = b.add_state("l'");
  const StateId lpp = b.add_state("l''");
  const StateId q2p = b.add_state("q2'");
  const StateId q2pp = b.add_state("q2''");
  b.set_initial(q0);

  // Normal behavior begins only after a line has length 2 (edges): a fresh
  // pair gets the guarded leader l_bar, which cannot close a cycle.
  b.add_rule(q0, q0, false, q1, lbar, true);
  b.add_rule(l, q0, false, q2, l, true);
  b.add_rule(lbar, q0, false, q2, l, true);

  // Merging: a w-leader starts a random walk toward an endpoint.
  b.add_rule(l, l, false, q2, w, true);
  b.add_rule(l, lbar, false, q2, w, true);
  b.add_rule(lbar, lbar, false, q2, w, true);
  b.add_rule(w, q2, true, q2, w, true);
  b.add_rule(w, q1, true, q2, l, true);

  // An l connects to a q1 endpoint, possibly turning its own line into a
  // cycle; both nodes become blocked.
  b.add_rule(l, q1, false, lp, q2p, true);

  // Another component detected: a blocked node becomes double-primed.
  const std::array<StateId, 5> witnesses{l, lbar, w, q1, q0};
  for (const StateId y : witnesses) {
    b.add_rule(lp, y, false, lpp, y, false);
    b.add_rule(q2p, y, false, q2pp, y, false);
  }
  b.add_rule(lp, lp, false, lpp, lpp, false);
  b.add_rule(lp, q2p, false, lpp, q2pp, false);
  b.add_rule(q2p, q2p, false, q2pp, q2pp, false);

  // Opening closed cycles: a double-primed endpoint over the closing edge
  // backtracks to the unblocked line states.
  b.add_rule(lpp, q2p, true, l, q1, false);
  b.add_rule(lp, q2pp, true, l, q1, false);
  b.add_rule(lpp, q2pp, true, l, q1, false);

  ProtocolSpec spec;
  spec.protocol = b.build();
  spec.target = [](const Graph& g) { return is_spanning_ring(g); };
  spec.max_steps = [](int n) {
    const auto nn = static_cast<std::uint64_t>(n);
    return 64 * nn * nn * nn * nn * nn + 2'000'000;
  };
  spec.notes =
      "Protocol 5 (journal version with the l_bar fix); Theorem 9: constructs a "
      "spanning ring (n >= 3); no running-time bound is claimed.";
  return spec;
}

}  // namespace netcons::protocols
