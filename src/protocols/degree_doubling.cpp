// Section 7 discussion: the maximum degree of the target network is NOT a
// lower bound on protocol size -- Theta(d) states suffice for a
// distinguished node to acquire exactly 2^d neighbors, by repeated doubling:
//
//   (q0,  a0,  0) -> (q0', a1, 1)
//   (q0', a0,  0) -> (q,   a1, 1)
//   (q,   a_i, 1) -> (q_{i+1}, a_{i+1}, 1)   for 1 <= i <= d-1
//   (q_j, a0,  0) -> (q,   a_j, 1)           for 2 <= j <= d
//
// Every level-i neighbor is eventually upgraded to level i+1, and each
// upgrade debt (q_j) attaches one fresh level-j neighbor; independently of
// interleavings the node ends with exactly 2^d level-d neighbors.
#include "protocols/protocols.hpp"

#include <stdexcept>
#include <vector>

namespace netcons::protocols {

ProtocolSpec degree_doubling(int d) {
  if (d < 1 || d > 20) throw std::invalid_argument("degree_doubling: need 1 <= d <= 20");
  ProtocolBuilder b("Degree-Doubling(d=" + std::to_string(d) + ")");

  const StateId a0 = b.add_state("a0");
  std::vector<StateId> a(static_cast<std::size_t>(d) + 1);
  a[0] = a0;
  for (int i = 1; i <= d; ++i)
    a[static_cast<std::size_t>(i)] = b.add_state("a" + std::to_string(i));
  const StateId q0 = b.add_state("q0");
  const StateId q0p = b.add_state("q0'");
  const StateId q = b.add_state("q");
  std::vector<StateId> qj(static_cast<std::size_t>(d) + 1);  // q_2..q_d used
  for (int j = 2; j <= d; ++j)
    qj[static_cast<std::size_t>(j)] = b.add_state("q" + std::to_string(j));
  b.set_initial(a0);

  auto A = [&](int i) { return a[static_cast<std::size_t>(i)]; };

  b.add_rule(q0, a0, false, q0p, A(1), true);
  b.add_rule(q0p, a0, false, q, A(1), true);
  for (int i = 1; i <= d - 1; ++i) {
    b.add_rule(q, A(i), true, qj[static_cast<std::size_t>(i + 1)], A(i + 1), true);
  }
  for (int j = 2; j <= d; ++j) {
    b.add_rule(qj[static_cast<std::size_t>(j)], a0, false, q, A(j), true);
  }

  ProtocolSpec spec;
  spec.protocol = b.build();
  spec.initialize = [q0](World& w) { w.set_state(0, q0); };

  const std::int64_t want = std::int64_t{1} << d;
  spec.target = [want](const Graph& g) {
    if (g.edge_count() != want) return false;
    int hubs = 0;
    for (int u = 0; u < g.order(); ++u) {
      const int deg = g.degree(u);
      if (deg == want) {
        ++hubs;
      } else if (deg > 1) {
        return false;
      }
    }
    return hubs == 1;
  };
  spec.max_steps = [d](int n) {
    const auto nn = static_cast<std::uint64_t>(n);
    return 1024 * nn * nn * static_cast<std::uint64_t>(d + 1) + 1'000'000;
  };
  spec.notes = "Section 7: 2^d neighbors from Theta(d) states; needs n >= 2^d + 1.";
  return spec;
}

}  // namespace netcons::protocols
