// Protocols 6 and 7 (2RC and kRC), Section 5.
//
// State invariant: a node in q_i or l_i has active degree exactly i (l_i are
// leader states; every component keeps at least one leader). Nodes grow
// their degree toward k; leaders move around their component by swapping and
// eliminate each other pairwise. A full (degree-k) leader that detects
// another component (an inactive-edge encounter with q0, a leader, or
// another full leader) connects to it, entering the over-full state l_{k+1},
// and then sheds one of its other neighbors -- the mechanism that opens
// closed k-regular components so everything can merge into one connected
// spanning k-regular network (Theorems 10 and 11).
//
// The paper's parametrized rule families quantify over both orientations of
// each pair; per the Section 3.1 convention delta must be defined at exactly
// one, so we instantiate the canonical orientation (higher index first).
//
// Stable configurations are NOT quiescent (the unique leader keeps swapping
// through its component forever), so the spec carries a certificate proven
// by the structure above: unique leader in l_1..l_k, no q0, index == degree
// everywhere, no inactive edge between two deficient nodes, and a connected
// spanning active graph. No rule can then ever modify an edge.
#include "protocols/protocols.hpp"

#include "graph/predicates.hpp"

#include <stdexcept>
#include <vector>

namespace netcons::protocols {

ProtocolSpec krc(int k) {
  if (k < 2) throw std::invalid_argument("krc: need k >= 2");
  ProtocolBuilder b("kRC(k=" + std::to_string(k) + ")");

  // q0..qk then l1..l_{k+1}: 2(k+1) states.
  std::vector<StateId> q(static_cast<std::size_t>(k) + 1);
  std::vector<StateId> l(static_cast<std::size_t>(k) + 2);  // l[0] unused
  for (int i = 0; i <= k; ++i)
    q[static_cast<std::size_t>(i)] = b.add_state("q" + std::to_string(i));
  for (int i = 1; i <= k + 1; ++i)
    l[static_cast<std::size_t>(i)] = b.add_state("l" + std::to_string(i));
  b.set_initial(q[0]);

  auto Q = [&](int i) { return q[static_cast<std::size_t>(i)]; };
  auto L = [&](int i) { return l[static_cast<std::size_t>(i)]; };

  // Two isolated nodes connect; one becomes a leader (symmetry coin).
  b.add_rule(Q(0), Q(0), false, Q(1), L(1), true);

  // Deficient non-leaders connect (j <= i canonical; j = 0 attaches isolated
  // nodes).
  for (int i = 1; i < k; ++i) {
    for (int j = 0; j <= i; ++j) {
      b.add_rule(Q(i), Q(j), false, Q(i + 1), Q(j + 1), true);
    }
  }

  // Two deficient leaders connect; one leader survives.
  for (int i = 1; i < k; ++i) {
    for (int j = 1; j <= i; ++j) {
      b.add_rule(L(i), L(j), false, L(i + 1), Q(j + 1), true);
    }
  }

  // A deficient leader connects to a deficient non-leader; the leader role
  // jumps onto the attached node.
  for (int i = 1; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      b.add_rule(L(i), Q(j), false, Q(i + 1), L(j + 1), true);
    }
  }

  // Swapping: leaders keep moving inside components.
  for (int i = 1; i <= k; ++i) {
    for (int j = 1; j <= k; ++j) {
      b.add_rule(L(i), Q(j), true, Q(i), L(j), true);
    }
  }

  // Leader elimination across an active edge (j <= i canonical).
  for (int i = 1; i <= k; ++i) {
    for (int j = 1; j <= i; ++j) {
      b.add_rule(L(i), L(j), true, Q(i), L(j), true);
    }
  }

  // Opening k-regular components in the presence of other components.
  b.add_rule(L(k), Q(0), false, L(k + 1), Q(1), true);
  for (int i = 1; i < k; ++i) {
    b.add_rule(L(k), L(i), false, L(k + 1), Q(i + 1), true);
  }
  b.add_rule(L(k), L(k), false, L(k + 1), L(k + 1), true);

  // Shedding a neighbor afterwards (l_0 is read as q_0, cf. 2RC's explicit
  // (l3, l1, 1) -> (l2, q0, 0)).
  b.add_rule(L(k + 1), Q(1), true, L(k), Q(0), false);
  for (int i = 2; i <= k; ++i) {
    b.add_rule(L(k + 1), Q(i), true, L(k), L(i - 1), false);
  }
  b.add_rule(L(k + 1), L(1), true, L(k), Q(0), false);
  for (int i = 2; i <= k; ++i) {
    b.add_rule(L(k + 1), L(i), true, L(k), L(i - 1), false);
  }
  b.add_rule(L(k + 1), L(k + 1), true, L(k), L(k), false);

  ProtocolSpec spec;
  spec.protocol = b.build();
  spec.target = [k](const Graph& g) { return is_k_regular_connected_relaxed(g, k); };

  const StateId q0_id = Q(0);
  const StateId l_first = L(1);
  const StateId l_overfull = L(k + 1);
  spec.certificate = [k, q0_id, l_first, l_overfull](const Protocol&, const World& w) {
    if (w.census(q0_id) != 0) return false;
    if (w.census(l_overfull) != 0) return false;
    int leaders = 0;
    for (StateId s = l_first; s < l_overfull; ++s) leaders += w.census(s);
    if (leaders != 1) return false;
    // index == degree for every node; collect deficient nodes.
    std::vector<int> deficient;
    for (int u = 0; u < w.size(); ++u) {
      const StateId s = w.state(u);
      const int index = (s >= l_first) ? (s - l_first + 1) : s;  // q_i are 0..k
      if (index != w.active_degree(u)) return false;
      if (w.active_degree(u) < k) deficient.push_back(u);
    }
    if (static_cast<int>(deficient.size()) > k - 1) return false;
    for (std::size_t a = 0; a < deficient.size(); ++a) {
      for (std::size_t c = a + 1; c < deficient.size(); ++c) {
        if (!w.edge(deficient[a], deficient[c])) return false;
      }
    }
    return is_connected(w.active_graph());
  };
  spec.max_steps = [](int n) {
    const auto nn = static_cast<std::uint64_t>(n);
    return 64 * nn * nn * nn * nn * nn + 2'000'000;
  };
  spec.notes = "Protocols 6/7; Theorems 10/11. Certificate required (leader swaps forever).";
  return spec;
}

ProtocolSpec two_rc() { return krc(2); }

}  // namespace netcons::protocols
