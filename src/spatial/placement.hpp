// The spatial workload layer: a 2D embedding of the population into the
// unit square. The paper's model has no geometry -- the uniform scheduler
// picks any pair -- but real deployments (DTN broadcast, sensor fields)
// interact by proximity, and the ProximityScheduler (src/sched/) weights
// pair selection by the distances this layer assigns.
//
// A Placement is built once per trial from the trial's own RNG stream, so
// it is a pure function of the trial seed: the same trial gets the same
// embedding no matter which engine runs it, which thread runs it, or how
// the campaign was sharded. The grid layout consumes no randomness at all;
// uniform and clustered consume a fixed number of draws per node.
#pragma once

#include "util/rng.hpp"

#include <optional>
#include <string>
#include <vector>

namespace netcons::spatial {

/// How the n nodes are embedded into [0, 1]^2.
enum class Layout {
  kUniform,    ///< i.i.d. uniform positions.
  kClustered,  ///< ~sqrt(n)/2 uniform cluster centers + Gaussian offsets.
  kGrid        ///< Deterministic ceil(sqrt(n))-side lattice of cell centers.
};

/// Registry names, also the `layout=` values of the proximity scheduler
/// spec grammar (campaign/registry.cpp).
[[nodiscard]] std::optional<Layout> layout_by_name(const std::string& name);
[[nodiscard]] const char* layout_name(Layout layout) noexcept;

struct Point {
  double x = 0.0;
  double y = 0.0;
};

class Placement {
 public:
  Placement() = default;

  /// Embed n nodes under `layout`, consuming position draws from `rng`.
  /// The draw count is a function of (layout, n) only, so callers that
  /// build the placement at different times (naive scheduler vs census
  /// weight model) leave the stream in the same state.
  [[nodiscard]] static Placement make(Layout layout, int n, Rng& rng);

  [[nodiscard]] int size() const noexcept { return static_cast<int>(points_.size()); }

  [[nodiscard]] const Point& position(int u) const noexcept {
    return points_[static_cast<std::size_t>(u)];
  }

  /// Euclidean distance between nodes u and v.
  [[nodiscard]] double distance(int u, int v) const noexcept;

 private:
  std::vector<Point> points_;
};

}  // namespace netcons::spatial
