#include "spatial/placement.hpp"

#include <algorithm>
#include <cmath>

namespace netcons::spatial {

namespace {

/// Standard deviation of the Gaussian offset around a cluster center, in
/// unit-square coordinates. Small enough that clusters are visibly denser
/// than the background at the default cutoff radius 0.1.
constexpr double kClusterSigma = 0.05;

Point gaussian_offset(Rng& rng) {
  // Box-Muller. 1 - u1 is in (0, 1], so the log argument never hits zero.
  const double u1 = rng.uniform();
  const double u2 = rng.uniform();
  const double radius = kClusterSigma * std::sqrt(-2.0 * std::log(1.0 - u1));
  const double angle = 2.0 * std::acos(-1.0) * u2;
  return {radius * std::cos(angle), radius * std::sin(angle)};
}

}  // namespace

std::optional<Layout> layout_by_name(const std::string& name) {
  if (name == "uniform") return Layout::kUniform;
  if (name == "clustered") return Layout::kClustered;
  if (name == "grid") return Layout::kGrid;
  return std::nullopt;
}

const char* layout_name(Layout layout) noexcept {
  switch (layout) {
    case Layout::kUniform: return "uniform";
    case Layout::kClustered: return "clustered";
    case Layout::kGrid: return "grid";
  }
  return "uniform";
}

Placement Placement::make(Layout layout, int n, Rng& rng) {
  Placement placement;
  placement.points_.reserve(static_cast<std::size_t>(n));
  switch (layout) {
    case Layout::kUniform: {
      for (int u = 0; u < n; ++u) {
        const double x = rng.uniform();
        const double y = rng.uniform();
        placement.points_.push_back({x, y});
      }
      break;
    }
    case Layout::kClustered: {
      const int centers =
          std::max(1, static_cast<int>(std::lround(std::sqrt(static_cast<double>(n)) / 2.0)));
      std::vector<Point> cluster;
      cluster.reserve(static_cast<std::size_t>(centers));
      for (int c = 0; c < centers; ++c) {
        const double x = rng.uniform();
        const double y = rng.uniform();
        cluster.push_back({x, y});
      }
      for (int u = 0; u < n; ++u) {
        const auto c = static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(centers)));
        const Point offset = gaussian_offset(rng);
        placement.points_.push_back({std::clamp(cluster[c].x + offset.x, 0.0, 1.0),
                                     std::clamp(cluster[c].y + offset.y, 0.0, 1.0)});
      }
      break;
    }
    case Layout::kGrid: {
      const int side =
          std::max(1, static_cast<int>(std::ceil(std::sqrt(static_cast<double>(n)))));
      for (int u = 0; u < n; ++u) {
        const int col = u % side;
        const int row = u / side;
        placement.points_.push_back({(static_cast<double>(col) + 0.5) / side,
                                     (static_cast<double>(row) + 0.5) / side});
      }
      break;
    }
  }
  return placement;
}

double Placement::distance(int u, int v) const noexcept {
  const Point& a = points_[static_cast<std::size_t>(u)];
  const Point& b = points_[static_cast<std::size_t>(v)];
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace netcons::spatial
