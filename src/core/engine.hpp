// The pluggable execution-engine API.
//
// An Engine owns one simulation: a World evolving under a Protocol as
// scheduled encounters are applied. The interface is everything the
// surrounding layers (fault injection, campaign trials, analysis sweeps,
// CLI tools) need from an execution core: stepping, counters, world access,
// the pre-step interceptor hook, and sound stabilization detection.
//
// Two engines implement it today:
//  * NaiveEngine (= Simulator, core/simulator.hpp) executes every
//    scheduler-chosen encounter one virtual call at a time -- the paper's
//    model verbatim, and the reference semantics.
//  * CensusEngine (core/census_engine.hpp) samples only *effective*
//    encounters directly from a census of state-pair multiplicities and
//    advances the step counter by the geometrically-distributed count of
//    skipped ineffective steps -- distributionally faithful convergence
//    samples at O(1) expected cost per effective interaction.
//
// The step counters are the paper's running-time clock: `steps()` counts
// every scheduled interaction (including ineffective ones an engine may
// have skipped over without executing), and `last_output_change()` is the
// last step at which the output graph G(C) changed -- the reported
// convergence step.
#pragma once

#include "core/protocol.hpp"
#include "core/world.hpp"
#include "util/rng.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>

namespace netcons::telemetry {
class Registry;
}  // namespace netcons::telemetry

namespace netcons {

/// Sound recognizer of output-stable configurations (beyond quiescence).
using StabilityCertificate = std::function<bool(const Protocol&, const World&)>;

class Engine;

/// Hook invoked before every scheduled encounter. The one user today is the
/// fault-injection layer (src/faults/), which mutates the world between
/// steps; engines pay only a null-pointer check when no interceptor is
/// installed, keeping the fault-free hot path untouched. An engine that
/// cannot honor per-step hooks exactly (CensusEngine skips ineffective
/// steps wholesale) must fall back to exact per-step execution while one is
/// installed.
class StepInterceptor {
 public:
  virtual ~StepInterceptor() = default;
  virtual void before_step(Engine& engine) = 0;
};

struct ConvergenceReport {
  bool stabilized = false;       ///< A sound stability condition was reached.
  bool quiescent = false;        ///< Stability was full quiescence.
  bool certified = false;        ///< Stability came from the certificate.
  std::uint64_t steps_executed = 0;   ///< Total steps run in this call.
  std::uint64_t convergence_step = 0; ///< Last step the output graph changed.

  // --- fault/recovery extension -------------------------------------------
  // Populated by faults::run_until_stable_with_faults; all zero on fault-free
  // runs. Edge accounting is exact when faults fire at stabilization (the
  // default) and approximate when they interleave with initial construction.
  std::uint64_t faults_injected = 0;  ///< Fault events applied during the run.
  std::uint64_t last_fault_step = 0;  ///< Step at which the last fault fired.
  /// Re-stabilization time: convergence_step - last_fault_step.
  std::uint64_t recovery_steps = 0;
  std::uint64_t output_edges_deleted = 0;   ///< G(C) edges destroyed by faults.
  std::uint64_t output_edges_repaired = 0;  ///< Of those, rebuilt (by count) at the end.
  std::uint64_t output_edges_residual = 0;  ///< Damage still missing at the end.
};

class Engine {
 public:
  virtual ~Engine() = default;

  /// Stable identifier of the execution strategy ("naive", "census"); what
  /// campaign grid points and trial-record fingerprints carry.
  [[nodiscard]] virtual const char* engine_name() const noexcept = 0;

  [[nodiscard]] virtual const Protocol& protocol() const noexcept = 0;
  [[nodiscard]] virtual const World& world() const noexcept = 0;
  /// Mutable access for custom initial configurations (e.g. Replication's
  /// input graph) and fault injection. An engine that caches derived state
  /// (CensusEngine's multiplicity tables) must treat this as an
  /// invalidation signal.
  [[nodiscard]] virtual World& mutable_world() noexcept = 0;
  [[nodiscard]] virtual Rng& rng() noexcept = 0;

  [[nodiscard]] virtual std::uint64_t steps() const noexcept = 0;
  [[nodiscard]] virtual std::uint64_t effective_steps() const noexcept = 0;
  [[nodiscard]] virtual std::uint64_t last_output_change() const noexcept = 0;

  /// Install (or clear, with nullptr) the pre-step hook. Not owned.
  virtual void set_interceptor(StepInterceptor* interceptor) noexcept = 0;

  /// Record that the output graph was changed externally (a fault deleted an
  /// output edge or removed an output node), so convergence_step accounting
  /// stays sound under injection.
  virtual void note_output_change() noexcept = 0;

  /// Execute one interaction. Returns true if it was effective. Engines
  /// that skip ineffective interactions may advance `steps()` by more than
  /// one per call.
  virtual bool step() = 0;

  /// Execute exactly `count` (further) steps of the paper's clock.
  virtual void run(std::uint64_t count) = 0;

  /// Run until `pred(world)` holds (the world only changes on effective
  /// steps, so engines may check on those; keep it O(1), e.g. census-based)
  /// or until `max_steps`. Returns the step count at which the predicate
  /// first held, or nullopt on timeout.
  [[nodiscard]] virtual std::optional<std::uint64_t> run_until(
      const std::function<bool(const World&)>& pred, std::uint64_t max_steps) = 0;

  struct StabilityOptions {
    std::uint64_t max_steps = 0;        ///< 0: derive a generous default.
    std::uint64_t check_interval = 0;   ///< 0: derive ~n^2 amortized default.
    StabilityCertificate certificate;   ///< Optional protocol-specific proof.
  };

  /// The derived defaults every run_until_stable implementation (and the
  /// fault recovery driver) shares, so the amortization grid and the step
  /// budget cannot drift between engines: check every ~n^2 steps, and cap
  /// at a budget generous enough for the paper's slowest protocols
  /// (callers measuring the O(n^5) regime pass an explicit budget).
  struct StabilityBudget {
    std::uint64_t check_interval = 0;
    std::uint64_t max_steps = 0;
  };
  [[nodiscard]] static StabilityBudget resolve_stability_budget(
      int n, const StabilityOptions& options) noexcept {
    const auto nn = static_cast<std::uint64_t>(n);
    StabilityBudget budget;
    budget.check_interval = options.check_interval ? options.check_interval
                                                   : std::max<std::uint64_t>(512, nn * nn);
    budget.max_steps = options.max_steps
                           ? options.max_steps
                           : std::max<std::uint64_t>(1'000'000, nn * nn * nn * 64);
    return budget;
  }

  /// Run until stabilization is certified (quiescence or certificate).
  [[nodiscard]] virtual ConvergenceReport run_until_stable(const StabilityOptions& options) = 0;
  [[nodiscard]] ConvergenceReport run_until_stable() { return run_until_stable({}); }

  /// No encounter is effective in the current configuration (O(n^2) scan
  /// in the naive engine; O(1) in the census engine while its tables are
  /// fresh).
  [[nodiscard]] virtual bool is_quiescent() const = 0;

  /// No encounter can modify an edge in the current configuration (useful
  /// inside certificates; NOT sufficient for stability on its own since
  /// node dynamics may re-enable edge rules).
  [[nodiscard]] virtual bool is_edge_quiescent() const = 0;

  /// Publish this engine's internal counters into a telemetry registry
  /// (engine.* / census.* metric names; see README "Observability"). Called
  /// by trial drivers after a run completes, never on the hot path. The
  /// default publishes nothing, so Engine implementations outside this repo
  /// stay source-compatible.
  virtual void publish_metrics(telemetry::Registry& /*registry*/) {}
};

}  // namespace netcons
