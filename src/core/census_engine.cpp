#include "core/census_engine.hpp"

#include "graph/graph.hpp"
#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

namespace netcons {

namespace {

/// Report a naive fallback. With an ambient telemetry registry the event is
/// structured -- the census.fallback counter plus a per-reason counter
/// (census.fallback.scheduler / census.fallback.interceptor) count every
/// occurrence, and a trace instant marks when it happened -- and stderr
/// stays quiet. Without telemetry, one stderr line per process per reason:
/// a campaign constructs thousands of engines, and one identical note per
/// trial would drown the console without saying anything new.
void note_fallback(std::atomic<bool>& noted, const char* reason_key, const char* reason_text) {
  if (telemetry::Registry* reg = telemetry::registry()) {
    reg->add("census.fallback");
    reg->add(std::string("census.fallback.") + reason_key);
    if (telemetry::Tracer* tracer = telemetry::tracer()) {
      tracer->instant("census.fallback", "engine");
    }
    return;
  }
  if (noted.exchange(true)) return;
  std::fprintf(stderr,
               "census engine: cannot honor %s exactly; falling back to naive "
               "per-step execution\n",
               reason_text);
}

std::atomic<bool> g_noted_scheduler{false};
std::atomic<bool> g_noted_interceptor{false};

}  // namespace

std::vector<EffectiveClass> effective_state_classes(const Protocol& protocol) {
  std::vector<EffectiveClass> out;
  const int q = protocol.state_count();
  for (int a = 0; a < q; ++a) {
    for (int b = a; b < q; ++b) {
      for (const bool c : {false, true}) {
        if (!protocol.ineffective(static_cast<StateId>(a), static_cast<StateId>(b), c)) {
          out.push_back({static_cast<StateId>(a), static_cast<StateId>(b), c});
        }
      }
    }
  }
  return out;
}

CensusEngine::CensusEngine(Protocol protocol, int n, std::uint64_t seed,
                           std::unique_ptr<Scheduler> scheduler, CensusLeapOptions leap)
    : Simulator(std::move(protocol), n, seed, std::move(scheduler)), leap_(leap) {
  // Census sampling natively assumes every unordered pair is equally
  // likely each step; that is exactly the uniform random scheduler
  // (whether installed by default or passed explicitly). A non-uniform
  // scheduler that can state its law as static per-pair weights exports a
  // weight model and runs on weighted census sampling; only a scheduler
  // without one (an exact script) gets the naive path. Querying the model
  // here consumes exactly the engine-RNG draws the scheduler's first
  // next() would (e.g. the spatial placement), so the naive and census
  // engines see the same embedding for a given trial seed.
  const auto* uniform = dynamic_cast<const UniformRandomScheduler*>(Simulator::scheduler());
  custom_scheduler_ = uniform == nullptr;
  if (custom_scheduler_) {
    weight_model_ = Simulator::mutable_scheduler()->weight_model(rng(), n);
    if (weight_model_ != nullptr) {
      custom_scheduler_ = false;  // weighted sampling is exact, not a fallback
    } else {
      note_fallback(g_noted_scheduler, "scheduler", "a non-uniform scheduler");
      return;  // the tables are never built; no journal needed
    }
  }
  // Journal capacity: past ~2 entries per node, replaying costs about as
  // much as the full rebuild the overflow falls back to.
  log_.capacity = std::max<std::size_t>(1024, static_cast<std::size_t>(n) * 2);
  Simulator::mutable_world().set_mutation_log(&log_);
}

void CensusEngine::set_interceptor(StepInterceptor* interceptor) noexcept {
  if (interceptor != nullptr && !custom_scheduler_) {
    note_fallback(g_noted_interceptor, "interceptor", "a step interceptor");
  }
  interceptor_installed_ = interceptor != nullptr;
  // Everything the interceptor (and the naive per-step phase under it)
  // mutates lands in the journal; census sampling resumes with an exact
  // delta replay, or one full rebuild if the phase overflowed it.
  Simulator::set_interceptor(interceptor);
}

std::uint32_t CensusEngine::bucket_key(StateId a, StateId b) const noexcept {
  // a <= b by normalization; one slot per unordered state pair.
  return static_cast<std::uint32_t>(a) *
             static_cast<std::uint32_t>(protocol().state_count()) +
         static_cast<std::uint32_t>(b);
}

std::uint64_t CensusEngine::class_multiplicity(const EffectiveClass& cls) const noexcept {
  const std::uint64_t active = buckets_[bucket_key(cls.a, cls.b)].size();
  if (cls.c) return active;
  const std::uint64_t cnt_a = nodes_by_state_[cls.a].size();
  std::uint64_t pairs = 0;
  if (cls.a == cls.b) {
    pairs = cnt_a < 2 ? 0 : cnt_a * (cnt_a - 1) / 2;
  } else {
    pairs = cnt_a * nodes_by_state_[cls.b].size();
  }
  return pairs - active;
}

void CensusEngine::rebuild_tables() {
  ++stats_.full_rebuilds;
  const World& w = world();
  const int q = protocol().state_count();
  const int n = w.size();

  classes_ = effective_state_classes(protocol());
  const std::size_t c = classes_.size();
  classes_by_state_.assign(static_cast<std::size_t>(q), {});
  for (std::uint32_t i = 0; i < c; ++i) {
    classes_by_state_[classes_[i].a].push_back(i);
    if (classes_[i].b != classes_[i].a) classes_by_state_[classes_[i].b].push_back(i);
  }
  weight_.assign(c, 0);
  snapshot_.assign(c, 0);
  snapshot_total_ = 0;
  alias_height_.assign(c, 0);
  alias_other_.assign(c, 0);
  class_dirty_.assign(c, 0);
  dirty_.clear();
  surplus_total_ = 0;
  total_weight_ = 0;
  weights_stale_ = true;
  alias_built_ = false;

  nodes_by_state_.assign(static_cast<std::size_t>(q), {});
  node_pos_.assign(static_cast<std::size_t>(n), -1);
  buckets_.assign(static_cast<std::size_t>(q) * static_cast<std::size_t>(q), {});
  adj_inline_.assign(static_cast<std::size_t>(n) * kInlineAdj, 0);
  adj_len_.assign(static_cast<std::size_t>(n), 0);
  adj_over_.assign(static_cast<std::size_t>(n), {});
  edges_.clear();
  free_slots_.clear();

  for (int u = 0; u < n; ++u) {
    if (!w.alive(u)) continue;  // crashed nodes leave the sampling support
    auto& list = nodes_by_state_[w.state(u)];
    node_pos_[static_cast<std::size_t>(u)] = static_cast<std::int32_t>(list.size());
    list.push_back(u);
  }
  // The kill() invariant guarantees dead nodes are edge-free, so every
  // active edge has two alive endpoints.
  w.for_each_active_edge([this](int u, int v) { insert_edge(u, v); });
  log_.clear();
}

void CensusEngine::sync_tables() {
  if (tables_dirty_ || log_.overflowed) {
    rebuild_tables();
    tables_dirty_ = false;
    return;
  }
  if (log_.entries.empty()) return;
  for (const auto& entry : log_.entries) {
    apply_log_entry(entry);
    if (tables_dirty_) break;  // inconsistent journal; resync from scratch
  }
  log_.clear();
  if (tables_dirty_) {
    rebuild_tables();
    tables_dirty_ = false;
  }
}

void CensusEngine::apply_log_entry(const WorldMutationLog::Entry& entry) {
  ++stats_.delta_updates;
  const int u = entry.u;
  const int v = entry.v;
  switch (entry.kind) {
    case WorldMutationLog::Kind::kSetState: {
      node_list_move(u, entry.prev, entry.next);
      // Rebucketing reads the world's *final* endpoint states; any
      // endpoint whose state differs mid-journal has its own later
      // kSetState entry that rebuckets the edge again, so the replayed
      // tables land exactly on the world's final configuration.
      for (std::uint32_t pos = 0; pos < adj_len_[static_cast<std::size_t>(u)]; ++pos) {
        rebucket_edge(adj_at(u, pos));
      }
      touch_state_classes(entry.prev);
      if (entry.next != entry.prev) touch_state_classes(entry.next);
      break;
    }
    case WorldMutationLog::Kind::kEdgeOn: {
      insert_edge(u, v);
      const StateId a = world().state(u);
      const StateId b = world().state(v);
      touch_state_classes(a);
      if (b != a) touch_state_classes(b);
      break;
    }
    case WorldMutationLog::Kind::kEdgeOff: {
      const std::uint32_t slot = find_edge_slot(u, v);
      if (slot == kNoSlot) {
        tables_dirty_ = true;  // journal out of sync with the tables
        return;
      }
      const auto q = static_cast<std::uint32_t>(protocol().state_count());
      const std::uint32_t key = edges_[slot].bucket;
      erase_edge(slot);
      touch_state_classes(static_cast<StateId>(key / q));
      if (key / q != key % q) touch_state_classes(static_cast<StateId>(key % q));
      break;
    }
    case WorldMutationLog::Kind::kKill: {
      if (adj_len_[static_cast<std::size_t>(u)] != 0) {
        tables_dirty_ = true;  // kill's incident kEdgeOff entries must precede it
        return;
      }
      node_list_remove(u, entry.prev);
      touch_state_classes(entry.prev);
      break;
    }
  }
}

void CensusEngine::insert_edge(int u, int v) {
  if (u > v) std::swap(u, v);
  std::uint32_t slot = 0;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(edges_.size());
    edges_.emplace_back();
  }
  EdgeSlot& e = edges_[slot];
  e.u = u;
  e.v = v;
  const StateId su = world().state(u);
  const StateId sv = world().state(v);
  const std::uint32_t key = bucket_key(std::min(su, sv), std::max(su, sv));
  e.bucket = key;
  auto& bucket = buckets_[key];
  e.bucket_pos = static_cast<std::uint32_t>(bucket.size());
  bucket.push_back(slot);
  e.pos_u = adj_push(u, slot);
  e.pos_v = adj_push(v, slot);
}

void CensusEngine::erase_edge(std::uint32_t slot) {
  const EdgeSlot e = edges_[slot];  // by value: adj_swap_remove mutates edges_
  auto& bucket = buckets_[e.bucket];
  const std::uint32_t moved_b = bucket.back();
  bucket[e.bucket_pos] = moved_b;
  bucket.pop_back();
  if (moved_b != slot) edges_[moved_b].bucket_pos = e.bucket_pos;

  adj_swap_remove(e.u, e.pos_u);
  // The first removal may have moved this very slot within v's list; its
  // stored position is only stale if the moved entry was `slot` itself,
  // which adj_swap_remove keeps coherent by updating edges_[slot].pos_v.
  adj_swap_remove(e.v, edges_[slot].pos_v);
  free_slots_.push_back(slot);
}

void CensusEngine::rebucket_edge(std::uint32_t slot) {
  EdgeSlot& e = edges_[slot];
  auto& old_bucket = buckets_[e.bucket];
  const std::uint32_t moved = old_bucket.back();
  old_bucket[e.bucket_pos] = moved;
  old_bucket.pop_back();
  if (moved != slot) edges_[moved].bucket_pos = e.bucket_pos;

  const StateId su = world().state(e.u);
  const StateId sv = world().state(e.v);
  const std::uint32_t key = bucket_key(std::min(su, sv), std::max(su, sv));
  e.bucket = key;
  auto& bucket = buckets_[key];
  e.bucket_pos = static_cast<std::uint32_t>(bucket.size());
  bucket.push_back(slot);
}

std::uint32_t CensusEngine::find_edge_slot(int u, int v) const noexcept {
  if (u > v) std::swap(u, v);
  const std::uint32_t lu = adj_len_[static_cast<std::size_t>(u)];
  const std::uint32_t lv = adj_len_[static_cast<std::size_t>(v)];
  const int node = lu <= lv ? u : v;
  const std::uint32_t len = lu <= lv ? lu : lv;
  for (std::uint32_t pos = 0; pos < len; ++pos) {
    const std::uint32_t slot = adj_at(node, pos);
    if (edges_[slot].u == u && edges_[slot].v == v) return slot;
  }
  return kNoSlot;
}

void CensusEngine::node_list_move(int u, StateId from, StateId to) {
  auto& old_list = nodes_by_state_[from];
  const std::int32_t pos = node_pos_[static_cast<std::size_t>(u)];
  const std::int32_t moved = old_list.back();
  old_list[static_cast<std::size_t>(pos)] = moved;
  old_list.pop_back();
  node_pos_[static_cast<std::size_t>(moved)] = pos;

  auto& new_list = nodes_by_state_[to];
  node_pos_[static_cast<std::size_t>(u)] = static_cast<std::int32_t>(new_list.size());
  new_list.push_back(u);
}

void CensusEngine::node_list_remove(int u, StateId from) {
  auto& list = nodes_by_state_[from];
  const std::int32_t pos = node_pos_[static_cast<std::size_t>(u)];
  const std::int32_t moved = list.back();
  list[static_cast<std::size_t>(pos)] = moved;
  list.pop_back();
  node_pos_[static_cast<std::size_t>(moved)] = pos;
  node_pos_[static_cast<std::size_t>(u)] = -1;
}

void CensusEngine::touch_class(std::uint32_t ci) {
  const std::uint64_t now = class_multiplicity(classes_[ci]);
  const std::uint64_t old = weight_[ci];
  if (now == old) return;
  if (alias_built_) {
    const std::uint64_t snap = snapshot_[ci];
    if (class_dirty_[ci] == 0) {
      class_dirty_[ci] = 1;
      dirty_.push_back(ci);
    }
    surplus_total_ += now > snap ? now - snap : 0;
    surplus_total_ -= old > snap ? old - snap : 0;
  }
  total_weight_ += now;
  total_weight_ -= old;
  weight_[ci] = now;
}

void CensusEngine::touch_state_classes(StateId q) {
  // During a leap batch the whole weight array is wholesale-stale and
  // refreshes at batch end; incremental maintenance would only corrupt the
  // running totals.
  if (weights_stale_) return;
  for (const std::uint32_t ci : classes_by_state_[q]) touch_class(ci);
}

void CensusEngine::refresh_weights() {
  total_weight_ = 0;
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    weight_[i] = class_multiplicity(classes_[i]);
    total_weight_ += weight_[i];
  }
  for (const std::uint32_t ci : dirty_) class_dirty_[ci] = 0;
  dirty_.clear();
  surplus_total_ = 0;
  weights_stale_ = false;
  alias_built_ = false;  // the old snapshot's bookkeeping no longer applies
}

void CensusEngine::rebuild_alias() {
  ++stats_.alias_rebuilds;
  const std::size_t c = classes_.size();
  snapshot_ = weight_;
  snapshot_total_ = total_weight_;
  for (const std::uint32_t ci : dirty_) class_dirty_[ci] = 0;
  dirty_.clear();
  surplus_total_ = 0;
  alias_height_.assign(c, 0);
  alias_other_.resize(c);
  for (std::size_t i = 0; i < c; ++i) alias_other_[i] = static_cast<std::uint32_t>(i);
  alias_built_ = true;
  if (snapshot_total_ == 0 || c == 0) return;

  // Integer Vose construction: class i owns h_i = w_i * |C| of the S * |C|
  // total tokens (S = snapshot_total_); each of the |C| columns holds
  // exactly S tokens from at most two classes. Exact in uint64 (w_i <=
  // n^2/2 and |C| is protocol-table-sized), so draws need no
  // floating-point correction.
  std::vector<std::uint64_t> h(c);
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  for (std::size_t i = 0; i < c; ++i) {
    h[i] = snapshot_[i] * static_cast<std::uint64_t>(c);
    (h[i] < snapshot_total_ ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    alias_height_[s] = h[s];
    alias_other_[s] = l;
    h[l] -= snapshot_total_ - h[s];
    if (h[l] < snapshot_total_) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Exact-integer token conservation: every leftover column is full.
  for (const std::uint32_t i : large) alias_height_[i] = snapshot_total_;
  for (const std::uint32_t i : small) alias_height_[i] = snapshot_total_;
}

bool CensusEngine::alias_rebuild_due() const noexcept {
  if (!alias_built_) return true;
  // Bounded dirty set keeps the surplus walk short; bounded surplus and
  // capped mass keep both mixture branches O(1) expected per draw.
  if (dirty_.size() >= std::max<std::size_t>(32, classes_.size() / 8)) return true;
  if (surplus_total_ * 2 >= total_weight_) return true;
  const std::uint64_t capped = total_weight_ - surplus_total_;
  return capped * 2 < snapshot_total_;
}

std::size_t CensusEngine::alias_only_draw() {
  const std::uint32_t col = static_cast<std::uint32_t>(rng().below(classes_.size()));
  const std::uint64_t r = rng().below(snapshot_total_);
  return r < alias_height_[col] ? col : alias_other_[col];
}

std::size_t CensusEngine::draw_class() {
  if (alias_rebuild_due()) rebuild_alias();
  // Mixture decomposition against the snapshot: with probability
  // surplus/W resolve from the dirty classes' weight *gains*; otherwise
  // propose from the alias table (~ snapshot) and accept with
  // min(w, s)/s, so P(i) = (surplus_i + min(w_i, s_i)) / W = w_i / W --
  // exact against the current weights, in integers.
  const std::uint64_t r = rng().below(total_weight_);
  if (r < surplus_total_) {
    std::uint64_t acc = 0;
    for (const std::uint32_t ci : dirty_) {
      const std::uint64_t w = weight_[ci];
      const std::uint64_t snap = snapshot_[ci];
      acc += w > snap ? w - snap : 0;
      if (r < acc) return ci;
    }
  }
  while (true) {
    const std::size_t ci = alias_only_draw();
    if (class_dirty_[ci] == 0) return ci;  // weight unchanged since snapshot
    const std::uint64_t w = weight_[ci];
    const std::uint64_t snap = snapshot_[ci];
    if (w >= snap) return ci;
    if (w > 0 && rng().below(snap) < w) return ci;  // accept with exactly w/s
  }
}

std::uint64_t CensusEngine::effective_pair_weight() {
  end_leap_batch();
  sync_tables();
  if (weights_stale_) refresh_weights();
  return total_weight_;
}

std::uint64_t CensusEngine::geometric_skips(double p) {
  if (p >= 1.0) return 0;
  // Inverse-CDF draw for the number of failures before the first success:
  // floor(ln U / ln(1 - p)), U in (0, 1].
  const double u = 1.0 - rng().uniform();
  const double g = std::log(u) / std::log1p(-p);
  if (!(g >= 0.0)) return 0;
  if (g >= 9.0e18) return std::numeric_limits<std::uint64_t>::max() / 2;
  return static_cast<std::uint64_t>(g);
}

CensusEngine::BucketEdge CensusEngine::sample_pair(const EffectiveClass& cls,
                                                   std::uint64_t multiplicity) {
  if (cls.c) {
    // The stored (u, v) orientation is fine even for a == b: the model's
    // symmetry-breaking coin in Simulator::apply assigns asymmetric
    // same-state outcomes equiprobably regardless of argument order, and
    // for a != b the rule table resolves orientation from the states.
    const auto& bucket = buckets_[bucket_key(cls.a, cls.b)];
    const std::uint32_t slot = bucket[rng().below(bucket.size())];
    return {edges_[slot].u, edges_[slot].v, slot};
  }

  const std::vector<std::int32_t>& as = nodes_by_state_[cls.a];
  const std::vector<std::int32_t>& bs = nodes_by_state_[cls.b];
  // Rejection over the (a, b) node product is uniform over the non-edge
  // pairs; it only degenerates when almost every such pair is an active
  // edge, so a capped loop with an exact O(|a||b|) fallback keeps the
  // expected cost O(1) without a worst-case tail.
  for (int attempt = 0; attempt < 64; ++attempt) {
    int u = 0;
    int v = 0;
    if (cls.a == cls.b) {
      const std::uint64_t i = rng().below(as.size());
      std::uint64_t j = rng().below(as.size() - 1);
      if (j >= i) ++j;
      u = as[static_cast<std::size_t>(i)];
      v = as[static_cast<std::size_t>(j)];
    } else {
      u = as[static_cast<std::size_t>(rng().below(as.size()))];
      v = bs[static_cast<std::size_t>(rng().below(bs.size()))];
    }
    if (!world().edge(u, v)) return {u, v};
  }

  std::uint64_t r = rng().below(multiplicity);
  if (cls.a == cls.b) {
    for (std::size_t i = 0; i < as.size(); ++i) {
      for (std::size_t j = i + 1; j < as.size(); ++j) {
        if (world().edge(as[i], as[j])) continue;
        if (r == 0) return {as[i], as[j]};
        --r;
      }
    }
  } else {
    for (const int u : as) {
      for (const int v : bs) {
        if (world().edge(u, v)) continue;
        if (r == 0) return {u, v};
        --r;
      }
    }
  }
  // Unreachable: multiplicity counts exactly the non-edge pairs above.
  return {as.front(), cls.a == cls.b ? as[1] : bs.front()};
}

void CensusEngine::execute_and_update(int u, int v, std::uint32_t slot_hint) {
  const World& w = world();
  const StateId sa = w.state(u);
  const StateId sb = w.state(v);
  // The slot scan doubles as the edge-existence probe; no World query.
  const std::uint32_t slot = slot_hint != kNoSlot ? slot_hint : find_edge_slot(u, v);
  const bool had_edge = slot != kNoSlot;

  // Leave the journal recording: the log is clean here (census_step syncs
  // on entry), so the encounter's own <= 3 entries are ours to consume --
  // reading the edge outcome from them beats re-probing the world.
  const bool effective = execute_encounter(u, v, had_edge);
  if (!effective) tables_dirty_ = true;  // impossible if the tables are sound

  bool has_edge = had_edge;
  for (const WorldMutationLog::Entry& entry : log_.entries) {
    if (entry.kind == WorldMutationLog::Kind::kEdgeOn) has_edge = true;
    if (entry.kind == WorldMutationLog::Kind::kEdgeOff) has_edge = false;
  }
  log_.clear();

  const StateId na = w.state(u);
  const StateId nb = w.state(v);
  // A surviving edge keeps its adjacency membership; it only needs a
  // rebucket (covered by the incident-edge sweeps below, which read the
  // world's post-encounter states, so (u, v) lands on its final key).
  if (had_edge && !has_edge) erase_edge(slot);
  if (sa != na) {
    node_list_move(u, sa, na);
    for (std::uint32_t pos = 0; pos < adj_len_[static_cast<std::size_t>(u)]; ++pos) {
      rebucket_edge(adj_at(u, pos));
    }
  }
  if (sb != nb) {
    node_list_move(v, sb, nb);
    for (std::uint32_t pos = 0; pos < adj_len_[static_cast<std::size_t>(v)]; ++pos) {
      const std::uint32_t s = adj_at(v, pos);
      // (u, v) was already rebucketed in u's sweep when sa changed too.
      if (sa != na && s == slot) continue;
      rebucket_edge(s);
    }
  }
  if (!had_edge && has_edge) insert_edge(u, v);

  // Every class whose multiplicity this encounter can change contains one
  // of the four touched states (counts: sa/na/sb/nb; buckets: edges moved
  // between (old-state, x) and (new-state, x) slots).
  touch_state_classes(sa);
  if (sb != sa) touch_state_classes(sb);
  if (na != sa && na != sb) touch_state_classes(na);
  if (nb != sa && nb != sb && nb != na) touch_state_classes(nb);
}

std::uint32_t CensusEngine::leap_batch_size(std::uint64_t weight) const noexcept {
  // One encounter changes the effectiveness triple of at most the 2n - 3
  // unordered pairs containing one of its endpoints, so K draws drift W by
  // at most K * (2n - 3): K = staleness * W / (2n) keeps every frozen
  // within-batch weight inside the configured relative staleness bound.
  const double bound = 2.0 * static_cast<double>(world().size());
  const double k = leap_.staleness * static_cast<double>(weight) / bound;
  if (k >= static_cast<double>(leap_.max_batch)) return leap_.max_batch;
  if (k <= 0.0) return 0;
  return static_cast<std::uint32_t>(k);
}

CensusEngine::StepOutcome CensusEngine::census_step(std::uint64_t budget) {
  if (tables_dirty_ || !log_.clean()) {
    end_leap_batch();  // external interference invalidates the frozen table
    sync_tables();
  }

  if (weight_model_ != nullptr) {
    // Weighted sampling never opens a leap batch (the drift bound does not
    // cover the acceptance ratio), so the weights are maintained per step.
    if (weights_stale_) refresh_weights();
    return weighted_census_step(budget);
  }

  bool batching = leap_.enabled && leap_remaining_ > 0;
  std::uint64_t weight = 0;
  if (batching) {
    weight = leap_frozen_weight_;
  } else {
    if (weights_stale_) refresh_weights();
    weight = total_weight_;
    if (weight == 0) return StepOutcome::kQuiescent;
    if (leap_.enabled) {
      const std::uint32_t k = leap_batch_size(weight);
      if (k >= 2) {
        if (!alias_built_ || !dirty_.empty()) rebuild_alias();
        leap_remaining_ = k;
        leap_frozen_weight_ = weight;
        weights_stale_ = true;  // frozen table: suspend per-step maintenance
        ++stats_.leap_batches;
        batching = true;
      }
    }
  }

  // Class selection precedes the clock draw (they are independent, so the
  // joint law is unchanged) so that a frozen draw landing on a dried-up
  // class can abort to exact sampling before any steps are skipped.
  std::size_t ci = 0;
  std::uint64_t multiplicity = 0;
  if (batching) {
    ci = alias_only_draw();
    multiplicity = class_multiplicity(classes_[ci]);
    if (multiplicity == 0) {
      ++stats_.leap_aborts;
      end_leap_batch();
      refresh_weights();
      weight = total_weight_;
      if (weight == 0) return StepOutcome::kQuiescent;
      batching = false;
    }
  }
  if (!batching) {
    ci = draw_class();
    multiplicity = weight_[ci];
  }

  const auto nodes = static_cast<std::uint64_t>(world().size());
  const std::uint64_t total_pairs = nodes * (nodes - 1) / 2;
  const double p = static_cast<double>(weight) / static_cast<double>(total_pairs);
  const std::uint64_t skips = geometric_skips(p);
  const std::uint64_t at = steps();
  if (skips >= budget - at) {
    // The next effective interaction falls beyond the budget: the naive
    // engine would have burned the rest of it on ineffective steps. The
    // discarded geometric tail (and the unused class draw) is redrawn by
    // the next call -- exact, since both draws are independent and the
    // geometric distribution is memoryless.
    stats_.geometric_skips += budget - at;
    skip_steps(budget - at);
    return StepOutcome::kBudgetExhausted;
  }
  stats_.geometric_skips += skips;
  skip_steps(skips + 1);

  const BucketEdge pair = sample_pair(classes_[ci], multiplicity);
  execute_and_update(pair.u, pair.v, pair.slot);
  ++stats_.effective_samples;
  if (batching) {
    ++stats_.leap_batched_steps;
    --leap_remaining_;
  } else if (leap_.enabled) {
    ++stats_.leap_exact_steps;
  }
  return StepOutcome::kExecuted;
}

CensusEngine::StepOutcome CensusEngine::weighted_census_step(std::uint64_t budget) {
  // m counts the effective pairs among alive nodes; the model's weights are
  // strictly positive over *all* pairs (dead ones included -- the naive
  // scheduler burns steps on those too), so the scheduler-weighted
  // effective mass is zero iff m is.
  const std::uint64_t m = total_weight_;
  if (m == 0) return StepOutcome::kQuiescent;
  const double w_hat = weight_model_->max_weight();
  const double w_total = weight_model_->total_weight();
  const double p_hat = static_cast<double>(m) * w_hat / w_total;

  if (p_hat < 1.0) {
    // Thinning: a *candidate* effective step occurs with p_hat; a uniform
    // census draw then accepts with w(u,v)/w_hat, so
    //   P(step executes (u,v)) = p_hat * (1/m) * (w/w_hat) = w/w_total,
    // the scheduler's per-step law exactly. A rejected candidate is one of
    // the naive run's ineffective steps; its clock tick is already
    // consumed, and p_hat is unchanged (nothing moved), so the loop simply
    // redraws. Uniform-weight models hit w == w_hat and draw no coin.
    while (true) {
      const std::uint64_t skips = geometric_skips(p_hat);
      const std::uint64_t at = steps();
      if (skips >= budget - at) {
        stats_.geometric_skips += budget - at;
        skip_steps(budget - at);
        return StepOutcome::kBudgetExhausted;
      }
      stats_.geometric_skips += skips;
      skip_steps(skips + 1);
      const std::size_t ci = draw_class();
      const BucketEdge pair = sample_pair(classes_[ci], weight_[ci]);
      const double w = weight_model_->pair_weight(pair.u, pair.v);
      if (w < w_hat && !rng().bernoulli(w / w_hat)) {
        ++stats_.weighted_rejects;
        continue;
      }
      execute_and_update(pair.u, pair.v, pair.slot);
      ++stats_.effective_samples;
      ++stats_.weighted_samples;
      return StepOutcome::kExecuted;
    }
  }

  // Dense regime (p_hat >= 1): thinning is invalid, so execute the
  // scheduler's law one step at a time straight from the model's sampler
  // -- still skipping nothing, exactly the naive semantics. Expected cost
  // per effective interaction is w_total / (effective mass) <= 1/p_hat *
  // (w_hat / w_min) draws, bounded by the model's weight floor; the regime
  // only arises when effective pairs dominate, where per-step execution is
  // cheap anyway.
  while (steps() < budget) {
    const Encounter e = weight_model_->sample(rng());
    skip_steps(1);
    ++stats_.weighted_dense_steps;
    const World& w = world();
    if (!w.alive(e.first) || !w.alive(e.second)) continue;
    const StateId a = w.state(e.first);
    const StateId b = w.state(e.second);
    if (protocol().ineffective(std::min(a, b), std::max(a, b), w.edge(e.first, e.second))) {
      continue;
    }
    execute_and_update(e.first, e.second, kNoSlot);
    ++stats_.effective_samples;
    ++stats_.weighted_samples;
    return StepOutcome::kExecuted;
  }
  return StepOutcome::kBudgetExhausted;
}

bool CensusEngine::step() {
  if (fallback_active()) return naive_step();
  const StepOutcome out = census_step(std::numeric_limits<std::uint64_t>::max());
  if (out == StepOutcome::kQuiescent) {
    skip_steps(1);  // a quiescent configuration wastes the interaction
    return false;
  }
  return out == StepOutcome::kExecuted;
}

void CensusEngine::run(std::uint64_t count) {
  if (fallback_active()) {
    Simulator::run(count);
    return;
  }
  const std::uint64_t target = steps() + count;
  while (steps() < target) {
    if (census_step(target) == StepOutcome::kQuiescent) {
      skip_steps(target - steps());
      return;
    }
  }
}

std::optional<std::uint64_t> CensusEngine::run_until(
    const std::function<bool(const World&)>& pred, std::uint64_t max_steps) {
  if (fallback_active()) return Simulator::run_until(pred, max_steps);
  if (pred(world())) return steps();
  while (steps() < max_steps) {
    const StepOutcome out = census_step(max_steps);
    if (out == StepOutcome::kQuiescent) {
      // The world can no longer change, so neither can the predicate.
      skip_steps(max_steps - steps());
      return std::nullopt;
    }
    if (out == StepOutcome::kExecuted && pred(world())) return steps();
  }
  return std::nullopt;
}

ConvergenceReport CensusEngine::run_until_stable(const StabilityOptions& options) {
  if (fallback_active()) return Simulator::run_until_stable(options);

  const auto [check_interval, max_steps] = resolve_stability_budget(world().size(), options);

  ConvergenceReport report;
  while (true) {
    if (options.certificate && options.certificate(protocol(), world())) {
      report.stabilized = true;
      report.certified = true;
      break;
    }
    if (effective_pair_weight() == 0) {
      report.stabilized = true;
      report.quiescent = true;
      break;
    }
    if (steps() >= max_steps) break;
    // Without a certificate only quiescence (weight 0) can end the run, so
    // there is nothing to re-check mid-flight; with one, pause on the same
    // amortization grid the naive engine uses.
    const std::uint64_t checkpoint =
        options.certificate ? std::min(max_steps, steps() + check_interval) : max_steps;
    while (steps() < checkpoint) {
      if (census_step(checkpoint) == StepOutcome::kQuiescent) break;
    }
  }
  report.steps_executed = steps();
  report.convergence_step = last_output_change();
  return report;
}

void CensusEngine::publish_metrics(telemetry::Registry& registry) {
  Simulator::publish_metrics(registry);
  // Per-(thread, registry) handle cache, same rationale as the base class:
  // one name lookup per campaign worker instead of one per trial.
  struct Handles {
    std::uint64_t registry_id = 0;
    std::uint64_t publishes = 0;
    telemetry::Counter* full_rebuilds = nullptr;
    telemetry::Counter* delta_updates = nullptr;
    telemetry::Counter* alias_rebuilds = nullptr;
    telemetry::Counter* skips = nullptr;
    telemetry::Counter* samples = nullptr;
    telemetry::Counter* leap_batches = nullptr;
    telemetry::Counter* leap_batched = nullptr;
    telemetry::Counter* leap_exact = nullptr;
    telemetry::Counter* leap_aborts = nullptr;
    telemetry::Counter* weighted_samples = nullptr;
    telemetry::Counter* weighted_rejects = nullptr;
    telemetry::Counter* weighted_dense = nullptr;
    telemetry::Histogram* occupancy = nullptr;
    telemetry::Histogram* batch_size = nullptr;
  };
  thread_local Handles handles;
  if (handles.registry_id != registry.id()) {
    handles.full_rebuilds = &registry.counter("census.full_rebuilds");
    handles.delta_updates = &registry.counter("census.delta_updates");
    handles.alias_rebuilds = &registry.counter("census.alias_rebuilds");
    handles.skips = &registry.counter("census.geometric_skips");
    handles.samples = &registry.counter("census.effective_samples");
    handles.leap_batches = &registry.counter("census.leap.batches");
    handles.leap_batched = &registry.counter("census.leap.batched_steps");
    handles.leap_exact = &registry.counter("census.leap.exact_steps");
    handles.leap_aborts = &registry.counter("census.leap.aborts");
    handles.weighted_samples = &registry.counter("census.weighted_samples");
    handles.weighted_rejects = &registry.counter("census.weighted_rejects");
    handles.weighted_dense = &registry.counter("census.weighted_dense_steps");
    handles.occupancy = &registry.histogram("census.bucket_occupancy",
                                            {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0});
    handles.batch_size = &registry.histogram(
        "census.leap.batch_size", {0.0, 2.0, 8.0, 32.0, 128.0, 512.0, 2048.0, 8192.0});
    handles.registry_id = registry.id();
  }
  handles.full_rebuilds->add(stats_.full_rebuilds);
  handles.delta_updates->add(stats_.delta_updates);
  handles.alias_rebuilds->add(stats_.alias_rebuilds);
  handles.skips->add(stats_.geometric_skips);
  handles.samples->add(stats_.effective_samples);
  if (weight_model_ != nullptr) {
    handles.weighted_samples->add(stats_.weighted_samples);
    handles.weighted_rejects->add(stats_.weighted_rejects);
    handles.weighted_dense->add(stats_.weighted_dense_steps);
  }
  if (leap_.enabled) {
    handles.leap_batches->add(stats_.leap_batches);
    handles.leap_batched->add(stats_.leap_batched_steps);
    handles.leap_exact->add(stats_.leap_exact_steps);
    handles.leap_aborts->add(stats_.leap_aborts);
    if (stats_.leap_batches > 0) {
      handles.batch_size->record(static_cast<double>(stats_.leap_batched_steps) /
                                 static_cast<double>(stats_.leap_batches));
    }
  }
  if (fallback_active()) return;  // the tables may be stale; occupancy would lie
  // The occupancy distribution is sampled 1-in-8 publishes: q(q+1)/2
  // histogram records per trial would be the single largest telemetry cost
  // on small-n campaigns, and a campaign publishing thousands of trials
  // still lands thousands of samples at 1-in-8.
  constexpr std::uint64_t kOccupancySampleEvery = 8;
  if (handles.publishes++ % kOccupancySampleEvery != 0) return;
  end_leap_batch();
  sync_tables();
  const int q = protocol().state_count();
  for (int a = 0; a < q; ++a) {
    for (int b = a; b < q; ++b) {
      handles.occupancy->record(static_cast<double>(
          buckets_[bucket_key(static_cast<StateId>(a), static_cast<StateId>(b))].size()));
    }
  }
}

std::size_t CensusEngine::debug_draw_class() {
  if (effective_pair_weight() == 0) return classes_.size();
  return draw_class();
}

const std::vector<EffectiveClass>& CensusEngine::debug_classes() {
  end_leap_batch();
  sync_tables();
  return classes_;
}

std::vector<std::uint64_t> CensusEngine::debug_class_weights() {
  (void)effective_pair_weight();
  return weight_;
}

std::string CensusEngine::debug_table_snapshot() {
  (void)effective_pair_weight();
  std::string out;
  for (std::size_t q = 0; q < nodes_by_state_.size(); ++q) {
    std::vector<std::int32_t> nodes = nodes_by_state_[q];
    std::sort(nodes.begin(), nodes.end());
    out += "s" + std::to_string(q) + ":";
    for (const std::int32_t u : nodes) out += " " + std::to_string(u);
    out += "\n";
  }
  for (std::size_t key = 0; key < buckets_.size(); ++key) {
    if (buckets_[key].empty()) continue;
    std::vector<std::pair<int, int>> pairs;
    pairs.reserve(buckets_[key].size());
    for (const std::uint32_t slot : buckets_[key]) {
      pairs.emplace_back(edges_[slot].u, edges_[slot].v);
    }
    std::sort(pairs.begin(), pairs.end());
    out += "b" + std::to_string(key) + ":";
    for (const auto& [u, v] : pairs) {
      out += " (" + std::to_string(u) + "," + std::to_string(v) + ")";
    }
    out += "\n";
  }
  out += "w:";
  for (const std::uint64_t w : weight_) out += " " + std::to_string(w);
  out += "\n";
  return out;
}

void CensusEngine::debug_force_full_rebuild() {
  end_leap_batch();
  tables_dirty_ = true;
  sync_tables();
  refresh_weights();
}

}  // namespace netcons
