#include "core/census_engine.hpp"

#include "graph/graph.hpp"
#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

namespace netcons {

namespace {

/// Report a naive fallback. With an ambient telemetry registry the event is
/// structured -- the census.fallback counter plus a per-reason counter
/// (census.fallback.scheduler / census.fallback.interceptor) count every
/// occurrence, and a trace instant marks when it happened -- and stderr
/// stays quiet. Without telemetry, one stderr line per process per reason:
/// a campaign constructs thousands of engines, and one identical note per
/// trial would drown the console without saying anything new.
void note_fallback(std::atomic<bool>& noted, const char* reason_key, const char* reason_text) {
  if (telemetry::Registry* reg = telemetry::registry()) {
    reg->add("census.fallback");
    reg->add(std::string("census.fallback.") + reason_key);
    if (telemetry::Tracer* tracer = telemetry::tracer()) {
      tracer->instant("census.fallback", "engine");
    }
    return;
  }
  if (noted.exchange(true)) return;
  std::fprintf(stderr,
               "census engine: cannot honor %s exactly; falling back to naive "
               "per-step execution\n",
               reason_text);
}

std::atomic<bool> g_noted_scheduler{false};
std::atomic<bool> g_noted_interceptor{false};

}  // namespace

std::vector<EffectiveClass> effective_state_classes(const Protocol& protocol) {
  std::vector<EffectiveClass> out;
  const int q = protocol.state_count();
  for (int a = 0; a < q; ++a) {
    for (int b = a; b < q; ++b) {
      for (const bool c : {false, true}) {
        if (!protocol.ineffective(static_cast<StateId>(a), static_cast<StateId>(b), c)) {
          out.push_back({static_cast<StateId>(a), static_cast<StateId>(b), c});
        }
      }
    }
  }
  return out;
}

CensusEngine::CensusEngine(Protocol protocol, int n, std::uint64_t seed,
                           std::unique_ptr<Scheduler> scheduler)
    : Simulator(std::move(protocol), n, seed, std::move(scheduler)) {
  // Census sampling assumes every unordered pair is equally likely each
  // step; that is exactly the uniform random scheduler (whether installed
  // by default or passed explicitly). Anything else gets the naive path.
  const auto* uniform = dynamic_cast<const UniformRandomScheduler*>(Simulator::scheduler());
  custom_scheduler_ = uniform == nullptr;
  if (custom_scheduler_) {
    note_fallback(g_noted_scheduler, "scheduler", "a non-uniform scheduler");
  }
}

World& CensusEngine::mutable_world() noexcept {
  mark_dirty();
  return Simulator::mutable_world();
}

void CensusEngine::set_interceptor(StepInterceptor* interceptor) noexcept {
  if (interceptor != nullptr && !custom_scheduler_) {
    note_fallback(g_noted_interceptor, "interceptor", "a step interceptor");
  }
  interceptor_installed_ = interceptor != nullptr;
  // The interceptor mutates the world between steps; whatever it did while
  // installed invalidates the tables for when census sampling resumes.
  mark_dirty();
  Simulator::set_interceptor(interceptor);
}

std::size_t CensusEngine::bucket_key(StateId a, StateId b) const noexcept {
  // a <= b by normalization; one slot per unordered state pair.
  return static_cast<std::size_t>(a) * static_cast<std::size_t>(protocol().state_count()) +
         static_cast<std::size_t>(b);
}

std::uint64_t CensusEngine::class_multiplicity(const EffectiveClass& cls) const noexcept {
  const std::uint64_t active = edge_buckets_[bucket_key(cls.a, cls.b)].size();
  if (cls.c) return active;
  const std::uint64_t cnt_a = nodes_by_state_[cls.a].size();
  std::uint64_t pairs = 0;
  if (cls.a == cls.b) {
    pairs = cnt_a < 2 ? 0 : cnt_a * (cnt_a - 1) / 2;
  } else {
    pairs = cnt_a * nodes_by_state_[cls.b].size();
  }
  return pairs - active;
}

void CensusEngine::ensure_tables() {
  if (tables_dirty_) {
    rebuild_tables();
    tables_dirty_ = false;
  }
}

void CensusEngine::rebuild_tables() {
  ++rebuilds_;
  const World& w = world();
  const int q = protocol().state_count();
  const int n = w.size();

  classes_ = effective_state_classes(protocol());
  nodes_by_state_.assign(static_cast<std::size_t>(q), {});
  node_pos_.assign(static_cast<std::size_t>(n), -1);
  edge_buckets_.assign(static_cast<std::size_t>(q) * static_cast<std::size_t>(q), {});
  adj_.assign(static_cast<std::size_t>(n), {});
  edges_.clear();

  for (int u = 0; u < n; ++u) {
    if (!w.alive(u)) continue;  // crashed nodes leave the sampling support
    auto& list = nodes_by_state_[w.state(u)];
    node_pos_[static_cast<std::size_t>(u)] = static_cast<int>(list.size());
    list.push_back(u);
  }
  // The kill() invariant guarantees dead nodes are edge-free, so every
  // active edge has two alive endpoints.
  for (int v = 1; v < n; ++v) {
    for (int u = 0; u < v; ++u) {
      if (w.edge(u, v)) insert_edge(u, v);
    }
  }
}

void CensusEngine::insert_edge(int u, int v) {
  const World& w = world();
  const std::size_t key = Graph::pair_index(u, v);
  EdgeRec rec;
  rec.u = u;
  rec.v = v;
  const StateId su = w.state(u);
  const StateId sv = w.state(v);
  rec.ba = std::min(su, sv);
  rec.bb = std::max(su, sv);
  auto& bucket = edge_buckets_[bucket_key(rec.ba, rec.bb)];
  rec.bucket_pos = static_cast<std::uint32_t>(bucket.size());
  bucket.push_back(key);
  rec.pos_u = static_cast<std::uint32_t>(adj_[static_cast<std::size_t>(u)].size());
  adj_[static_cast<std::size_t>(u)].push_back(key);
  rec.pos_v = static_cast<std::uint32_t>(adj_[static_cast<std::size_t>(v)].size());
  adj_[static_cast<std::size_t>(v)].push_back(key);
  edges_[key] = rec;
}

void CensusEngine::erase_edge(std::size_t key) {
  const EdgeRec rec = edges_.at(key);

  auto& bucket = edge_buckets_[bucket_key(rec.ba, rec.bb)];
  const std::size_t moved_bucket = bucket.back();
  bucket[rec.bucket_pos] = moved_bucket;
  bucket.pop_back();
  if (moved_bucket != key) edges_.at(moved_bucket).bucket_pos = rec.bucket_pos;

  const auto adj_remove = [this, key](int node, std::uint32_t pos) {
    auto& list = adj_[static_cast<std::size_t>(node)];
    const std::size_t moved = list.back();
    list[pos] = moved;
    list.pop_back();
    if (moved == key) return;
    EdgeRec& mr = edges_.at(moved);
    if (mr.u == node) {
      mr.pos_u = pos;
    } else {
      mr.pos_v = pos;
    }
  };
  adj_remove(rec.u, rec.pos_u);
  adj_remove(rec.v, rec.pos_v);

  edges_.erase(key);
}

void CensusEngine::rebucket_edge(std::size_t key) {
  EdgeRec& rec = edges_.at(key);
  auto& old_bucket = edge_buckets_[bucket_key(rec.ba, rec.bb)];
  const std::size_t moved = old_bucket.back();
  old_bucket[rec.bucket_pos] = moved;
  old_bucket.pop_back();
  if (moved != key) edges_.at(moved).bucket_pos = rec.bucket_pos;

  const StateId su = world().state(rec.u);
  const StateId sv = world().state(rec.v);
  rec.ba = std::min(su, sv);
  rec.bb = std::max(su, sv);
  auto& bucket = edge_buckets_[bucket_key(rec.ba, rec.bb)];
  rec.bucket_pos = static_cast<std::uint32_t>(bucket.size());
  bucket.push_back(key);
}

void CensusEngine::node_list_move(int u, StateId from, StateId to) {
  auto& old_list = nodes_by_state_[from];
  const int pos = node_pos_[static_cast<std::size_t>(u)];
  const int moved = old_list.back();
  old_list[static_cast<std::size_t>(pos)] = moved;
  old_list.pop_back();
  node_pos_[static_cast<std::size_t>(moved)] = pos;

  auto& new_list = nodes_by_state_[to];
  node_pos_[static_cast<std::size_t>(u)] = static_cast<int>(new_list.size());
  new_list.push_back(u);
}

std::uint64_t CensusEngine::effective_pair_weight() {
  ensure_tables();
  // One scan serves the caller's quiescence guard, census_step's skip
  // probability, AND the class-selection walk (class_mults_): the cache is
  // invalidated only when the configuration actually changes.
  if (!weight_valid_) {
    class_mults_.resize(classes_.size());
    cached_weight_ = 0;
    for (std::size_t i = 0; i < classes_.size(); ++i) {
      class_mults_[i] = class_multiplicity(classes_[i]);
      cached_weight_ += class_mults_[i];
    }
    weight_valid_ = true;
  }
  return cached_weight_;
}

std::uint64_t CensusEngine::geometric_skips(double p) {
  if (p >= 1.0) return 0;
  // Inverse-CDF draw for the number of failures before the first success:
  // floor(ln U / ln(1 - p)), U in (0, 1].
  const double u = 1.0 - rng().uniform();
  const double g = std::log(u) / std::log1p(-p);
  if (!(g >= 0.0)) return 0;
  if (g >= 9.0e18) return std::numeric_limits<std::uint64_t>::max() / 2;
  return static_cast<std::uint64_t>(g);
}

CensusEngine::BucketEdge CensusEngine::sample_pair(const EffectiveClass& cls,
                                                   std::uint64_t multiplicity) {
  if (cls.c) {
    // The stored (u, v) orientation is fine even for a == b: the model's
    // symmetry-breaking coin in Simulator::apply assigns asymmetric
    // same-state outcomes equiprobably regardless of argument order, and
    // for a != b the rule table resolves orientation from the states.
    const auto& bucket = edge_buckets_[bucket_key(cls.a, cls.b)];
    const EdgeRec& rec = edges_.at(bucket[rng().below(bucket.size())]);
    return {rec.u, rec.v};
  }

  const std::vector<int>& as = nodes_by_state_[cls.a];
  const std::vector<int>& bs = nodes_by_state_[cls.b];
  // Rejection over the (a, b) node product is uniform over the non-edge
  // pairs; it only degenerates when almost every such pair is an active
  // edge, so a capped loop with an exact O(|a||b|) fallback keeps the
  // expected cost O(1) without a worst-case tail.
  for (int attempt = 0; attempt < 64; ++attempt) {
    int u = 0;
    int v = 0;
    if (cls.a == cls.b) {
      const std::uint64_t i = rng().below(as.size());
      std::uint64_t j = rng().below(as.size() - 1);
      if (j >= i) ++j;
      u = as[static_cast<std::size_t>(i)];
      v = as[static_cast<std::size_t>(j)];
    } else {
      u = as[static_cast<std::size_t>(rng().below(as.size()))];
      v = bs[static_cast<std::size_t>(rng().below(bs.size()))];
    }
    if (!world().edge(u, v)) return {u, v};
  }

  std::uint64_t r = rng().below(multiplicity);
  if (cls.a == cls.b) {
    for (std::size_t i = 0; i < as.size(); ++i) {
      for (std::size_t j = i + 1; j < as.size(); ++j) {
        if (world().edge(as[i], as[j])) continue;
        if (r == 0) return {as[i], as[j]};
        --r;
      }
    }
  } else {
    for (const int u : as) {
      for (const int v : bs) {
        if (world().edge(u, v)) continue;
        if (r == 0) return {u, v};
        --r;
      }
    }
  }
  // Unreachable: multiplicity counts exactly the non-edge pairs above.
  return {as.front(), cls.a == cls.b ? as[1] : bs.front()};
}

void CensusEngine::execute_and_update(int u, int v) {
  const World& w = world();
  const StateId sa = w.state(u);
  const StateId sb = w.state(v);
  const std::size_t uv_key = Graph::pair_index(u, v);
  if (w.edge(u, v)) erase_edge(uv_key);

  if (!execute_encounter(u, v)) mark_dirty();  // impossible if the tables are sound

  const StateId na = w.state(u);
  const StateId nb = w.state(v);
  if (sa != na) {
    node_list_move(u, sa, na);
    // (u, v) itself was pulled out above, so every incident edge here has
    // its other endpoint's state unchanged by this encounter.
    for (const std::size_t key : adj_[static_cast<std::size_t>(u)]) rebucket_edge(key);
  }
  if (sb != nb) {
    node_list_move(v, sb, nb);
    for (const std::size_t key : adj_[static_cast<std::size_t>(v)]) rebucket_edge(key);
  }
  if (w.edge(u, v)) insert_edge(u, v);
  weight_valid_ = false;  // the configuration changed
}

bool CensusEngine::census_step(std::uint64_t budget) {
  const std::uint64_t weight = effective_pair_weight();
  const auto nodes = static_cast<std::uint64_t>(world().size());
  const std::uint64_t total_pairs = nodes * (nodes - 1) / 2;
  const double p = static_cast<double>(weight) / static_cast<double>(total_pairs);

  const std::uint64_t skips = geometric_skips(p);
  const std::uint64_t at = steps();
  if (skips >= budget - at) {
    // The next effective interaction falls beyond the budget: the naive
    // engine would have burned the rest of it on ineffective steps. The
    // discarded geometric tail is redrawn by the next call -- exact, since
    // the geometric distribution is memoryless.
    geometric_skipped_ += budget - at;
    skip_steps(budget - at);
    return false;
  }
  geometric_skipped_ += skips;
  skip_steps(skips + 1);

  std::uint64_t r = rng().below(weight);
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    const std::uint64_t multiplicity = class_mults_[i];
    if (r < multiplicity) {
      const BucketEdge pair = sample_pair(classes_[i], multiplicity);
      execute_and_update(pair.u, pair.v);
      ++effective_samples_;
      return true;
    }
    r -= multiplicity;
  }
  return false;  // unreachable: weight is the sum of the multiplicities
}

bool CensusEngine::step() {
  if (fallback_active()) return naive_step();
  if (effective_pair_weight() == 0) {
    skip_steps(1);  // a quiescent configuration wastes the interaction
    return false;
  }
  return census_step(std::numeric_limits<std::uint64_t>::max());
}

void CensusEngine::run(std::uint64_t count) {
  if (fallback_active()) {
    Simulator::run(count);
    return;
  }
  const std::uint64_t target = steps() + count;
  while (steps() < target) {
    if (effective_pair_weight() == 0) {
      skip_steps(target - steps());
      return;
    }
    census_step(target);
  }
}

std::optional<std::uint64_t> CensusEngine::run_until(
    const std::function<bool(const World&)>& pred, std::uint64_t max_steps) {
  if (fallback_active()) return Simulator::run_until(pred, max_steps);
  if (pred(world())) return steps();
  while (steps() < max_steps) {
    if (effective_pair_weight() == 0) {
      // The world can no longer change, so neither can the predicate.
      skip_steps(max_steps - steps());
      return std::nullopt;
    }
    if (census_step(max_steps) && pred(world())) return steps();
  }
  return std::nullopt;
}

void CensusEngine::publish_metrics(telemetry::Registry& registry) {
  Simulator::publish_metrics(registry);
  // Per-(thread, registry) handle cache, same rationale as the base class:
  // one name lookup per campaign worker instead of one per trial.
  struct Handles {
    std::uint64_t registry_id = 0;
    std::uint64_t publishes = 0;
    telemetry::Counter* rebuilds = nullptr;
    telemetry::Counter* skips = nullptr;
    telemetry::Counter* samples = nullptr;
    telemetry::Histogram* occupancy = nullptr;
  };
  thread_local Handles handles;
  if (handles.registry_id != registry.id()) {
    handles.rebuilds = &registry.counter("census.rebuilds");
    handles.skips = &registry.counter("census.geometric_skips");
    handles.samples = &registry.counter("census.effective_samples");
    handles.occupancy = &registry.histogram("census.bucket_occupancy",
                                            {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0});
    handles.registry_id = registry.id();
  }
  handles.rebuilds->add(rebuilds_);
  handles.skips->add(geometric_skipped_);
  handles.samples->add(effective_samples_);
  if (fallback_active()) return;  // the tables may be stale; occupancy would lie
  // The occupancy distribution is sampled 1-in-8 publishes: q(q+1)/2
  // histogram records per trial would be the single largest telemetry cost
  // on small-n campaigns, and a campaign publishing thousands of trials
  // still lands thousands of samples at 1-in-8.
  constexpr std::uint64_t kOccupancySampleEvery = 8;
  if (handles.publishes++ % kOccupancySampleEvery != 0) return;
  ensure_tables();
  const int q = protocol().state_count();
  for (int a = 0; a < q; ++a) {
    for (int b = a; b < q; ++b) {
      handles.occupancy->record(static_cast<double>(
          edge_buckets_[bucket_key(static_cast<StateId>(a), static_cast<StateId>(b))].size()));
    }
  }
}

ConvergenceReport CensusEngine::run_until_stable(const StabilityOptions& options) {
  if (fallback_active()) return Simulator::run_until_stable(options);

  const auto [check_interval, max_steps] = resolve_stability_budget(world().size(), options);

  ConvergenceReport report;
  while (true) {
    if (options.certificate && options.certificate(protocol(), world())) {
      report.stabilized = true;
      report.certified = true;
      break;
    }
    if (effective_pair_weight() == 0) {
      report.stabilized = true;
      report.quiescent = true;
      break;
    }
    if (steps() >= max_steps) break;
    // Without a certificate only quiescence (weight 0) can end the run, so
    // there is nothing to re-check mid-flight; with one, pause on the same
    // amortization grid the naive engine uses.
    const std::uint64_t checkpoint =
        options.certificate ? std::min(max_steps, steps() + check_interval) : max_steps;
    while (steps() < checkpoint && effective_pair_weight() != 0) {
      census_step(checkpoint);
    }
  }
  report.steps_executed = steps();
  report.convergence_step = last_output_change();
  return report;
}

}  // namespace netcons
