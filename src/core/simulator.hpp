// The execution engine: applies scheduler-chosen encounters to a World
// under a Protocol, tracks output-graph changes, and detects stabilization.
//
// Stabilization detection is sound:
//  * Full quiescence -- no encounter is effective in the current
//    configuration -- always certifies stability (checked by an O(n^2) scan
//    amortized over long step intervals).
//  * Protocols whose stable configurations are not quiescent (e.g. 2RC/kRC
//    leader swapping, Graph-Replication's eternal leader walk) supply a
//    *certificate* predicate, proven sound in the paper, that recognizes
//    output-stable configurations.
//
// The reported convergence step is the paper's running time: the last step
// at which the output graph G(C) changed (tracked in O(1) per step).
#pragma once

#include "core/protocol.hpp"
#include "core/scheduler.hpp"
#include "core/world.hpp"

#include <cstdint>
#include <functional>
#include <memory>

namespace netcons {

/// Sound recognizer of output-stable configurations (beyond quiescence).
using StabilityCertificate = std::function<bool(const Protocol&, const World&)>;

class Simulator;

/// Hook invoked before every scheduled encounter. The one user today is the
/// fault-injection layer (src/faults/), which mutates the world between
/// steps; the simulator itself pays only a null-pointer check when no
/// interceptor is installed, keeping the fault-free hot path untouched.
class StepInterceptor {
 public:
  virtual ~StepInterceptor() = default;
  virtual void before_step(Simulator& sim) = 0;
};

struct ConvergenceReport {
  bool stabilized = false;       ///< A sound stability condition was reached.
  bool quiescent = false;        ///< Stability was full quiescence.
  bool certified = false;        ///< Stability came from the certificate.
  std::uint64_t steps_executed = 0;   ///< Total steps run in this call.
  std::uint64_t convergence_step = 0; ///< Last step the output graph changed.

  // --- fault/recovery extension -------------------------------------------
  // Populated by faults::run_until_stable_with_faults; all zero on fault-free
  // runs. Edge accounting is exact when faults fire at stabilization (the
  // default) and approximate when they interleave with initial construction.
  std::uint64_t faults_injected = 0;  ///< Fault events applied during the run.
  std::uint64_t last_fault_step = 0;  ///< Step at which the last fault fired.
  /// Re-stabilization time: convergence_step - last_fault_step.
  std::uint64_t recovery_steps = 0;
  std::uint64_t output_edges_deleted = 0;   ///< G(C) edges destroyed by faults.
  std::uint64_t output_edges_repaired = 0;  ///< Of those, rebuilt (by count) at the end.
  std::uint64_t output_edges_residual = 0;  ///< Damage still missing at the end.
};

class Simulator {
 public:
  /// Uses the uniform random scheduler unless another is supplied.
  Simulator(Protocol protocol, int n, std::uint64_t seed,
            std::unique_ptr<Scheduler> scheduler = nullptr);

  [[nodiscard]] const Protocol& protocol() const noexcept { return protocol_; }
  [[nodiscard]] const World& world() const noexcept { return world_; }
  /// Mutable access for custom initial configurations (e.g. Replication's
  /// input graph); use before stepping.
  [[nodiscard]] World& mutable_world() noexcept { return world_; }
  [[nodiscard]] Rng& rng() noexcept { return rng_; }

  [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }
  [[nodiscard]] std::uint64_t effective_steps() const noexcept { return effective_steps_; }
  [[nodiscard]] std::uint64_t last_output_change() const noexcept {
    return last_output_change_;
  }

  /// Install (or clear, with nullptr) the pre-step hook. Not owned.
  void set_interceptor(StepInterceptor* interceptor) noexcept { interceptor_ = interceptor; }

  /// Record that the output graph was changed externally (a fault deleted an
  /// output edge or removed an output node), so convergence_step accounting
  /// stays sound under injection.
  void note_output_change() noexcept { last_output_change_ = steps_; }

  /// Execute one interaction. Returns true if it was effective.
  bool step();

  /// Execute exactly `count` steps.
  void run(std::uint64_t count);

  /// Run until `pred(world)` holds (checked after every step; keep it O(1),
  /// e.g. census-based) or until `max_steps`. Returns the step count at
  /// which the predicate first held, or nullopt on timeout.
  [[nodiscard]] std::optional<std::uint64_t> run_until(
      const std::function<bool(const World&)>& pred, std::uint64_t max_steps);

  struct StabilityOptions {
    std::uint64_t max_steps = 0;        ///< 0: derive a generous default.
    std::uint64_t check_interval = 0;   ///< 0: derive ~n^2 amortized default.
    StabilityCertificate certificate;   ///< Optional protocol-specific proof.
  };

  /// Run until stabilization is certified (quiescence or certificate).
  [[nodiscard]] ConvergenceReport run_until_stable(const StabilityOptions& options);
  [[nodiscard]] ConvergenceReport run_until_stable();

  /// O(n^2) scan: no encounter is effective in the current configuration.
  [[nodiscard]] bool is_quiescent() const;

  /// O(n^2) scan: no encounter can modify an edge in the current
  /// configuration (useful inside certificates; NOT sufficient for
  /// stability on its own since node dynamics may re-enable edge rules).
  [[nodiscard]] bool is_edge_quiescent() const;

 private:
  void apply(const RuleEntry& rule, int initiator, int responder);

  Protocol protocol_;
  World world_;
  Rng rng_;
  std::unique_ptr<Scheduler> scheduler_;
  StepInterceptor* interceptor_ = nullptr;
  std::uint64_t steps_ = 0;
  std::uint64_t effective_steps_ = 0;
  std::uint64_t last_output_change_ = 0;
};

}  // namespace netcons
