// The naive execution engine: applies scheduler-chosen encounters to a
// World under a Protocol one virtual-scheduler-call at a time, tracks
// output-graph changes, and detects stabilization. This is the paper's
// model executed verbatim, and the reference semantics every other Engine
// implementation is measured against (core/engine.hpp).
//
// Stabilization detection is sound:
//  * Full quiescence -- no encounter is effective in the current
//    configuration -- always certifies stability (checked by an O(n^2) scan
//    amortized over long step intervals).
//  * Protocols whose stable configurations are not quiescent (e.g. 2RC/kRC
//    leader swapping, Graph-Replication's eternal leader walk) supply a
//    *certificate* predicate, proven sound in the paper, that recognizes
//    output-stable configurations.
//
// The reported convergence step is the paper's running time: the last step
// at which the output graph G(C) changed (tracked in O(1) per step).
#pragma once

#include "core/engine.hpp"
#include "core/protocol.hpp"
#include "core/scheduler.hpp"
#include "core/world.hpp"

#include <cstdint>
#include <functional>
#include <memory>

namespace netcons {

class Simulator : public Engine {
 public:
  /// Uses the uniform random scheduler unless another is supplied.
  Simulator(Protocol protocol, int n, std::uint64_t seed,
            std::unique_ptr<Scheduler> scheduler = nullptr);

  [[nodiscard]] const char* engine_name() const noexcept override { return "naive"; }

  [[nodiscard]] const Protocol& protocol() const noexcept override { return protocol_; }
  [[nodiscard]] const World& world() const noexcept override { return world_; }
  /// Mutable access for custom initial configurations (e.g. Replication's
  /// input graph); use before stepping.
  [[nodiscard]] World& mutable_world() noexcept override { return world_; }
  [[nodiscard]] Rng& rng() noexcept override { return rng_; }

  [[nodiscard]] std::uint64_t steps() const noexcept override { return steps_; }
  [[nodiscard]] std::uint64_t effective_steps() const noexcept override {
    return effective_steps_;
  }
  [[nodiscard]] std::uint64_t last_output_change() const noexcept override {
    return last_output_change_;
  }

  void set_interceptor(StepInterceptor* interceptor) noexcept override {
    interceptor_ = interceptor;
  }

  void note_output_change() noexcept override { last_output_change_ = steps_; }

  /// Execute one interaction. Returns true if it was effective.
  bool step() override;

  /// Execute exactly `count` steps.
  void run(std::uint64_t count) override;

  /// Run until `pred(world)` holds (checked after every step; keep it O(1),
  /// e.g. census-based) or until `max_steps`. Returns the step count at
  /// which the predicate first held, or nullopt on timeout.
  [[nodiscard]] std::optional<std::uint64_t> run_until(
      const std::function<bool(const World&)>& pred, std::uint64_t max_steps) override;

  /// Run until stabilization is certified (quiescence or certificate).
  [[nodiscard]] ConvergenceReport run_until_stable(const StabilityOptions& options) override;
  using Engine::run_until_stable;

  /// O(n^2) scan: no encounter is effective in the current configuration.
  [[nodiscard]] bool is_quiescent() const override;

  /// O(n^2) scan: no encounter can modify an edge in the current
  /// configuration.
  [[nodiscard]] bool is_edge_quiescent() const override;

  /// Publishes engine.steps / engine.effective_steps /
  /// engine.ineffective_steps into the registry.
  void publish_metrics(telemetry::Registry& registry) override;

 protected:
  // Hooks for engines layered on the naive core (CensusEngine): execute a
  // chosen encounter exactly as a scheduled step would, and advance the
  // paper's step clock over interactions proven ineffective.

  /// Resolve and apply the encounter (u, v) against the current edge state.
  /// Returns true if it was effective. Does NOT touch the step counter or
  /// the interceptor; callers account for the step themselves.
  bool execute_encounter(int u, int v);
  /// As above with the caller-known current edge state of {u, v}, sparing
  /// the probe when an engine's own tables already answer it.
  bool execute_encounter(int u, int v, bool c);

  /// Advance the step clock by `count` interactions without executing them.
  void skip_steps(std::uint64_t count) noexcept { steps_ += count; }

  /// One scheduled naive step, exactly as Simulator::step performs it --
  /// non-virtual so subclasses in fall-back mode reproduce the reference
  /// semantics bit-for-bit.
  bool naive_step();

  /// The installed scheduler (never null; the default is the uniform
  /// random scheduler). Lets CensusEngine decide whether census sampling's
  /// uniform-pair assumption holds.
  [[nodiscard]] const Scheduler* scheduler() const noexcept { return scheduler_.get(); }

  /// Mutable scheduler access for engines that query the weight-model seam
  /// (building a model may lazily embed the nodes, which mutates the
  /// scheduler and consumes engine RNG).
  [[nodiscard]] Scheduler* mutable_scheduler() noexcept { return scheduler_.get(); }

 private:
  void apply(const RuleEntry& rule, int initiator, int responder);

  Protocol protocol_;
  World world_;
  Rng rng_;
  std::unique_ptr<Scheduler> scheduler_;
  StepInterceptor* interceptor_ = nullptr;
  std::uint64_t steps_ = 0;
  std::uint64_t effective_steps_ = 0;
  std::uint64_t last_output_change_ = 0;
};

/// The reference engine under its registry name (see campaign/registry.cpp
/// and core/census_engine.hpp for the alternative).
using NaiveEngine = Simulator;

}  // namespace netcons
