// Execution snapshots for the figure benches (Figure 1's star formation
// sequence, Figure 2's typical Simple-Global-Line configuration).
#pragma once

#include "core/simulator.hpp"
#include "graph/graph.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace netcons {

struct Snapshot {
  std::uint64_t step = 0;
  std::vector<StateId> states;
  Graph active;
};

/// Capture the simulator's current configuration.
[[nodiscard]] Snapshot capture(const Simulator& sim);

/// Census line: "state=count" pairs for all non-empty states.
[[nodiscard]] std::string census_summary(const Protocol& protocol, const World& world);

/// Component summary of the active graph: count of components by size and
/// shape (line / cycle / star / other), used to reproduce Figure 2's
/// description of a typical configuration.
struct ComponentCensus {
  int isolated = 0;
  int lines = 0;
  int cycles = 0;
  int stars = 0;
  int other = 0;
  int largest = 0;  ///< Size of the largest component.
};
[[nodiscard]] ComponentCensus component_census(const Graph& g);

}  // namespace netcons
