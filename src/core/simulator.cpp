#include "core/simulator.hpp"

#include "telemetry/metrics.hpp"

#include <stdexcept>

namespace netcons {

Simulator::Simulator(Protocol protocol, int n, std::uint64_t seed,
                     std::unique_ptr<Scheduler> scheduler)
    : protocol_(std::move(protocol)),
      world_(protocol_, n),
      rng_(seed),
      scheduler_(scheduler ? std::move(scheduler) : std::make_unique<UniformRandomScheduler>()) {
  if (n < 2) throw std::invalid_argument("Simulator: need at least two nodes");
}

bool Simulator::naive_step() {
  if (interceptor_ != nullptr) interceptor_->before_step(*this);
  const Encounter e = scheduler_->next(rng_, world_.size());
  ++steps_;
  return execute_encounter(e.first, e.second);
}

bool Simulator::step() { return naive_step(); }

bool Simulator::execute_encounter(int u, int v) {
  // Crashed nodes no longer interact; the scheduled encounter is wasted
  // (time still passes, matching the model where removed nodes simply do
  // not exist to meet).
  if (world_.dead_count() != 0 && (!world_.alive(u) || !world_.alive(v))) {
    return false;
  }
  return execute_encounter(u, v, world_.edge(u, v));
}

bool Simulator::execute_encounter(int u, int v, bool c) {
  if (world_.dead_count() != 0 && (!world_.alive(u) || !world_.alive(v))) {
    return false;
  }
  const StateId a = world_.state(u);
  const StateId b = world_.state(v);
  const auto resolved = protocol_.resolve(a, b, c);
  if (resolved.rule == nullptr || !resolved.rule->effective) return false;

  const int initiator = resolved.swapped ? v : u;
  const int responder = resolved.swapped ? u : v;
  apply(*resolved.rule, initiator, responder);
  ++effective_steps_;
  return true;
}

void Simulator::apply(const RuleEntry& rule, int initiator, int responder) {
  const StateId a = world_.state(initiator);
  const StateId b = world_.state(responder);

  // PREL branch choice (probability 1/2 each), then the model's inherent
  // symmetry-breaking coin: when a == b and the chosen outcome has a' != b',
  // the assignment of a'/b' to the two nodes is equiprobable (Section 3.1).
  Outcome out = (rule.coin && rng_.coin()) ? rule.secondary : rule.primary;
  int first = initiator;
  int second = responder;
  if (a == b && out.a != out.b && rng_.coin()) std::swap(first, second);

  const bool out_first_before = protocol_.is_output_state(world_.state(first));
  const bool out_second_before = protocol_.is_output_state(world_.state(second));

  world_.set_state(first, out.a);
  world_.set_state(second, out.b);
  const bool edge_changed = world_.set_edge(first, second, out.edge);

  const bool out_first_after = protocol_.is_output_state(out.a);
  const bool out_second_after = protocol_.is_output_state(out.b);

  const bool membership_changed =
      out_first_before != out_first_after || out_second_before != out_second_after;
  const bool output_edge_changed = edge_changed && out_first_after && out_second_after;
  // An edge flip also matters if both endpoints *were* output nodes before
  // the step (the edge leaves the output set with them).
  const bool output_edge_changed_before = edge_changed && out_first_before && out_second_before;

  if (membership_changed || output_edge_changed || output_edge_changed_before) {
    last_output_change_ = steps_;
  }
}

void Simulator::run(std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) naive_step();
}

std::optional<std::uint64_t> Simulator::run_until(
    const std::function<bool(const World&)>& pred, std::uint64_t max_steps) {
  if (pred(world_)) return steps_;
  while (steps_ < max_steps) {
    naive_step();
    if (pred(world_)) return steps_;
  }
  return std::nullopt;
}

ConvergenceReport Simulator::run_until_stable(const StabilityOptions& options) {
  const auto [check_interval, max_steps] = resolve_stability_budget(world_.size(), options);

  ConvergenceReport report;
  while (true) {
    if (options.certificate && options.certificate(protocol_, world_)) {
      report.stabilized = true;
      report.certified = true;
      break;
    }
    if (is_quiescent()) {
      report.stabilized = true;
      report.quiescent = true;
      break;
    }
    if (steps_ >= max_steps) break;
    const std::uint64_t chunk = std::min(check_interval, max_steps - steps_);
    Simulator::run(chunk);
  }
  report.steps_executed = steps_;
  report.convergence_step = last_output_change_;
  return report;
}

bool Simulator::is_quiescent() const {
  const int n = world_.size();
  for (int v = 1; v < n; ++v) {
    if (!world_.alive(v)) continue;
    const StateId sv = world_.state(v);
    for (int u = 0; u < v; ++u) {
      if (!world_.alive(u)) continue;
      if (!protocol_.ineffective(world_.state(u), sv, world_.edge(u, v))) return false;
    }
  }
  return true;
}

void Simulator::publish_metrics(telemetry::Registry& registry) {
  // Campaigns publish once per trial; at tens of microseconds per trial the
  // name lookups themselves would show up in the overhead gate, so resolve
  // the handles once per (thread, registry) and reuse them (handles are
  // stable for the registry's lifetime; the id is never reused).
  struct Handles {
    std::uint64_t registry_id = 0;
    telemetry::Counter* steps = nullptr;
    telemetry::Counter* effective = nullptr;
    telemetry::Counter* ineffective = nullptr;
  };
  thread_local Handles handles;
  if (handles.registry_id != registry.id()) {
    handles.steps = &registry.counter("engine.steps");
    handles.effective = &registry.counter("engine.effective_steps");
    handles.ineffective = &registry.counter("engine.ineffective_steps");
    handles.registry_id = registry.id();
  }
  handles.steps->add(steps_);
  handles.effective->add(effective_steps_);
  // Clock steps that changed nothing. The naive engine *executed* all of
  // them; CensusEngine mostly skipped them wholesale (its share of skips is
  // broken out separately as census.geometric_skips).
  handles.ineffective->add(steps_ - effective_steps_);
}

bool Simulator::is_edge_quiescent() const {
  const int n = world_.size();
  for (int v = 1; v < n; ++v) {
    if (!world_.alive(v)) continue;
    const StateId sv = world_.state(v);
    for (int u = 0; u < v; ++u) {
      if (!world_.alive(u)) continue;
      if (protocol_.can_modify_edge(world_.state(u), sv, world_.edge(u, v))) return false;
    }
  }
  return true;
}

}  // namespace netcons
