// A configuration of the system: node states, edge states, and the cached
// bookkeeping (active degrees, per-state census) that protocols' stability
// certificates and the simulator's output tracking rely on.
//
// Two web-scale hooks live here because only the World sees every mutation:
//
//  * Edge storage is dense (triangular bitset, the historical layout) up to
//    kDenseNodeLimit nodes and switches to per-node sorted adjacency above
//    it: the bitset is Theta(n^2) bits regardless of occupancy, which is
//    625 MB at n = 10^5 and 62 GB at n = 10^6, while the paper's protocols
//    keep O(n) edges alive. Every query keeps its contract; edge() costs a
//    bit probe dense and a binary search over a (typically tiny) adjacency
//    list sparse.
//  * An optional WorldMutationLog records every successful mutation so an
//    observer that mirrors the configuration (CensusEngine's census tables)
//    can apply exact O(1)-per-entry deltas instead of rebuilding from
//    scratch whenever someone touched the world behind its back.
#pragma once

#include "core/protocol.hpp"
#include "graph/graph.hpp"

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

namespace netcons {

/// Append-only journal of world mutations, in application order. Attached
/// by an observer via World::set_mutation_log; the World records every
/// *successful* mutation (no-ops are not logged) until `capacity` entries,
/// after which it stops recording and raises `overflowed` -- the observer
/// then falls back to a full resync. `suspended` lets the observer mute
/// logging across mutations it performs (and mirrors) itself.
struct WorldMutationLog {
  enum class Kind : std::uint8_t {
    kSetState,  ///< u changed state; prev is the state before.
    kEdgeOn,    ///< edge {u, v} became active.
    kEdgeOff,   ///< edge {u, v} became inactive.
    kKill       ///< u crashed (its incident kEdgeOff entries precede this).
  };
  struct Entry {
    Kind kind = Kind::kSetState;
    std::int32_t u = 0;
    std::int32_t v = 0;
    StateId prev = 0;  ///< kSetState / kKill: the state before.
    StateId next = 0;  ///< kSetState: the state after.
  };

  std::vector<Entry> entries;
  std::size_t capacity = 4096;
  bool overflowed = false;
  bool suspended = false;

  void record(Kind kind, int u, int v, StateId prev, StateId next = 0) {
    if (overflowed) return;
    if (entries.size() >= capacity) {
      overflowed = true;
      return;
    }
    entries.push_back(
        {kind, static_cast<std::int32_t>(u), static_cast<std::int32_t>(v), prev, next});
  }
  void clear() noexcept {
    entries.clear();
    overflowed = false;
  }
  [[nodiscard]] bool clean() const noexcept { return entries.empty() && !overflowed; }
};

class World {
 public:
  /// Edge-storage strategy; kAuto picks dense up to kDenseNodeLimit nodes.
  enum class EdgeStorage { kAuto, kDense, kSparse };

  /// Largest population the dense triangular bitset is allowed to serve
  /// under kAuto (pair_count(2^15) is 64 MB of bits; the next doubling
  /// would be 256 MB for what the paper's protocols use as O(n) edges).
  static constexpr int kDenseNodeLimit = 1 << 15;

  World() = default;
  /// All nodes in q0, all edges inactive -- the model's initial configuration.
  World(const Protocol& protocol, int n, EdgeStorage storage = EdgeStorage::kAuto);

  [[nodiscard]] int size() const noexcept { return n_; }

  /// Whether edges live in per-node adjacency lists (true) or the dense
  /// triangular bitset (false).
  [[nodiscard]] bool sparse_edges() const noexcept { return sparse_; }

  /// Attach (or detach, with nullptr) a mutation journal. Not owned.
  void set_mutation_log(WorldMutationLog* log) noexcept { log_ = log; }
  [[nodiscard]] WorldMutationLog* mutation_log() const noexcept { return log_; }

  /// Nodes still participating (size() minus crashed nodes).
  [[nodiscard]] int alive_count() const noexcept { return n_ - dead_count_; }
  [[nodiscard]] int dead_count() const noexcept { return dead_count_; }
  [[nodiscard]] bool alive(int u) const noexcept {
    return dead_count_ == 0 || !dead_[static_cast<std::size_t>(u)];
  }

  /// Crash fault: remove `u` from the population. All incident active edges
  /// are deleted, the node leaves the census, and it no longer participates
  /// in encounters, quiescence scans, or the output graph. Irreversible.
  /// Throws std::logic_error if `u` is already dead.
  void kill(int u);

  [[nodiscard]] StateId state(int u) const noexcept {
    return states_[static_cast<std::size_t>(u)];
  }
  void set_state(int u, StateId s);

  [[nodiscard]] bool edge(int u, int v) const noexcept {
    if (!sparse_) {
      const std::size_t i = Graph::pair_index(u, v);
      return (edge_bits_[i / 64] >> (i % 64)) & 1ULL;
    }
    return sparse_edge(u, v);
  }
  /// Returns true if the edge state changed.
  bool set_edge(int u, int v, bool active);

  /// Number of active edges incident to u.
  [[nodiscard]] int active_degree(int u) const noexcept {
    return degree_[static_cast<std::size_t>(u)];
  }

  /// Number of nodes currently in state s.
  [[nodiscard]] int census(StateId s) const noexcept {
    return census_[static_cast<std::size_t>(s)];
  }

  [[nodiscard]] std::int64_t active_edge_count() const noexcept { return active_edges_; }

  /// Invoke fn(u, v) for every active edge, u < v, in unspecified order.
  /// O(n^2 / 64 + m) dense (word-skipping scan), O(n + m) sparse -- the way
  /// to enumerate edges without n^2 edge() probes.
  template <typename Fn>
  void for_each_active_edge(Fn&& fn) const {
    if (sparse_) {
      for (int u = 0; u < n_; ++u) {
        const int d = degree_[static_cast<std::size_t>(u)];
        if (d <= kInlineNeighbors) {
          const std::size_t base = static_cast<std::size_t>(u) * kInlineNeighbors;
          for (int i = 0; i < d; ++i) {
            const std::int32_t v = adj_inline_[base + static_cast<std::size_t>(i)];
            if (u < v) fn(u, static_cast<int>(v));
          }
        } else {
          for (const std::int32_t v : adjacency_[static_cast<std::size_t>(u)]) {
            if (u < v) fn(u, static_cast<int>(v));
          }
        }
      }
      return;
    }
    for (std::size_t w = 0; w < edge_bits_.size(); ++w) {
      std::uint64_t word = edge_bits_[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        word &= word - 1;
        const std::size_t index = w * 64 + static_cast<std::size_t>(bit);
        // Invert pair_index(u, v) = v(v-1)/2 + u (u < v).
        auto v = static_cast<std::size_t>(
            (1.0 + std::sqrt(1.0 + 8.0 * static_cast<double>(index))) / 2.0);
        while (v * (v - 1) / 2 > index) --v;
        while (v * (v + 1) / 2 <= index) ++v;
        const std::size_t u = index - v * (v - 1) / 2;
        fn(static_cast<int>(u), static_cast<int>(v));
      }
    }
  }

  /// The active graph over all nodes.
  [[nodiscard]] Graph active_graph() const;

  /// The paper's output graph G(C): active subgraph induced by nodes whose
  /// state is in Qout.
  [[nodiscard]] Graph output_graph(const Protocol& protocol) const;

  /// Alive nodes whose state satisfies `pred`.
  template <typename Pred>
  [[nodiscard]] std::vector<int> nodes_where(Pred pred) const {
    std::vector<int> out;
    for (int u = 0; u < n_; ++u) {
      if (alive(u) && pred(state(u))) out.push_back(u);
    }
    return out;
  }

  /// Active neighbors of u (O(n) scan dense, O(degree) sparse).
  [[nodiscard]] std::vector<int> active_neighbors(int u) const;

 private:
  /// Sparse neighbors live in a fixed inline block while the degree stays at
  /// or below this, so the common O(1)-degree protocols never touch the
  /// per-node heap vectors (one predictable cache line instead of a
  /// pointer chase per probe). Past it, ALL neighbors move to the sorted
  /// adjacency_ vector; dropping back migrates them home.
  static constexpr int kInlineNeighbors = 4;

  [[nodiscard]] bool sparse_edge(int u, int v) const noexcept;
  void sparse_add(int u, int v);
  void sparse_remove(int u, int v);

  int n_ = 0;
  int dead_count_ = 0;
  bool sparse_ = false;
  std::int64_t active_edges_ = 0;
  std::vector<StateId> states_;
  std::vector<std::uint64_t> edge_bits_;     ///< Dense mode only.
  std::vector<std::int32_t> adj_inline_;     ///< Sparse: kInlineNeighbors per node, unsorted.
  std::vector<std::vector<std::int32_t>> adjacency_;  ///< Sparse overflow (degree > inline); sorted.
  std::vector<int> degree_;
  std::vector<int> census_;
  std::vector<char> dead_;  ///< Allocated on first kill(); empty when all alive.
  WorldMutationLog* log_ = nullptr;
};

}  // namespace netcons
