// A configuration of the system: node states, edge states, and the cached
// bookkeeping (active degrees, per-state census) that protocols' stability
// certificates and the simulator's output tracking rely on.
#pragma once

#include "core/protocol.hpp"
#include "graph/graph.hpp"

#include <cstdint>
#include <vector>

namespace netcons {

class World {
 public:
  World() = default;
  /// All nodes in q0, all edges inactive -- the model's initial configuration.
  World(const Protocol& protocol, int n);

  [[nodiscard]] int size() const noexcept { return n_; }

  /// Nodes still participating (size() minus crashed nodes).
  [[nodiscard]] int alive_count() const noexcept { return n_ - dead_count_; }
  [[nodiscard]] int dead_count() const noexcept { return dead_count_; }
  [[nodiscard]] bool alive(int u) const noexcept {
    return dead_count_ == 0 || !dead_[static_cast<std::size_t>(u)];
  }

  /// Crash fault: remove `u` from the population. All incident active edges
  /// are deleted, the node leaves the census, and it no longer participates
  /// in encounters, quiescence scans, or the output graph. Irreversible.
  /// Throws std::logic_error if `u` is already dead.
  void kill(int u);

  [[nodiscard]] StateId state(int u) const noexcept {
    return states_[static_cast<std::size_t>(u)];
  }
  void set_state(int u, StateId s);

  [[nodiscard]] bool edge(int u, int v) const noexcept {
    const std::size_t i = Graph::pair_index(u, v);
    return (edge_bits_[i / 64] >> (i % 64)) & 1ULL;
  }
  /// Returns true if the edge state changed.
  bool set_edge(int u, int v, bool active);

  /// Number of active edges incident to u.
  [[nodiscard]] int active_degree(int u) const noexcept {
    return degree_[static_cast<std::size_t>(u)];
  }

  /// Number of nodes currently in state s.
  [[nodiscard]] int census(StateId s) const noexcept {
    return census_[static_cast<std::size_t>(s)];
  }

  [[nodiscard]] std::int64_t active_edge_count() const noexcept { return active_edges_; }

  /// The active graph over all nodes.
  [[nodiscard]] Graph active_graph() const;

  /// The paper's output graph G(C): active subgraph induced by nodes whose
  /// state is in Qout.
  [[nodiscard]] Graph output_graph(const Protocol& protocol) const;

  /// Alive nodes whose state satisfies `pred`.
  template <typename Pred>
  [[nodiscard]] std::vector<int> nodes_where(Pred pred) const {
    std::vector<int> out;
    for (int u = 0; u < n_; ++u) {
      if (alive(u) && pred(state(u))) out.push_back(u);
    }
    return out;
  }

  /// Active neighbors of u (O(n) scan).
  [[nodiscard]] std::vector<int> active_neighbors(int u) const;

 private:
  int n_ = 0;
  int dead_count_ = 0;
  std::int64_t active_edges_ = 0;
  std::vector<StateId> states_;
  std::vector<std::uint64_t> edge_bits_;
  std::vector<int> degree_;
  std::vector<int> census_;
  std::vector<char> dead_;  ///< Allocated on first kill(); empty when all alive.
};

}  // namespace netcons
