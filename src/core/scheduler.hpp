// Interaction schedulers. The model only requires fairness; running times
// are analyzed under the uniform random scheduler (Section 3.1), which is
// the default everywhere. Additional schedulers live in src/sched.
#pragma once

#include "util/rng.hpp"

#include <utility>

namespace netcons {

/// An unordered encounter; first < second is NOT guaranteed -- the pair is
/// symmetric and the simulator resolves orientation from the rule table.
struct Encounter {
  int first = 0;
  int second = 0;
};

/// The census engine's scheduler seam: a static per-pair sampling law the
/// scheduler induces over the n(n-1)/2 unordered pairs. A scheduler that
/// exports one runs on weighted census sampling (core/census_engine.cpp)
/// instead of forcing the naive per-step fallback: the engine thins
/// effective-class draws by pair_weight / max_weight and sizes its
/// geometric skip counts by the weighted effective mass.
///
/// Contract:
///  * pair_weight(u, v) > 0 for every pair of distinct nodes -- a
///    zero-weight pair would break the quiescence argument (an effective
///    pair the scheduler can never select keeps W > 0 forever).
///  * max_weight() >= pair_weight(u, v) for all pairs; the tighter the
///    bound, the fewer thinning rejections.
///  * total_weight() is the exact sum over ALL unordered pairs, dead
///    nodes included (the naive scheduler samples dead pairs too; they
///    execute as wasted steps, and the weighted clock must agree).
///  * sample(rng) draws a pair with probability pair_weight/total_weight
///    in O(1) expected time; it is the one primitive both the naive
///    next() path and the engine's dense regime share.
///  * Weights are static for the lifetime of a trial (placements are
///    per-trial; crash faults do not re-weight -- see above).
///
/// For history-dependent schedulers (random-permutation rounds,
/// stale-biased picks) the exported model is the single-step *marginal*
/// law, which is uniform by symmetry; census reproduces the marginal
/// exactly and deliberately ignores temporal correlations. The CI
/// weighted-census KS gate bounds the observed effect per scheduler.
class SchedulerWeightModel {
 public:
  virtual ~SchedulerWeightModel() = default;
  /// Weight of the unordered pair {u, v}, u != v. Strictly positive.
  [[nodiscard]] virtual double pair_weight(int u, int v) const = 0;
  /// Upper bound on pair_weight over all pairs.
  [[nodiscard]] virtual double max_weight() const = 0;
  /// Exact sum of pair_weight over all n(n-1)/2 unordered pairs.
  [[nodiscard]] virtual double total_weight() const = 0;
  /// Draw a pair with probability pair_weight/total_weight; O(1) expected.
  [[nodiscard]] virtual Encounter sample(Rng& rng) const = 0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  /// Select the next interacting pair among n nodes.
  [[nodiscard]] virtual Encounter next(Rng& rng, int n) = 0;
  /// Reset any internal round state (called when a simulation restarts).
  virtual void reset() {}
  /// The scheduler's pair-weight model for a population of n nodes, or
  /// nullptr when it has none (the census engine then falls back to exact
  /// naive execution). Building the model may consume `rng` (e.g. to
  /// embed the nodes in space); implementations must consume exactly the
  /// draws their first next() call would, so an engine that asks for the
  /// model up front leaves the trial's stream where the naive path would.
  /// The returned model is owned by the scheduler and stays valid for the
  /// scheduler's lifetime.
  [[nodiscard]] virtual SchedulerWeightModel* weight_model(Rng& rng, int n) {
    (void)rng;
    (void)n;
    return nullptr;
  }
};

/// The uniform pair law over n nodes: every scheduler whose single-step
/// marginal is uniform (random-permutation, stale-biased) exports this
/// model. pair_weight == max_weight everywhere, which the census engine
/// recognizes and accepts without consuming acceptance randomness.
class UniformPairWeightModel final : public SchedulerWeightModel {
 public:
  explicit UniformPairWeightModel(int n) noexcept
      : n_(n),
        total_(static_cast<double>(n) * (static_cast<double>(n) - 1.0) / 2.0) {}

  [[nodiscard]] double pair_weight(int, int) const override { return 1.0; }
  [[nodiscard]] double max_weight() const override { return 1.0; }
  [[nodiscard]] double total_weight() const override { return total_; }
  [[nodiscard]] Encounter sample(Rng& rng) const override {
    const int u = static_cast<int>(rng.below(static_cast<std::uint64_t>(n_)));
    int v = static_cast<int>(rng.below(static_cast<std::uint64_t>(n_ - 1)));
    if (v >= u) ++v;
    return {u, v};
  }

 private:
  int n_ = 0;
  double total_ = 0.0;
};

/// The uniform random scheduler: each of the n(n-1)/2 unordered pairs is
/// selected independently and uniformly at random in every step. Fair with
/// probability 1.
class UniformRandomScheduler final : public Scheduler {
 public:
  [[nodiscard]] Encounter next(Rng& rng, int n) override {
    const int u = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    int v = static_cast<int>(rng.below(static_cast<std::uint64_t>(n - 1)));
    if (v >= u) ++v;
    return {u, v};
  }
};

}  // namespace netcons
