// Interaction schedulers. The model only requires fairness; running times
// are analyzed under the uniform random scheduler (Section 3.1), which is
// the default everywhere. Additional schedulers live in src/sched.
#pragma once

#include "util/rng.hpp"

#include <utility>

namespace netcons {

/// An unordered encounter; first < second is NOT guaranteed -- the pair is
/// symmetric and the simulator resolves orientation from the rule table.
struct Encounter {
  int first = 0;
  int second = 0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  /// Select the next interacting pair among n nodes.
  [[nodiscard]] virtual Encounter next(Rng& rng, int n) = 0;
  /// Reset any internal round state (called when a simulation restarts).
  virtual void reset() {}
};

/// The uniform random scheduler: each of the n(n-1)/2 unordered pairs is
/// selected independently and uniformly at random in every step. Fair with
/// probability 1.
class UniformRandomScheduler final : public Scheduler {
 public:
  [[nodiscard]] Encounter next(Rng& rng, int n) override {
    const int u = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    int v = static_cast<int>(rng.below(static_cast<std::uint64_t>(n - 1)));
    if (v >= u) ++v;
    return {u, v};
  }
};

}  // namespace netcons
