// CensusEngine: effective-step sampling over a census of state-pair
// multiplicities.
//
// Under the uniform random scheduler every one of the N = n(n-1)/2
// unordered node pairs is equally likely each step, so a step is effective
// with probability p = W/N, where W is the number of pairs whose
// (state_a, state_b, edge) triple has an effective transition. The paper's
// running times are Theta(n^2 log n) .. Theta(n^4) *total* steps while the
// number of effective interactions is typically near-linear -- the naive
// engine spends almost all of its time executing encounters that change
// nothing.
//
// This engine never executes those. It maintains
//   * per-state alive-node lists (who is in state q),
//   * per-state-pair active-edge buckets over a flat SoA edge store
//     (parallel arrays of endpoints, bucket ids, and back-pointer
//     positions; swap-remove everywhere; a free list recycles slots), and
//   * the protocol-derived list of *effective classes*: the (a, b, c)
//     triples, a <= b, for which Protocol::ineffective is false,
// giving every class multiplicity -- and hence W -- in O(1). Each step it
// draws the geometrically-distributed count of ineffective steps the naive
// engine would have burned (success probability W/N), advances the step
// counter past them, and then executes one encounter sampled uniformly
// from the W effective pairs (class by multiplicity, then a concrete pair
// within the class). Both the step index of every effective interaction
// and the choice of interaction are therefore *exactly* the naive
// distribution; convergence-step samples from the two engines are
// statistically indistinguishable (the CI KS gate enforces this), at O(1)
// expected cost per effective interaction instead of O(1/p).
//
// Class selection is an integer Walker alias table over the class weights,
// rebuilt incrementally: every state/edge transition recomputes only the
// weights of classes containing a touched state (a dirty log), and draws
// stay exact against the *current* weights via a mixture decomposition --
// with probability surplus/W a draw resolves from the dirty classes'
// weight gains, otherwise the alias table proposes ~ snapshot weight and a
// rejection step corrects classes whose weight shrank. The table is
// re-snapshotted when the dirty set or the correction terms grow past
// fixed fractions, so draws are O(1) expected even for large |Q|^2.
//
// External mutation through mutable_world() no longer invalidates the
// tables wholesale: a WorldMutationLog journals every mutation the engine
// did not perform itself, and the journal replays as exact O(1)-per-entry
// deltas before the next sampled step (a full rebuild only happens if the
// journal overflows, e.g. after a long naive-fallback phase).
//
// Leap mode ("census-leap" in the engine registry) batches K draws per
// alias refresh: at batch start the weights are exact and the table is
// freshly snapshotted; during the batch, draws reuse the frozen table and
// frozen total W0, skipping all weight maintenance. One encounter changes
// the effectiveness triple of at most the 2n-3 pairs containing one of its
// endpoints, so |W - W0| <= k * (2n - 3) after k batched draws; choosing
// K = staleness * W0 / (2n) keeps every within-batch sampling probability
// within the configured relative staleness bound of exact. Batches abort
// to exact sampling when a frozen draw lands on a class whose multiplicity
// has dried up, and leap falls back to exact census stepping entirely
// while K < 2 (small n or near-quiescent tails) -- so at small populations
// census-leap *is* census.
//
// Non-uniform schedulers and the weight-model seam: a scheduler whose
// single-step pair law is expressible as static per-pair weights exports a
// SchedulerWeightModel (core/scheduler.hpp), and the engine runs it on
// *weighted* census sampling instead of falling back. With m the effective
// multiplicity, w_hat the model's weight bound and W_s = sum of all pair
// weights (dead pairs included -- the naive scheduler wastes steps on
// them), a candidate effective step occurs with p_hat = m * w_hat / W_s:
// geometric skip at p_hat, uniform census draw, then thinning acceptance
// w(u,v)/w_hat reproduces the scheduler's law exactly -- P(step executes
// (u,v)) = p_hat * (1/m) * (w/w_hat) = w/W_s. A rejected candidate is one
// of the naive run's ineffective steps, already accounted by the consumed
// clock tick. When p_hat >= 1 thinning is invalid and the engine samples
// the model's own next()-equivalent law per step, which costs at most
// ~1/p_hat-ish rejections per effective interaction and only arises in
// weight-concentrated near-converged configurations. Uniform-weight models
// short-circuit the acceptance coin (w == w_hat draws nothing), so the
// uniform scheduler's stream is untouched. Leap batching never opens under
// a weight model: the frozen-table drift bound covers class weights only,
// not the acceptance ratio.
//
// Exactness boundaries (the engine falls back -- one stderr note, never a
// throw -- to the inherited naive per-step semantics):
//   * a non-uniform scheduler that exports *no* weight model (e.g. an
//     exact script, which must execute step-for-step);
//   * an installed StepInterceptor (fault injection): hooks must observe
//     every step, which skipping contradicts. Census sampling resumes when
//     the interceptor is cleared (skipping is memoryless, so resuming
//     mid-run stays exact), replaying the fault phase's mutations from the
//     journal when it fits. Under an interceptor a weight-model scheduler
//     runs naive per-step with its own next(), so the fault phase sees the
//     scheduler's exact (history-dependent) law.
#pragma once

#include "core/simulator.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace netcons {

/// One entry of the protocol's effectiveness table over unordered state
/// pairs: the encounter (a, b, c), a <= b, has an effective transition.
struct EffectiveClass {
  StateId a = 0;
  StateId b = 0;
  bool c = false;
};

/// The (a, b, c) triples, a <= b, for which `protocol.ineffective` is
/// false -- the census engine's sampling support. Exposed for the
/// table-agreement tests (tests/core/test_engine.cpp).
[[nodiscard]] std::vector<EffectiveClass> effective_state_classes(const Protocol& protocol);

/// Tuning for the batched leap mode. `staleness` bounds the relative drift
/// of any within-batch sampling weight from exact: a batch holds
/// K = min(max_batch, staleness * W0 / (2n)) draws against the frozen
/// table, which is conservative because one encounter changes the triple
/// of at most 2n - 3 unordered pairs. K < 2 means exact census stepping.
struct CensusLeapOptions {
  bool enabled = false;
  double staleness = 0.05;
  std::uint32_t max_batch = 4096;
};

class CensusEngine final : public Simulator {
 public:
  /// Internals counters surfaced by publish_metrics (single-threaded: an
  /// engine lives on one worker thread; the registry does the cross-thread
  /// merging). Exposed for the delta-vs-rebuild and leap unit tests.
  struct Stats {
    std::uint64_t full_rebuilds = 0;      ///< Full census-table rebuilds.
    std::uint64_t delta_updates = 0;      ///< Journal entries replayed as O(1) deltas.
    std::uint64_t alias_rebuilds = 0;     ///< Alias-table re-snapshots.
    std::uint64_t geometric_skips = 0;    ///< Ineffective steps skipped wholesale.
    std::uint64_t effective_samples = 0;  ///< Census-sampled effective encounters.
    std::uint64_t leap_batches = 0;       ///< Frozen-table batches opened.
    std::uint64_t leap_batched_steps = 0; ///< Draws served from a frozen table.
    std::uint64_t leap_exact_steps = 0;   ///< Leap-mode draws served exactly (K < 2).
    std::uint64_t leap_aborts = 0;        ///< Batches aborted on a dried-up class.
    std::uint64_t weighted_samples = 0;   ///< Weighted-path effective encounters.
    std::uint64_t weighted_rejects = 0;   ///< Thinning candidates rejected.
    std::uint64_t weighted_dense_steps = 0;  ///< Per-step draws in the dense regime.
  };

  /// Census sampling natively assumes the uniform random scheduler (the
  /// default, also recognized when passed explicitly). A non-uniform
  /// scheduler exporting a SchedulerWeightModel runs on weighted census
  /// sampling (see the header comment); one exporting none triggers the
  /// naive fallback for the engine's whole lifetime.
  CensusEngine(Protocol protocol, int n, std::uint64_t seed,
               std::unique_ptr<Scheduler> scheduler = nullptr, CensusLeapOptions leap = {});

  [[nodiscard]] const char* engine_name() const noexcept override {
    return leap_.enabled ? "census-leap" : "census";
  }

  /// External mutations are journaled (WorldMutationLog) and replayed as
  /// exact deltas before the next sampled step.
  [[nodiscard]] World& mutable_world() noexcept override { return Simulator::mutable_world(); }

  /// A non-null interceptor switches to exact per-step execution (with a
  /// one-line stderr note, once per process); clearing it resumes census
  /// sampling.
  void set_interceptor(StepInterceptor* interceptor) noexcept override;

  bool step() override;
  void run(std::uint64_t count) override;
  [[nodiscard]] std::optional<std::uint64_t> run_until(
      const std::function<bool(const World&)>& pred, std::uint64_t max_steps) override;
  [[nodiscard]] ConvergenceReport run_until_stable(const StabilityOptions& options) override;
  using Engine::run_until_stable;

  /// O(1) while the census tables and weights are fresh; otherwise the
  /// inherited O(n^2) scan (a const method cannot replay the journal).
  [[nodiscard]] bool is_quiescent() const override {
    if (!tables_dirty_ && !weights_stale_ && log_.clean() && leap_remaining_ == 0) {
      return total_weight_ == 0;
    }
    return Simulator::is_quiescent();
  }

  /// Whether the engine is currently executing per-step naive semantics
  /// instead of census sampling (model-less custom scheduler or live
  /// interceptor). Weighted census sampling is NOT a fallback.
  [[nodiscard]] bool fallback_active() const noexcept {
    return custom_scheduler_ || interceptor_installed_;
  }

  /// The scheduler's weight model when weighted census sampling is active,
  /// nullptr on the uniform (or fallback) paths.
  [[nodiscard]] const SchedulerWeightModel* weight_model() const noexcept {
    return weight_model_;
  }

  /// Total multiplicity W of effective pairs in the current configuration
  /// (replays the journal / refreshes weights if stale; ends any open leap
  /// batch). W == 0 iff the configuration is quiescent -- the O(1) form of
  /// Engine::is_quiescent.
  [[nodiscard]] std::uint64_t effective_pair_weight();

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const CensusLeapOptions& leap_options() const noexcept { return leap_; }

  /// Publishes the inherited engine.* counters plus the census.* family
  /// (full_rebuilds / delta_updates / alias_rebuilds / geometric_skips /
  /// effective_samples, the census.leap.* batch counters when leap mode is
  /// on, the census.weighted_* counters when a weight model is active) and
  /// the census.bucket_occupancy histogram (active-edge bucket
  /// sizes over the current configuration; sampled 1-in-8 publishes to
  /// keep per-trial cost inside the telemetry overhead budget, and omitted
  /// while the naive fallback is active, when the tables may be stale).
  void publish_metrics(telemetry::Registry& registry) override;

  // --- Test hooks (deterministic, but not part of the engine contract) ---

  /// One class draw against the current weights via the alias/mixture
  /// sampler; returns an index into debug_classes(). Ends any open batch.
  [[nodiscard]] std::size_t debug_draw_class();
  /// The effective classes, after syncing the tables.
  [[nodiscard]] const std::vector<EffectiveClass>& debug_classes();
  /// Current per-class weights (same order as debug_classes()).
  [[nodiscard]] std::vector<std::uint64_t> debug_class_weights();
  /// Canonical text rendering of the census tables (sorted node lists,
  /// sorted bucket edge lists, class weights) -- identical strings iff the
  /// tables describe the same configuration, regardless of the swap-remove
  /// history that produced them.
  [[nodiscard]] std::string debug_table_snapshot();
  /// Discard the tables and rebuild from the world (for equivalence tests).
  void debug_force_full_rebuild();

 private:
  struct BucketEdge {
    int u = 0;
    int v = 0;
    std::uint32_t slot = 0xffffffffu;  ///< kNoSlot unless drawn from a bucket.
  };

  enum class StepOutcome : std::uint8_t {
    kExecuted,         ///< One effective encounter executed.
    kBudgetExhausted,  ///< Next effective step falls beyond the budget.
    kQuiescent         ///< W == 0; the clock did not move.
  };

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  // --- table lifecycle ---
  void rebuild_tables();
  /// Bring the tables in line with the world: full rebuild if flagged or
  /// the journal overflowed, otherwise exact per-entry journal replay.
  void sync_tables();
  void apply_log_entry(const WorldMutationLog::Entry& entry);
  /// Recompute every class weight from the tables (post-batch, post-sync).
  void refresh_weights();

  // --- SoA edge store ---
  [[nodiscard]] std::uint32_t bucket_key(StateId a, StateId b) const noexcept;
  [[nodiscard]] std::uint64_t class_multiplicity(const EffectiveClass& cls) const noexcept;
  void insert_edge(int u, int v);
  void erase_edge(std::uint32_t slot);
  /// Move an edge to the bucket of its endpoints' *current* states after a
  /// state change (adjacency positions are untouched).
  void rebucket_edge(std::uint32_t slot);
  [[nodiscard]] std::uint32_t find_edge_slot(int u, int v) const noexcept;
  void node_list_move(int u, StateId from, StateId to);
  void node_list_remove(int u, StateId from);

  // --- alias table / weight maintenance ---
  /// Recompute one class's weight and fold the change into the running
  /// total, the dirty log, and the surplus term. No-op while a leap batch
  /// has the weights wholesale-stale.
  void touch_class(std::uint32_t ci);
  void touch_state_classes(StateId q);
  void rebuild_alias();
  [[nodiscard]] bool alias_rebuild_due() const noexcept;
  /// Draw ~ snapshot weights (frozen-table path; requires alias_built_).
  [[nodiscard]] std::size_t alias_only_draw();
  /// Draw ~ *current* weights, exactly (mixture + rejection over the
  /// alias proposal). Requires fresh weights and total_weight_ > 0.
  [[nodiscard]] std::size_t draw_class();

  // --- stepping ---
  [[nodiscard]] std::uint64_t geometric_skips(double p);
  /// Pick a concrete unordered pair uniformly within the class.
  [[nodiscard]] BucketEdge sample_pair(const EffectiveClass& cls, std::uint64_t multiplicity);
  /// One census-sampled step, never advancing the clock past `budget`.
  /// Memoryless: a kBudgetExhausted tail is redrawn by the next call.
  StepOutcome census_step(std::uint64_t budget);
  /// The weighted-sampling step (weight_model_ != nullptr): thinning when
  /// p_hat < 1, per-step model sampling otherwise. Requires synced tables
  /// and fresh weights.
  StepOutcome weighted_census_step(std::uint64_t budget);
  /// Apply the encounter and incrementally repair tables and weights.
  /// `slot_hint` is the pair's edge slot when the caller already knows it
  /// (a bucket draw), kNoSlot to look it up here.
  void execute_and_update(int u, int v, std::uint32_t slot_hint);
  [[nodiscard]] std::uint32_t leap_batch_size(std::uint64_t weight) const noexcept;
  void end_leap_batch() noexcept { leap_remaining_ = 0; }

  bool custom_scheduler_ = false;
  bool interceptor_installed_ = false;
  /// Non-owning; points into the scheduler (which outlives every step) when
  /// weighted census sampling is active.
  SchedulerWeightModel* weight_model_ = nullptr;
  bool tables_dirty_ = true;
  /// True while per-class weights are wholesale-stale (during a leap batch
  /// and until the first refresh after it); total_weight_ is then invalid.
  bool weights_stale_ = true;
  bool alias_built_ = false;

  Stats stats_;
  CensusLeapOptions leap_;
  std::uint32_t leap_remaining_ = 0;
  std::uint64_t leap_frozen_weight_ = 0;

  WorldMutationLog log_;

  std::vector<EffectiveClass> classes_;
  /// classes_by_state_[q] = indices of classes whose (a, b) contains q; a
  /// transition touching states S can only change weights of classes with
  /// a state in S, so these lists drive the dirty marking.
  std::vector<std::vector<std::uint32_t>> classes_by_state_;

  std::vector<std::uint64_t> weight_;
  std::uint64_t total_weight_ = 0;

  // Alias snapshot (integer Vose: per-column own-token height out of
  // snapshot_total_) plus the dirty log that keeps draws exact between
  // re-snapshots.
  std::vector<std::uint64_t> snapshot_;
  std::uint64_t snapshot_total_ = 0;
  std::vector<std::uint64_t> alias_height_;
  std::vector<std::uint32_t> alias_other_;
  std::vector<std::uint32_t> dirty_;
  std::vector<std::uint8_t> class_dirty_;
  std::uint64_t surplus_total_ = 0;

  std::vector<std::vector<std::int32_t>> nodes_by_state_;
  std::vector<std::int32_t> node_pos_;

  // Flat edge store: one packed 24-byte record per active edge (endpoints,
  // bucket id, and the three back-pointers that make every removal a
  // swap-remove). Packing matters: edge operations read several attributes
  // of a *random* slot together, so one record is one cache line where
  // parallel per-attribute arrays would be six.
  struct EdgeSlot {
    std::int32_t u = 0;  ///< Smaller endpoint.
    std::int32_t v = 0;  ///< Larger endpoint.
    std::uint32_t bucket = 0;
    std::uint32_t bucket_pos = 0;
    std::uint32_t pos_u = 0;
    std::uint32_t pos_v = 0;
  };
  std::vector<EdgeSlot> edges_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::vector<std::uint32_t>> buckets_;  ///< Slot ids per state-pair key.

  // Per-node incident-slot lists, hybrid layout: the first kInlineAdj
  // entries of node u's list live in the flat adj_inline_ array (one cache
  // line, no pointer chase -- the paper's protocols keep degrees tiny) and
  // only entries past that spill into adj_over_[u]. Positions are
  // contiguous across the two.
  static constexpr std::uint32_t kInlineAdj = 4;
  std::vector<std::uint32_t> adj_inline_;  ///< kInlineAdj entries per node.
  std::vector<std::uint32_t> adj_len_;
  std::vector<std::vector<std::uint32_t>> adj_over_;

  [[nodiscard]] std::uint32_t adj_at(int u, std::uint32_t pos) const noexcept {
    return pos < kInlineAdj
               ? adj_inline_[static_cast<std::size_t>(u) * kInlineAdj + pos]
               : adj_over_[static_cast<std::size_t>(u)][pos - kInlineAdj];
  }
  void adj_put(int u, std::uint32_t pos, std::uint32_t slot) noexcept {
    if (pos < kInlineAdj) {
      adj_inline_[static_cast<std::size_t>(u) * kInlineAdj + pos] = slot;
    } else {
      adj_over_[static_cast<std::size_t>(u)][pos - kInlineAdj] = slot;
    }
  }
  /// Append `slot` to u's list; returns its position.
  std::uint32_t adj_push(int u, std::uint32_t slot) {
    const std::uint32_t pos = adj_len_[static_cast<std::size_t>(u)]++;
    if (pos < kInlineAdj) {
      adj_inline_[static_cast<std::size_t>(u) * kInlineAdj + pos] = slot;
    } else {
      adj_over_[static_cast<std::size_t>(u)].push_back(slot);
    }
    return pos;
  }
  /// Swap-remove position `pos` from u's list, fixing the moved slot's
  /// back-pointer through `edges_`.
  void adj_swap_remove(int u, std::uint32_t pos) noexcept {
    const std::uint32_t last = --adj_len_[static_cast<std::size_t>(u)];
    if (pos != last) {
      const std::uint32_t moved = adj_at(u, last);
      adj_put(u, pos, moved);
      if (edges_[moved].u == u) {
        edges_[moved].pos_u = pos;
      } else {
        edges_[moved].pos_v = pos;
      }
    }
    if (last >= kInlineAdj) adj_over_[static_cast<std::size_t>(u)].pop_back();
  }
};

}  // namespace netcons
