// CensusEngine: effective-step sampling over a census of state-pair
// multiplicities.
//
// Under the uniform random scheduler every one of the N = n(n-1)/2
// unordered node pairs is equally likely each step, so a step is effective
// with probability p = W/N, where W is the number of pairs whose
// (state_a, state_b, edge) triple has an effective transition. The paper's
// running times are Theta(n^2 log n) .. Theta(n^4) *total* steps while the
// number of effective interactions is typically near-linear -- the naive
// engine spends almost all of its time executing encounters that change
// nothing.
//
// This engine never executes those. It maintains
//   * per-state alive-node lists (who is in state q),
//   * per-state-pair active-edge buckets (how many active edges join a
//     state-a node to a state-b node), and
//   * the protocol-derived list of *effective classes*: the (a, b, c)
//     triples, a <= b, for which Protocol::ineffective is false,
// giving every class multiplicity -- and hence W -- in O(1). Each step it
// draws the geometrically-distributed count of ineffective steps the naive
// engine would have burned (success probability W/N), advances the step
// counter past them, and then executes one encounter sampled uniformly
// from the W effective pairs (class by multiplicity, then a concrete pair
// within the class). Both the step index of every effective interaction
// and the choice of interaction are therefore *exactly* the naive
// distribution; convergence-step samples from the two engines are
// statistically indistinguishable (the CI KS gate enforces this), at O(1)
// expected cost per effective interaction instead of O(1/p).
//
// Exactness boundaries (the engine falls back -- one stderr note, never a
// throw -- to the inherited naive per-step semantics):
//   * a non-uniform scheduler supplied at construction: the census
//     argument assumes uniform pair probabilities;
//   * an installed StepInterceptor (fault injection): hooks must observe
//     every step, which skipping contradicts. Census sampling resumes when
//     the interceptor is cleared (skipping is memoryless, so resuming
//     mid-run stays exact).
// External world mutation through mutable_world() (custom initializers,
// fault bursts) invalidates the census tables; they rebuild lazily before
// the next sampled step.
#pragma once

#include "core/simulator.hpp"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace netcons {

/// One entry of the protocol's effectiveness table over unordered state
/// pairs: the encounter (a, b, c), a <= b, has an effective transition.
struct EffectiveClass {
  StateId a = 0;
  StateId b = 0;
  bool c = false;
};

/// The (a, b, c) triples, a <= b, for which `protocol.ineffective` is
/// false -- the census engine's sampling support. Exposed for the
/// table-agreement tests (tests/core/test_engine.cpp).
[[nodiscard]] std::vector<EffectiveClass> effective_state_classes(const Protocol& protocol);

class CensusEngine final : public Simulator {
 public:
  /// Census sampling assumes the uniform random scheduler (the default,
  /// also recognized when passed explicitly). Supplying any non-uniform
  /// scheduler triggers the naive fallback for the engine's whole lifetime.
  CensusEngine(Protocol protocol, int n, std::uint64_t seed,
               std::unique_ptr<Scheduler> scheduler = nullptr);

  [[nodiscard]] const char* engine_name() const noexcept override { return "census"; }

  /// External mutation invalidates the census tables; rebuilt lazily.
  [[nodiscard]] World& mutable_world() noexcept override;

  /// A non-null interceptor switches to exact per-step execution (with a
  /// one-line stderr note, once per process); clearing it resumes census
  /// sampling.
  void set_interceptor(StepInterceptor* interceptor) noexcept override;

  bool step() override;
  void run(std::uint64_t count) override;
  [[nodiscard]] std::optional<std::uint64_t> run_until(
      const std::function<bool(const World&)>& pred, std::uint64_t max_steps) override;
  [[nodiscard]] ConvergenceReport run_until_stable(const StabilityOptions& options) override;
  using Engine::run_until_stable;

  /// O(1) while the census tables are fresh; otherwise the inherited
  /// O(n^2) scan (a const method cannot rebuild the tables).
  [[nodiscard]] bool is_quiescent() const override {
    if (!tables_dirty_ && weight_valid_) return cached_weight_ == 0;
    return Simulator::is_quiescent();
  }

  /// Whether the engine is currently executing per-step naive semantics
  /// instead of census sampling (custom scheduler or live interceptor).
  [[nodiscard]] bool fallback_active() const noexcept {
    return custom_scheduler_ || interceptor_installed_;
  }

  /// Total multiplicity W of effective pairs in the current configuration
  /// (rebuilds the tables if stale). W == 0 iff the configuration is
  /// quiescent -- the O(1) form of Engine::is_quiescent.
  [[nodiscard]] std::uint64_t effective_pair_weight();

  /// Publishes the inherited engine.* counters plus census.rebuilds /
  /// census.geometric_skips / census.effective_samples and the
  /// census.bucket_occupancy histogram (active-edge bucket sizes over the
  /// current configuration; sampled 1-in-8 publishes to keep per-trial
  /// cost inside the telemetry overhead budget, and omitted while the
  /// naive fallback is active, when the tables may be stale).
  void publish_metrics(telemetry::Registry& registry) override;

 private:
  struct BucketEdge {
    int u = 0;
    int v = 0;
  };

  /// One tracked active edge: its endpoints, the normalized state pair of
  /// the bucket it currently lives in, and its positions in that bucket and
  /// in both endpoints' adjacency lists (all swap-removable in O(1)).
  struct EdgeRec {
    int u = 0;
    int v = 0;
    StateId ba = 0;
    StateId bb = 0;
    std::uint32_t bucket_pos = 0;
    std::uint32_t pos_u = 0;
    std::uint32_t pos_v = 0;
  };

  void mark_dirty() noexcept {
    tables_dirty_ = true;
    weight_valid_ = false;
  }
  void ensure_tables();
  void rebuild_tables();

  [[nodiscard]] std::size_t bucket_key(StateId a, StateId b) const noexcept;
  [[nodiscard]] std::uint64_t class_multiplicity(const EffectiveClass& cls) const noexcept;

  void insert_edge(int u, int v);
  void erase_edge(std::size_t key);
  /// Move an edge to the bucket of its endpoints' *current* states after a
  /// state change (adjacency positions are untouched).
  void rebucket_edge(std::size_t key);
  void node_list_move(int u, StateId from, StateId to);

  /// Geometric number of ineffective steps before the next effective one
  /// (success probability p in (0, 1]).
  [[nodiscard]] std::uint64_t geometric_skips(double p);

  /// Pick a concrete unordered pair uniformly within the class.
  [[nodiscard]] BucketEdge sample_pair(const EffectiveClass& cls, std::uint64_t multiplicity);

  /// One census-sampled step, never advancing the clock past `budget`.
  /// Returns true if an effective encounter was executed; false when the
  /// next effective step falls beyond the budget (the clock then rests at
  /// `budget`, and the discarded geometric tail is redrawn later -- exact
  /// by memorylessness). Requires non-zero effective weight.
  bool census_step(std::uint64_t budget);

  /// Apply the encounter and incrementally repair the census tables.
  void execute_and_update(int u, int v);

  bool custom_scheduler_ = false;
  bool interceptor_installed_ = false;
  bool tables_dirty_ = true;
  // Internals counters surfaced by publish_metrics (single-threaded: an
  // engine lives on one worker thread; the registry does the cross-thread
  // merging).
  std::uint64_t rebuilds_ = 0;           ///< Full census-table rebuilds.
  std::uint64_t geometric_skipped_ = 0;  ///< Ineffective steps skipped wholesale.
  std::uint64_t effective_samples_ = 0;  ///< Census-sampled effective encounters.
  /// Cached per-class multiplicities + their sum, recomputed once per
  /// configuration change (effective step, rebuild, external mutation).
  bool weight_valid_ = false;
  std::uint64_t cached_weight_ = 0;
  std::vector<std::uint64_t> class_mults_;

  std::vector<EffectiveClass> classes_;
  std::vector<std::vector<int>> nodes_by_state_;
  std::vector<int> node_pos_;
  /// Active-edge buckets keyed by unordered state pair (bucket_key); each
  /// holds Graph::pair_index keys into edges_.
  std::vector<std::vector<std::size_t>> edge_buckets_;
  /// Per-node incident active-edge keys, so a state change rebuckets the
  /// node's edges in O(degree) instead of an O(n) scan.
  std::vector<std::vector<std::size_t>> adj_;
  std::unordered_map<std::size_t, EdgeRec> edges_;
};

}  // namespace netcons
