// The Network Constructor (NET) protocol representation.
//
// A NET is a 4-tuple (Q, q0, Qout, delta) -- Definition 1 of the paper.
// `delta` is stored as a dense |Q| x |Q| x 2 table of outcomes. The builder
// enforces the paper's partial-function convention (Section 3.1): delta is
// defined at (a, a, c) for all a, and at *one orientation* of (a, b, c) for
// distinct a, b (defining both orientations is allowed only if they agree
// under the swap symmetry).
//
// The PREL extension (Section 3.1, Definition 4) is supported through coin
// rules: a rule may specify two outcomes taken with probability 1/2 each
// (used by Graph-Replication and the generic constructors).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace netcons {

using StateId = std::uint16_t;

/// Right-hand side of a transition: new initiator state, new responder
/// state, new edge state.
struct Outcome {
  StateId a = 0;
  StateId b = 0;
  bool edge = false;

  bool operator==(const Outcome&) const = default;
};

/// One entry of the dense delta table.
struct RuleEntry {
  bool defined = false;
  /// True if applying `primary` (or either branch of a coin rule) can change
  /// any of the three inputs; ineffective rules are stored but never alter
  /// the configuration.
  bool effective = false;
  /// True if any branch changes the edge state (used by stability analyses).
  bool edge_modifying = false;
  bool coin = false;          ///< Two equiprobable outcomes (PREL).
  Outcome primary;
  Outcome secondary;          ///< Valid only when `coin`.
};

class ProtocolBuilder;

/// Immutable, validated protocol. Cheap to copy by shared table.
class Protocol {
 public:
  /// Default-constructed protocols are empty placeholders; real instances
  /// come from ProtocolBuilder::build().
  Protocol() = default;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] int state_count() const noexcept { return q_; }
  [[nodiscard]] StateId initial_state() const noexcept { return q0_; }
  [[nodiscard]] bool is_output_state(StateId s) const noexcept {
    return output_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] const std::string& state_name(StateId s) const {
    return state_names_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] std::optional<StateId> state_by_name(const std::string& name) const;

  /// Whether the protocol uses coin rules (i.e. lives in PREL rather than REL).
  [[nodiscard]] bool randomized() const noexcept { return randomized_; }

  /// Number of *defined effective* transitions (the size measure the paper
  /// reports alongside |Q| when listing protocols).
  [[nodiscard]] int effective_rule_count() const noexcept { return effective_rules_; }

  /// Direct table access for the oriented triple (a, b, c).
  [[nodiscard]] const RuleEntry& entry(StateId a, StateId b, bool c) const noexcept {
    return table_[index(a, b, c)];
  }

  /// Resolved lookup for an unordered encounter between a node in state `a`
  /// and one in state `b` over an edge in state `c`. Returns the applicable
  /// entry and whether the roles are swapped (i.e. the rule is stored as
  /// (b, a, c), so the *second* node of the encounter acts as initiator).
  struct Resolved {
    const RuleEntry* rule = nullptr;  ///< nullptr when delta is undefined here.
    bool swapped = false;
  };
  [[nodiscard]] Resolved resolve(StateId a, StateId b, bool c) const noexcept {
    const RuleEntry& direct = table_[index(a, b, c)];
    if (direct.defined) return {&direct, false};
    const RuleEntry& rev = table_[index(b, a, c)];
    if (rev.defined) return {&rev, true};
    return {nullptr, false};
  }

  /// True when the encounter (a, b, c) would change nothing.
  [[nodiscard]] bool ineffective(StateId a, StateId b, bool c) const noexcept {
    const auto r = resolve(a, b, c);
    return r.rule == nullptr || !r.rule->effective;
  }

  /// True when the encounter (a, b, c) could change the edge state.
  [[nodiscard]] bool can_modify_edge(StateId a, StateId b, bool c) const noexcept {
    const auto r = resolve(a, b, c);
    return r.rule != nullptr && r.rule->edge_modifying;
  }

  /// Human-readable rule listing (effective rules only, as in the paper).
  [[nodiscard]] std::string describe() const;

 private:
  friend class ProtocolBuilder;

  [[nodiscard]] std::size_t index(StateId a, StateId b, bool c) const noexcept {
    return (static_cast<std::size_t>(a) * static_cast<std::size_t>(q_) +
            static_cast<std::size_t>(b)) * 2 + (c ? 1 : 0);
  }

  std::string name_;
  int q_ = 0;
  StateId q0_ = 0;
  bool randomized_ = false;
  int effective_rules_ = 0;
  std::vector<bool> output_;
  std::vector<std::string> state_names_;
  std::vector<RuleEntry> table_;
};

/// Builder with full validation. Typical use:
///
///   ProtocolBuilder b("Global-Star");
///   auto c = b.add_state("c"); auto p = b.add_state("p");
///   b.set_initial(c);
///   b.add_rule(c, c, 0, c, p, 1);
///   b.add_rule(p, p, 1, p, p, 0);
///   b.add_rule(c, p, 0, c, p, 1);
///   Protocol star = b.build();
class ProtocolBuilder {
 public:
  explicit ProtocolBuilder(std::string name);

  /// Declare a state; returns its id. Names must be unique.
  StateId add_state(const std::string& name);

  /// Declare `count` states "prefix0..prefix{count-1}"; returns the first id.
  StateId add_states(const std::string& prefix, int count);

  void set_initial(StateId q0);

  /// Restrict the output set (default: all states are output states).
  void set_output_states(const std::vector<StateId>& states);

  /// Add the deterministic rule (a, b, c) -> (a2, b2, c2).
  void add_rule(StateId a, StateId b, bool c, StateId a2, StateId b2, bool c2);

  /// Add the PREL coin rule (a, b, c) -> first | second, each w.p. 1/2.
  void add_coin_rule(StateId a, StateId b, bool c, Outcome first, Outcome second);

  /// Finalize. Throws std::logic_error on any inconsistency.
  [[nodiscard]] Protocol build();

 private:
  struct PendingRule {
    StateId a, b;
    bool c;
    bool coin;
    Outcome primary, secondary;
  };

  void check_state(StateId s, const char* what) const;

  std::string name_;
  std::vector<std::string> state_names_;
  std::optional<StateId> q0_;
  std::optional<std::vector<StateId>> output_;
  std::vector<PendingRule> rules_;
};

}  // namespace netcons
