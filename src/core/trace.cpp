#include "core/trace.hpp"

#include "graph/predicates.hpp"

#include <sstream>

namespace netcons {

Snapshot capture(const Simulator& sim) {
  Snapshot snap;
  snap.step = sim.steps();
  const World& w = sim.world();
  snap.states.reserve(static_cast<std::size_t>(w.size()));
  for (int u = 0; u < w.size(); ++u) snap.states.push_back(w.state(u));
  snap.active = w.active_graph();
  return snap;
}

std::string census_summary(const Protocol& protocol, const World& world) {
  std::ostringstream os;
  bool first = true;
  for (int s = 0; s < protocol.state_count(); ++s) {
    const int count = world.census(static_cast<StateId>(s));
    if (count == 0) continue;
    if (!first) os << ", ";
    os << protocol.state_name(static_cast<StateId>(s)) << "=" << count;
    first = false;
  }
  return os.str();
}

ComponentCensus component_census(const Graph& g) {
  ComponentCensus census;
  for (const auto& comp : g.components()) {
    const auto size = static_cast<int>(comp.size());
    census.largest = std::max(census.largest, size);
    if (size == 1) {
      ++census.isolated;
      continue;
    }
    const Graph sub = g.induced(comp);
    if (is_spanning_line(sub)) {
      ++census.lines;
    } else if (is_spanning_ring(sub)) {
      ++census.cycles;
    } else if (is_spanning_star(sub)) {
      ++census.stars;
    } else {
      ++census.other;
    }
  }
  return census;
}

}  // namespace netcons
