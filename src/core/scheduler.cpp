// scheduler.hpp is header-only; translation unit kept for symmetry and to
// anchor the vtable of Scheduler.
#include "core/scheduler.hpp"

namespace netcons {

// Anchor: ensures a single strong vtable emission point.
static_assert(sizeof(Encounter) == 2 * sizeof(int));

}  // namespace netcons
