#include "core/protocol.hpp"

#include <sstream>
#include <stdexcept>

namespace netcons {

std::optional<StateId> Protocol::state_by_name(const std::string& name) const {
  for (std::size_t i = 0; i < state_names_.size(); ++i) {
    if (state_names_[i] == name) return static_cast<StateId>(i);
  }
  return std::nullopt;
}

std::string Protocol::describe() const {
  std::ostringstream os;
  os << name_ << ": |Q| = " << q_ << ", q0 = " << state_name(q0_)
     << (randomized_ ? " (randomized/PREL)" : "") << '\n';
  for (StateId a = 0; a < q_; ++a) {
    for (StateId b = 0; b < q_; ++b) {
      for (int c = 0; c <= 1; ++c) {
        const RuleEntry& e = entry(a, b, c != 0);
        if (!e.defined || !e.effective) continue;
        os << "  (" << state_name(a) << ", " << state_name(b) << ", " << c << ") -> ("
           << state_name(e.primary.a) << ", " << state_name(e.primary.b) << ", "
           << (e.primary.edge ? 1 : 0) << ")";
        if (e.coin) {
          os << " | (" << state_name(e.secondary.a) << ", " << state_name(e.secondary.b)
             << ", " << (e.secondary.edge ? 1 : 0) << ") each w.p. 1/2";
        }
        os << '\n';
      }
    }
  }
  return os.str();
}

ProtocolBuilder::ProtocolBuilder(std::string name) : name_(std::move(name)) {
  if (name_.empty()) throw std::invalid_argument("ProtocolBuilder: empty name");
}

StateId ProtocolBuilder::add_state(const std::string& name) {
  if (name.empty()) throw std::invalid_argument("add_state: empty name");
  for (const auto& existing : state_names_) {
    if (existing == name) throw std::logic_error("add_state: duplicate state name " + name);
  }
  if (state_names_.size() >= 4096) throw std::logic_error("add_state: too many states");
  state_names_.push_back(name);
  return static_cast<StateId>(state_names_.size() - 1);
}

StateId ProtocolBuilder::add_states(const std::string& prefix, int count) {
  if (count <= 0) throw std::invalid_argument("add_states: nonpositive count");
  const StateId first = add_state(prefix + "0");
  for (int i = 1; i < count; ++i) add_state(prefix + std::to_string(i));
  return first;
}

void ProtocolBuilder::set_initial(StateId q0) {
  check_state(q0, "set_initial");
  q0_ = q0;
}

void ProtocolBuilder::set_output_states(const std::vector<StateId>& states) {
  for (StateId s : states) check_state(s, "set_output_states");
  output_ = states;
}

void ProtocolBuilder::add_rule(StateId a, StateId b, bool c, StateId a2, StateId b2, bool c2) {
  check_state(a, "add_rule lhs");
  check_state(b, "add_rule lhs");
  check_state(a2, "add_rule rhs");
  check_state(b2, "add_rule rhs");
  rules_.push_back({a, b, c, /*coin=*/false, Outcome{a2, b2, c2}, Outcome{}});
}

void ProtocolBuilder::add_coin_rule(StateId a, StateId b, bool c, Outcome first, Outcome second) {
  check_state(a, "add_coin_rule lhs");
  check_state(b, "add_coin_rule lhs");
  check_state(first.a, "add_coin_rule rhs");
  check_state(first.b, "add_coin_rule rhs");
  check_state(second.a, "add_coin_rule rhs");
  check_state(second.b, "add_coin_rule rhs");
  rules_.push_back({a, b, c, /*coin=*/true, first, second});
}

void ProtocolBuilder::check_state(StateId s, const char* what) const {
  if (static_cast<std::size_t>(s) >= state_names_.size()) {
    throw std::logic_error(std::string(what) + ": undeclared state id " + std::to_string(s));
  }
}

Protocol ProtocolBuilder::build() {
  if (state_names_.empty()) throw std::logic_error("build: no states declared");
  if (!q0_) throw std::logic_error("build: initial state not set");

  Protocol p;
  p.name_ = name_;
  p.q_ = static_cast<int>(state_names_.size());
  p.q0_ = *q0_;
  p.state_names_ = state_names_;
  p.output_.assign(state_names_.size(), !output_.has_value());
  if (output_) {
    for (StateId s : *output_) p.output_[static_cast<std::size_t>(s)] = true;
  }
  p.table_.assign(state_names_.size() * state_names_.size() * 2, RuleEntry{});

  auto entry_mut = [&](StateId a, StateId b, bool c) -> RuleEntry& {
    return p.table_[p.index(a, b, c)];
  };

  for (const auto& r : rules_) {
    RuleEntry& e = entry_mut(r.a, r.b, r.c);
    RuleEntry candidate;
    candidate.defined = true;
    candidate.coin = r.coin;
    candidate.primary = r.primary;
    candidate.secondary = r.secondary;
    const bool primary_changes = r.primary.a != r.a || r.primary.b != r.b || r.primary.edge != r.c;
    const bool secondary_changes =
        r.coin && (r.secondary.a != r.a || r.secondary.b != r.b || r.secondary.edge != r.c);
    candidate.effective = primary_changes || secondary_changes;
    candidate.edge_modifying =
        (r.primary.edge != r.c) || (r.coin && r.secondary.edge != r.c);

    if (e.defined) {
      // Redefinition only allowed if identical.
      if (e.coin != candidate.coin || !(e.primary == candidate.primary) ||
          (e.coin && !(e.secondary == candidate.secondary))) {
        throw std::logic_error("build: conflicting redefinition of rule (" +
                               state_names_[r.a] + ", " + state_names_[r.b] + ", " +
                               std::to_string(r.c) + ") in " + name_);
      }
      continue;
    }
    // If the reverse orientation is already defined for a != b, it must agree
    // under the swap symmetry delta1(a,b,c)=delta2(b,a,c) etc. (footnote 4).
    if (r.a != r.b) {
      const RuleEntry& rev = entry_mut(r.b, r.a, r.c);
      if (rev.defined) {
        const bool consistent = rev.coin == candidate.coin &&
                                rev.primary.a == candidate.primary.b &&
                                rev.primary.b == candidate.primary.a &&
                                rev.primary.edge == candidate.primary.edge &&
                                (!rev.coin || (rev.secondary.a == candidate.secondary.b &&
                                               rev.secondary.b == candidate.secondary.a &&
                                               rev.secondary.edge == candidate.secondary.edge));
        if (!consistent) {
          throw std::logic_error("build: both orientations of (" + state_names_[r.a] +
                                 ", " + state_names_[r.b] + ", " + std::to_string(r.c) +
                                 ") defined inconsistently in " + name_);
        }
      }
    }
    e = candidate;
    if (candidate.effective) ++p.effective_rules_;
    if (candidate.coin) p.randomized_ = true;
  }
  return p;
}

}  // namespace netcons
