#include "core/world.hpp"

#include <stdexcept>

namespace netcons {

World::World(const Protocol& protocol, int n) : n_(n) {
  if (n < 1) throw std::invalid_argument("World: need at least one node");
  states_.assign(static_cast<std::size_t>(n), protocol.initial_state());
  edge_bits_.assign((Graph::pair_count(n) + 63) / 64, 0);
  degree_.assign(static_cast<std::size_t>(n), 0);
  census_.assign(static_cast<std::size_t>(protocol.state_count()), 0);
  census_[protocol.initial_state()] = n;
}

void World::set_state(int u, StateId s) {
  if (!alive(u)) throw std::logic_error("World::set_state: node is crashed");
  StateId& cur = states_[static_cast<std::size_t>(u)];
  if (cur == s) return;
  --census_[static_cast<std::size_t>(cur)];
  ++census_[static_cast<std::size_t>(s)];
  cur = s;
}

void World::kill(int u) {
  if (!alive(u)) throw std::logic_error("World::kill: node already crashed");
  for (int v = 0; v < n_; ++v) {
    if (v != u && edge(u, v)) set_edge(u, v, false);
  }
  --census_[static_cast<std::size_t>(states_[static_cast<std::size_t>(u)])];
  if (dead_.empty()) dead_.assign(static_cast<std::size_t>(n_), 0);
  dead_[static_cast<std::size_t>(u)] = 1;
  ++dead_count_;
}

bool World::set_edge(int u, int v, bool active) {
  const std::size_t i = Graph::pair_index(u, v);
  const std::uint64_t mask = 1ULL << (i % 64);
  const bool old = (edge_bits_[i / 64] & mask) != 0;
  if (old == active) return false;
  edge_bits_[i / 64] ^= mask;
  const int delta = active ? 1 : -1;
  degree_[static_cast<std::size_t>(u)] += delta;
  degree_[static_cast<std::size_t>(v)] += delta;
  active_edges_ += delta;
  return true;
}

Graph World::active_graph() const {
  Graph g(n_);
  for (int v = 1; v < n_; ++v) {
    for (int u = 0; u < v; ++u) {
      if (edge(u, v)) g.add_edge(u, v);
    }
  }
  return g;
}

Graph World::output_graph(const Protocol& protocol) const {
  // Output nodes keep their world ids; non-output nodes are present but
  // isolated is NOT the paper's definition -- the output graph contains only
  // Qout nodes. We relabel them 0..k-1 preserving order.
  std::vector<int> out_nodes;
  out_nodes.reserve(static_cast<std::size_t>(n_));
  for (int u = 0; u < n_; ++u) {
    // Crashed nodes are gone from the population, hence from G(C).
    if (alive(u) && protocol.is_output_state(state(u))) out_nodes.push_back(u);
  }
  Graph g(static_cast<int>(out_nodes.size()));
  for (std::size_t a = 0; a < out_nodes.size(); ++a) {
    for (std::size_t b = a + 1; b < out_nodes.size(); ++b) {
      if (edge(out_nodes[a], out_nodes[b])) {
        g.add_edge(static_cast<int>(a), static_cast<int>(b));
      }
    }
  }
  return g;
}

std::vector<int> World::active_neighbors(int u) const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(active_degree(u)));
  for (int v = 0; v < n_; ++v) {
    if (v != u && edge(u, v)) out.push_back(v);
  }
  return out;
}

}  // namespace netcons
