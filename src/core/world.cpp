#include "core/world.hpp"

#include <algorithm>
#include <stdexcept>

namespace netcons {

World::World(const Protocol& protocol, int n, EdgeStorage storage) : n_(n) {
  if (n < 1) throw std::invalid_argument("World: need at least one node");
  switch (storage) {
    case EdgeStorage::kDense:
      sparse_ = false;
      break;
    case EdgeStorage::kSparse:
      sparse_ = true;
      break;
    case EdgeStorage::kAuto:
      sparse_ = n > kDenseNodeLimit;
      break;
  }
  states_.assign(static_cast<std::size_t>(n), protocol.initial_state());
  if (sparse_) {
    adj_inline_.assign(static_cast<std::size_t>(n) * kInlineNeighbors, 0);
    adjacency_.assign(static_cast<std::size_t>(n), {});
  } else {
    edge_bits_.assign((Graph::pair_count(n) + 63) / 64, 0);
  }
  degree_.assign(static_cast<std::size_t>(n), 0);
  census_.assign(static_cast<std::size_t>(protocol.state_count()), 0);
  census_[protocol.initial_state()] = n;
}

bool World::sparse_edge(int u, int v) const noexcept {
  // Probe the lower-degree endpoint.
  if (degree_[static_cast<std::size_t>(v)] < degree_[static_cast<std::size_t>(u)]) std::swap(u, v);
  const int d = degree_[static_cast<std::size_t>(u)];
  if (d <= kInlineNeighbors) {
    const std::size_t base = static_cast<std::size_t>(u) * kInlineNeighbors;
    for (int i = 0; i < d; ++i) {
      if (adj_inline_[base + static_cast<std::size_t>(i)] == static_cast<std::int32_t>(v)) {
        return true;
      }
    }
    return false;
  }
  const auto& adj = adjacency_[static_cast<std::size_t>(u)];
  return std::binary_search(adj.begin(), adj.end(), static_cast<std::int32_t>(v));
}

void World::sparse_add(int u, int v) {
  // Callers update degree_ afterwards, so degree_[u] is the pre-add count.
  const int d = degree_[static_cast<std::size_t>(u)];
  const std::size_t base = static_cast<std::size_t>(u) * kInlineNeighbors;
  if (d < kInlineNeighbors) {
    adj_inline_[base + static_cast<std::size_t>(d)] = static_cast<std::int32_t>(v);
    return;
  }
  auto& adj = adjacency_[static_cast<std::size_t>(u)];
  if (d == kInlineNeighbors) {  // Spill: everyone moves to the sorted vector.
    adj.assign(adj_inline_.begin() + static_cast<std::ptrdiff_t>(base),
               adj_inline_.begin() + static_cast<std::ptrdiff_t>(base + kInlineNeighbors));
    adj.push_back(static_cast<std::int32_t>(v));
    std::sort(adj.begin(), adj.end());
    return;
  }
  adj.insert(std::lower_bound(adj.begin(), adj.end(), static_cast<std::int32_t>(v)),
             static_cast<std::int32_t>(v));
}

void World::sparse_remove(int u, int v) {
  // Callers update degree_ afterwards, so degree_[u] is the pre-remove count.
  const int d = degree_[static_cast<std::size_t>(u)];
  const std::size_t base = static_cast<std::size_t>(u) * kInlineNeighbors;
  if (d <= kInlineNeighbors) {
    for (int i = 0; i < d; ++i) {
      if (adj_inline_[base + static_cast<std::size_t>(i)] == static_cast<std::int32_t>(v)) {
        adj_inline_[base + static_cast<std::size_t>(i)] =
            adj_inline_[base + static_cast<std::size_t>(d - 1)];
        return;
      }
    }
    return;  // unreachable for a recorded edge
  }
  auto& adj = adjacency_[static_cast<std::size_t>(u)];
  adj.erase(std::lower_bound(adj.begin(), adj.end(), static_cast<std::int32_t>(v)));
  if (d - 1 == kInlineNeighbors) {  // Migrate home; clear() keeps the capacity.
    std::copy(adj.begin(), adj.end(), adj_inline_.begin() + static_cast<std::ptrdiff_t>(base));
    adj.clear();
  }
}

void World::set_state(int u, StateId s) {
  if (!alive(u)) throw std::logic_error("World::set_state: node is crashed");
  StateId& cur = states_[static_cast<std::size_t>(u)];
  if (cur == s) return;
  if (log_ != nullptr && !log_->suspended) {
    log_->record(WorldMutationLog::Kind::kSetState, u, -1, cur, s);
  }
  --census_[static_cast<std::size_t>(cur)];
  ++census_[static_cast<std::size_t>(s)];
  cur = s;
}

void World::kill(int u) {
  if (!alive(u)) throw std::logic_error("World::kill: node already crashed");
  if (sparse_) {
    // set_edge mutates the adjacency storage; iterate over a copy.
    const std::vector<int> neighbors = active_neighbors(u);
    for (const int v : neighbors) set_edge(u, v, false);
  } else {
    for (int v = 0; v < n_; ++v) {
      if (v != u && edge(u, v)) set_edge(u, v, false);
    }
  }
  if (log_ != nullptr && !log_->suspended) {
    log_->record(WorldMutationLog::Kind::kKill, u, -1, states_[static_cast<std::size_t>(u)]);
  }
  --census_[static_cast<std::size_t>(states_[static_cast<std::size_t>(u)])];
  if (dead_.empty()) dead_.assign(static_cast<std::size_t>(n_), 0);
  dead_[static_cast<std::size_t>(u)] = 1;
  ++dead_count_;
}

bool World::set_edge(int u, int v, bool active) {
  if (!sparse_) {
    const std::size_t i = Graph::pair_index(u, v);
    const std::uint64_t mask = 1ULL << (i % 64);
    const bool old = (edge_bits_[i / 64] & mask) != 0;
    if (old == active) return false;
    edge_bits_[i / 64] ^= mask;
  } else {
    const bool old = sparse_edge(u, v);
    if (old == active) return false;
    if (active) {
      sparse_add(u, v);
      sparse_add(v, u);
    } else {
      sparse_remove(u, v);
      sparse_remove(v, u);
    }
  }
  if (log_ != nullptr && !log_->suspended) {
    log_->record(active ? WorldMutationLog::Kind::kEdgeOn : WorldMutationLog::Kind::kEdgeOff, u, v,
                 0);
  }
  const int delta = active ? 1 : -1;
  degree_[static_cast<std::size_t>(u)] += delta;
  degree_[static_cast<std::size_t>(v)] += delta;
  active_edges_ += delta;
  return true;
}

Graph World::active_graph() const {
  Graph g(n_);
  for_each_active_edge([&](int u, int v) { g.add_edge(u, v); });
  return g;
}

Graph World::output_graph(const Protocol& protocol) const {
  // Output nodes keep their world ids; non-output nodes are present but
  // isolated is NOT the paper's definition -- the output graph contains only
  // Qout nodes. We relabel them 0..k-1 preserving order.
  std::vector<std::int32_t> relabel(static_cast<std::size_t>(n_), -1);
  int out_count = 0;
  for (int u = 0; u < n_; ++u) {
    // Crashed nodes are gone from the population, hence from G(C).
    if (alive(u) && protocol.is_output_state(state(u))) relabel[static_cast<std::size_t>(u)] = out_count++;
  }
  Graph g(out_count);
  for_each_active_edge([&](int u, int v) {
    const std::int32_t a = relabel[static_cast<std::size_t>(u)];
    const std::int32_t b = relabel[static_cast<std::size_t>(v)];
    if (a >= 0 && b >= 0) g.add_edge(static_cast<int>(a), static_cast<int>(b));
  });
  return g;
}

std::vector<int> World::active_neighbors(int u) const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(active_degree(u)));
  if (sparse_) {
    const int d = degree_[static_cast<std::size_t>(u)];
    if (d <= kInlineNeighbors) {
      const std::size_t base = static_cast<std::size_t>(u) * kInlineNeighbors;
      out.assign(adj_inline_.begin() + static_cast<std::ptrdiff_t>(base),
                 adj_inline_.begin() + static_cast<std::ptrdiff_t>(base + d));
      return out;
    }
    const auto& adj = adjacency_[static_cast<std::size_t>(u)];
    out.assign(adj.begin(), adj.end());
    return out;
  }
  for (int v = 0; v < n_; ++v) {
    if (v != u && edge(u, v)) out.push_back(v);
  }
  return out;
}

}  // namespace netcons
