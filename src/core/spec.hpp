// A protocol bundled with everything the experiment harness needs to run
// and validate it: the target-topology predicate, an optional custom
// initializer (e.g. Replication's input graph), an optional stability
// certificate, and a per-n step-budget hint matching the paper's bound.
#pragma once

#include "core/simulator.hpp"
#include "graph/graph.hpp"

#include <functional>
#include <string>

namespace netcons {

struct ProtocolSpec {
  Protocol protocol;
  /// Validates the stabilized output graph against the paper's target.
  std::function<bool(const Graph&)> target;
  /// Optional sound output-stability certificate (see Simulator).
  StabilityCertificate certificate;
  /// Optional custom initial configuration; the default is all-q0/all-inactive.
  std::function<void(World&)> initialize;
  /// Generous per-n step budget reflecting the protocol's proven bound
  /// (with constant headroom), so harness timeouts indicate real trouble.
  std::function<std::uint64_t(int)> max_steps;
  std::string notes;
};

}  // namespace netcons
