#include "processes/processes.hpp"

#include "util/stats.hpp"

#include <stdexcept>

namespace netcons {
namespace {

/// Adds the same node-state rule for both edge states (these processes
/// ignore edge states; Section 3.3 writes them as delta: Q x Q -> Q x Q).
void add_edge_oblivious_rule(ProtocolBuilder& b, StateId a, StateId x, StateId a2, StateId x2) {
  b.add_rule(a, x, false, a2, x2, false);
  b.add_rule(a, x, true, a2, x2, true);
}

double maximum_matching_expectation(std::uint64_t n) {
  // With R remaining a's, success probability R(R-1)/(n(n-1)) and each
  // success removes two a's: E[X] = n(n-1) * sum over R = n, n-2, ... of
  // 1/(R(R-1)) down to R >= 2.
  if (n < 2) return 0.0;
  double sum = 0.0;
  for (std::uint64_t r = n; r >= 2; r -= 2) {
    sum += 1.0 / (static_cast<double>(r) * static_cast<double>(r - 1));
    if (r == 2 || r == 3) break;
  }
  return static_cast<double>(n) * static_cast<double>(n - 1) * sum;
}

double node_cover_shape(std::uint64_t n) { return theory::n_log_n(n); }

}  // namespace

ProcessSpec one_way_epidemic() {
  ProtocolBuilder b("One-way-epidemic");
  const StateId sb = b.add_state("b");
  const StateId sa = b.add_state("a");
  b.set_initial(sb);
  add_edge_oblivious_rule(b, sa, sb, sa, sa);
  ProcessSpec spec;
  spec.protocol = b.build();
  spec.initialize = [sa](World& w) { w.set_state(0, sa); };
  spec.done = [sa](const World& w) { return w.census(sa) == w.alive_count(); };
  spec.expected_steps = [](std::uint64_t n) { return theory::one_way_epidemic(n); };
  spec.expectation_exact = true;
  spec.name = "One-way epidemic";
  spec.theta = "Theta(n log n)";
  return spec;
}

ProcessSpec one_to_one_elimination() {
  ProtocolBuilder b("One-to-one-elimination");
  const StateId sa = b.add_state("a");
  const StateId sb = b.add_state("b");
  b.set_initial(sa);
  add_edge_oblivious_rule(b, sa, sa, sa, sb);
  ProcessSpec spec;
  spec.protocol = b.build();
  spec.done = [sa](const World& w) { return w.census(sa) == 1; };
  spec.expected_steps = [](std::uint64_t n) { return theory::one_to_one_elimination(n); };
  spec.expectation_exact = true;
  spec.name = "One-to-one elimination";
  spec.theta = "Theta(n^2)";
  return spec;
}

ProcessSpec maximum_matching() {
  ProtocolBuilder b("Maximum-matching");
  const StateId sa = b.add_state("a");
  const StateId sb = b.add_state("b");
  b.set_initial(sa);
  b.add_rule(sa, sa, false, sb, sb, true);
  ProcessSpec spec;
  spec.protocol = b.build();
  spec.done = [sa](const World& w) { return w.census(sa) <= 1; };
  spec.expected_steps = maximum_matching_expectation;
  spec.expectation_exact = true;
  spec.name = "Maximum matching";
  spec.theta = "Theta(n^2)";
  return spec;
}

ProcessSpec one_to_all_elimination() {
  ProtocolBuilder b("One-to-all-elimination");
  const StateId sa = b.add_state("a");
  const StateId sb = b.add_state("b");
  b.set_initial(sa);
  add_edge_oblivious_rule(b, sa, sa, sb, sa);
  add_edge_oblivious_rule(b, sa, sb, sb, sb);
  ProcessSpec spec;
  spec.protocol = b.build();
  spec.done = [sa](const World& w) { return w.census(sa) == 0; };
  spec.expected_steps = [](std::uint64_t n) { return theory::one_to_all_elimination(n); };
  spec.expectation_exact = true;
  spec.name = "One-to-all elimination";
  spec.theta = "Theta(n log n)";
  return spec;
}

ProcessSpec meet_everybody() {
  ProtocolBuilder b("Meet-everybody");
  const StateId sb = b.add_state("b");
  const StateId sa = b.add_state("a");
  const StateId sm = b.add_state("m");
  b.set_initial(sb);
  add_edge_oblivious_rule(b, sa, sb, sa, sm);
  ProcessSpec spec;
  spec.protocol = b.build();
  spec.initialize = [sa](World& w) { w.set_state(0, sa); };
  spec.done = [sm](const World& w) { return w.census(sm) == w.alive_count() - 1; };
  spec.expected_steps = [](std::uint64_t n) { return theory::meet_everybody(n); };
  spec.expectation_exact = true;
  spec.name = "Meet everybody";
  spec.theta = "Theta(n^2 log n)";
  return spec;
}

ProcessSpec node_cover() {
  ProtocolBuilder b("Node-cover");
  const StateId sa = b.add_state("a");
  const StateId sb = b.add_state("b");
  b.set_initial(sa);
  add_edge_oblivious_rule(b, sa, sa, sb, sb);
  add_edge_oblivious_rule(b, sa, sb, sb, sb);
  ProcessSpec spec;
  spec.protocol = b.build();
  spec.done = [sb](const World& w) { return w.census(sb) == w.alive_count(); };
  spec.expected_steps = node_cover_shape;
  spec.expectation_exact = false;
  spec.name = "Node cover";
  spec.theta = "Theta(n log n)";
  return spec;
}

ProcessSpec edge_cover() {
  ProtocolBuilder b("Edge-cover");
  const StateId sa = b.add_state("a");
  b.set_initial(sa);
  b.add_rule(sa, sa, false, sa, sa, true);
  ProcessSpec spec;
  spec.protocol = b.build();
  spec.done = [](const World& w) {
    // Over the alive population, so the process stays completable under
    // crash faults (dead nodes cannot carry edges).
    const auto n = static_cast<std::int64_t>(w.alive_count());
    return w.active_edge_count() == n * (n - 1) / 2;
  };
  spec.expected_steps = [](std::uint64_t n) { return theory::edge_cover(n); };
  spec.expectation_exact = true;
  spec.name = "Edge cover";
  spec.theta = "Theta(n^2 log n)";
  return spec;
}

std::vector<ProcessSpec> all_processes() {
  std::vector<ProcessSpec> out;
  out.push_back(one_way_epidemic());
  out.push_back(one_to_one_elimination());
  out.push_back(maximum_matching());
  out.push_back(one_to_all_elimination());
  out.push_back(meet_everybody());
  out.push_back(node_cover());
  out.push_back(edge_cover());
  return out;
}

std::uint64_t process_step_budget(const ProcessSpec& spec, int n) {
  const double expected = spec.expected_steps ? spec.expected_steps(static_cast<std::uint64_t>(n))
                                              : static_cast<double>(n) * n * n;
  return static_cast<std::uint64_t>(64.0 * expected) + 100'000;
}

std::uint64_t run_process(const ProcessSpec& spec, int n, std::uint64_t seed) {
  Simulator sim(spec.protocol, n, seed);
  if (spec.initialize) spec.initialize(sim.mutable_world());
  const auto budget = process_step_budget(spec, n);
  const auto finished = sim.run_until(spec.done, budget);
  if (!finished) {
    throw std::runtime_error("run_process: '" + spec.name + "' did not complete on n=" +
                             std::to_string(n) + " within " + std::to_string(budget) + " steps");
  }
  return *finished;
}

}  // namespace netcons
