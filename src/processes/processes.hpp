// The fundamental probabilistic processes of Section 3.3 (Table 1), each
// expressed as a NET plus an O(1) completion condition and the closed-form
// expectation established by Propositions 1-7. These are both the reference
// workloads of bench_table1_processes and the building blocks the paper's
// running-time proofs reduce to.
#pragma once

#include "core/simulator.hpp"
#include "core/world.hpp"

#include <functional>
#include <string>
#include <vector>

namespace netcons {

struct ProcessSpec {
  Protocol protocol;
  /// Optional non-uniform initial configuration (e.g. the single infected
  /// node of the epidemic).
  std::function<void(World&)> initialize;
  /// O(1) completion condition (census / edge-count based).
  std::function<bool(const World&)> done;
  /// Closed-form expected steps where the proposition pins it down exactly;
  /// otherwise a leading-order reference shape.
  std::function<double(std::uint64_t)> expected_steps;
  /// True when `expected_steps` is exact rather than a Theta-shape.
  bool expectation_exact = false;
  std::string name;
  std::string theta;  ///< Table 1 entry, e.g. "Theta(n log n)".
};

/// (a, b) -> (a, a); one initial a. Proposition 1: Theta(n log n), exactly
/// (n-1) H_{n-1}.
[[nodiscard]] ProcessSpec one_way_epidemic();

/// (a, a) -> (a, b); all nodes initially a; completes at a single a.
/// Proposition 2: Theta(n^2).
[[nodiscard]] ProcessSpec one_to_one_elimination();

/// (a, a, 0) -> (b, b, 1); completes at <=1 a. Proposition 3: Theta(n^2).
[[nodiscard]] ProcessSpec maximum_matching();

/// (a, a) -> (b, a), (a, b) -> (b, b); completes when no a remains.
/// Proposition 4: Theta(n log n).
[[nodiscard]] ProcessSpec one_to_all_elimination();

/// (a, b) -> (a, m); one a; completes when the a has met everyone.
/// Proposition 5: Theta(n^2 log n).
[[nodiscard]] ProcessSpec meet_everybody();

/// (a, a) -> (b, b), (a, b) -> (b, b); completes when all nodes are b.
/// Proposition 6: Theta(n log n).
[[nodiscard]] ProcessSpec node_cover();

/// (a, a, 0) -> (a, a, 1); completes when all edges are active.
/// Proposition 7: Theta(n^2 log n), exactly m H_m with m = n(n-1)/2.
[[nodiscard]] ProcessSpec edge_cover();

/// All seven, in Table 1 order.
[[nodiscard]] std::vector<ProcessSpec> all_processes();

/// Step budget for one trial of `spec` on n nodes: 64x the expected time
/// (or a generous cube fallback), so a timeout signals a real defect rather
/// than unlucky scheduling. Shared by run_process and the campaign engine.
[[nodiscard]] std::uint64_t process_step_budget(const ProcessSpec& spec, int n);

/// Run the process on n nodes under the uniform random scheduler and return
/// the completion step. Throws on timeout (budget is generous w.r.t. the
/// proposition's bound).
[[nodiscard]] std::uint64_t run_process(const ProcessSpec& spec, int n, std::uint64_t seed);

}  // namespace netcons
