// Shared machinery for the Section 6 generic constructors.
//
// These constructors carry per-node records (role, marks, TM components)
// rather than a flat finite-state table. Each one derives from
// InteractionSystem: the same uniform random scheduler picks one unordered
// pair per step, and the subclass's on_interaction decides whether that
// encounter advances anything -- exactly the model's execution semantics,
// with step counts directly comparable to the flat protocols'.
#pragma once

#include "core/scheduler.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

#include <cstdint>

namespace netcons::generic {

class InteractionSystem {
 public:
  InteractionSystem(int n, std::uint64_t seed) : n_(n), rng_(seed) {}
  virtual ~InteractionSystem() = default;

  /// Execute one scheduler step; returns true if it was effective.
  bool step() {
    const Encounter e = scheduler_.next(rng_, n_);
    ++steps_;
    const bool effective = on_interaction(e.first, e.second);
    if (effective) ++effective_steps_;
    return effective;
  }

  void run(std::uint64_t count) {
    for (std::uint64_t i = 0; i < count; ++i) step();
  }

  [[nodiscard]] int size() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }
  [[nodiscard]] std::uint64_t effective_steps() const noexcept { return effective_steps_; }

 protected:
  /// React to the unordered encounter {u, v}; return whether it changed
  /// anything.
  virtual bool on_interaction(int u, int v) = 0;

  [[nodiscard]] Rng& rng() noexcept { return rng_; }

 private:
  int n_;
  Rng rng_;
  UniformRandomScheduler scheduler_;
  std::uint64_t steps_ = 0;
  std::uint64_t effective_steps_ = 0;
};

}  // namespace netcons::generic
