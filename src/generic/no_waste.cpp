#include "generic/no_waste.hpp"

#include "graph/random_graphs.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netcons::generic {

NoWasteConstructor::NoWasteConstructor(tm::GraphLanguage language, int n, std::uint64_t seed,
                                       int max_degree, int space_bits_per_cell)
    : InteractionSystem(n, seed),
      language_(std::move(language)),
      max_degree_(max_degree),
      space_bits_per_cell_(space_bits_per_cell),
      role_(static_cast<std::size_t>(n), Role::Line),
      sgl_(static_cast<std::size_t>(n), Sgl::Q0),
      edges_(n),
      line_nodes_(n),
      session_of_(static_cast<std::size_t>(n), -1),
      mem_of_(static_cast<std::size_t>(n), -1) {
  if (n < 6) throw std::invalid_argument("NoWasteConstructor: need n >= 6");
  if (max_degree < 2) throw std::invalid_argument("NoWasteConstructor: need max_degree >= 2");
}

bool NoWasteConstructor::on_interaction(int u, int v) {
  if (handle_mem(u, v)) return true;
  if (handle_sgl(u, v)) return true;
  return handle_count_op(u, v);
}

void NoWasteConstructor::clear_incident_edges(int node) {
  for (int w : edges_.neighbors(node)) {
    const bool other_free = role_[static_cast<std::size_t>(w)] == Role::Free;
    edges_.remove_edge(node, w);
    if (other_free) note_output_change();
  }
}

bool NoWasteConstructor::handle_sgl(int u, int v) {
  const Role ru = role_[static_cast<std::size_t>(u)];
  const Role rv = role_[static_cast<std::size_t>(v)];
  const bool u_line = ru == Role::Line;
  const bool v_line = rv == Role::Line;

  auto absorb_free = [&](int leader, int fresh) {
    clear_incident_edges(fresh);
    role_[static_cast<std::size_t>(fresh)] = Role::Line;
    ++line_nodes_;
    sgl_[static_cast<std::size_t>(leader)] = Sgl::Q2;
    sgl_[static_cast<std::size_t>(fresh)] = Sgl::L;
    edges_.add_edge(leader, fresh);
    kill_session_of(leader);
    create_session_at_leader(fresh);
  };

  if (u_line && rv == Role::Free && sgl_[static_cast<std::size_t>(u)] == Sgl::L) {
    absorb_free(u, v);
    return true;
  }
  if (v_line && ru == Role::Free && sgl_[static_cast<std::size_t>(v)] == Sgl::L) {
    absorb_free(v, u);
    return true;
  }
  if (!u_line || !v_line) return false;

  Sgl& a = sgl_[static_cast<std::size_t>(u)];
  Sgl& b = sgl_[static_cast<std::size_t>(v)];
  const bool active = edges_.has_edge(u, v);

  if (!active && a == Sgl::Q0 && b == Sgl::Q0) {
    int follower = u;
    int leader = v;
    if (rng().coin()) std::swap(follower, leader);
    sgl_[static_cast<std::size_t>(follower)] = Sgl::Q1;
    sgl_[static_cast<std::size_t>(leader)] = Sgl::L;
    edges_.add_edge(u, v);
    create_session_at_leader(leader);
    return true;
  }
  if (!active && ((a == Sgl::L && b == Sgl::Q0) || (a == Sgl::Q0 && b == Sgl::L))) {
    const int leader = (a == Sgl::L) ? u : v;
    const int fresh = (a == Sgl::L) ? v : u;
    sgl_[static_cast<std::size_t>(leader)] = Sgl::Q2;
    sgl_[static_cast<std::size_t>(fresh)] = Sgl::L;
    edges_.add_edge(u, v);
    kill_session_of(leader);
    create_session_at_leader(fresh);
    return true;
  }
  if (!active && a == Sgl::L && b == Sgl::L) {
    int absorbed = u;
    int walker = v;
    if (rng().coin()) std::swap(absorbed, walker);
    sgl_[static_cast<std::size_t>(absorbed)] = Sgl::Q2;
    sgl_[static_cast<std::size_t>(walker)] = Sgl::W;
    edges_.add_edge(u, v);
    kill_session_of(u);
    kill_session_of(v);
    return true;
  }
  if (active && ((a == Sgl::W && b == Sgl::Q2) || (a == Sgl::Q2 && b == Sgl::W))) {
    std::swap(a, b);
    return true;
  }
  if (active && ((a == Sgl::W && b == Sgl::Q1) || (a == Sgl::Q1 && b == Sgl::W))) {
    const int settled = (b == Sgl::Q1) ? v : u;
    a = Sgl::Q2;
    b = Sgl::Q2;
    sgl_[static_cast<std::size_t>(settled)] = Sgl::L;
    create_session_at_leader(settled);
    return true;
  }
  return false;
}

std::vector<int> NoWasteConstructor::traverse_line_from(int leader) const {
  std::vector<int> rev;
  int prev = -1;
  int cur = leader;
  while (cur != -1) {
    rev.push_back(cur);
    int next = -1;
    for (int w = 0; w < size(); ++w) {
      if (w != cur && w != prev && role_[static_cast<std::size_t>(w)] == Role::Line &&
          edges_.has_edge(cur, w)) {
        next = w;
        break;
      }
    }
    prev = cur;
    cur = next;
  }
  return {rev.rbegin(), rev.rend()};
}

void NoWasteConstructor::kill_session_of(int node) {
  const int sid = session_of_[static_cast<std::size_t>(node)];
  if (sid == -1) return;
  auto it = sessions_.find(sid);
  if (it != sessions_.end()) {
    for (int member : it->second.line) session_of_[static_cast<std::size_t>(member)] = -1;
    sessions_.erase(it);
  }
}

void NoWasteConstructor::create_session_at_leader(int leader) {
  CountSession s;
  s.line = traverse_line_from(leader);
  const auto len = static_cast<int>(s.line.size());
  s.keep = std::max(3, static_cast<int>(std::ceil(std::log2(static_cast<double>(len) + 1))));
  s.keep = std::min(s.keep, len);

  const int sid = next_session_id_++;
  for (int m : s.line) {
    if (session_of_[static_cast<std::size_t>(m)] != -1) kill_session_of(m);
  }
  for (int m : s.line) session_of_[static_cast<std::size_t>(m)] = sid;
  for (int i = 0; i + 1 < len; ++i) {
    s.walk.emplace_back(s.line[static_cast<std::size_t>(i)],
                        s.line[static_cast<std::size_t>(i + 1)]);
  }
  sessions_.emplace(sid, std::move(s));
}

bool NoWasteConstructor::handle_count_op(int u, int v) {
  int sid = session_of_[static_cast<std::size_t>(u)];
  if (sid == -1) sid = session_of_[static_cast<std::size_t>(v)];
  if (sid == -1) return false;
  auto it = sessions_.find(sid);
  if (it == sessions_.end()) return false;
  CountSession& s = it->second;
  if (s.next_op >= s.walk.size()) return false;
  const auto& [a, b] = s.walk[s.next_op];
  if (!((a == u && b == v) || (a == v && b == u))) return false;
  ++s.next_op;
  if (s.next_op == s.walk.size()) finish_count(sid);
  return true;
}

void NoWasteConstructor::finish_count(int sid) {
  CountSession s = std::move(sessions_.at(sid));
  sessions_.erase(sid);
  for (int m : s.line) session_of_[static_cast<std::size_t>(m)] = -1;

  MemS mem;
  const auto len = static_cast<int>(s.line.size());
  mem.members.assign(s.line.end() - s.keep, s.line.end());
  mem.believed_free = len - s.keep;
  mem.retired.assign(static_cast<std::size_t>(size()), 0);
  mem.tossed.assign(static_cast<std::size_t>(size()), 0);
  mem.participant.assign(static_cast<std::size_t>(size()), 0);
  const int mid = next_mem_id_++;
  for (int i = 0; i < len - s.keep; ++i) {
    mem.release_ops.push_back({s.line[static_cast<std::size_t>(i)],
                               s.line[static_cast<std::size_t>(i + 1)], false});
    mem_of_[static_cast<std::size_t>(s.line[static_cast<std::size_t>(i)])] = mid;
  }
  for (int m : mem.members) {
    role_[static_cast<std::size_t>(m)] = Role::Mem;
    mem_of_[static_cast<std::size_t>(m)] = mid;
    --line_nodes_;
  }
  plan_rewire(mem);
  mems_.emplace(mid, std::move(mem));
}

void NoWasteConstructor::plan_rewire(MemS& mem) {
  // Sample a random connected max_degree_-bounded target on S and plan one
  // edge-assignment op per S-S pair (Theorem 17 step 2).
  const auto k = static_cast<int>(mem.members.size());
  const Graph target = sample_bounded_degree_connected(k, max_degree_, rng());
  mem.rewire_ops.clear();
  mem.next_rewire = 0;
  for (int i = 0; i < k; ++i) {
    for (int j = i + 1; j < k; ++j) {
      mem.rewire_ops.push_back({mem.members[static_cast<std::size_t>(i)],
                                mem.members[static_cast<std::size_t>(j)],
                                target.has_edge(i, j)});
    }
  }
}

std::vector<int> NoWasteConstructor::strip_mem(int mem_id) {
  MemS& mem = mems_.at(mem_id);
  for (std::size_t i = mem.next_release; i < mem.release_ops.size(); ++i) {
    const int m = mem.release_ops[i].a;
    for (int w : edges_.neighbors(m)) edges_.remove_edge(m, w);
    sgl_[static_cast<std::size_t>(m)] = Sgl::Q0;
    mem_of_[static_cast<std::size_t>(m)] = -1;
  }
  mem.release_ops.clear();
  mem.next_release = 0;
  return mem.members;
}

void NoWasteConstructor::merge_mems(int mem_a, int mem_b) {
  const std::vector<int> a = strip_mem(mem_a);
  const std::vector<int> b = strip_mem(mem_b);
  mems_.erase(mem_a);
  mems_.erase(mem_b);
  // The S subgraphs may be arbitrary bounded-degree graphs; clear them and
  // rebuild a plain line for line mode.
  for (int m : a) clear_incident_edges(m);
  for (int m : b) clear_incident_edges(m);
  std::vector<int> merged(a.begin(), a.end());
  merged.insert(merged.end(), b.rbegin(), b.rend());
  for (std::size_t i = 0; i + 1 < merged.size(); ++i) {
    edges_.add_edge(merged[i], merged[i + 1]);
  }
  for (int m : merged) {
    role_[static_cast<std::size_t>(m)] = Role::Line;
    sgl_[static_cast<std::size_t>(m)] = Sgl::Q2;
    mem_of_[static_cast<std::size_t>(m)] = -1;
    ++line_nodes_;
  }
  sgl_[static_cast<std::size_t>(merged.back())] = Sgl::Q1;
  sgl_[static_cast<std::size_t>(merged.front())] = Sgl::L;
  create_session_at_leader(merged.front());
}

void NoWasteConstructor::merge_mem_into_line(int mem_id, int line_leader) {
  const std::vector<int> m = strip_mem(mem_id);
  mems_.erase(mem_id);
  for (int node : m) clear_incident_edges(node);
  kill_session_of(line_leader);
  // Rebuild the S part as a path hanging off the line's old leader.
  edges_.add_edge(line_leader, m.back());
  for (std::size_t i = 0; i + 1 < m.size(); ++i) edges_.add_edge(m[i], m[i + 1]);
  sgl_[static_cast<std::size_t>(line_leader)] = Sgl::Q2;
  for (int node : m) {
    role_[static_cast<std::size_t>(node)] = Role::Line;
    sgl_[static_cast<std::size_t>(node)] = Sgl::Q2;
    mem_of_[static_cast<std::size_t>(node)] = -1;
    ++line_nodes_;
  }
  sgl_[static_cast<std::size_t>(m.front())] = Sgl::L;
  create_session_at_leader(m.front());
}

void NoWasteConstructor::revert_mem_to_line(int mem_id) {
  const std::vector<int> m = strip_mem(mem_id);
  mems_.erase(mem_id);
  for (int node : m) clear_incident_edges(node);
  for (std::size_t i = 0; i + 1 < m.size(); ++i) edges_.add_edge(m[i], m[i + 1]);
  for (int node : m) {
    role_[static_cast<std::size_t>(node)] = Role::Line;
    sgl_[static_cast<std::size_t>(node)] = Sgl::Q2;
    mem_of_[static_cast<std::size_t>(node)] = -1;
    ++line_nodes_;
  }
  sgl_[static_cast<std::size_t>(m.front())] = Sgl::Q1;
  sgl_[static_cast<std::size_t>(m.back())] = Sgl::L;
  create_session_at_leader(m.back());
}

std::vector<int> NoWasteConstructor::free_nodes() const {
  std::vector<int> out;
  for (int u = 0; u < size(); ++u) {
    if (role_[static_cast<std::size_t>(u)] == Role::Free) out.push_back(u);
  }
  return out;
}

void NoWasteConstructor::try_decide(MemS& mem) {
  ++draw_passes_;
  const auto frees = free_nodes();
  const auto order = static_cast<int>(frees.size() + mem.members.size());
  const std::size_t budget =
      static_cast<std::size_t>(space_bits_per_cell_) * mem.members.size();
  if (language_.workspace_bits(order) > budget) {
    throw std::logic_error("NoWasteConstructor: language '" + language_.name +
                           "' needs more than O(log n) workspace (Theorem 17 budget exceeded)");
  }
  // Decide on the FULL graph: S plus the free nodes.
  std::vector<int> all(frees);
  all.insert(all.end(), mem.members.begin(), mem.members.end());
  std::sort(all.begin(), all.end());
  const Graph drawn = edges_.induced(all);
  if (language_.decide(drawn)) {
    mem.accepted = true;
  } else {
    // Resample S's internal graph and redraw everything outside it.
    mem.anchor = -1;
    mem.retired_count = 0;
    mem.tossed_count = 0;
    std::fill(mem.retired.begin(), mem.retired.end(), 0);
    std::fill(mem.tossed.begin(), mem.tossed.end(), 0);
    std::fill(mem.participant.begin(), mem.participant.end(), 0);
    plan_rewire(mem);
  }
}

bool NoWasteConstructor::handle_mem(int u, int v) {
  const int mu = mem_of_[static_cast<std::size_t>(u)];
  const int mv = mem_of_[static_cast<std::size_t>(v)];
  const bool u_is_mem_leader = mu != -1 && mems_.at(mu).members.back() == u;
  const bool v_is_mem_leader = mv != -1 && mems_.at(mv).members.back() == v;

  if (u_is_mem_leader && v_is_mem_leader) {
    merge_mems(mu, mv);
    return true;
  }
  if (u_is_mem_leader && role_[static_cast<std::size_t>(v)] == Role::Line &&
      sgl_[static_cast<std::size_t>(v)] == Sgl::L) {
    merge_mem_into_line(mu, v);
    return true;
  }
  if (v_is_mem_leader && role_[static_cast<std::size_t>(u)] == Role::Line &&
      sgl_[static_cast<std::size_t>(u)] == Sgl::L) {
    merge_mem_into_line(mv, u);
    return true;
  }

  // Pending prefix releases, then the S-internal rewiring pass.
  for (const int mid : {mu, mv}) {
    if (mid == -1) continue;
    MemS& mem = mems_.at(mid);
    if (mem.next_release < mem.release_ops.size()) {
      const Op& op = mem.release_ops[mem.next_release];
      if ((op.a == u && op.b == v) || (op.a == v && op.b == u)) {
        edges_.remove_edge(op.a, op.b);
        role_[static_cast<std::size_t>(op.a)] = Role::Free;
        mem_of_[static_cast<std::size_t>(op.a)] = -1;
        --line_nodes_;
        ++mem.next_release;
        return true;
      }
      continue;
    }
    if (mem.next_rewire < mem.rewire_ops.size()) {
      const Op& op = mem.rewire_ops[mem.next_rewire];
      if ((op.a == u && op.b == v) || (op.a == v && op.b == u)) {
        edges_.set_edge(op.a, op.b, op.activate);
        note_output_change();
        ++mem.next_rewire;
        return true;
      }
      continue;
    }
  }

  auto excess_free_detected = [&](int mem_id, int other) -> bool {
    MemS& mem = mems_.at(mem_id);
    return mem.accepted && role_[static_cast<std::size_t>(other)] == Role::Free &&
           !mem.participant[static_cast<std::size_t>(other)];
  };
  if (u_is_mem_leader && excess_free_detected(mu, v)) {
    revert_mem_to_line(mu);
    return true;
  }
  if (v_is_mem_leader && excess_free_detected(mv, u)) {
    revert_mem_to_line(mv);
    return true;
  }

  // Anchor selection (Theorem 17 step 3): every believed free node anchors
  // once; coverage is all free-free pairs plus all free-S pairs.
  auto pick_anchor = [&](int mem_id, int other) -> bool {
    MemS& mem = mems_.at(mem_id);
    if (mem.accepted || mem.busy() || mem.anchor != -1 || mem.believed_free < 1) return false;
    if (role_[static_cast<std::size_t>(other)] != Role::Free) return false;
    if (mem.retired[static_cast<std::size_t>(other)]) return false;
    mem.anchor = other;
    mem.tossed_count = 0;
    mem.participant[static_cast<std::size_t>(other)] = 1;
    std::fill(mem.tossed.begin(), mem.tossed.end(), 0);
    return true;
  };
  if (u_is_mem_leader && pick_anchor(mu, v)) return true;
  if (v_is_mem_leader && pick_anchor(mv, u)) return true;

  // Coin tosses: (anchor, candidate) where candidate is an un-retired free
  // node or any member of S.
  for (auto& [mid, mem] : mems_) {
    if (mem.accepted || mem.busy() || mem.anchor == -1) continue;
    int other = -1;
    if (u == mem.anchor) {
      other = v;
    } else if (v == mem.anchor) {
      other = u;
    } else {
      continue;
    }
    const bool other_is_s = mem_of_[static_cast<std::size_t>(other)] == mid &&
                            role_[static_cast<std::size_t>(other)] == Role::Mem;
    const bool other_is_free = role_[static_cast<std::size_t>(other)] == Role::Free &&
                               !mem.retired[static_cast<std::size_t>(other)];
    if (!other_is_s && !other_is_free) continue;
    if (mem.tossed[static_cast<std::size_t>(other)]) continue;

    const bool value = rng().coin();
    if (edges_.set_edge(mem.anchor, other, value)) note_output_change();
    mem.tossed[static_cast<std::size_t>(other)] = 1;
    if (other_is_free) mem.participant[static_cast<std::size_t>(other)] = 1;
    ++mem.tossed_count;
    const int wanted = (mem.believed_free - mem.retired_count - 1) +
                       static_cast<int>(mem.members.size());
    if (mem.tossed_count >= wanted) {
      mem.retired[static_cast<std::size_t>(mem.anchor)] = 1;
      mem.anchor = -1;
      mem.tossed_count = 0;
      ++mem.retired_count;
      if (mem.retired_count >= mem.believed_free) try_decide(mem);
    }
    return true;
  }
  return false;
}

NoWasteConstructor::Report NoWasteConstructor::run_until_stable(std::uint64_t max_steps) {
  Report report;
  const std::uint64_t check_interval =
      std::max<std::uint64_t>(1024, static_cast<std::uint64_t>(size()) * size());
  while (true) {
    if (line_nodes_ == 0 && mems_.size() == 1 && mems_.begin()->second.accepted &&
        static_cast<int>(free_nodes().size()) == mems_.begin()->second.believed_free) {
      report.stabilized = true;
      break;
    }
    if (steps() >= max_steps) break;
    run(std::min(check_interval, max_steps - steps()));
  }
  report.steps_executed = steps();
  report.convergence_step = last_output_change_;
  report.draw_passes = draw_passes_;
  if (!mems_.empty()) {
    report.tm_subgraph_order = static_cast<int>(mems_.begin()->second.members.size());
  }
  std::vector<int> all(size());
  for (int i = 0; i < size(); ++i) all[static_cast<std::size_t>(i)] = i;
  report.output = edges_.induced(all);
  report.useful_space = report.stabilized ? size() : 0;
  return report;
}

}  // namespace netcons::generic
