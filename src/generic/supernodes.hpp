// Theorem 18 (Partitioning into Supernodes): organize n nodes into k lines
// ("supernodes") of length ~log k each, with unique binary names -- enough
// local memory per supernode to run named, memory-equipped distributed
// algorithms on top (Section 6.4).
//
// Interaction-level implementation of the paper's construction:
//  * Leader election: all nodes start as candidates l0; (l0, l0) leaves one
//    leader l and one free node q0.
//  * Each leader bootstraps the assumed starting configuration (4 lines of
//    2 nodes, left endpoints hub-connected to the leader's line's left
//    endpoint) and then runs the phase protocol: when its own line grows to
//    length j it increments every existing line to length j (the "increment
//    existing lines" subphase, a <= r = 2^{j-1}) and then creates r new
//    lines of length j (the "create new lines" subphase), doubling the line
//    count each phase. Lines are named in creation order (the paper's cname
//    counter).
//  * When two leaders meet, the loser becomes a reverter w and dismantles
//    its whole component node by node (each release consumes an interaction
//    with the released node), returning everything to q0 -- the generic
//    simulate-with-a-pre-elected-leader technique. Leaders attach both q0
//    and l0 nodes, so everything is eventually absorbed by the unique
//    surviving leader.
//
// The system stabilizes when a single leader remains and no free or
// candidate nodes are left to grab.
#pragma once

#include "generic/session.hpp"

#include <unordered_map>
#include <vector>

namespace netcons::generic {

class SupernodeConstructor : public InteractionSystem {
 public:
  struct Report {
    bool stabilized = false;
    std::uint64_t steps_executed = 0;
    int supernode_count = 0;          ///< k: number of lines.
    int leader_line_length = 0;       ///< j: current phase's line length.
    std::vector<int> line_lengths;    ///< All line lengths (leader's first).
    std::vector<int> names;           ///< Line names in line order.
    Graph structure;                  ///< The active graph (lines + hub edges).
  };

  SupernodeConstructor(int n, std::uint64_t seed);

  [[nodiscard]] Report run_until_stable(std::uint64_t max_steps);

 protected:
  bool on_interaction(int u, int v) override;

 private:
  enum class Role : std::uint8_t { Candidate, Free, Leader, Member, Reverter };

  struct Build {
    enum class Phase : std::uint8_t { Bootstrap, WaitExtend, Increment, Create };
    Phase phase = Phase::Bootstrap;
    std::vector<std::vector<int>> lines;  ///< lines[0] is the leader's line.
    std::vector<int> names;               ///< Parallel to `lines`.
    int bootstrap_step = 0;
    int j = 2;           ///< Phase number == leader-line length.
    int r = 0;           ///< Lines to touch this phase.
    int a = 0;           ///< Progress counter within the subphase.
    int visit_index = 1; ///< Next line to increment.
    int partial_line = -1;
    int next_name = 4;   ///< 0..3 are the bootstrap lines.
  };

  struct Revert {
    std::vector<int> order;  ///< Reverse creation order.
    std::size_t next = 0;
  };

  [[nodiscard]] bool grabbable(int node) const {
    const Role role = role_[static_cast<std::size_t>(node)];
    return role == Role::Free || role == Role::Candidate;
  }
  bool handle_grab(int structural, int fresh);
  void attach(Build& build, int line_index, int fresh);
  void start_line(Build& build, int fresh);
  void become_reverter(int leader);
  bool handle_revert(int reverter, int target);

  std::vector<Role> role_;
  std::vector<int> owner_;  ///< member/leader -> leader node id.
  Graph edges_;
  std::unordered_map<int, Build> builds_;
  std::unordered_map<int, Revert> reverts_;
  int candidates_ = 0;
  int free_ = 0;
  int leaders_ = 0;
};

}  // namespace netcons::generic
