// Theorem 14 (Linear Waste-Half): DGS(O(n)) is constructible with useful
// space floor(n/2).
//
// Interaction-level implementation of the paper's pipeline (Figures 3-6):
//
//  1. Partition: (q0, q0, 0) -> (qu, qd, 1) matches every U-node with a
//     D-partner (one node wasted when n is odd).
//  2. Line: the U-nodes run Simple-Global-Line verbatim (merges, leader
//     random walks) to organize into a line.
//  3. TM session: whenever a line's leader settles (state l at an endpoint),
//     a simulation session starts for that line: the head initializes its
//     direction marks by walking the line (Figure 5); then, for every pair
//     (i, j) of the line's D-partners, a mark walks from the left endpoint
//     to position i, drops down the vertical matching edge to mark D_i, a
//     second walk marks D_j, and the next D_i--D_j encounter tosses the fair
//     coin that writes the random edge (Figure 6). Every one of these
//     micro-operations advances only when the scheduler selects its specific
//     pair, so measured step counts include all the scheduling misses the
//     real protocol would pay.
//  4. Decide: when all pairs are drawn, the decider for L runs on the
//     drawn graph using the line as its workspace; the implementation
//     audits the decider's declared workspace against the line's capacity
//     (space_bits_per_cell * |U|), honoring the DGS(O(n)) bound. Reject
//     redraws (back to 3's pair pass); accept releases the D-nodes
//     (deactivating the matching edges) and freezes.
//  5. Reinitialization: any line expansion or merge kills the affected
//     sessions; the new, longer line starts a fresh session (the paper's
//     reinitialization phase). Only the final, spanning line's session
//     survives to release.
//
// Substitution note (DESIGN.md): the decider runs as audited C++ when the
// draw pass completes, instead of a hand-compiled tuple table; tape
// mechanics themselves are exercised by tm::LineTape.
#pragma once

#include "generic/session.hpp"
#include "tm/graph_language.hpp"

#include <optional>
#include <unordered_map>
#include <vector>

namespace netcons::generic {

class LinearWasteConstructor : public InteractionSystem {
 public:
  struct Report {
    bool stabilized = false;
    std::uint64_t steps_executed = 0;
    std::uint64_t convergence_step = 0;  ///< Last output (D-graph) change.
    int draw_passes = 0;                 ///< Random graphs drawn in total.
    Graph output;                        ///< Constructed graph on the D-nodes.
  };

  LinearWasteConstructor(tm::GraphLanguage language, int n, std::uint64_t seed,
                         int space_bits_per_cell = 32);

  /// Run until the construction stabilizes (single spanning line, accepted
  /// and released) or the budget is exhausted.
  [[nodiscard]] Report run_until_stable(std::uint64_t max_steps);

  /// The active graph induced on the D-nodes (the useful space).
  [[nodiscard]] Graph d_graph() const;

  [[nodiscard]] int useful_space() const noexcept { return d_count_; }
  [[nodiscard]] int draw_passes() const noexcept { return draw_passes_; }

 protected:
  bool on_interaction(int u, int v) override;

 private:
  enum class Role : std::uint8_t { Free, U, D };
  enum class Sgl : std::uint8_t { Q0, Q1, Q2, L, W };  // Simple-Global-Line states

  struct Op {
    enum class Kind : std::uint8_t { Walk, Reattach, MarkD, UnmarkD, Coin, Release };
    Kind kind;
    int a = -1;
    int b = -1;
  };

  struct Session {
    std::vector<int> u_line;  ///< Left endpoint first; leader last.
    std::vector<int> d_line;  ///< Matched partners, same order.
    std::vector<Op> ops;
    std::size_t next_op = 0;
    bool releasing = false;
    bool done = false;
  };

  bool handle_partition(int u, int v);
  bool handle_sgl(int u, int v);
  bool handle_session_op(int u, int v);

  void kill_session_of(int node);
  void create_session_at_leader(int leader);
  void build_draw_ops(Session& session);
  void on_pass_complete(int session_id);
  void note_output_change() { last_output_change_ = steps(); }

  [[nodiscard]] std::vector<int> traverse_line_from(int leader) const;

  tm::GraphLanguage language_;
  int space_bits_per_cell_;

  std::vector<Role> role_;
  std::vector<Sgl> sgl_;
  std::vector<int> partner_;
  std::vector<char> released_;
  Graph edges_;

  int free_count_ = 0;
  int u_count_ = 0;
  int d_count_ = 0;
  int draw_passes_ = 0;
  std::uint64_t last_output_change_ = 0;

  int next_session_id_ = 0;
  std::unordered_map<int, Session> sessions_;
  std::vector<int> session_of_;  ///< node -> session id, or -1
};

}  // namespace netcons::generic
