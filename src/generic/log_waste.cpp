#include "generic/log_waste.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netcons::generic {

LogWasteConstructor::LogWasteConstructor(tm::GraphLanguage language, int n, std::uint64_t seed,
                                         int space_bits_per_cell)
    : InteractionSystem(n, seed),
      language_(std::move(language)),
      space_bits_per_cell_(space_bits_per_cell),
      role_(static_cast<std::size_t>(n), Role::Line),
      sgl_(static_cast<std::size_t>(n), Sgl::Q0),
      edges_(n),
      line_nodes_(n),
      session_of_(static_cast<std::size_t>(n), -1),
      mem_of_(static_cast<std::size_t>(n), -1) {
  if (n < 6) throw std::invalid_argument("LogWasteConstructor: need n >= 6");
}

bool LogWasteConstructor::on_interaction(int u, int v) {
  if (handle_mem(u, v)) return true;
  if (handle_sgl(u, v)) return true;
  return handle_count_op(u, v);
}

void LogWasteConstructor::clear_incident_edges(int node) {
  for (int w : edges_.neighbors(node)) {
    const bool other_free = role_[static_cast<std::size_t>(w)] == Role::Free;
    edges_.remove_edge(node, w);
    if (other_free) note_output_change();
  }
}

bool LogWasteConstructor::handle_sgl(int u, int v) {
  const Role ru = role_[static_cast<std::size_t>(u)];
  const Role rv = role_[static_cast<std::size_t>(v)];
  const bool u_line = ru == Role::Line;
  const bool v_line = rv == Role::Line;

  auto absorb_free = [&](int leader, int fresh) {
    // (l, q_free, 0) -> (q2, l, 1): the leader hops onto the absorbed node.
    clear_incident_edges(fresh);  // drop any stale drawn edges
    role_[static_cast<std::size_t>(fresh)] = Role::Line;
    ++line_nodes_;
    sgl_[static_cast<std::size_t>(leader)] = Sgl::Q2;
    sgl_[static_cast<std::size_t>(fresh)] = Sgl::L;
    edges_.add_edge(leader, fresh);
    kill_session_of(leader);
    create_session_at_leader(fresh);
  };

  if (u_line && rv == Role::Free && sgl_[static_cast<std::size_t>(u)] == Sgl::L) {
    absorb_free(u, v);
    return true;
  }
  if (v_line && ru == Role::Free && sgl_[static_cast<std::size_t>(v)] == Sgl::L) {
    absorb_free(v, u);
    return true;
  }
  if (!u_line || !v_line) return false;

  Sgl& a = sgl_[static_cast<std::size_t>(u)];
  Sgl& b = sgl_[static_cast<std::size_t>(v)];
  const bool active = edges_.has_edge(u, v);

  if (!active && a == Sgl::Q0 && b == Sgl::Q0) {
    int follower = u;
    int leader = v;
    if (rng().coin()) std::swap(follower, leader);
    sgl_[static_cast<std::size_t>(follower)] = Sgl::Q1;
    sgl_[static_cast<std::size_t>(leader)] = Sgl::L;
    edges_.add_edge(u, v);
    create_session_at_leader(leader);
    return true;
  }
  if (!active && ((a == Sgl::L && b == Sgl::Q0) || (a == Sgl::Q0 && b == Sgl::L))) {
    const int leader = (a == Sgl::L) ? u : v;
    const int fresh = (a == Sgl::L) ? v : u;
    sgl_[static_cast<std::size_t>(leader)] = Sgl::Q2;
    sgl_[static_cast<std::size_t>(fresh)] = Sgl::L;
    edges_.add_edge(u, v);
    kill_session_of(leader);
    create_session_at_leader(fresh);
    return true;
  }
  if (!active && a == Sgl::L && b == Sgl::L) {
    int absorbed = u;
    int walker = v;
    if (rng().coin()) std::swap(absorbed, walker);
    sgl_[static_cast<std::size_t>(absorbed)] = Sgl::Q2;
    sgl_[static_cast<std::size_t>(walker)] = Sgl::W;
    edges_.add_edge(u, v);
    kill_session_of(u);
    kill_session_of(v);
    return true;
  }
  if (active && ((a == Sgl::W && b == Sgl::Q2) || (a == Sgl::Q2 && b == Sgl::W))) {
    std::swap(a, b);
    return true;
  }
  if (active && ((a == Sgl::W && b == Sgl::Q1) || (a == Sgl::Q1 && b == Sgl::W))) {
    const int settled = (b == Sgl::Q1) ? v : u;
    a = Sgl::Q2;
    b = Sgl::Q2;
    sgl_[static_cast<std::size_t>(settled)] = Sgl::L;
    create_session_at_leader(settled);
    return true;
  }
  return false;
}

std::vector<int> LogWasteConstructor::traverse_line_from(int leader) const {
  std::vector<int> rev;
  int prev = -1;
  int cur = leader;
  while (cur != -1) {
    rev.push_back(cur);
    int next = -1;
    for (int w = 0; w < size(); ++w) {
      if (w != cur && w != prev && role_[static_cast<std::size_t>(w)] == Role::Line &&
          edges_.has_edge(cur, w)) {
        next = w;
        break;
      }
    }
    prev = cur;
    cur = next;
  }
  return {rev.rbegin(), rev.rend()};
}

void LogWasteConstructor::kill_session_of(int node) {
  const int sid = session_of_[static_cast<std::size_t>(node)];
  if (sid == -1) return;
  auto it = sessions_.find(sid);
  if (it != sessions_.end()) {
    for (int member : it->second.line) session_of_[static_cast<std::size_t>(member)] = -1;
    sessions_.erase(it);
  }
}

void LogWasteConstructor::create_session_at_leader(int leader) {
  CountSession s;
  s.line = traverse_line_from(leader);
  const auto len = static_cast<int>(s.line.size());
  // Counter suffix: enough cells for a binary count up to len.
  s.keep = std::max(2, static_cast<int>(std::ceil(std::log2(static_cast<double>(len) + 1))));
  s.keep = std::min(s.keep, len);

  const int sid = next_session_id_++;
  for (int m : s.line) {
    if (session_of_[static_cast<std::size_t>(m)] != -1) kill_session_of(m);
  }
  for (int m : s.line) session_of_[static_cast<std::size_t>(m)] = sid;

  // Counting walk left-to-right (the head increments the counter per move).
  for (int i = 0; i + 1 < len; ++i) {
    s.ops.push_back({Op::Kind::Walk, s.line[static_cast<std::size_t>(i)],
                     s.line[static_cast<std::size_t>(i + 1)]});
  }
  sessions_.emplace(sid, std::move(s));
}

bool LogWasteConstructor::handle_count_op(int u, int v) {
  int sid = session_of_[static_cast<std::size_t>(u)];
  if (sid == -1) sid = session_of_[static_cast<std::size_t>(v)];
  if (sid == -1) return false;
  auto it = sessions_.find(sid);
  if (it == sessions_.end()) return false;
  CountSession& s = it->second;
  if (s.next_op >= s.ops.size()) return false;
  const Op& op = s.ops[s.next_op];
  if (!((op.a == u && op.b == v) || (op.a == v && op.b == u))) return false;

  ++s.next_op;
  if (s.next_op == s.ops.size()) finish_count(sid);
  return true;
}

void LogWasteConstructor::finish_count(int sid) {
  CountSession s = std::move(sessions_.at(sid));
  sessions_.erase(sid);
  for (int m : s.line) session_of_[static_cast<std::size_t>(m)] = -1;

  MemLine mem;
  const auto len = static_cast<int>(s.line.size());
  mem.members.assign(s.line.end() - s.keep, s.line.end());
  mem.believed_free = len - s.keep;
  mem.retired.assign(static_cast<std::size_t>(size()), 0);
  mem.tossed.assign(static_cast<std::size_t>(size()), 0);
  mem.participant.assign(static_cast<std::size_t>(size()), 0);
  const int mid = next_mem_id_++;
  // Release the prefix left-to-right. The prefix nodes stay leaderless
  // line-state nodes (inert) until their release op fires, but they are
  // claimed by the memory line so the construction can dissolve cleanly.
  for (int i = 0; i < len - s.keep; ++i) {
    mem.release_ops.push_back({Op::Kind::ReleaseEdge, s.line[static_cast<std::size_t>(i)],
                               s.line[static_cast<std::size_t>(i + 1)]});
    mem_of_[static_cast<std::size_t>(s.line[static_cast<std::size_t>(i)])] = mid;
  }
  for (int m : mem.members) {
    role_[static_cast<std::size_t>(m)] = Role::Mem;
    mem_of_[static_cast<std::size_t>(m)] = mid;
    --line_nodes_;
  }
  mems_.emplace(mid, std::move(mem));
}

void LogWasteConstructor::dissolve_mem(int mem_id) {
  const std::vector<int> members = strip_mem(mem_id);
  for (int m : members) {
    for (int w : edges_.neighbors(m)) edges_.remove_edge(m, w);
    role_[static_cast<std::size_t>(m)] = Role::Line;
    sgl_[static_cast<std::size_t>(m)] = Sgl::Q0;
    mem_of_[static_cast<std::size_t>(m)] = -1;
    ++line_nodes_;
  }
  mems_.erase(mem_id);
}

std::vector<int> LogWasteConstructor::strip_mem(int mem_id) {
  MemLine& mem = mems_.at(mem_id);
  // Unreleased prefix nodes fall back to fresh q0 line nodes.
  for (std::size_t i = mem.next_release; i < mem.release_ops.size(); ++i) {
    const int m = mem.release_ops[i].a;
    for (int w : edges_.neighbors(m)) edges_.remove_edge(m, w);
    sgl_[static_cast<std::size_t>(m)] = Sgl::Q0;
    mem_of_[static_cast<std::size_t>(m)] = -1;
  }
  mem.release_ops.clear();
  mem.next_release = 0;
  return mem.members;
}

void LogWasteConstructor::merge_mems(int mem_a, int mem_b) {
  // Concatenate the two member paths leader-to-leader into one line-mode
  // line; the far endpoint of A settles as its leader, the far endpoint of
  // B becomes the q1 endpoint. Progress is preserved: merged memory lines
  // form longer and longer lines until one spans.
  const std::vector<int> a = strip_mem(mem_a);
  const std::vector<int> b = strip_mem(mem_b);
  mems_.erase(mem_a);
  mems_.erase(mem_b);
  edges_.add_edge(a.back(), b.back());
  // merged := a_front ... a_leader b_leader ... b_front
  std::vector<int> merged(a.begin(), a.end());
  merged.insert(merged.end(), b.rbegin(), b.rend());
  for (int m : merged) {
    role_[static_cast<std::size_t>(m)] = Role::Line;
    sgl_[static_cast<std::size_t>(m)] = Sgl::Q2;
    mem_of_[static_cast<std::size_t>(m)] = -1;
    ++line_nodes_;
  }
  sgl_[static_cast<std::size_t>(merged.back())] = Sgl::Q1;
  sgl_[static_cast<std::size_t>(merged.front())] = Sgl::L;
  create_session_at_leader(merged.front());
}

void LogWasteConstructor::revert_mem_to_line(int mem_id) {
  const std::vector<int> m = strip_mem(mem_id);
  mems_.erase(mem_id);
  for (int node : m) {
    role_[static_cast<std::size_t>(node)] = Role::Line;
    sgl_[static_cast<std::size_t>(node)] = Sgl::Q2;
    mem_of_[static_cast<std::size_t>(node)] = -1;
    ++line_nodes_;
  }
  sgl_[static_cast<std::size_t>(m.front())] = Sgl::Q1;
  sgl_[static_cast<std::size_t>(m.back())] = Sgl::L;
  create_session_at_leader(m.back());
}

void LogWasteConstructor::merge_mem_into_line(int mem_id, int line_leader) {
  // Attach the memory line's member path to the line's leader endpoint; the
  // far end of the memory line becomes the new settled leader.
  const std::vector<int> m = strip_mem(mem_id);
  mems_.erase(mem_id);
  kill_session_of(line_leader);
  edges_.add_edge(line_leader, m.back());
  sgl_[static_cast<std::size_t>(line_leader)] = Sgl::Q2;
  for (int node : m) {
    role_[static_cast<std::size_t>(node)] = Role::Line;
    sgl_[static_cast<std::size_t>(node)] = Sgl::Q2;
    mem_of_[static_cast<std::size_t>(node)] = -1;
    ++line_nodes_;
  }
  sgl_[static_cast<std::size_t>(m.front())] = Sgl::L;
  create_session_at_leader(m.front());
}

std::vector<int> LogWasteConstructor::free_nodes() const {
  std::vector<int> out;
  for (int u = 0; u < size(); ++u) {
    if (role_[static_cast<std::size_t>(u)] == Role::Free) out.push_back(u);
  }
  return out;
}

void LogWasteConstructor::try_decide(MemLine& mem) {
  ++draw_passes_;
  const auto frees = free_nodes();
  const auto order = static_cast<int>(frees.size());
  const std::size_t budget =
      static_cast<std::size_t>(space_bits_per_cell_) * mem.members.size();
  if (language_.workspace_bits(order) > budget) {
    throw std::logic_error("LogWasteConstructor: language '" + language_.name +
                           "' needs more than O(log n) workspace (Theorem 16 budget exceeded)");
  }
  const Graph drawn = edges_.induced(frees);
  if (language_.decide(drawn)) {
    mem.accepted = true;
  } else {
    // Redraw from scratch.
    mem.anchor = -1;
    mem.retired_count = 0;
    mem.tossed_count = 0;
    std::fill(mem.retired.begin(), mem.retired.end(), 0);
    std::fill(mem.tossed.begin(), mem.tossed.end(), 0);
    std::fill(mem.participant.begin(), mem.participant.end(), 0);
  }
}

bool LogWasteConstructor::handle_mem(int u, int v) {
  const int mu = mem_of_[static_cast<std::size_t>(u)];
  const int mv = mem_of_[static_cast<std::size_t>(v)];
  const bool u_is_mem_leader = mu != -1 && mems_.at(mu).members.back() == u;
  const bool v_is_mem_leader = mv != -1 && mems_.at(mv).members.back() == v;

  // Two memory-line leaders: neither original line was spanning; they merge
  // into a new line-mode line so that line length keeps growing (the
  // paper's reinitialization: "the interacting lines may merge").
  if (u_is_mem_leader && v_is_mem_leader) {
    merge_mems(mu, mv);
    return true;
  }
  // A memory-line leader detecting a line-mode leader: attach to that line.
  if (u_is_mem_leader && role_[static_cast<std::size_t>(v)] == Role::Line &&
      sgl_[static_cast<std::size_t>(v)] == Sgl::L) {
    merge_mem_into_line(mu, v);
    return true;
  }
  if (v_is_mem_leader && role_[static_cast<std::size_t>(u)] == Role::Line &&
      sgl_[static_cast<std::size_t>(u)] == Sgl::L) {
    merge_mem_into_line(mv, u);
    return true;
  }

  // Pending prefix releases run before any draw activity of that mem.
  for (const int mid : {mu, mv}) {
    if (mid == -1) continue;
    MemLine& mem = mems_.at(mid);
    if (!mem.releasing()) continue;
    const Op& op = mem.release_ops[mem.next_release];
    if ((op.a == u && op.b == v) || (op.a == v && op.b == u)) {
      edges_.remove_edge(op.a, op.b);
      role_[static_cast<std::size_t>(op.a)] = Role::Free;
      mem_of_[static_cast<std::size_t>(op.a)] = -1;
      --line_nodes_;
      ++mem.next_release;
      return true;
    }
  }

  // An accepted memory line meeting a free node it never drew against has
  // proof that its original line was not spanning: revert and recount.
  auto excess_free_detected = [&](int mem_id, int other) -> bool {
    MemLine& mem = mems_.at(mem_id);
    return mem.accepted && role_[static_cast<std::size_t>(other)] == Role::Free &&
           !mem.participant[static_cast<std::size_t>(other)];
  };
  if (u_is_mem_leader && excess_free_detected(mu, v)) {
    revert_mem_to_line(mu);
    return true;
  }
  if (v_is_mem_leader && excess_free_detected(mv, u)) {
    revert_mem_to_line(mv);
    return true;
  }

  // Anchor selection: the leader of a drawing memory line picks the next
  // un-retired free node.
  auto pick_anchor = [&](int mem_id, int other) -> bool {
    MemLine& mem = mems_.at(mem_id);
    if (mem.accepted || mem.anchor != -1 || mem.believed_free < 2) return false;
    if (mem.releasing()) return false;
    if (role_[static_cast<std::size_t>(other)] != Role::Free) return false;
    if (mem.retired[static_cast<std::size_t>(other)]) return false;
    mem.anchor = other;
    mem.tossed_count = 0;
    mem.participant[static_cast<std::size_t>(other)] = 1;
    std::fill(mem.tossed.begin(), mem.tossed.end(), 0);
    return true;
  };
  if (u_is_mem_leader && pick_anchor(mu, v)) return true;
  if (v_is_mem_leader && pick_anchor(mv, u)) return true;

  // Coin tosses: (anchor, fresh free candidate).
  for (auto& [mid, mem] : mems_) {
    if (mem.accepted || mem.anchor == -1) continue;
    int other = -1;
    if (u == mem.anchor) {
      other = v;
    } else if (v == mem.anchor) {
      other = u;
    } else {
      continue;
    }
    if (role_[static_cast<std::size_t>(other)] != Role::Free) continue;
    if (mem.retired[static_cast<std::size_t>(other)]) continue;
    if (mem.tossed[static_cast<std::size_t>(other)]) continue;

    const bool value = rng().coin();
    if (edges_.set_edge(mem.anchor, other, value)) note_output_change();
    mem.tossed[static_cast<std::size_t>(other)] = 1;
    mem.participant[static_cast<std::size_t>(other)] = 1;
    ++mem.tossed_count;
    const int remaining = mem.believed_free - mem.retired_count - 1;
    if (mem.tossed_count >= remaining) {
      mem.retired[static_cast<std::size_t>(mem.anchor)] = 1;
      mem.anchor = -1;
      mem.tossed_count = 0;
      ++mem.retired_count;
      if (mem.retired_count >= mem.believed_free - 1) try_decide(mem);
    }
    return true;
  }
  return false;
}

std::string LogWasteConstructor::debug_state() const {
  int line = 0, mem = 0, free_count = 0;
  int q0 = 0, q1 = 0, q2 = 0, lead = 0, walk = 0;
  for (int u = 0; u < size(); ++u) {
    switch (role_[static_cast<std::size_t>(u)]) {
      case Role::Line:
        ++line;
        switch (sgl_[static_cast<std::size_t>(u)]) {
          case Sgl::Q0: ++q0; break;
          case Sgl::Q1: ++q1; break;
          case Sgl::Q2: ++q2; break;
          case Sgl::L: ++lead; break;
          case Sgl::W: ++walk; break;
        }
        break;
      case Role::Mem: ++mem; break;
      case Role::Free: ++free_count; break;
    }
  }
  std::string out = "line=" + std::to_string(line) + " (q0=" + std::to_string(q0) +
                    " q1=" + std::to_string(q1) + " q2=" + std::to_string(q2) +
                    " l=" + std::to_string(lead) + " w=" + std::to_string(walk) +
                    ") mem=" + std::to_string(mem) + " free=" + std::to_string(free_count) +
                    " line_ctr=" + std::to_string(line_nodes_) +
                    " sessions=" + std::to_string(sessions_.size()) +
                    " mems=" + std::to_string(mems_.size());
  for (const auto& [mid, m] : mems_) {
    out += " [mem" + std::to_string(mid) + ": k=" + std::to_string(m.members.size()) +
           " believed=" + std::to_string(m.believed_free) +
           " rel=" + std::to_string(m.release_ops.size() - m.next_release) +
           " retired=" + std::to_string(m.retired_count) +
           (m.accepted ? " accepted" : "") + "]";
  }
  return out;
}

LogWasteConstructor::Report LogWasteConstructor::run_until_stable(std::uint64_t max_steps) {
  Report report;
  const std::uint64_t check_interval =
      std::max<std::uint64_t>(1024, static_cast<std::uint64_t>(size()) * size());
  while (true) {
    if (line_nodes_ == 0 && mems_.size() == 1 && mems_.begin()->second.accepted &&
        static_cast<int>(free_nodes().size()) == mems_.begin()->second.believed_free) {
      report.stabilized = true;
      break;
    }
    if (steps() >= max_steps) break;
    run(std::min(check_interval, max_steps - steps()));
  }
  report.steps_executed = steps();
  report.convergence_step = last_output_change_;
  report.draw_passes = draw_passes_;
  if (!mems_.empty()) {
    report.memory_length = static_cast<int>(mems_.begin()->second.members.size());
  }
  const auto frees = free_nodes();
  report.useful_space = static_cast<int>(frees.size());
  report.output = edges_.induced(frees);
  return report;
}

}  // namespace netcons::generic
