// Theorem 16 (Logarithmic Waste): every graph language decidable in
// logarithmic space is constructible with useful space n - O(log n).
//
// Interaction-level implementation of the paper's pipeline:
//
//  * All nodes run Simple-Global-Line. Whenever a line's leader settles, the
//    line optimistically assumes it is spanning and starts COUNTING: the
//    head walks left-to-right building a binary counter in the rightmost
//    ~log L cells, then RELEASES every node except those counter cells
//    (left-to-right edge deactivations). The surviving suffix becomes a
//    "memory line" of length ~log L whose leader believes there are
//    L - log L free nodes.
//  * Any expansion or merge of a line kills its in-flight counting session
//    (the paper's reinitialization) -- so while absorbable nodes remain,
//    expansion outpaces counting and lines keep growing; only a line with
//    nothing left to absorb completes its count.
//  * A memory line draws a random graph on the free nodes: it anchors one
//    free node at a time and tosses a fair coin on each (anchor, other free)
//    encounter, retiring the anchor when it has tossed against all
//    remaining candidates (the counter tells it how many). When the draw
//    completes it runs the decider for L -- audited against the memory
//    line's O(log n) capacity -- accepting (freeze) or redrawing.
//  * Two memory-line leaders meeting, or a memory-line leader meeting a
//    line-mode leader, certify that the original line was not spanning: the
//    memory line(s) dissolve back to fresh line-mode nodes and the
//    construction restarts around them.
//
// Stable iff a single memory line remains, everything else is free, and its
// drawn graph was accepted -- then the useful space is n minus the
// logarithmic memory line.
#pragma once

#include "generic/session.hpp"
#include "tm/graph_language.hpp"

#include <unordered_map>
#include <vector>

namespace netcons::generic {

class LogWasteConstructor : public InteractionSystem {
 public:
  struct Report {
    bool stabilized = false;
    std::uint64_t steps_executed = 0;
    std::uint64_t convergence_step = 0;
    int useful_space = 0;   ///< Free nodes carrying the constructed graph.
    int memory_length = 0;  ///< Length of the surviving memory line.
    int draw_passes = 0;
    Graph output;           ///< Constructed graph on the free nodes.
  };

  LogWasteConstructor(tm::GraphLanguage language, int n, std::uint64_t seed,
                      int space_bits_per_cell = 32);

  [[nodiscard]] Report run_until_stable(std::uint64_t max_steps);

  /// One-line diagnostic of the current population (roles, sessions, mems).
  [[nodiscard]] std::string debug_state() const;

 protected:
  bool on_interaction(int u, int v) override;

 private:
  enum class Role : std::uint8_t { Line, Mem, Free };
  enum class Sgl : std::uint8_t { Q0, Q1, Q2, L, W };

  struct Op {
    enum class Kind : std::uint8_t { Walk, ReleaseEdge };
    Kind kind;
    int a = -1;
    int b = -1;
  };

  /// In-flight counting session of a settled line (the walk only; the
  /// release is performed by the memory line once counting has fixed the
  /// population estimate, so the still-absorbing line leader cannot chase
  /// its own released nodes).
  struct CountSession {
    std::vector<int> line;  ///< Left endpoint first, leader last.
    std::vector<Op> ops;
    std::size_t next_op = 0;
    int keep = 0;  ///< Suffix length that becomes the memory line.
  };

  /// A formed memory line: first releases the counted line's prefix
  /// (left-to-right edge deactivations), then runs the draw-and-decide loop.
  struct MemLine {
    std::vector<int> members;  ///< The keep-suffix; leader last.
    std::vector<Op> release_ops;
    std::size_t next_release = 0;
    int believed_free = 0;
    int anchor = -1;
    int retired_count = 0;
    int tossed_count = 0;
    bool accepted = false;
    std::vector<char> retired;      ///< Per-node flags (size n).
    std::vector<char> tossed;       ///< Per-node flags for the current anchor.
    std::vector<char> participant;  ///< Nodes seen in the current draw pass.

    [[nodiscard]] bool releasing() const noexcept {
      return next_release < release_ops.size();
    }
  };

  bool handle_sgl(int u, int v);
  bool handle_count_op(int u, int v);
  bool handle_mem(int u, int v);

  void kill_session_of(int node);
  void create_session_at_leader(int leader);
  void finish_count(int session_id);
  void dissolve_mem(int mem_id);
  /// Drop an in-flight release prefix back to fresh line nodes; returns the
  /// mem's member suffix (still intact as a path).
  std::vector<int> strip_mem(int mem_id);
  /// Two memory lines certify non-spanning originals: they merge into one
  /// line-mode line and construction resumes (paper Theorem 16 reinit).
  void merge_mems(int mem_a, int mem_b);
  /// A memory line meeting a line-mode leader attaches to that line.
  void merge_mem_into_line(int mem_id, int line_leader);
  /// A memory line that detects a free node beyond its believed census
  /// (its original line was not spanning after all) reverts to a line-mode
  /// line so it can re-absorb everything and recount.
  void revert_mem_to_line(int mem_id);
  void clear_incident_edges(int node);
  [[nodiscard]] std::vector<int> traverse_line_from(int leader) const;
  [[nodiscard]] std::vector<int> free_nodes() const;
  void try_decide(MemLine& mem);
  void note_output_change() { last_output_change_ = steps(); }

  tm::GraphLanguage language_;
  int space_bits_per_cell_;

  std::vector<Role> role_;
  std::vector<Sgl> sgl_;
  Graph edges_;
  int line_nodes_ = 0;

  int next_session_id_ = 0;
  std::unordered_map<int, CountSession> sessions_;
  std::vector<int> session_of_;

  int next_mem_id_ = 0;
  std::unordered_map<int, MemLine> mems_;
  std::vector<int> mem_of_;

  int draw_passes_ = 0;
  std::uint64_t last_output_change_ = 0;
};

}  // namespace netcons::generic
