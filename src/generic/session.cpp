// session.hpp is header-only; anchor translation unit.
#include "generic/session.hpp"

namespace netcons::generic {

static_assert(sizeof(InteractionSystem) > 0);

}  // namespace netcons::generic
