#include "generic/supernodes.hpp"

#include <stdexcept>

namespace netcons::generic {

SupernodeConstructor::SupernodeConstructor(int n, std::uint64_t seed)
    : InteractionSystem(n, seed),
      role_(static_cast<std::size_t>(n), Role::Candidate),
      owner_(static_cast<std::size_t>(n), -1),
      edges_(n),
      candidates_(n) {
  if (n < 8) throw std::invalid_argument("SupernodeConstructor: need n >= 8");
}

bool SupernodeConstructor::on_interaction(int u, int v) {
  const Role ru = role_[static_cast<std::size_t>(u)];
  const Role rv = role_[static_cast<std::size_t>(v)];

  // Leader election among candidates: (l0, l0, 0) -> (l, q0, 0).
  if (ru == Role::Candidate && rv == Role::Candidate) {
    int leader = u;
    int loser = v;
    if (rng().coin()) std::swap(leader, loser);
    role_[static_cast<std::size_t>(leader)] = Role::Leader;
    role_[static_cast<std::size_t>(loser)] = Role::Free;
    --candidates_;
    --candidates_;
    ++free_;
    ++leaders_;
    owner_[static_cast<std::size_t>(leader)] = leader;
    Build build;
    build.lines.push_back({leader});
    build.names.push_back(0);
    builds_.emplace(leader, std::move(build));
    return true;
  }

  // Two leaders: one wins, the other reverts its whole component.
  if (ru == Role::Leader && rv == Role::Leader) {
    int loser = u;
    if (rng().coin()) loser = v;
    become_reverter(loser);
    return true;
  }

  // A reverter releases the next node of its component.
  if (ru == Role::Reverter && handle_revert(u, v)) return true;
  if (rv == Role::Reverter && handle_revert(v, u)) return true;

  // Structural grabs: a designated structure node attaches a free node or a
  // candidate (leaders attach both q0 and l0 nodes).
  if (grabbable(v) && (ru == Role::Leader || ru == Role::Member)) return handle_grab(u, v);
  if (grabbable(u) && (rv == Role::Leader || rv == Role::Member)) return handle_grab(v, u);
  return false;
}

void SupernodeConstructor::attach(Build& build, int line_index, int fresh) {
  auto& line = build.lines[static_cast<std::size_t>(line_index)];
  edges_.add_edge(line.back(), fresh);
  line.push_back(fresh);
}

void SupernodeConstructor::start_line(Build& build, int fresh) {
  // New lines hang off the hub (the left endpoint of the leader's line).
  edges_.add_edge(build.lines[0].front(), fresh);
  build.lines.push_back({fresh});
  build.names.push_back(build.next_name++);
}

bool SupernodeConstructor::handle_grab(int structural, int fresh) {
  const int leader = owner_[static_cast<std::size_t>(structural)];
  if (leader == -1) return false;
  auto it = builds_.find(leader);
  if (it == builds_.end()) return false;
  Build& build = it->second;

  // Identify whether `structural` is the node the current phase is waiting
  // on, and what the grab does.
  bool did = false;
  switch (build.phase) {
    case Build::Phase::Bootstrap: {
      // Steps 0..6 build: leader line to length 2, then three hub lines of
      // length 2 (names 1..3 assigned by start_line order at build time).
      const int step = build.bootstrap_step;
      const int hub = build.lines[0].front();
      if (step == 0 && structural == hub) {
        attach(build, 0, fresh);
        did = true;
      } else if (step == 1 || step == 3 || step == 5) {
        if (structural == hub) {
          Build& b2 = build;
          edges_.add_edge(hub, fresh);
          b2.lines.push_back({fresh});
          b2.names.push_back((step + 1) / 2);  // names 1, 2, 3
          did = true;
        }
      } else if (step == 2 || step == 4 || step == 6) {
        auto& line = build.lines[static_cast<std::size_t>(step / 2)];
        if (structural == line.back()) {
          attach(build, step / 2, fresh);
          did = true;
        }
      }
      if (did) {
        ++build.bootstrap_step;
        if (build.bootstrap_step == 7) {
          build.phase = Build::Phase::WaitExtend;
          build.j = 2;
        }
      }
      break;
    }
    case Build::Phase::WaitExtend:
      // A new phase begins when the leader's own line grows by one.
      if (structural == build.lines[0].back()) {
        attach(build, 0, fresh);
        ++build.j;
        build.r = 1 << (build.j - 1);
        build.a = 2;
        build.visit_index = 1;
        build.phase = Build::Phase::Increment;
        did = true;
      }
      break;
    case Build::Phase::Increment: {
      auto& target = build.lines[static_cast<std::size_t>(build.visit_index)];
      if (structural == target.back()) {
        attach(build, build.visit_index, fresh);
        ++build.visit_index;
        ++build.a;
        if (build.a > build.r) {
          build.phase = Build::Phase::Create;
          build.a = 1;
          build.partial_line = -1;
        }
        did = true;
      }
      break;
    }
    case Build::Phase::Create:
      if (build.partial_line == -1) {
        if (structural == build.lines[0].front()) {  // the hub starts new lines
          start_line(build, fresh);
          build.partial_line = static_cast<int>(build.lines.size()) - 1;
          did = true;
        }
      } else {
        auto& partial = build.lines[static_cast<std::size_t>(build.partial_line)];
        if (structural == partial.back()) {
          attach(build, build.partial_line, fresh);
          did = true;
        }
      }
      if (did) {
        auto& partial = build.lines[static_cast<std::size_t>(build.partial_line)];
        if (partial.size() == build.lines[0].size()) {
          build.partial_line = -1;
          ++build.a;
          if (build.a > build.r) build.phase = Build::Phase::WaitExtend;
        }
      }
      break;
  }

  if (did) {
    if (role_[static_cast<std::size_t>(fresh)] == Role::Candidate) {
      --candidates_;
    } else {
      --free_;
    }
    role_[static_cast<std::size_t>(fresh)] = Role::Member;
    owner_[static_cast<std::size_t>(fresh)] = leader;
  }
  return did;
}

void SupernodeConstructor::become_reverter(int leader) {
  auto it = builds_.find(leader);
  if (it == builds_.end()) return;
  Revert revert;
  // Release in reverse creation order: last line first, each from its right
  // endpoint, the leader's own node last (handled when the order empties).
  for (auto line = it->second.lines.rbegin(); line != it->second.lines.rend(); ++line) {
    for (auto node = line->rbegin(); node != line->rend(); ++node) {
      if (*node != leader) revert.order.push_back(*node);
    }
  }
  builds_.erase(it);
  --leaders_;
  if (revert.order.empty()) {
    // Nothing to dismantle (the loser had no members yet): free immediately.
    for (int w : edges_.neighbors(leader)) edges_.remove_edge(leader, w);
    role_[static_cast<std::size_t>(leader)] = Role::Free;
    owner_[static_cast<std::size_t>(leader)] = -1;
    ++free_;
    return;
  }
  role_[static_cast<std::size_t>(leader)] = Role::Reverter;
  reverts_.emplace(leader, std::move(revert));
}

bool SupernodeConstructor::handle_revert(int reverter, int target) {
  auto it = reverts_.find(reverter);
  if (it == reverts_.end()) return false;
  Revert& revert = it->second;
  if (revert.next >= revert.order.size()) return false;
  if (revert.order[revert.next] != target) return false;

  // Release: deactivate the target's remaining edges and free it.
  for (int w : edges_.neighbors(target)) edges_.remove_edge(target, w);
  role_[static_cast<std::size_t>(target)] = Role::Free;
  owner_[static_cast<std::size_t>(target)] = -1;
  ++free_;
  ++revert.next;

  if (revert.next == revert.order.size()) {
    // Everything released; the reverter itself becomes free.
    for (int w : edges_.neighbors(reverter)) edges_.remove_edge(reverter, w);
    role_[static_cast<std::size_t>(reverter)] = Role::Free;
    owner_[static_cast<std::size_t>(reverter)] = -1;
    ++free_;
    reverts_.erase(it);
  }
  return true;
}

SupernodeConstructor::Report SupernodeConstructor::run_until_stable(std::uint64_t max_steps) {
  Report report;
  const std::uint64_t check_interval =
      std::max<std::uint64_t>(1024, static_cast<std::uint64_t>(size()) * size());
  while (true) {
    if (leaders_ == 1 && candidates_ == 0 && free_ == 0 && reverts_.empty()) {
      report.stabilized = true;
      break;
    }
    if (steps() >= max_steps) break;
    run(std::min(check_interval, max_steps - steps()));
  }
  report.steps_executed = steps();
  if (!builds_.empty()) {
    const Build& build = builds_.begin()->second;
    report.supernode_count = static_cast<int>(build.lines.size());
    report.leader_line_length = static_cast<int>(build.lines[0].size());
    for (const auto& line : build.lines) {
      report.line_lengths.push_back(static_cast<int>(line.size()));
    }
    report.names = build.names;
  }
  report.structure = edges_;
  return report;
}

}  // namespace netcons::generic
