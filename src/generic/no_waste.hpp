// Theorem 17 (No Waste): for languages L whose members contain a connected
// bounded-degree subgraph of logarithmic order, and which are decidable in
// logarithmic space, a randomized NET constructs L with useful space n --
// the TM does not live on discardable scaffolding but *inside* the graph it
// outputs.
//
// Pipeline (paper Section 6.3), at the same interaction-level fidelity as
// LogWasteConstructor:
//
//  1. Spanning-line formation with optimistic counting (identical to
//     Theorem 16): a settled line counts itself and separates a logarithmic
//     subpopulation S; the rest are released as free nodes.
//  2. S is rewired into a *random connected graph of maximum degree <= d*
//     (one coin-driven edge assignment per S-S encounter, from a sampled
//     target), to serve as the TM substrate (bounded degree makes it
//     operable as a TM, cf. [AAC+05] Theorem 7) while remaining part of the
//     output.
//  3. S draws a random graph on E_I \ E[S]: every free node anchors in turn
//     and tosses a fair coin against each remaining free node AND each
//     member of S, covering exactly the pairs outside S.
//  4. The decider for L runs on the FULL n-node graph, audited against S's
//     O(log n) capacity. Accept freezes -- the whole population is the
//     output; reject resamples S's internal graph and redraws.
//  5. The same non-spanning defenses as Theorem 16 apply: memory-S lines
//     merge with other lines/memories, and an accepted S that meets an
//     unknown free node reverts and recounts.
//
// The paper notes the construction is *not* equiprobable over L (different
// members contain different numbers of qualifying subgraphs); we inherit
// exactly that caveat.
#pragma once

#include "generic/session.hpp"
#include "tm/graph_language.hpp"

#include <unordered_map>
#include <vector>

namespace netcons::generic {

class NoWasteConstructor : public InteractionSystem {
 public:
  struct Report {
    bool stabilized = false;
    std::uint64_t steps_executed = 0;
    std::uint64_t convergence_step = 0;
    int useful_space = 0;  ///< Equals n on success: no waste.
    int tm_subgraph_order = 0;
    int draw_passes = 0;
    Graph output;  ///< The full n-node constructed graph.
  };

  NoWasteConstructor(tm::GraphLanguage language, int n, std::uint64_t seed, int max_degree = 3,
                     int space_bits_per_cell = 32);

  [[nodiscard]] Report run_until_stable(std::uint64_t max_steps);

 protected:
  bool on_interaction(int u, int v) override;

 private:
  enum class Role : std::uint8_t { Line, Mem, Free };
  enum class Sgl : std::uint8_t { Q0, Q1, Q2, L, W };

  struct Op {
    int a = -1;
    int b = -1;
    bool activate = false;
  };

  struct CountSession {
    std::vector<int> line;
    std::vector<std::pair<int, int>> walk;  ///< Counting-walk encounters.
    std::size_t next_op = 0;
    int keep = 0;
  };

  /// The separated subpopulation S: memory + TM substrate + output member.
  struct MemS {
    std::vector<int> members;  ///< Leader last.
    std::vector<Op> release_ops;
    std::size_t next_release = 0;
    std::vector<Op> rewire_ops;  ///< S-internal random bounded-degree graph.
    std::size_t next_rewire = 0;
    int believed_free = 0;
    int anchor = -1;
    int retired_count = 0;
    int tossed_count = 0;
    bool accepted = false;
    std::vector<char> retired;
    std::vector<char> tossed;
    std::vector<char> participant;

    [[nodiscard]] bool busy() const noexcept {
      return next_release < release_ops.size() || next_rewire < rewire_ops.size();
    }
  };

  bool handle_sgl(int u, int v);
  bool handle_count_op(int u, int v);
  bool handle_mem(int u, int v);

  void kill_session_of(int node);
  void create_session_at_leader(int leader);
  void finish_count(int session_id);
  void plan_rewire(MemS& mem);
  std::vector<int> strip_mem(int mem_id);
  void merge_mems(int mem_a, int mem_b);
  void merge_mem_into_line(int mem_id, int line_leader);
  void revert_mem_to_line(int mem_id);
  void clear_incident_edges(int node);
  [[nodiscard]] std::vector<int> traverse_line_from(int leader) const;
  [[nodiscard]] std::vector<int> free_nodes() const;
  void try_decide(MemS& mem);
  void note_output_change() { last_output_change_ = steps(); }

  tm::GraphLanguage language_;
  int max_degree_;
  int space_bits_per_cell_;

  std::vector<Role> role_;
  std::vector<Sgl> sgl_;
  Graph edges_;
  int line_nodes_ = 0;

  int next_session_id_ = 0;
  std::unordered_map<int, CountSession> sessions_;
  std::vector<int> session_of_;

  int next_mem_id_ = 0;
  std::unordered_map<int, MemS> mems_;
  std::vector<int> mem_of_;

  int draw_passes_ = 0;
  std::uint64_t last_output_change_ = 0;
};

}  // namespace netcons::generic
