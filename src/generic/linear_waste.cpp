#include "generic/linear_waste.hpp"

#include <stdexcept>

namespace netcons::generic {

LinearWasteConstructor::LinearWasteConstructor(tm::GraphLanguage language, int n,
                                               std::uint64_t seed, int space_bits_per_cell)
    : InteractionSystem(n, seed),
      language_(std::move(language)),
      space_bits_per_cell_(space_bits_per_cell),
      role_(static_cast<std::size_t>(n), Role::Free),
      sgl_(static_cast<std::size_t>(n), Sgl::Q0),
      partner_(static_cast<std::size_t>(n), -1),
      released_(static_cast<std::size_t>(n), 0),
      edges_(n),
      free_count_(n),
      session_of_(static_cast<std::size_t>(n), -1) {
  if (n < 4) throw std::invalid_argument("LinearWasteConstructor: need n >= 4");
}

bool LinearWasteConstructor::on_interaction(int u, int v) {
  if (handle_partition(u, v)) return true;
  if (handle_sgl(u, v)) return true;
  return handle_session_op(u, v);
}

bool LinearWasteConstructor::handle_partition(int u, int v) {
  if (role_[static_cast<std::size_t>(u)] != Role::Free ||
      role_[static_cast<std::size_t>(v)] != Role::Free) {
    return false;
  }
  // (q0, q0, 0) -> (qu, qd, 1); the U/D assignment is the model's symmetry
  // coin.
  if (rng().coin()) std::swap(u, v);
  role_[static_cast<std::size_t>(u)] = Role::U;
  role_[static_cast<std::size_t>(v)] = Role::D;
  partner_[static_cast<std::size_t>(u)] = v;
  partner_[static_cast<std::size_t>(v)] = u;
  edges_.add_edge(u, v);
  free_count_ -= 2;
  ++u_count_;
  ++d_count_;
  return true;
}

bool LinearWasteConstructor::handle_sgl(int u, int v) {
  if (role_[static_cast<std::size_t>(u)] != Role::U ||
      role_[static_cast<std::size_t>(v)] != Role::U) {
    return false;
  }
  Sgl& a = sgl_[static_cast<std::size_t>(u)];
  Sgl& b = sgl_[static_cast<std::size_t>(v)];
  const bool active = edges_.has_edge(u, v);

  // Simple-Global-Line rules over the U-subpopulation (Protocol 1).
  if (!active && a == Sgl::Q0 && b == Sgl::Q0) {
    // New line of two; leader settles immediately.
    int follower = u;
    int leader = v;
    if (rng().coin()) std::swap(follower, leader);
    sgl_[static_cast<std::size_t>(follower)] = Sgl::Q1;
    sgl_[static_cast<std::size_t>(leader)] = Sgl::L;
    edges_.add_edge(u, v);
    create_session_at_leader(leader);
    return true;
  }
  if (!active && ((a == Sgl::L && b == Sgl::Q0) || (a == Sgl::Q0 && b == Sgl::L))) {
    const int leader = (a == Sgl::L) ? u : v;
    const int fresh = (a == Sgl::L) ? v : u;
    sgl_[static_cast<std::size_t>(leader)] = Sgl::Q2;
    sgl_[static_cast<std::size_t>(fresh)] = Sgl::L;
    edges_.add_edge(u, v);
    kill_session_of(leader);
    create_session_at_leader(fresh);  // reinitialization after expansion
    return true;
  }
  if (!active && a == Sgl::L && b == Sgl::L) {
    int absorbed = u;
    int walker = v;
    if (rng().coin()) std::swap(absorbed, walker);
    sgl_[static_cast<std::size_t>(absorbed)] = Sgl::Q2;
    sgl_[static_cast<std::size_t>(walker)] = Sgl::W;
    edges_.add_edge(u, v);
    kill_session_of(u);
    kill_session_of(v);
    return true;
  }
  if (active && ((a == Sgl::W && b == Sgl::Q2) || (a == Sgl::Q2 && b == Sgl::W))) {
    std::swap(a, b);  // the walking token moves across the active edge
    return true;
  }
  if (active && ((a == Sgl::W && b == Sgl::Q1) || (a == Sgl::Q1 && b == Sgl::W))) {
    const int settled = (b == Sgl::Q1) ? v : u;
    a = Sgl::Q2;
    b = Sgl::Q2;
    sgl_[static_cast<std::size_t>(settled)] = Sgl::L;
    // (w, q1, 1) -> (q2, l, 1): the walker cell becomes q2, the endpoint
    // becomes the settled leader.
    const int walker_cell = (settled == u) ? v : u;
    sgl_[static_cast<std::size_t>(walker_cell)] = Sgl::Q2;
    create_session_at_leader(settled);  // reinitialization after merge
    return true;
  }
  return false;
}

bool LinearWasteConstructor::handle_session_op(int u, int v) {
  int sid = session_of_[static_cast<std::size_t>(u)];
  if (sid == -1) sid = session_of_[static_cast<std::size_t>(v)];
  if (sid == -1) return false;
  auto it = sessions_.find(sid);
  if (it == sessions_.end()) return false;
  Session& s = it->second;
  if (s.done || s.next_op >= s.ops.size()) return false;
  const Op& op = s.ops[s.next_op];
  const bool match = (op.a == u && op.b == v) || (op.a == v && op.b == u);
  if (!match) return false;

  switch (op.kind) {
    case Op::Kind::Walk:
    case Op::Kind::MarkD:
    case Op::Kind::UnmarkD:
      break;  // pure mark movement; no edge changes
    case Op::Kind::Reattach: {
      const int d = (role_[static_cast<std::size_t>(op.a)] == Role::D) ? op.a : op.b;
      if (!edges_.has_edge(op.a, op.b)) edges_.add_edge(op.a, op.b);
      released_[static_cast<std::size_t>(d)] = 0;
      break;
    }
    case Op::Kind::Coin: {
      const bool value = rng().coin();
      if (edges_.set_edge(op.a, op.b, value)) note_output_change();
      break;
    }
    case Op::Kind::Release: {
      const int d = (role_[static_cast<std::size_t>(op.a)] == Role::D) ? op.a : op.b;
      edges_.set_edge(op.a, op.b, false);
      if (!released_[static_cast<std::size_t>(d)]) {
        released_[static_cast<std::size_t>(d)] = 1;
        note_output_change();  // the D-node enters the output set
      }
      break;
    }
  }
  ++s.next_op;
  if (s.next_op == s.ops.size()) on_pass_complete(sid);
  return true;
}

void LinearWasteConstructor::kill_session_of(int node) {
  const int sid = session_of_[static_cast<std::size_t>(node)];
  if (sid == -1) return;
  auto it = sessions_.find(sid);
  if (it != sessions_.end()) {
    for (int member : it->second.u_line) session_of_[static_cast<std::size_t>(member)] = -1;
    for (int member : it->second.d_line) session_of_[static_cast<std::size_t>(member)] = -1;
    sessions_.erase(it);
  }
}

std::vector<int> LinearWasteConstructor::traverse_line_from(int leader) const {
  // Follow active U-U edges from the leader endpoint; returns the line with
  // the leader LAST (left endpoint first).
  std::vector<int> rev;
  int prev = -1;
  int cur = leader;
  while (cur != -1) {
    rev.push_back(cur);
    int next = -1;
    for (int w = 0; w < size(); ++w) {
      if (w != cur && w != prev && role_[static_cast<std::size_t>(w)] == Role::U &&
          edges_.has_edge(cur, w)) {
        next = w;
        break;
      }
    }
    prev = cur;
    cur = next;
  }
  return {rev.rbegin(), rev.rend()};
}

void LinearWasteConstructor::create_session_at_leader(int leader) {
  Session s;
  s.u_line = traverse_line_from(leader);
  s.d_line.reserve(s.u_line.size());
  for (int u : s.u_line) s.d_line.push_back(partner_[static_cast<std::size_t>(u)]);

  const int sid = next_session_id_++;
  for (int u : s.u_line) {
    // A fresh leader settle always follows a kill of the involved lines, but
    // a merge may have united nodes from several old sessions.
    if (session_of_[static_cast<std::size_t>(u)] != -1) kill_session_of(u);
  }
  for (int u : s.u_line) session_of_[static_cast<std::size_t>(u)] = sid;
  for (int d : s.d_line) session_of_[static_cast<std::size_t>(d)] = sid;

  build_draw_ops(s);
  sessions_.emplace(sid, std::move(s));
}

void LinearWasteConstructor::build_draw_ops(Session& s) {
  s.ops.clear();
  s.next_op = 0;
  s.releasing = false;
  const auto len = s.u_line.size();

  // Reattach any D-partners released by an earlier (non-spanning) accept.
  for (std::size_t i = 0; i < len; ++i) {
    s.ops.push_back({Op::Kind::Reattach, s.u_line[i], s.d_line[i]});
  }
  // Head initialization walk (Figure 5): to the right end and back.
  for (std::size_t i = 0; i + 1 < len; ++i) {
    s.ops.push_back({Op::Kind::Walk, s.u_line[i], s.u_line[i + 1]});
  }
  for (std::size_t i = len; i-- > 1;) {
    s.ops.push_back({Op::Kind::Walk, s.u_line[i], s.u_line[i - 1]});
  }
  // Pair pass (Figure 6): for every D-pair (i, j), walk the mark to i, drop
  // it onto D_i, walk to j, drop onto D_j, toss the coin, unmark.
  for (std::size_t i = 0; i < len; ++i) {
    for (std::size_t j = i + 1; j < len; ++j) {
      for (std::size_t k = 0; k < i; ++k) {
        s.ops.push_back({Op::Kind::Walk, s.u_line[k], s.u_line[k + 1]});
      }
      s.ops.push_back({Op::Kind::MarkD, s.u_line[i], s.d_line[i]});
      for (std::size_t k = 0; k < j; ++k) {
        s.ops.push_back({Op::Kind::Walk, s.u_line[k], s.u_line[k + 1]});
      }
      s.ops.push_back({Op::Kind::MarkD, s.u_line[j], s.d_line[j]});
      s.ops.push_back({Op::Kind::Coin, s.d_line[i], s.d_line[j]});
      s.ops.push_back({Op::Kind::UnmarkD, s.u_line[i], s.d_line[i]});
      s.ops.push_back({Op::Kind::UnmarkD, s.u_line[j], s.d_line[j]});
    }
  }
}

void LinearWasteConstructor::on_pass_complete(int sid) {
  Session& s = sessions_.at(sid);
  if (s.releasing) {
    s.done = true;
    return;
  }
  // The draw pass finished: audit the workspace and run the decider on the
  // drawn graph (the line's TM phase).
  ++draw_passes_;
  const int order = static_cast<int>(s.d_line.size());
  const std::size_t budget =
      static_cast<std::size_t>(space_bits_per_cell_) * s.u_line.size();
  if (language_.workspace_bits(order) > budget) {
    throw std::logic_error("LinearWasteConstructor: language '" + language_.name +
                           "' needs more than O(n) workspace (Theorem 14 budget exceeded)");
  }
  Graph drawn(order);
  for (int i = 0; i < order; ++i) {
    for (int j = i + 1; j < order; ++j) {
      if (edges_.has_edge(s.d_line[static_cast<std::size_t>(i)],
                          s.d_line[static_cast<std::size_t>(j)])) {
        drawn.add_edge(i, j);
      }
    }
  }
  if (language_.decide(drawn)) {
    // Accept: release the D-nodes one by one.
    s.ops.clear();
    s.next_op = 0;
    s.releasing = true;
    for (std::size_t i = 0; i < s.u_line.size(); ++i) {
      s.ops.push_back({Op::Kind::Release, s.u_line[i], s.d_line[i]});
    }
  } else {
    // Reject: draw a fresh random graph (the retry loop of Figure 3).
    build_draw_ops(s);
  }
}

Graph LinearWasteConstructor::d_graph() const {
  std::vector<int> d_nodes;
  for (int u = 0; u < size(); ++u) {
    if (role_[static_cast<std::size_t>(u)] == Role::D) d_nodes.push_back(u);
  }
  return edges_.induced(d_nodes);
}

LinearWasteConstructor::Report LinearWasteConstructor::run_until_stable(std::uint64_t max_steps) {
  Report report;
  const std::uint64_t check_interval =
      std::max<std::uint64_t>(1024, static_cast<std::uint64_t>(size()) * size());
  while (true) {
    // Stable iff: at most one unmatched node remains, a single settled line
    // spans U, and its session has accepted and fully released.
    if (free_count_ <= 1 && sessions_.size() == 1) {
      const Session& s = sessions_.begin()->second;
      if (static_cast<int>(s.u_line.size()) == u_count_ && s.done) {
        report.stabilized = true;
        break;
      }
    }
    if (steps() >= max_steps) break;
    run(std::min(check_interval, max_steps - steps()));
  }
  report.steps_executed = steps();
  report.convergence_step = last_output_change_;
  report.draw_passes = draw_passes_;
  report.output = d_graph();
  return report;
}

}  // namespace netcons::generic
