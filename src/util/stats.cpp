#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace netcons {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  samples_.push_back(x);
}

double RunningStats::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (p <= 0.0) return min_;
  if (p >= 1.0) return max_;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double position = p * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  const double fraction = position - static_cast<double>(lower);
  if (lower + 1 >= sorted.size()) return sorted.back();
  return sorted[lower] * (1.0 - fraction) + sorted[lower + 1] * fraction;
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::sem() const noexcept {
  if (n_ == 0) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double RunningStats::ci95_halfwidth() const noexcept { return 1.96 * sem(); }

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("fit_linear: need >=2 equally sized samples");
  }
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) throw std::invalid_argument("fit_linear: degenerate x values");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double e = ys[i] - (fit.slope * xs[i] + fit.intercept);
    ss_res += e * e;
  }
  fit.r_squared = (ss_tot > 0) ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

LinearFit fit_power_law(std::span<const double> xs, std::span<const double> ys) {
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] <= 0 || ys[i] <= 0) {
      throw std::invalid_argument("fit_power_law: inputs must be positive");
    }
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  return fit_linear(lx, ly);
}

double harmonic(std::uint64_t n) noexcept {
  double h = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) h += 1.0 / static_cast<double>(i);
  return h;
}

namespace theory {

double one_way_epidemic(std::uint64_t n) noexcept {
  // E[X] = sum_{i=1..n-1} n(n-1) / (2 i (n-i)) = (n-1) H_{n-1}.
  if (n < 2) return 0.0;
  return static_cast<double>(n - 1) * harmonic(n - 1);
}

double one_to_one_elimination(std::uint64_t n) noexcept {
  if (n < 2) return 0.0;
  double sum = 0.0;
  for (std::uint64_t i = 2; i <= n; ++i) {
    sum += 1.0 / (static_cast<double>(i) * static_cast<double>(i - 1));
  }
  return static_cast<double>(n) * static_cast<double>(n - 1) * sum;
}

double one_to_all_elimination(std::uint64_t n) noexcept {
  if (n < 2) return 0.0;
  const double m = static_cast<double>(n) * static_cast<double>(n - 1);
  double sum = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / (m - static_cast<double>(i) * static_cast<double>(i - 1));
  }
  return m * sum;
}

double meet_everybody(std::uint64_t n) noexcept {
  // Each step touches the distinguished node with prob (n-1)/(n(n-1)/2) = 2/n;
  // conditioned on touching it, each partner uniform: coupon collector over
  // n-1 coupons => E[X] = (n/2) * (n-1) H_{n-1}.
  if (n < 2) return 0.0;
  return static_cast<double>(n) / 2.0 * static_cast<double>(n - 1) * harmonic(n - 1);
}

double edge_cover(std::uint64_t n) noexcept {
  if (n < 2) return 0.0;
  const std::uint64_t m = n * (n - 1) / 2;
  return static_cast<double>(m) * harmonic(m);
}

double n_log_n(std::uint64_t n) noexcept {
  return static_cast<double>(n) * std::log(static_cast<double>(n));
}

double n_squared(std::uint64_t n) noexcept {
  return static_cast<double>(n) * static_cast<double>(n);
}

double n_squared_log_n(std::uint64_t n) noexcept {
  return n_squared(n) * std::log(static_cast<double>(n));
}

}  // namespace theory

std::vector<double> eval_over(std::span<const std::uint64_t> ns, double (*f)(std::uint64_t)) {
  std::vector<double> out;
  out.reserve(ns.size());
  for (auto n : ns) out.push_back(f(n));
  return out;
}

}  // namespace netcons
