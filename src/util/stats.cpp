#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <stdexcept>

namespace netcons {

namespace {

/// Linear interpolation between order statistics; sorts its argument.
double interpolated_percentile(std::vector<double>& samples, double p) {
  std::sort(samples.begin(), samples.end());
  const double position = p * static_cast<double>(samples.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  const double fraction = position - static_cast<double>(lower);
  if (lower + 1 >= samples.size()) return samples.back();
  return samples[lower] * (1.0 - fraction) + samples[lower + 1] * fraction;
}

}  // namespace

P2Quantile::P2Quantile(double p) : p_(p) {
  if (!(p > 0.0 && p < 1.0)) throw std::invalid_argument("P2Quantile: p must be in (0, 1)");
  desired_[0] = 1;
  desired_[1] = 1 + 2 * p;
  desired_[2] = 1 + 4 * p;
  desired_[3] = 3 + 2 * p;
  desired_[4] = 5;
  desired_increment_[0] = 0;
  desired_increment_[1] = p / 2;
  desired_increment_[2] = p;
  desired_increment_[3] = (1 + p) / 2;
  desired_increment_[4] = 1;
}

void P2Quantile::add(double x) {
  if (n_ < 5) {
    heights_[n_++] = x;
    if (n_ == 5) std::sort(heights_, heights_ + 5);
    return;
  }
  ++n_;

  // Locate the cell and stretch the extreme markers.
  int cell;
  if (x < heights_[0]) {
    heights_[0] = x;
    cell = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    cell = 3;
  } else {
    cell = 0;
    while (cell < 3 && x >= heights_[cell + 1]) ++cell;
  }

  for (int i = cell + 1; i < 5; ++i) positions_[i] += 1;
  for (int i = 0; i < 5; ++i) desired_[i] += desired_increment_[i];

  // Nudge the interior markers towards their desired positions; parabolic
  // (P^2) height prediction, falling back to linear when it would break
  // marker monotonicity.
  for (int i = 1; i <= 3; ++i) {
    const double offset = desired_[i] - positions_[i];
    const bool right = offset >= 1 && positions_[i + 1] - positions_[i] > 1;
    const bool left = offset <= -1 && positions_[i - 1] - positions_[i] < -1;
    if (!right && !left) continue;
    const double d = right ? 1.0 : -1.0;
    const double qim1 = heights_[i - 1], qi = heights_[i], qip1 = heights_[i + 1];
    const double nim1 = positions_[i - 1], ni = positions_[i], nip1 = positions_[i + 1];
    double candidate = qi + d / (nip1 - nim1) *
                                ((ni - nim1 + d) * (qip1 - qi) / (nip1 - ni) +
                                 (nip1 - ni - d) * (qi - qim1) / (ni - nim1));
    if (candidate <= qim1 || candidate >= qip1) {
      candidate = d > 0 ? qi + (qip1 - qi) / (nip1 - ni) : qi - (qim1 - qi) / (nim1 - ni);
    }
    heights_[i] = candidate;
    positions_[i] += d;
  }
}

double P2Quantile::value() const {
  if (n_ == 0) return 0.0;
  if (n_ >= 5) return heights_[2];
  // Fewer than 5 samples: exact interpolated order statistic.
  std::vector<double> samples(heights_, heights_ + n_);
  return interpolated_percentile(samples, p_);
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);

  if (sketching()) {
    for (P2Quantile& sketch : sketches_) sketch.add(x);
    return;
  }
  samples_.push_back(x);
  if (samples_.size() > exact_limit_) {
    // Convert to bounded memory: replay the retained samples (in insertion
    // order, keeping the result deterministic) into the sketch grid.
    sketches_.reserve(std::size(kSketchGrid));
    for (const double p : kSketchGrid) sketches_.emplace_back(p);
    for (const double sample : samples_) {
      for (P2Quantile& sketch : sketches_) sketch.add(sample);
    }
    samples_.clear();
    samples_.shrink_to_fit();
  }
}

double RunningStats::percentile(double p) const {
  if (n_ == 0) return 0.0;
  if (p <= 0.0) return min_;
  if (p >= 1.0) return max_;
  if (!sketching()) {
    std::vector<double> samples = samples_;
    return interpolated_percentile(samples, p);
  }

  // Sketch mode: linear interpolation in p over the anchors
  // {0: min, kSketchGrid..., 1: max}, with heights clamped monotone so the
  // independently-run sketches cannot produce a decreasing quantile curve.
  constexpr std::size_t grid_size = std::size(kSketchGrid);
  double anchor_p[grid_size + 2];
  double anchor_q[grid_size + 2];
  anchor_p[0] = 0.0;
  anchor_q[0] = min_;
  for (std::size_t i = 0; i < grid_size; ++i) {
    anchor_p[i + 1] = kSketchGrid[i];
    anchor_q[i + 1] = std::clamp(sketches_[i].value(), min_, max_);
    anchor_q[i + 1] = std::max(anchor_q[i + 1], anchor_q[i]);
  }
  anchor_p[grid_size + 1] = 1.0;
  anchor_q[grid_size + 1] = max_;

  std::size_t hi = 1;
  while (anchor_p[hi] < p) ++hi;
  const double span = anchor_p[hi] - anchor_p[hi - 1];
  const double fraction = span > 0 ? (p - anchor_p[hi - 1]) / span : 0.0;
  return anchor_q[hi - 1] * (1.0 - fraction) + anchor_q[hi] * fraction;
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::sem() const noexcept {
  if (n_ == 0) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double RunningStats::ci95_halfwidth() const noexcept { return 1.96 * sem(); }

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("fit_linear: need >=2 equally sized samples");
  }
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) throw std::invalid_argument("fit_linear: degenerate x values");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double e = ys[i] - (fit.slope * xs[i] + fit.intercept);
    ss_res += e * e;
  }
  fit.r_squared = (ss_tot > 0) ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

LinearFit fit_power_law(std::span<const double> xs, std::span<const double> ys) {
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] <= 0 || ys[i] <= 0) {
      throw std::invalid_argument("fit_power_law: inputs must be positive");
    }
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  return fit_linear(lx, ly);
}

double harmonic(std::uint64_t n) noexcept {
  double h = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) h += 1.0 / static_cast<double>(i);
  return h;
}

namespace theory {

double one_way_epidemic(std::uint64_t n) noexcept {
  // E[X] = sum_{i=1..n-1} n(n-1) / (2 i (n-i)) = (n-1) H_{n-1}.
  if (n < 2) return 0.0;
  return static_cast<double>(n - 1) * harmonic(n - 1);
}

double one_to_one_elimination(std::uint64_t n) noexcept {
  if (n < 2) return 0.0;
  double sum = 0.0;
  for (std::uint64_t i = 2; i <= n; ++i) {
    sum += 1.0 / (static_cast<double>(i) * static_cast<double>(i - 1));
  }
  return static_cast<double>(n) * static_cast<double>(n - 1) * sum;
}

double one_to_all_elimination(std::uint64_t n) noexcept {
  if (n < 2) return 0.0;
  const double m = static_cast<double>(n) * static_cast<double>(n - 1);
  double sum = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / (m - static_cast<double>(i) * static_cast<double>(i - 1));
  }
  return m * sum;
}

double meet_everybody(std::uint64_t n) noexcept {
  // Each step touches the distinguished node with prob (n-1)/(n(n-1)/2) = 2/n;
  // conditioned on touching it, each partner uniform: coupon collector over
  // n-1 coupons => E[X] = (n/2) * (n-1) H_{n-1}.
  if (n < 2) return 0.0;
  return static_cast<double>(n) / 2.0 * static_cast<double>(n - 1) * harmonic(n - 1);
}

double edge_cover(std::uint64_t n) noexcept {
  if (n < 2) return 0.0;
  const std::uint64_t m = n * (n - 1) / 2;
  return static_cast<double>(m) * harmonic(m);
}

double n_log_n(std::uint64_t n) noexcept {
  return static_cast<double>(n) * std::log(static_cast<double>(n));
}

double n_squared(std::uint64_t n) noexcept {
  return static_cast<double>(n) * static_cast<double>(n);
}

double n_squared_log_n(std::uint64_t n) noexcept {
  return n_squared(n) * std::log(static_cast<double>(n));
}

}  // namespace theory

std::vector<double> eval_over(std::span<const std::uint64_t> ns, double (*f)(std::uint64_t)) {
  std::vector<double> out;
  out.reserve(ns.size());
  for (auto n : ns) out.push_back(f(n));
  return out;
}

}  // namespace netcons
