// Streaming statistics and model fitting used by the experiment harness.
//
// The paper's evaluation consists of expected interaction counts with known
// asymptotic orders (Table 1, Table 2). The benches estimate expectations
// with confidence intervals and check *shape* by fitting exponents on a
// log-log scale, so everything here is small, exact, and dependency-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace netcons {

/// Single-quantile P^2 estimator (Jain & Chlamtac, CACM 1985): five markers
/// track {min, p/2, p, (1+p)/2, max} with parabolic height adjustment, so a
/// running p-quantile estimate costs O(1) memory regardless of stream
/// length. Deterministic in the insertion order.
class P2Quantile {
 public:
  explicit P2Quantile(double p);

  void add(double x);
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  /// Current estimate (exact order statistic while fewer than 5 samples).
  [[nodiscard]] double value() const;

 private:
  double p_;
  std::size_t n_ = 0;
  double heights_[5] = {};
  double positions_[5] = {1, 2, 3, 4, 5};
  double desired_[5] = {};
  double desired_increment_[5] = {};
};

/// Welford's online mean/variance accumulator with percentile support.
///
/// Percentiles are exact (retained samples, interpolated order statistics)
/// up to `exact_limit` samples; beyond that the storage is converted into a
/// fixed grid of P^2 sketches and memory stays bounded no matter how many
/// trials a campaign adds (the ROADMAP's millions-of-trials regime).
/// Sketch-mode percentile(p) interpolates between grid quantiles, anchored
/// at the exact min/max. Everything stays deterministic in insertion order.
///
/// There is deliberately no merge operation: P^2 marker state is
/// insertion-order-dependent and has no exact merge, so the campaign
/// engine, netcons_merge, and the resume path all rebuild aggregates by
/// re-adding raw trial-record outcomes in (point, trial) order
/// (campaign::reduce_outcomes). Same order in, bit-identical statistics
/// out — which is what makes merged summaries byte-identical.
class RunningStats {
 public:
  static constexpr std::size_t kDefaultExactLimit = 4096;
  /// Quantile grid maintained in sketch mode.
  static constexpr double kSketchGrid[] = {0.01, 0.05, 0.10, 0.25, 0.50,
                                           0.75, 0.90, 0.95, 0.99};

  RunningStats() = default;
  explicit RunningStats(std::size_t exact_limit) : exact_limit_(exact_limit) {}

  void add(double x);

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean.
  [[nodiscard]] double sem() const noexcept;
  /// Half-width of the normal-approximation 95% confidence interval.
  [[nodiscard]] double ci95_halfwidth() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// p in [0, 1]; exact mode interpolates order statistics, sketch mode
  /// interpolates the P^2 grid.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(0.5); }
  /// True once sample retention has been replaced by the bounded sketch.
  [[nodiscard]] bool sketching() const noexcept { return !sketches_.empty(); }

 private:
  std::size_t n_ = 0;
  std::size_t exact_limit_ = kDefaultExactLimit;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<double> samples_;
  std::vector<P2Quantile> sketches_;  ///< One per kSketchGrid entry.
};

/// Result of an ordinary least-squares fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

/// OLS fit over (x, y) pairs. Requires xs.size() == ys.size() >= 2.
[[nodiscard]] LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

/// Fit y = C * x^alpha by OLS on (ln x, ln y); returns alpha as `slope` and
/// ln C as `intercept`. All inputs must be strictly positive.
[[nodiscard]] LinearFit fit_power_law(std::span<const double> xs, std::span<const double> ys);

/// nth harmonic number H_n = sum_{i=1..n} 1/i.
[[nodiscard]] double harmonic(std::uint64_t n) noexcept;

/// Closed-form expected convergence times of the basic probabilistic
/// processes of Section 3.3, to leading order (Table 1 shapes). These are the
/// reference curves the benches compare against; constants follow the
/// proofs of Propositions 1-7 where the proof pins them down.
namespace theory {
/// One-way epidemic: (n-1) * H_{n-1}  (Proposition 1, exact).
[[nodiscard]] double one_way_epidemic(std::uint64_t n) noexcept;
/// One-to-one elimination: n(n-1) * sum_{i=2..n} 1/(i(i-1))  (Prop. 2, exact).
[[nodiscard]] double one_to_one_elimination(std::uint64_t n) noexcept;
/// One-to-all elimination: n(n-1) * sum_{i=0..n-1} 1/(n(n-1)-i(i-1)) (Prop. 4, exact).
[[nodiscard]] double one_to_all_elimination(std::uint64_t n) noexcept;
/// Meet everybody: (n-1)/2 * n * H_{n-1} -- coupon collector over n-1
/// coupons, each step hitting the distinguished node with prob 2/n.
[[nodiscard]] double meet_everybody(std::uint64_t n) noexcept;
/// Edge cover: m * H_m with m = n(n-1)/2 (Proposition 7, exact).
[[nodiscard]] double edge_cover(std::uint64_t n) noexcept;
/// Reference shapes for fits.
[[nodiscard]] double n_log_n(std::uint64_t n) noexcept;
[[nodiscard]] double n_squared(std::uint64_t n) noexcept;
[[nodiscard]] double n_squared_log_n(std::uint64_t n) noexcept;
}  // namespace theory

/// Exact expected number of steps of a one-to-one elimination (also the
/// maximum-matching upper bound shape) -- convenience vector builders for
/// plotting reference series next to measurements.
[[nodiscard]] std::vector<double> eval_over(std::span<const std::uint64_t> ns,
                                            double (*f)(std::uint64_t));

}  // namespace netcons
