#include "util/table.hpp"

#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace netcons {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row arity mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << std::left << std::setw(static_cast<int>(width[c])) << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  return os << table.str();
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  if (v != 0 && (v >= 1e6 || v < 1e-3)) {
    os << std::scientific << std::setprecision(precision + 1) << v;
  } else {
    os << std::fixed << std::setprecision(precision) << v;
  }
  return os.str();
}

std::string TextTable::integer(std::uint64_t v) { return std::to_string(v); }

}  // namespace netcons
