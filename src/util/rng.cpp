// rng.hpp is header-only; this translation unit exists so the library has a
// concrete object to archive and to catch ODR/compile issues early.
#include "util/rng.hpp"

namespace netcons {

// Compile-time sanity checks on the seeding contract.
static_assert(Rng::min() == 0);
static_assert(Rng::max() == 0xffffffffffffffffULL);
static_assert(trial_seed(1, 2) != trial_seed(1, 3));
static_assert(trial_seed(1, 2) != trial_seed(2, 2));

}  // namespace netcons
