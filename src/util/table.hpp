// Minimal fixed-width table printer used by the bench binaries so that every
// regenerated paper table/figure prints in a uniform, diff-friendly format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace netcons {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render with column alignment and a rule under the header.
  [[nodiscard]] std::string str() const;

  friend std::ostream& operator<<(std::ostream& os, const TextTable& table);

  /// Format helpers used throughout the benches.
  [[nodiscard]] static std::string num(double v, int precision = 1);
  [[nodiscard]] static std::string integer(std::uint64_t v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace netcons
