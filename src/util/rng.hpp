// Deterministic, seedable random number generation.
//
// Every stochastic component of the library draws from an explicitly passed
// `Rng`; there is no global random state. Reproducing any run therefore only
// requires its 64-bit seed. Independent streams (e.g. the trials of a sweep)
// are derived with `split`, which uses splitmix64 so that nearby seeds give
// statistically unrelated streams.
#pragma once

#include <cstdint>
#include <limits>

namespace netcons {

/// splitmix64 step: the standard 64-bit finalizer-based generator.
/// Used both for seeding and for deriving independent sub-streams.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator (Blackman & Vigna). Fast, 256-bit state, passes
/// BigCrush; more than adequate for the scheduler's pair sampling.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    // Expand the 64-bit seed into 256 bits of state via splitmix64,
    // guaranteeing a nonzero state.
    for (auto& word : state_) word = splitmix64(seed);
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Lemire's multiply-shift with rejection;
  /// exact (unbiased) for any bound >= 1.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept {
    // Fast path covers every bound used in practice (bound <= 2^63).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Fair coin.
  [[nodiscard]] bool coin() noexcept { return ((*this)() >> 63) != 0; }

  /// Bernoulli(p).
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Uniform double in [0, 1) with 53 bits of precision.
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Derive an independent sub-stream seed (e.g. one per trial of a sweep).
  [[nodiscard]] std::uint64_t split() noexcept {
    std::uint64_t s = (*this)();
    return splitmix64(s);
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Derive the seed for trial `trial` of an experiment with base seed `base`:
/// element `trial` of the SplitMix64 stream whose initial state is `base`
/// (i.e. finalize(base + (trial+1) * gamma), exactly what a sequential
/// splitmix64 generator started at `base` would emit). A pure function of
/// (base, trial), so sweeps can be sharded across threads, resumed, or
/// replayed trial-by-trial; and a genuine SplitMix64 stream, so the streams
/// of nearby trials are statistically unrelated (the previous XOR-mixing
/// construction correlated them through shared high bits).
[[nodiscard]] constexpr std::uint64_t trial_seed(std::uint64_t base, std::uint64_t trial) noexcept {
  std::uint64_t s = base + trial * 0x9e3779b97f4a7c15ULL;
  return splitmix64(s);
}

}  // namespace netcons
