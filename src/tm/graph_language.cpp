#include "tm/graph_language.hpp"

#include "graph/predicates.hpp"

#include <cmath>
#include <vector>

namespace netcons::tm {
namespace {

std::size_t log2_bits(int n) {
  return static_cast<std::size_t>(std::ceil(std::log2(std::max(2, n))));
}

}  // namespace

GraphLanguage connected_language() {
  GraphLanguage lang;
  lang.name = "connected";
  lang.decide = [](const Graph& g) { return is_connected(g); };
  lang.workspace_bits = [](int n) {
    return static_cast<std::size_t>(n) + 2 * log2_bits(n);  // bitmap + cursor
  };
  lang.space_class = "O(n)";
  return lang;
}

GraphLanguage max_degree_language(int d) {
  GraphLanguage lang;
  lang.name = "max-degree<=" + std::to_string(d);
  lang.decide = [d](const Graph& g) { return has_max_degree(g, d); };
  lang.workspace_bits = [](int n) { return 3 * log2_bits(n); };
  lang.space_class = "O(log n)";
  return lang;
}

GraphLanguage triangle_free_language() {
  GraphLanguage lang;
  lang.name = "triangle-free";
  lang.decide = [](const Graph& g) {
    for (int a = 0; a < g.order(); ++a) {
      for (int b = a + 1; b < g.order(); ++b) {
        if (!g.has_edge(a, b)) continue;
        for (int c = b + 1; c < g.order(); ++c) {
          if (g.has_edge(a, c) && g.has_edge(b, c)) return false;
        }
      }
    }
    return true;
  };
  lang.workspace_bits = [](int n) { return 3 * log2_bits(n); };
  lang.space_class = "O(log n)";
  return lang;
}

GraphLanguage has_triangle_language() {
  GraphLanguage base = triangle_free_language();
  GraphLanguage lang;
  lang.name = "has-triangle";
  lang.decide = [inner = base.decide](const Graph& g) { return !inner(g); };
  lang.workspace_bits = base.workspace_bits;
  lang.space_class = "O(log n)";
  return lang;
}

GraphLanguage even_edges_language() {
  GraphLanguage lang;
  lang.name = "even-edges";
  lang.decide = [](const Graph& g) { return g.edge_count() % 2 == 0; };
  lang.workspace_bits = [](int n) { return 2 * log2_bits(n) + 1; };
  lang.space_class = "O(log n)";
  return lang;
}

GraphLanguage bipartite_language() {
  GraphLanguage lang;
  lang.name = "bipartite";
  lang.decide = [](const Graph& g) {
    std::vector<int> color(static_cast<std::size_t>(g.order()), -1);
    std::vector<int> stack;
    for (int s = 0; s < g.order(); ++s) {
      if (color[static_cast<std::size_t>(s)] != -1) continue;
      color[static_cast<std::size_t>(s)] = 0;
      stack.push_back(s);
      while (!stack.empty()) {
        const int u = stack.back();
        stack.pop_back();
        for (int v : g.neighbors(u)) {
          if (color[static_cast<std::size_t>(v)] == -1) {
            color[static_cast<std::size_t>(v)] = 1 - color[static_cast<std::size_t>(u)];
            stack.push_back(v);
          } else if (color[static_cast<std::size_t>(v)] == color[static_cast<std::size_t>(u)]) {
            return false;
          }
        }
      }
    }
    return true;
  };
  lang.workspace_bits = [](int n) { return 2 * static_cast<std::size_t>(n) + 2 * log2_bits(n); };
  lang.space_class = "O(n)";
  return lang;
}

GraphLanguage hamiltonian_path_language() {
  GraphLanguage lang;
  lang.name = "hamiltonian-path";
  lang.decide = [](const Graph& g) {
    const int n = g.order();
    if (n == 0) return false;
    if (n == 1) return true;
    std::vector<int> path;
    std::vector<bool> used(static_cast<std::size_t>(n), false);
    std::function<bool(int)> extend = [&](int u) -> bool {
      path.push_back(u);
      used[static_cast<std::size_t>(u)] = true;
      if (static_cast<int>(path.size()) == n) return true;
      for (int v = 0; v < n; ++v) {
        if (!used[static_cast<std::size_t>(v)] && g.has_edge(u, v)) {
          if (extend(v)) return true;
        }
      }
      path.pop_back();
      used[static_cast<std::size_t>(u)] = false;
      return false;
    };
    for (int s = 0; s < n; ++s) {
      if (extend(s)) return true;
    }
    return false;
  };
  lang.workspace_bits = [](int n) {
    return static_cast<std::size_t>(n) * log2_bits(n) + static_cast<std::size_t>(n);
  };
  lang.space_class = "O(n log n)";
  return lang;
}

std::vector<GraphLanguage> all_languages() {
  return {connected_language(),    max_degree_language(3), triangle_free_language(),
          has_triangle_language(), even_edges_language(),  bipartite_language(),
          hamiltonian_path_language()};
}

}  // namespace netcons::tm
