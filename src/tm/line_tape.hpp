// Interaction-driven execution of a Turing machine on a line of population
// nodes -- the Section 6 / Figure 5 mechanism.
//
// The tape cells are the nodes of a constructed line. The head has no global
// sense of direction: it first walks to one endpoint leaving temporary 't'
// marks, then back to the other endpoint leaving 'r' marks; afterwards every
// cell left of the head carries 'l' and every cell right of it carries 'r',
// and the head navigates by those marks (Figure 5). Each head move happens
// only when the scheduler selects the interaction between the head's cell
// and the correct neighbor cell, exactly as in the model.
#pragma once

#include "tm/turing_machine.hpp"

#include <unordered_map>
#include <vector>

namespace netcons::tm {

class LineTape {
 public:
  enum class Phase { InitToRight, InitToLeft, Working, Halted };
  enum class Mark : std::uint8_t { None, Temp, Left, Right };

  /// `line_nodes` are population node ids ordered along the line;
  /// `input` is written onto the leftmost cells.
  LineTape(TuringMachine machine, std::vector<int> line_nodes, std::string input);

  /// Report that the scheduler selected the (unordered) encounter {u, v}.
  /// Returns true if this interaction advanced the machine.
  bool on_interaction(int u, int v);

  [[nodiscard]] Phase phase() const noexcept { return phase_; }
  [[nodiscard]] bool halted() const noexcept { return phase_ == Phase::Halted; }
  [[nodiscard]] bool accepted() const noexcept { return accepted_; }
  [[nodiscard]] std::uint64_t tm_steps() const noexcept { return tm_steps_; }
  [[nodiscard]] std::uint64_t interactions_used() const noexcept { return interactions_used_; }
  [[nodiscard]] int head_position() const noexcept { return head_; }
  [[nodiscard]] Mark mark(int position) const {
    return marks_[static_cast<std::size_t>(position)];
  }
  /// Final (or current) tape with trailing blanks trimmed.
  [[nodiscard]] std::string tape() const;

  /// The encounter the machine is currently waiting for, as population node
  /// ids, or nullopt when halted. Exposes progress to orchestrators.
  [[nodiscard]] std::optional<std::pair<int, int>> pending_encounter() const;

 private:
  void settle();  ///< Apply halting / stay-moves that need no interaction.
  [[nodiscard]] bool is_head_cell_pair(int u, int v, int& other_pos) const;

  TuringMachine machine_;
  std::vector<int> nodes_;                   ///< line position -> node id
  std::unordered_map<int, int> position_of_;  ///< node id -> line position
  std::string tape_;
  std::vector<Mark> marks_;
  Phase phase_ = Phase::InitToRight;
  int head_ = 0;
  int state_ = 0;
  bool accepted_ = false;
  std::uint64_t tm_steps_ = 0;
  std::uint64_t interactions_used_ = 0;
};

}  // namespace netcons::tm
