// Decidable graph languages with explicit workspace accounting -- the "L"
// of Section 6. The generic constructors draw random graphs and run a
// decider for L on them; the theorems (14/15/16) differ only in how much
// simulation space the organized population provides, so every decider here
// reports the workspace (in bits, as a function of the input-graph order)
// that its implementation needs. The constructors check that bound against
// the space they physically allocated before running the decider.
//
// The paper does not spell out tuple tables for graph deciders either; the
// deciders are implemented directly, with their space usage audited, and the
// TM substrate itself is exercised by tm/turing_machine + tm/line_tape.
// (See DESIGN.md, "Substitutions".)
#pragma once

#include "graph/graph.hpp"

#include <functional>
#include <string>
#include <vector>

namespace netcons::tm {

struct GraphLanguage {
  std::string name;
  std::function<bool(const Graph&)> decide;
  /// Workspace, in bits, the decider needs for an order-n input (beyond the
  /// read-only adjacency matrix).
  std::function<std::size_t(int)> workspace_bits;
  std::string space_class;  ///< e.g. "O(log n)", "O(n)", "O(n^2)".
};

/// Connected graphs. Workspace: visited bitmap + frontier cursor, O(n) bits.
[[nodiscard]] GraphLanguage connected_language();

/// Graphs with maximum degree <= d. Workspace: two indices + a counter,
/// O(log n) bits.
[[nodiscard]] GraphLanguage max_degree_language(int d);

/// Triangle-free graphs. Workspace: three indices, O(log n) bits.
[[nodiscard]] GraphLanguage triangle_free_language();

/// Graphs containing at least one triangle.
[[nodiscard]] GraphLanguage has_triangle_language();

/// Graphs with an even number of edges. Workspace: two indices + one parity
/// bit, O(log n) bits.
[[nodiscard]] GraphLanguage even_edges_language();

/// Bipartite graphs. Workspace: 2-coloring array, O(n) bits.
[[nodiscard]] GraphLanguage bipartite_language();

/// Graphs with a Hamiltonian path (exponential time, O(n log n) bits of
/// workspace via the path stack; usable for the small orders the generic
/// constructors run at).
[[nodiscard]] GraphLanguage hamiltonian_path_language();

/// All deciders above (for sweeping benches/tests).
[[nodiscard]] std::vector<GraphLanguage> all_languages();

}  // namespace netcons::tm
