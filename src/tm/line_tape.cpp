#include "tm/line_tape.hpp"

#include <stdexcept>

namespace netcons::tm {

LineTape::LineTape(TuringMachine machine, std::vector<int> line_nodes, std::string input)
    : machine_(std::move(machine)), nodes_(std::move(line_nodes)) {
  if (nodes_.size() < 2) throw std::invalid_argument("LineTape: need a line of >= 2 cells");
  if (input.size() > nodes_.size()) throw std::invalid_argument("LineTape: input too long");
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    position_of_[nodes_[i]] = static_cast<int>(i);
  }
  tape_.assign(nodes_.size(), TuringMachine::kBlank);
  std::copy(input.begin(), input.end(), tape_.begin());
  marks_.assign(nodes_.size(), Mark::None);
  head_ = 0;
  state_ = machine_.initial_state;
  // The head starts at the left endpoint here; the initialization walk still
  // runs to place the direction marks (it is a no-op walk to the right end
  // and back), exercising the Figure 5 mechanics.
  settle();
}

bool LineTape::is_head_cell_pair(int u, int v, int& other_pos) const {
  const auto iu = position_of_.find(u);
  const auto iv = position_of_.find(v);
  if (iu == position_of_.end() || iv == position_of_.end()) return false;
  const int pu = iu->second;
  const int pv = iv->second;
  if (pu == head_) {
    other_pos = pv;
  } else if (pv == head_) {
    other_pos = pu;
  } else {
    return false;
  }
  return std::abs(other_pos - head_) == 1;
}

bool LineTape::on_interaction(int u, int v) {
  if (phase_ == Phase::Halted) return false;
  int other = -1;
  if (!is_head_cell_pair(u, v, other)) return false;
  const int last = static_cast<int>(nodes_.size()) - 1;

  switch (phase_) {
    case Phase::InitToRight:
      // Walk right leaving temporary marks until the right endpoint.
      if (other != head_ + 1) return false;
      marks_[static_cast<std::size_t>(head_)] = Mark::Temp;
      head_ = other;
      if (head_ == last) phase_ = Phase::InitToLeft;
      break;
    case Phase::InitToLeft:
      // Walk back left, converting marks to 'r' (right-of-head).
      if (other != head_ - 1) return false;
      marks_[static_cast<std::size_t>(head_)] = Mark::Right;
      head_ = other;
      if (head_ == 0) phase_ = Phase::Working;
      break;
    case Phase::Working: {
      const auto it = machine_.delta.find({state_, tape_[static_cast<std::size_t>(head_)]});
      if (it == machine_.delta.end()) {
        phase_ = Phase::Halted;
        accepted_ = false;
        return false;
      }
      const Tuple& t = it->second;
      const int want = head_ + (t.move == Move::Right ? 1 : t.move == Move::Left ? -1 : 0);
      if (want == head_ || want != other) return false;  // Stay handled in settle()
      tape_[static_cast<std::size_t>(head_)] = t.write;
      state_ = t.next_state;
      ++tm_steps_;
      marks_[static_cast<std::size_t>(head_)] = (t.move == Move::Right) ? Mark::Left : Mark::Right;
      marks_[static_cast<std::size_t>(want)] = Mark::None;
      head_ = want;
      break;
    }
    case Phase::Halted:
      return false;
  }
  ++interactions_used_;
  settle();
  return true;
}

void LineTape::settle() {
  if (phase_ != Phase::Working) {
    // A 2-cell line starting at the left endpoint may already be "at" the
    // right endpoint only after moving; nothing to settle during init.
    return;
  }
  const int last = static_cast<int>(nodes_.size()) - 1;
  while (true) {
    if (machine_.is_halting(state_)) {
      phase_ = Phase::Halted;
      accepted_ = (state_ == machine_.accept_state);
      return;
    }
    const auto it = machine_.delta.find({state_, tape_[static_cast<std::size_t>(head_)]});
    if (it == machine_.delta.end()) {
      phase_ = Phase::Halted;
      accepted_ = false;
      return;
    }
    const Tuple& t = it->second;
    if (t.move == Move::Stay) {
      // Stay transitions need no neighbor interaction.
      tape_[static_cast<std::size_t>(head_)] = t.write;
      state_ = t.next_state;
      ++tm_steps_;
      continue;
    }
    // Moving off either end of the bounded tape rejects.
    if ((t.move == Move::Left && head_ == 0) || (t.move == Move::Right && head_ == last)) {
      tape_[static_cast<std::size_t>(head_)] = t.write;
      state_ = t.next_state;
      ++tm_steps_;
      phase_ = Phase::Halted;
      accepted_ = false;
      return;
    }
    return;  // Needs a real neighbor interaction.
  }
}

std::string LineTape::tape() const {
  const auto last = tape_.find_last_not_of(TuringMachine::kBlank);
  return (last == std::string::npos) ? std::string{} : tape_.substr(0, last + 1);
}

std::optional<std::pair<int, int>> LineTape::pending_encounter() const {
  if (phase_ == Phase::Halted) return std::nullopt;
  const int last = static_cast<int>(nodes_.size()) - 1;
  int want = head_;
  switch (phase_) {
    case Phase::InitToRight:
      want = head_ + 1;
      break;
    case Phase::InitToLeft:
      want = head_ - 1;
      break;
    case Phase::Working: {
      const auto it = machine_.delta.find({state_, tape_[static_cast<std::size_t>(head_)]});
      if (it == machine_.delta.end()) return std::nullopt;
      want = head_ + (it->second.move == Move::Right ? 1 : -1);
      break;
    }
    case Phase::Halted:
      return std::nullopt;
  }
  if (want < 0 || want > last) return std::nullopt;
  return std::make_pair(nodes_[static_cast<std::size_t>(head_)],
                        nodes_[static_cast<std::size_t>(want)]);
}

}  // namespace netcons::tm
