// A deterministic single-tape Turing machine with an explicit tuple table.
//
// This is the computational substrate of Section 6: the generic constructors
// organize part of the population into a line and operate it as a TM. The
// class is deliberately classic -- integer control states, char tape
// alphabet, (state, symbol) -> (state, symbol, move) tuples -- so that the
// line-tape execution (line_tape.hpp) can drive exactly one tuple per
// head-neighbor interaction.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace netcons::tm {

enum class Move : std::int8_t { Left = -1, Stay = 0, Right = 1 };

struct Tuple {
  int next_state = 0;
  char write = '_';
  Move move = Move::Stay;
};

struct TuringMachine {
  static constexpr char kBlank = '_';

  int initial_state = 0;
  int accept_state = -1;
  int reject_state = -2;
  /// delta: (state, read symbol) -> tuple. Missing entries mean reject.
  std::map<std::pair<int, char>, Tuple> delta;
  std::string name;

  [[nodiscard]] bool is_halting(int state) const noexcept {
    return state == accept_state || state == reject_state;
  }
};

/// Result of running a TM on a bounded tape.
struct RunResult {
  bool halted = false;
  bool accepted = false;
  std::uint64_t steps = 0;
  std::size_t cells_used = 0;  ///< High-water mark of visited cells.
  std::string tape;            ///< Final tape contents (trailing blanks trimmed).
};

/// Execute `machine` on `input` with an explicit cell budget (the tape does
/// not grow past `tape_cells`; a move beyond it rejects, modeling the
/// space-bounded simulation of Section 6) and a step budget.
[[nodiscard]] RunResult run(const TuringMachine& machine, const std::string& input,
                            std::size_t tape_cells, std::uint64_t max_steps);

/// Concrete machines used by the unit tests and the line-tape demo.
/// Increment a binary number (most significant bit first); accepts always.
[[nodiscard]] TuringMachine binary_increment();
/// Accept iff the {0,1} input is a palindrome.
[[nodiscard]] TuringMachine palindrome();
/// Accept iff the input is of the form 0^k 1^k.
[[nodiscard]] TuringMachine zeros_then_ones();

}  // namespace netcons::tm
