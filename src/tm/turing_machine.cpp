#include "tm/turing_machine.hpp"

#include <algorithm>
#include <stdexcept>

namespace netcons::tm {

RunResult run(const TuringMachine& machine, const std::string& input, std::size_t tape_cells,
              std::uint64_t max_steps) {
  if (tape_cells == 0 || input.size() > tape_cells) {
    throw std::invalid_argument("tm::run: input exceeds tape budget");
  }
  std::string tape(tape_cells, TuringMachine::kBlank);
  std::copy(input.begin(), input.end(), tape.begin());

  RunResult result;
  int state = machine.initial_state;
  std::size_t head = 0;
  std::size_t high_water = input.empty() ? 1 : input.size();

  while (result.steps < max_steps) {
    if (machine.is_halting(state)) {
      result.halted = true;
      result.accepted = (state == machine.accept_state);
      break;
    }
    const auto it = machine.delta.find({state, tape[head]});
    if (it == machine.delta.end()) {
      // Undefined transition: implicit reject.
      result.halted = true;
      result.accepted = false;
      break;
    }
    tape[head] = it->second.write;
    state = it->second.next_state;
    ++result.steps;
    switch (it->second.move) {
      case Move::Left:
        if (head == 0) {
          // Falling off the left end rejects (standard bounded-tape choice).
          result.halted = true;
          result.accepted = false;
        } else {
          --head;
        }
        break;
      case Move::Right:
        if (head + 1 >= tape_cells) {
          // Out of budget: reject, as the space-bounded simulation would.
          result.halted = true;
          result.accepted = false;
        } else {
          ++head;
          high_water = std::max(high_water, head + 1);
        }
        break;
      case Move::Stay:
        break;
    }
    if (result.halted) break;
  }

  result.cells_used = high_water;
  const auto last = tape.find_last_not_of(TuringMachine::kBlank);
  result.tape = (last == std::string::npos) ? std::string{} : tape.substr(0, last + 1);
  return result;
}

TuringMachine binary_increment() {
  // States: 0 = scan right to end, 1 = carry left, accept on completion.
  TuringMachine m;
  m.name = "binary-increment";
  m.initial_state = 0;
  m.accept_state = 100;
  m.reject_state = -2;
  m.delta[{0, '0'}] = {0, '0', Move::Right};
  m.delta[{0, '1'}] = {0, '1', Move::Right};
  m.delta[{0, TuringMachine::kBlank}] = {1, TuringMachine::kBlank, Move::Left};
  m.delta[{1, '0'}] = {100, '1', Move::Stay};
  m.delta[{1, '1'}] = {1, '0', Move::Left};
  // All-ones overflow: the head falls off the left edge and rejects; callers
  // size the tape with a leading '0' to avoid it.
  return m;
}

TuringMachine palindrome() {
  // Classic two-end marking: erase matching outer symbols until empty.
  // States: 0 pick first symbol; 1/2 run right remembering 0/1; 3/4 check
  // last symbol; 5 run left to the start.
  TuringMachine m;
  m.name = "palindrome";
  m.initial_state = 0;
  m.accept_state = 100;
  m.reject_state = 101;
  const char B = TuringMachine::kBlank;
  m.delta[{0, B}] = {100, B, Move::Stay};  // empty: accept
  m.delta[{0, '0'}] = {1, B, Move::Right};
  m.delta[{0, '1'}] = {2, B, Move::Right};
  m.delta[{1, '0'}] = {1, '0', Move::Right};
  m.delta[{1, '1'}] = {1, '1', Move::Right};
  m.delta[{1, B}] = {3, B, Move::Left};
  m.delta[{2, '0'}] = {2, '0', Move::Right};
  m.delta[{2, '1'}] = {2, '1', Move::Right};
  m.delta[{2, B}] = {4, B, Move::Left};
  m.delta[{3, B}] = {100, B, Move::Stay};  // odd length middle consumed
  m.delta[{3, '0'}] = {5, B, Move::Left};
  m.delta[{3, '1'}] = {101, '1', Move::Stay};
  m.delta[{4, B}] = {100, B, Move::Stay};
  m.delta[{4, '1'}] = {5, B, Move::Left};
  m.delta[{4, '0'}] = {101, '0', Move::Stay};
  m.delta[{5, '0'}] = {5, '0', Move::Left};
  m.delta[{5, '1'}] = {5, '1', Move::Left};
  m.delta[{5, B}] = {0, B, Move::Right};
  return m;
}

TuringMachine zeros_then_ones() {
  // Accept 0^k 1^k: repeatedly erase one leading 0 and one trailing 1.
  TuringMachine m;
  m.name = "zeros-then-ones";
  m.initial_state = 0;
  m.accept_state = 100;
  m.reject_state = 101;
  const char B = TuringMachine::kBlank;
  m.delta[{0, B}] = {100, B, Move::Stay};
  m.delta[{0, '0'}] = {1, B, Move::Right};
  m.delta[{0, '1'}] = {101, '1', Move::Stay};
  m.delta[{1, '0'}] = {1, '0', Move::Right};
  m.delta[{1, '1'}] = {1, '1', Move::Right};
  m.delta[{1, B}] = {2, B, Move::Left};
  m.delta[{2, '1'}] = {3, B, Move::Left};
  m.delta[{2, '0'}] = {101, '0', Move::Stay};
  m.delta[{2, B}] = {101, B, Move::Stay};  // lone 0 erased, no matching 1
  m.delta[{3, '0'}] = {3, '0', Move::Left};
  m.delta[{3, '1'}] = {3, '1', Move::Left};
  m.delta[{3, B}] = {0, B, Move::Right};
  return m;
}

}  // namespace netcons::tm
