// Runtime execution of a FaultPlan against one Engine: a StepInterceptor
// that fires step-scheduled events (periodic bursts, rate-based deletions)
// from inside the step loop, plus an explicit entry point for
// stabilization-triggered events, driven by the recovery loop below.
//
// Determinism: every random choice (victims, deleted edges, rate coin)
// draws from the session's own generator, seeded independently of the
// simulator via a dedicated SplitMix64 stream element. A (plan, seed) pair
// therefore reproduces the exact fault trajectory on any thread of a
// campaign, which is what keeps fault campaigns bit-identical across
// thread counts.
#pragma once

#include "core/engine.hpp"
#include "faults/fault_plan.hpp"

#include <cstdint>
#include <optional>

namespace netcons::faults {

/// Number of G(C) edges (active edges whose endpoints are both alive output
/// nodes). O(n^2); called only around fault firings, never per step.
[[nodiscard]] std::uint64_t output_edge_count(const Protocol& protocol, const World& world);

/// Stream tag separating the fault generator's seed from the simulator's
/// (the simulator consumes the trial seed itself, exactly as fault-free
/// trials always have).
inline constexpr std::uint64_t kFaultSeedStream = 0xfa17;

class FaultSession final : public StepInterceptor {
 public:
  FaultSession(FaultPlan plan, std::uint64_t seed);

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// Fires any step-scheduled event whose trigger has been reached, and
  /// rate-based deletions, before the simulator executes the next encounter.
  void before_step(Engine& sim) override;

  /// Fire every pending stabilization-triggered event now. Returns true if
  /// at least one event fired.
  bool fire_on_stabilization(Engine& sim);

  [[nodiscard]] bool stabilization_pending() const noexcept;

  /// Earliest future step at which a scheduled event can still fire (the
  /// upper end of the window, for rate events); nullopt when every
  /// step-scheduled event is exhausted. Used by the recovery loop to run a
  /// quiescent simulator forward to its next perturbation. Non-const: arms
  /// the plan (resolving n-dependent defaults) on first use.
  [[nodiscard]] std::optional<std::uint64_t> next_scheduled(const Engine& sim);

  /// True once no event -- stabilization- or step-triggered -- can fire again.
  [[nodiscard]] bool exhausted(const Engine& sim);

  /// Upper bound on the number of distinct firing episodes (used to scale
  /// the recovery loop's total step budget).
  [[nodiscard]] std::uint64_t episode_bound() const noexcept;

  // --- accounting -----------------------------------------------------------
  [[nodiscard]] std::uint64_t faults_injected() const noexcept { return faults_injected_; }
  [[nodiscard]] std::uint64_t last_fault_step() const noexcept { return last_fault_step_; }
  [[nodiscard]] std::uint64_t output_edges_deleted() const noexcept {
    return output_edges_deleted_;
  }
  /// |G(C)| measured immediately after the most recent firing.
  [[nodiscard]] std::uint64_t output_edges_after_damage() const noexcept {
    return output_edges_after_damage_;
  }

 private:
  struct Armed {
    FaultEvent event;
    int fired = 0;                 ///< Firings so far (burst kinds).
    std::uint64_t next_at = 0;     ///< Next trigger step (step-scheduled).
    std::uint64_t window_end = 0;  ///< Edge-rate: last active step.
  };

  void ensure_armed(const Engine& sim);
  [[nodiscard]] bool armed_exhausted(const Armed& armed) const noexcept;
  void fire_burst(Engine& sim, Armed& armed);
  void delete_one_random_edge(Engine& sim);
  void record_firing(Engine& sim, std::uint64_t deleted_output, bool membership_changed);

  FaultPlan plan_;
  Rng rng_;
  bool armed_ = false;
  std::vector<Armed> armed_events_;
  std::uint64_t faults_injected_ = 0;
  std::uint64_t last_fault_step_ = 0;
  std::uint64_t output_edges_deleted_ = 0;
  std::uint64_t output_edges_after_damage_ = 0;
};

/// Run `sim` to certified stability under fault injection: stabilize, fire
/// pending stabilization-triggered events, re-stabilize, and run forward
/// through any step-scheduled events, until the plan is exhausted and the
/// simulator is stable again (or the budget runs out, reported as
/// stabilized = false). Each phase gets a fresh copy of the per-phase step
/// budget (options.max_steps, or the run_until_stable default), so recovery
/// is afforded the same time as initial construction.
///
/// The returned report carries the recovery extension: faults_injected,
/// last_fault_step, recovery_steps = convergence_step - last_fault_step,
/// and the damage ledger (output edges deleted by faults vs. rebuilt --
/// by count -- vs. residual). An empty plan is exactly run_until_stable.
[[nodiscard]] ConvergenceReport run_until_stable_with_faults(
    Engine& sim, FaultSession& session, const Engine::StabilityOptions& options = {});

}  // namespace netcons::faults
