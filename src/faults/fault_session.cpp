#include "faults/fault_session.hpp"

#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

namespace netcons::faults {

namespace {

/// Active edges with both endpoints alive (the kill() invariant guarantees
/// dead nodes are edge-free, so aliveness needs no re-check here).
std::vector<std::pair<int, int>> active_edge_list(const World& world) {
  std::vector<std::pair<int, int>> out;
  out.reserve(static_cast<std::size_t>(world.active_edge_count()));
  const int n = world.size();
  for (int v = 1; v < n; ++v) {
    for (int u = 0; u < v; ++u) {
      if (world.edge(u, v)) out.emplace_back(u, v);
    }
  }
  return out;
}

bool is_output_edge(const Protocol& protocol, const World& world, int u, int v) {
  return protocol.is_output_state(world.state(u)) && protocol.is_output_state(world.state(v));
}

std::vector<int> alive_nodes(const World& world) {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(world.alive_count()));
  for (int u = 0; u < world.size(); ++u) {
    if (world.alive(u)) out.push_back(u);
  }
  return out;
}

/// First `count` elements of a partial Fisher-Yates shuffle of `pool`.
template <typename T>
void select_prefix(std::vector<T>& pool, std::size_t count, Rng& rng) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(rng.below(pool.size() - i));
    std::swap(pool[i], pool[j]);
  }
}

/// The library's leader-naming convention: leader/walker states start with
/// 'l' (l, l', l0.., la, lb..) or 'w' (the walking leader of the line
/// protocols). See the target= grammar note in fault_plan.hpp.
bool is_leader_state(const Protocol& protocol, StateId s) {
  const std::string& name = protocol.state_name(s);
  return !name.empty() && (name.front() == 'l' || name.front() == 'w');
}

/// Arrange `pool` so its first `count` entries are the chosen victims,
/// honoring the event's target selector.
void select_victims(std::vector<int>& pool, std::size_t count, VictimTarget target,
                    const Protocol& protocol, const World& world, Rng& rng) {
  switch (target) {
    case VictimTarget::Random:
      select_prefix(pool, count, rng);
      return;
    case VictimTarget::MaxDegree:
      // The adversary always hits the hubs: highest active degree first,
      // ties by lowest id (deterministic given the configuration).
      std::sort(pool.begin(), pool.end(), [&world](int a, int b) {
        const int da = world.active_degree(a);
        const int db = world.active_degree(b);
        return da != db ? da > db : a < b;
      });
      return;
    case VictimTarget::Leader: {
      // Leaders first (in random order among themselves), padded with
      // random non-leaders when fewer than `count` leaders are alive.
      const auto mid = std::stable_partition(pool.begin(), pool.end(), [&](int u) {
        return is_leader_state(protocol, world.state(u));
      });
      const auto leaders = static_cast<std::size_t>(mid - pool.begin());
      std::vector<int> head(pool.begin(), mid);
      select_prefix(head, std::min(count, leaders), rng);
      std::copy(head.begin(), head.end(), pool.begin());
      if (count > leaders) {
        std::vector<int> tail(mid, pool.end());
        select_prefix(tail, count - leaders, rng);
        std::copy(tail.begin(), tail.end(), mid);
      }
      return;
    }
  }
}

}  // namespace

std::uint64_t output_edge_count(const Protocol& protocol, const World& world) {
  std::uint64_t count = 0;
  const int n = world.size();
  for (int v = 1; v < n; ++v) {
    for (int u = 0; u < v; ++u) {
      if (world.edge(u, v) && is_output_edge(protocol, world, u, v)) ++count;
    }
  }
  return count;
}

FaultSession::FaultSession(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)), rng_(trial_seed(seed, kFaultSeedStream)) {}

void FaultSession::ensure_armed(const Engine& sim) {
  if (armed_) return;
  armed_ = true;
  const auto n = static_cast<std::uint64_t>(sim.world().size());
  armed_events_.reserve(plan_.events.size());
  for (const FaultEvent& event : plan_.events) {
    Armed armed;
    armed.event = event;
    if (event.kind == FaultKind::EdgeRate) {
      const std::uint64_t start = event.at ? event.at : 1;
      const std::uint64_t window = event.window ? event.window : 16 * n * n;
      armed.next_at = start;
      armed.window_end = start + window - 1;
    } else if (!event.stabilization_triggered()) {
      armed.next_at = event.at ? event.at : event.every;
    }
    armed_events_.push_back(armed);
  }
}

bool FaultSession::armed_exhausted(const Armed& armed) const noexcept {
  if (armed.event.kind == FaultKind::EdgeRate) return false;  // window-checked by caller
  return armed.fired >= armed.event.times;
}

void FaultSession::before_step(Engine& sim) {
  ensure_armed(sim);
  const std::uint64_t upcoming = sim.steps() + 1;
  for (Armed& armed : armed_events_) {
    if (armed.event.kind == FaultKind::EdgeRate) {
      if (upcoming >= armed.next_at && upcoming <= armed.window_end &&
          rng_.bernoulli(armed.event.rate)) {
        delete_one_random_edge(sim);
      }
    } else if (!armed.event.stabilization_triggered()) {
      while (!armed_exhausted(armed) && armed.next_at <= upcoming) {
        fire_burst(sim, armed);
        ++armed.fired;
        if (armed.event.every == 0) break;
        armed.next_at += armed.event.every;
      }
    }
  }
}

bool FaultSession::fire_on_stabilization(Engine& sim) {
  ensure_armed(sim);
  bool fired = false;
  for (Armed& armed : armed_events_) {
    if (armed.event.stabilization_triggered() && armed.fired == 0) {
      fire_burst(sim, armed);
      armed.fired = 1;
      fired = true;
    }
  }
  return fired;
}

bool FaultSession::stabilization_pending() const noexcept {
  if (!armed_) {
    for (const FaultEvent& event : plan_.events) {
      if (event.stabilization_triggered()) return true;
    }
    return false;
  }
  for (const Armed& armed : armed_events_) {
    if (armed.event.stabilization_triggered() && armed.fired == 0) return true;
  }
  return false;
}

std::optional<std::uint64_t> FaultSession::next_scheduled(const Engine& sim) {
  ensure_armed(sim);
  const std::uint64_t upcoming = sim.steps() + 1;
  std::optional<std::uint64_t> next;
  for (const Armed& armed : armed_events_) {
    std::uint64_t candidate = 0;
    if (armed.event.kind == FaultKind::EdgeRate) {
      if (upcoming > armed.window_end) continue;
      // Run through the whole window: deletions inside it are stochastic.
      candidate = armed.window_end;
    } else {
      if (armed.event.stabilization_triggered() || armed_exhausted(armed)) continue;
      candidate = std::max(armed.next_at, upcoming);
    }
    if (!next || candidate < *next) next = candidate;
  }
  return next;
}

bool FaultSession::exhausted(const Engine& sim) {
  return !stabilization_pending() && !next_scheduled(sim).has_value();
}

std::uint64_t FaultSession::episode_bound() const noexcept {
  std::uint64_t episodes = 0;
  for (const FaultEvent& event : plan_.events) {
    if (event.kind == FaultKind::EdgeRate) {
      episodes += 2;  // the window itself plus one recovery phase
    } else {
      episodes += static_cast<std::uint64_t>(event.times);
    }
  }
  return std::min<std::uint64_t>(episodes, 64);
}

void FaultSession::fire_burst(Engine& sim, Armed& armed) {
  World& world = sim.mutable_world();
  const Protocol& protocol = sim.protocol();
  std::uint64_t deleted_output = 0;
  bool membership_changed = false;

  std::size_t victims = 0;
  switch (armed.event.kind) {
    case FaultKind::Crash: {
      std::vector<int> alive = alive_nodes(world);
      // Always leave at least one survivor so the population stays a system.
      victims = std::min<std::size_t>(static_cast<std::size_t>(armed.event.count),
                                      alive.empty() ? 0 : alive.size() - 1);
      select_victims(alive, victims, armed.event.target, protocol, world, rng_);
      for (std::size_t i = 0; i < victims; ++i) {
        const int u = alive[i];
        membership_changed = membership_changed || protocol.is_output_state(world.state(u));
        for (const int v : world.active_neighbors(u)) {
          if (is_output_edge(protocol, world, u, v)) ++deleted_output;
        }
        world.kill(u);
      }
      break;
    }
    case FaultKind::EdgeBurst: {
      std::vector<std::pair<int, int>> edges = active_edge_list(world);
      victims = std::min<std::size_t>(
          static_cast<std::size_t>(
              std::ceil(armed.event.fraction * static_cast<double>(edges.size()))),
          edges.size());
      select_prefix(edges, victims, rng_);
      for (std::size_t i = 0; i < victims; ++i) {
        const auto [u, v] = edges[i];
        if (is_output_edge(protocol, world, u, v)) ++deleted_output;
        world.set_edge(u, v, false);
      }
      break;
    }
    case FaultKind::Reset: {
      std::vector<int> alive = alive_nodes(world);
      victims = std::min<std::size_t>(static_cast<std::size_t>(armed.event.count), alive.size());
      select_victims(alive, victims, armed.event.target, protocol, world, rng_);
      const StateId q0 = protocol.initial_state();
      for (std::size_t i = 0; i < victims; ++i) {
        const int u = alive[i];
        membership_changed = membership_changed ||
                             protocol.is_output_state(world.state(u)) !=
                                 protocol.is_output_state(q0);
        world.set_state(u, q0);
      }
      break;
    }
    case FaultKind::EdgeRate:
      break;  // rate events never fire as bursts
  }

  // A firing that perturbed nothing (no victims left, no edges to delete)
  // is not a fault event: it must not inflate faults_injected or move
  // last_fault_step, which recovery_steps is measured from.
  if (victims > 0) record_firing(sim, deleted_output, membership_changed);
}

void FaultSession::delete_one_random_edge(Engine& sim) {
  World& world = sim.mutable_world();
  const std::vector<std::pair<int, int>> edges = active_edge_list(world);
  if (edges.empty()) return;  // nothing to delete; not a firing
  const auto [u, v] = edges[static_cast<std::size_t>(rng_.below(edges.size()))];
  const bool output = is_output_edge(sim.protocol(), world, u, v);
  world.set_edge(u, v, false);
  record_firing(sim, output ? 1 : 0, false);
}

void FaultSession::record_firing(Engine& sim, std::uint64_t deleted_output,
                                 bool membership_changed) {
  ++faults_injected_;
  NETCONS_TM_COUNT("faults.injected", 1);
  last_fault_step_ = sim.steps();
  output_edges_deleted_ += deleted_output;
  output_edges_after_damage_ = output_edge_count(sim.protocol(), sim.world());
  if (deleted_output > 0 || membership_changed) sim.note_output_change();
}

ConvergenceReport run_until_stable_with_faults(Engine& sim, FaultSession& session,
                                               const Engine::StabilityOptions& options) {
  if (session.plan().empty()) return sim.run_until_stable(options);

  const std::uint64_t phase_budget =
      Engine::resolve_stability_budget(sim.world().size(), options).max_steps;
  const std::uint64_t total_cap = phase_budget * (session.episode_bound() + 1);

  sim.set_interceptor(&session);
  ConvergenceReport report;
  while (true) {
    Engine::StabilityOptions phase = options;
    phase.max_steps = std::min(total_cap, sim.steps() + phase_budget);
    report = sim.run_until_stable(phase);
    if (!report.stabilized) break;
    if (session.stabilization_pending()) {
      session.fire_on_stabilization(sim);
      continue;
    }
    if (const auto next = session.next_scheduled(sim)) {
      if (*next >= total_cap) {
        // The remaining schedule lies beyond the budget; report the timeout
        // honestly rather than pretending the plan completed.
        report.stabilized = false;
        break;
      }
      sim.run(std::max<std::uint64_t>(1, *next - sim.steps()));
      continue;
    }
    break;  // stable and the plan is exhausted
  }
  sim.set_interceptor(nullptr);

  report.steps_executed = sim.steps();
  report.convergence_step = sim.last_output_change();
  report.faults_injected = session.faults_injected();
  if (report.faults_injected > 0) {
    report.last_fault_step = session.last_fault_step();
    report.recovery_steps = report.convergence_step > report.last_fault_step
                                ? report.convergence_step - report.last_fault_step
                                : 0;
    const std::uint64_t final_edges = output_edge_count(sim.protocol(), sim.world());
    const std::uint64_t after = session.output_edges_after_damage();
    const std::uint64_t rebuilt = final_edges > after ? final_edges - after : 0;
    report.output_edges_deleted = session.output_edges_deleted();
    report.output_edges_repaired = std::min(rebuilt, report.output_edges_deleted);
    report.output_edges_residual = report.output_edges_deleted - report.output_edges_repaired;
  }
  return report;
}

}  // namespace netcons::faults
