// Declarative fault plans for adversarial perturbation of a running
// simulation (the fault axis of the campaign engine; cf. Fault Tolerant
// Network Constructors, Michail-Spirakis-Theofilatos 2019).
//
// A plan is a list of fault events parsed from a compact spec string:
//
//   none                           no faults (the implicit default)
//   crash:k=2                      crash 2 random nodes at first stabilization
//   crash:k=1:at=5000              crash 1 node at step 5000
//   edge-burst:f=0.1               delete 10% of active edges at stabilization
//   edge-burst:f=0.05:at=100:every=1000:times=5   periodic bursts
//   edge-rate:p=1e-4               each step w.p. p delete one active edge,
//                                  for a 16*n^2-step window (override: for=W)
//   reset:k=3                      reset 3 random nodes to q0 at stabilization
//   crash:k=1:target=max-degree    crash the highest-degree node (adversarial)
//   crash:k=1:target=leader        crash a leader/walker node (adversarial)
//   crash:k=1+edge-burst:f=0.2     '+' composes events into one plan
//
// Victim selection (crash and reset): `target=random` (the default) picks
// uniformly among alive nodes; `target=max-degree` picks the k alive nodes
// of highest active degree (ties by lowest id -- the adversary always hits
// the hubs); `target=leader` picks among alive nodes whose state name
// follows the library's leader convention (first letter 'l' or 'w'),
// padding with random victims when fewer than k leaders exist.
//
// Trigger semantics: burst kinds (crash, edge-burst, reset) with neither
// `at` nor `every` fire once at the first certified stabilization -- the
// regime the recovery metrics are defined for. With `at`/`every` they are
// step-scheduled (first firing at `at`, or at `every` when only `every` is
// given, then every `every` steps, `times` firings total). `edge-rate` is
// always step-driven, active in [at, at + window).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace netcons::faults {

enum class FaultKind { Crash, EdgeBurst, EdgeRate, Reset };

[[nodiscard]] const char* to_string(FaultKind kind) noexcept;

/// How crash/reset victims are chosen (target=).
enum class VictimTarget { Random, MaxDegree, Leader };

[[nodiscard]] const char* to_string(VictimTarget target) noexcept;

struct FaultEvent {
  FaultKind kind = FaultKind::Crash;
  VictimTarget target = VictimTarget::Random;  ///< Crash/reset victim selector.
  int count = 1;          ///< Crash/reset victims per firing (k=).
  double fraction = 0.1;  ///< Edge-burst: fraction of active edges (f=).
  double rate = 1e-4;     ///< Edge-rate: per-step deletion probability (p=).
  std::uint64_t at = 0;     ///< First firing step; 0 = at stabilization (burst
                            ///< kinds) / from the first step (edge-rate).
  std::uint64_t every = 0;  ///< Repeat period in steps (burst kinds).
  int times = 1;            ///< Total firings (burst kinds).
  std::uint64_t window = 0; ///< Edge-rate active window in steps (for=);
                            ///< 0 derives 16*n^2 at arm time.

  /// Burst event that fires at certified stabilization (no step schedule).
  [[nodiscard]] bool stabilization_triggered() const noexcept {
    return kind != FaultKind::EdgeRate && at == 0 && every == 0;
  }
};

struct FaultPlan {
  std::string name = "none";  ///< The spec string the plan was parsed from.
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const noexcept { return events.empty(); }
};

/// Parse a plan spec ("none", "crash:k=2", "crash:k=1+edge-burst:f=0.2", ...).
/// Throws std::invalid_argument with a message quoting the grammar on any
/// unknown kind, unknown parameter, or out-of-range value.
[[nodiscard]] FaultPlan parse_fault_plan(const std::string& spec);

/// One-line-per-form grammar summary for CLI help and error messages.
[[nodiscard]] const std::string& fault_plan_grammar();

}  // namespace netcons::faults
