#include "faults/fault_plan.hpp"

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace netcons::faults {

namespace {

[[noreturn]] void fail(const std::string& spec, const std::string& why) {
  throw std::invalid_argument("fault plan '" + spec + "': " + why + "\n" + fault_plan_grammar());
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::stringstream stream(s);
  std::string item;
  while (std::getline(stream, item, sep)) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

FaultEvent parse_event(const std::string& spec, const std::string& text) {
  const std::vector<std::string> parts = split(text, ':');
  if (parts.empty()) fail(spec, "empty event");

  FaultEvent event;
  const std::string& kind = parts.front();
  if (kind == "crash") {
    event.kind = FaultKind::Crash;
  } else if (kind == "edge-burst") {
    event.kind = FaultKind::EdgeBurst;
  } else if (kind == "edge-rate") {
    event.kind = FaultKind::EdgeRate;
  } else if (kind == "reset") {
    event.kind = FaultKind::Reset;
  } else {
    fail(spec, "unknown fault kind '" + kind + "'");
  }

  for (std::size_t i = 1; i < parts.size(); ++i) {
    const std::string& part = parts[i];
    const std::size_t eq = part.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == part.size()) {
      fail(spec, "malformed parameter '" + part + "' (expected name=value)");
    }
    const std::string key = part.substr(0, eq);
    const std::string value = part.substr(eq + 1);
    char* end = nullptr;
    const double numeric = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') {
      fail(spec, "non-numeric value in '" + part + "'");
    }
    // k/at/every/times/for are counts: reject 'crash:k=2.9' instead of
    // silently truncating to a different experiment.
    auto integer_at_least_one = [&](const char* what) {
      if (numeric < 1 || numeric != std::floor(numeric)) {
        fail(spec, std::string(what) + " must be an integer >= 1 in '" + part + "'");
      }
    };
    const bool burst = event.kind != FaultKind::EdgeRate;
    if (key == "k" && (event.kind == FaultKind::Crash || event.kind == FaultKind::Reset)) {
      integer_at_least_one("k");
      event.count = static_cast<int>(numeric);
    } else if (key == "f" && event.kind == FaultKind::EdgeBurst) {
      if (!(numeric > 0.0 && numeric <= 1.0)) fail(spec, "f must be in (0, 1] in '" + part + "'");
      event.fraction = numeric;
    } else if (key == "p" && event.kind == FaultKind::EdgeRate) {
      if (!(numeric > 0.0 && numeric < 1.0)) fail(spec, "p must be in (0, 1) in '" + part + "'");
      event.rate = numeric;
    } else if (key == "at") {
      integer_at_least_one("at");
      event.at = static_cast<std::uint64_t>(numeric);
    } else if (key == "every" && burst) {
      integer_at_least_one("every");
      event.every = static_cast<std::uint64_t>(numeric);
    } else if (key == "times" && burst) {
      integer_at_least_one("times");
      event.times = static_cast<int>(numeric);
    } else if (key == "for" && event.kind == FaultKind::EdgeRate) {
      integer_at_least_one("for");
      event.window = static_cast<std::uint64_t>(numeric);
    } else {
      fail(spec, "unknown parameter '" + key + "' for kind '" + kind + "'");
    }
  }

  if (event.times > 1 && event.every == 0) {
    fail(spec, "times > 1 needs a period (add every=E)");
  }
  return event;
}

FaultEvent parse_event_with_target(const std::string& spec, const std::string& text) {
  // target= carries a word, not a number, so it is peeled off before the
  // numeric parameter loop.
  std::string numeric_text;
  std::string target;
  for (const std::string& part : split(text, ':')) {
    if (part.rfind("target=", 0) == 0) {
      if (!target.empty()) fail(spec, "duplicate parameter 'target' in '" + part + "'");
      target = part.substr(7);
      if (target.empty()) fail(spec, "malformed parameter '" + part + "' (expected name=value)");
      continue;
    }
    if (!numeric_text.empty()) numeric_text += ':';
    numeric_text += part;
  }
  FaultEvent event = parse_event(spec, numeric_text);
  if (target.empty()) return event;
  if (event.kind != FaultKind::Crash && event.kind != FaultKind::Reset) {
    fail(spec, "target= applies to crash/reset only");
  }
  if (target == "random") {
    event.target = VictimTarget::Random;
  } else if (target == "max-degree") {
    event.target = VictimTarget::MaxDegree;
  } else if (target == "leader") {
    event.target = VictimTarget::Leader;
  } else {
    fail(spec, "unknown target '" + target + "' (random, max-degree, leader)");
  }
  return event;
}

}  // namespace

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::Crash: return "crash";
    case FaultKind::EdgeBurst: return "edge-burst";
    case FaultKind::EdgeRate: return "edge-rate";
    case FaultKind::Reset: return "reset";
  }
  return "?";
}

const char* to_string(VictimTarget target) noexcept {
  switch (target) {
    case VictimTarget::Random: return "random";
    case VictimTarget::MaxDegree: return "max-degree";
    case VictimTarget::Leader: return "leader";
  }
  return "?";
}

FaultPlan parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  plan.name = spec;
  if (spec.empty() || spec == "none") {
    plan.name = "none";
    return plan;
  }
  for (const std::string& event : split(spec, '+')) {
    plan.events.push_back(parse_event_with_target(spec, event));
  }
  if (plan.events.empty()) fail(spec, "no events");
  return plan;
}

const std::string& fault_plan_grammar() {
  static const std::string grammar =
      "fault plan grammar ('+' composes events):\n"
      "  none\n"
      "  crash:k=K[:target=V][:at=S][:every=E:times=T]      crash K nodes\n"
      "  edge-burst:f=F[:at=S][:every=E:times=T] delete ceil(F * active edges)\n"
      "  edge-rate:p=P[:at=S][:for=W]            each step w.p. P delete one edge\n"
      "  reset:k=K[:target=V][:at=S][:every=E:times=T]      reset K nodes to q0\n"
      "victim targets V: random (default), max-degree, leader\n"
      "burst kinds without at/every fire once at first stabilization";
  return grammar;
}

}  // namespace netcons::faults
