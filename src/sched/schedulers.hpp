// Additional schedulers beyond the uniform random one.
//
// * ScriptedScheduler drives an exact, hand-chosen execution -- the unit
//   tests use it to exercise individual transitions deterministically
//   (the "adversary" of the model made concrete).
// * RandomPermutationScheduler is a fair round-based scheduler: each round
//   plays all n(n-1)/2 pairs in a fresh random order. Used to check that
//   correctness (not timing) is scheduler-independent, as the paper's
//   correctness proofs only assume fairness.
// * StaleBiasedScheduler is a fair-but-skewed stress scheduler that favors
//   the least recently played pairs, probing sensitivity of measured times.
// Random-permutation and stale-biased export a UniformPairWeightModel
// (their single-step marginal law is uniform by symmetry), so the census
// engine runs them on weighted sampling instead of the naive fallback;
// temporal correlations are deliberately dropped, and the CI
// weighted-census KS gate bounds the effect. ScriptedScheduler exports no
// model -- an exact script must execute step-for-step.
#pragma once

#include "core/scheduler.hpp"

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

namespace netcons {

class ScriptedScheduler final : public Scheduler {
 public:
  /// Plays `script` in order; afterwards falls back to uniform random
  /// (or throws if `strict`).
  explicit ScriptedScheduler(std::vector<Encounter> script, bool strict = false)
      : script_(std::move(script)), strict_(strict) {}

  [[nodiscard]] Encounter next(Rng& rng, int n) override {
    if (position_ < script_.size()) return script_[position_++];
    if (strict_) throw std::out_of_range("ScriptedScheduler: script exhausted");
    return fallback_.next(rng, n);
  }

  void reset() override { position_ = 0; }

  [[nodiscard]] std::size_t position() const noexcept { return position_; }

 private:
  std::vector<Encounter> script_;
  bool strict_;
  std::size_t position_ = 0;
  UniformRandomScheduler fallback_;
};

class RandomPermutationScheduler final : public Scheduler {
 public:
  [[nodiscard]] Encounter next(Rng& rng, int n) override;
  void reset() override { cursor_ = 0; pairs_.clear(); }
  /// Every pair plays exactly once per round: the marginal is uniform.
  [[nodiscard]] SchedulerWeightModel* weight_model(Rng& rng, int n) override;

 private:
  std::vector<Encounter> pairs_;
  std::size_t cursor_ = 0;
  int n_ = 0;
  std::optional<UniformPairWeightModel> model_;
};

class StaleBiasedScheduler final : public Scheduler {
 public:
  /// `bias` in [0,1): probability of picking the stalest pair instead of a
  /// uniform one. bias = 0 degenerates to the uniform scheduler.
  explicit StaleBiasedScheduler(double bias = 0.5);

  [[nodiscard]] Encounter next(Rng& rng, int n) override;
  void reset() override { last_played_.clear(); }
  /// Under stationarity every pair is equally likely to be stalest, so
  /// the single-step marginal is uniform for any bias.
  [[nodiscard]] SchedulerWeightModel* weight_model(Rng& rng, int n) override;

 private:
  double bias_;
  std::vector<std::uint64_t> last_played_;
  std::uint64_t clock_ = 0;
  int n_ = 0;
  UniformRandomScheduler uniform_;
  std::optional<UniformPairWeightModel> model_;
};

}  // namespace netcons
