#include "sched/proximity.hpp"

#include <algorithm>
#include <cmath>

namespace netcons {

namespace {

/// Unordered pair count as a double (n can exceed the 32-bit triangle).
double pair_total(int n) {
  return static_cast<double>(n) * (static_cast<double>(n) - 1.0) / 2.0;
}

}  // namespace

ProximityWeightModel::ProximityWeightModel(const ProximityParams& params,
                                           spatial::Placement placement)
    : params_(params), placement_(std::move(placement)), n_(placement_.size()) {
  // Cell side must stay >= radius so every near pair (d < r) lives in the
  // same or an adjacent cell; capping the grid at ~sqrt(n) cells per side
  // keeps the table O(n) when the radius is much finer than the density.
  const int by_radius =
      params_.radius >= 1.0 ? 1 : static_cast<int>(std::floor(1.0 / params_.radius));
  const int by_population =
      std::max(1, static_cast<int>(std::ceil(std::sqrt(static_cast<double>(std::max(n_, 1))))));
  cells_per_side_ = std::max(1, std::min(by_radius, by_population));
  build_cells();
}

void ProximityWeightModel::build_cells() {
  const int c = cells_per_side_;
  cell_nodes_.assign(static_cast<std::size_t>(c) * static_cast<std::size_t>(c), {});
  for (int u = 0; u < n_; ++u) {
    const spatial::Point& p = placement_.position(u);
    const int cx = std::min(c - 1, static_cast<int>(p.x * c));
    const int cy = std::min(c - 1, static_cast<int>(p.y * c));
    cell_nodes_[static_cast<std::size_t>(cy) * c + cx].push_back(u);
  }

  // Candidate cell pairs: each cell with itself, plus the half
  // neighborhood (E, S, SE, SW) so every unordered adjacent pair appears
  // exactly once. The exact excess mass is summed here too -- a one-time
  // O(candidate pairs) pass; every later draw is O(1) expected.
  std::vector<double> counts;
  max_weight_ = ProximityScheduler::kFloor;
  for (int cy = 0; cy < c; ++cy) {
    for (int cx = 0; cx < c; ++cx) {
      const auto cell = static_cast<std::int32_t>(cy * c + cx);
      const auto& nodes = cell_nodes_[static_cast<std::size_t>(cell)];
      if (!nodes.empty()) {
        const double k = static_cast<double>(nodes.size());
        if (nodes.size() >= 2) {
          cell_pairs_.push_back({cell, cell});
          counts.push_back(k * (k - 1.0) / 2.0);
          for (std::size_t i = 0; i < nodes.size(); ++i) {
            for (std::size_t j = i + 1; j < nodes.size(); ++j) {
              const double e = excess(nodes[i], nodes[j]);
              excess_total_ += e;
              max_weight_ = std::max(max_weight_, ProximityScheduler::kFloor + e);
            }
          }
        }
        const int deltas[4][2] = {{1, 0}, {-1, 1}, {0, 1}, {1, 1}};
        for (const auto& delta : deltas) {
          const int nx = cx + delta[0];
          const int ny = cy + delta[1];
          if (nx < 0 || nx >= c || ny < 0 || ny >= c) continue;
          const auto other = static_cast<std::int32_t>(ny * c + nx);
          const auto& peers = cell_nodes_[static_cast<std::size_t>(other)];
          if (peers.empty()) continue;
          cell_pairs_.push_back({cell, other});
          counts.push_back(k * static_cast<double>(peers.size()));
          for (const std::int32_t u : nodes) {
            for (const std::int32_t v : peers) {
              const double e = excess(u, v);
              excess_total_ += e;
              max_weight_ = std::max(max_weight_, ProximityScheduler::kFloor + e);
            }
          }
        }
      }
    }
  }
  total_weight_ = ProximityScheduler::kFloor * pair_total(n_) + excess_total_;
  if (excess_total_ > 0.0) build_alias(counts);
}

void ProximityWeightModel::build_alias(const std::vector<double>& weights) {
  // Vose's alias method over the cell-pair candidate counts.
  const std::size_t k = weights.size();
  candidate_total_ = 0.0;
  for (const double w : weights) candidate_total_ += w;
  alias_prob_.assign(k, 1.0);
  alias_index_.resize(k);
  std::vector<double> scaled(k);
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  for (std::size_t i = 0; i < k; ++i) {
    alias_index_[i] = static_cast<std::uint32_t>(i);
    scaled[i] = weights[i] * static_cast<double>(k) / candidate_total_;
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    alias_prob_[s] = scaled[s];
    alias_index_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
}

std::size_t ProximityWeightModel::draw_cell_pair(Rng& rng) const {
  const auto i =
      static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(alias_prob_.size())));
  return rng.uniform() < alias_prob_[i] ? i : alias_index_[i];
}

double ProximityWeightModel::excess(int u, int v) const {
  const double d = placement_.distance(u, v);
  if (d >= params_.radius) return 0.0;
  return (1.0 - ProximityScheduler::kFloor) *
         std::pow(1.0 - d / params_.radius, params_.alpha);
}

double ProximityWeightModel::pair_weight(int u, int v) const {
  return ProximityScheduler::kFloor + excess(u, v);
}

Encounter ProximityWeightModel::sample(Rng& rng) const {
  // Mixture: the uniform floor component in one draw, or the near-pair
  // excess component via cell-pair proposal + distance rejection.
  if (excess_total_ > 0.0 &&
      !rng.bernoulli(ProximityScheduler::kFloor * pair_total(n_) / total_weight_)) {
    for (;;) {
      const CellPair& pair = cell_pairs_[draw_cell_pair(rng)];
      int u = 0;
      int v = 0;
      if (pair.a == pair.b) {
        const auto& nodes = cell_nodes_[static_cast<std::size_t>(pair.a)];
        const auto i = static_cast<std::size_t>(
            rng.below(static_cast<std::uint64_t>(nodes.size())));
        auto j =
            static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(nodes.size() - 1)));
        if (j >= i) ++j;
        u = nodes[i];
        v = nodes[j];
      } else {
        const auto& a = cell_nodes_[static_cast<std::size_t>(pair.a)];
        const auto& b = cell_nodes_[static_cast<std::size_t>(pair.b)];
        u = a[static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(a.size())))];
        v = b[static_cast<std::size_t>(rng.below(static_cast<std::uint64_t>(b.size())))];
      }
      // Accept with (1 - d/r)^alpha: every candidate pair proposes with
      // equal probability, so accepted pairs are distributed ~ excess.
      if (rng.bernoulli(excess(u, v) / (1.0 - ProximityScheduler::kFloor))) return {u, v};
    }
  }
  const int u = static_cast<int>(rng.below(static_cast<std::uint64_t>(n_)));
  int v = static_cast<int>(rng.below(static_cast<std::uint64_t>(n_ - 1)));
  if (v >= u) ++v;
  return {u, v};
}

void ProximityScheduler::ensure_model(Rng& rng, int n) {
  if (model_ && model_->placement().size() == n) return;
  model_ = std::make_unique<ProximityWeightModel>(
      params_, spatial::Placement::make(params_.layout, n, rng));
}

Encounter ProximityScheduler::next(Rng& rng, int n) {
  ensure_model(rng, n);
  return model_->sample(rng);
}

SchedulerWeightModel* ProximityScheduler::weight_model(Rng& rng, int n) {
  ensure_model(rng, n);
  return model_.get();
}

}  // namespace netcons
