#include "sched/schedulers.hpp"

#include "graph/graph.hpp"

namespace netcons {

Encounter RandomPermutationScheduler::next(Rng& rng, int n) {
  if (n != n_ || cursor_ >= pairs_.size()) {
    if (n != n_) {
      n_ = n;
      pairs_.clear();
      pairs_.reserve(Graph::pair_count(n));
      for (int v = 1; v < n; ++v) {
        for (int u = 0; u < v; ++u) pairs_.push_back({u, v});
      }
    }
    // Fisher-Yates reshuffle for the new round.
    for (std::size_t i = pairs_.size(); i > 1; --i) {
      const std::size_t j = rng.below(i);
      std::swap(pairs_[i - 1], pairs_[j]);
    }
    cursor_ = 0;
  }
  return pairs_[cursor_++];
}

SchedulerWeightModel* RandomPermutationScheduler::weight_model(Rng&, int n) {
  if (!model_ || n != n_) model_.emplace(n);
  return &*model_;
}

StaleBiasedScheduler::StaleBiasedScheduler(double bias) : bias_(bias) {
  if (bias < 0.0 || bias >= 1.0) {
    throw std::invalid_argument("StaleBiasedScheduler: bias must be in [0,1)");
  }
}

Encounter StaleBiasedScheduler::next(Rng& rng, int n) {
  if (n != n_) {
    n_ = n;
    last_played_.assign(Graph::pair_count(n), 0);
    clock_ = 0;
  }
  ++clock_;
  Encounter e{};
  if (rng.bernoulli(bias_)) {
    // Pick the stalest pair (ties broken by index). O(n^2) but this
    // scheduler is a correctness probe, not a throughput path.
    std::size_t best = 0;
    for (std::size_t i = 1; i < last_played_.size(); ++i) {
      if (last_played_[i] < last_played_[best]) best = i;
    }
    // Invert the triangular index.
    int v = 1;
    while (Graph::pair_count(v + 1) <= best) ++v;
    const int u = static_cast<int>(best - Graph::pair_count(v));
    e = {u, v};
  } else {
    e = uniform_.next(rng, n);
  }
  last_played_[Graph::pair_index(e.first, e.second)] = clock_;
  return e;
}

SchedulerWeightModel* StaleBiasedScheduler::weight_model(Rng&, int n) {
  if (!model_ || n != n_) model_.emplace(n);
  return &*model_;
}

}  // namespace netcons
