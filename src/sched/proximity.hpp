// The proximity scheduler: nodes are embedded in the unit square
// (spatial/placement.hpp) and the probability of scheduling a pair decays
// with Euclidean distance -- the DTN-broadcast workload, and the first
// real consumer of the census engine's SchedulerWeightModel seam.
//
// Pair weight, for distance d, cutoff radius r and exponent alpha:
//
//   w(d) = kFloor + (1 - kFloor) * (1 - d/r)^alpha   when d < r
//   w(d) = kFloor                                    otherwise
//
// The constant floor keeps every pair selectable, which (a) preserves the
// model's fairness requirement -- with probability 1 every pair still
// occurs infinitely often -- and (b) keeps the census quiescence argument
// valid (an effective pair with weight zero would hold W > 0 forever).
//
// next() is O(1) expected at n = 10^5: a mixture draw takes the uniform
// floor component in one shot, and the near-pair excess component samples
// through an alias table over grid-cell candidate products (cells of side
// ~r, so near pairs live in same or adjacent cells) with rejection on the
// actual distance. The same sampler backs the weight model's sample(),
// so the naive and census paths share one law by construction.
#pragma once

#include "core/scheduler.hpp"
#include "spatial/placement.hpp"

#include <cstdint>
#include <memory>
#include <vector>

namespace netcons {

struct ProximityParams {
  double alpha = 2.0;            ///< Decay exponent; > 0.
  double radius = 0.1;           ///< Cutoff radius in unit-square units; > 0.
  spatial::Layout layout = spatial::Layout::kUniform;
};

/// The weight model over a fixed placement. Owned by the scheduler; also
/// the naive next() sampler (one law, two consumers).
class ProximityWeightModel final : public SchedulerWeightModel {
 public:
  ProximityWeightModel(const ProximityParams& params, spatial::Placement placement);

  [[nodiscard]] double pair_weight(int u, int v) const override;
  [[nodiscard]] double max_weight() const override { return max_weight_; }
  [[nodiscard]] double total_weight() const override { return total_weight_; }
  [[nodiscard]] Encounter sample(Rng& rng) const override;

  [[nodiscard]] const spatial::Placement& placement() const noexcept { return placement_; }

 private:
  /// One alias-table entry: an unordered cell pair (same cell, or a cell
  /// and one half-neighborhood neighbor) whose candidate count is the
  /// number of node pairs it can propose.
  struct CellPair {
    std::int32_t a = 0;
    std::int32_t b = 0;  ///< b == a: same-cell entry.
  };

  void build_cells();
  void build_alias(const std::vector<double>& weights);
  [[nodiscard]] std::size_t draw_cell_pair(Rng& rng) const;
  [[nodiscard]] double excess(int u, int v) const;  ///< w - kFloor.

  ProximityParams params_;
  spatial::Placement placement_;
  int n_ = 0;
  int cells_per_side_ = 1;
  std::vector<std::vector<std::int32_t>> cell_nodes_;
  std::vector<CellPair> cell_pairs_;
  /// Vose alias table over cell-pair candidate counts.
  std::vector<double> alias_prob_;
  std::vector<std::uint32_t> alias_index_;
  double candidate_total_ = 0.0;  ///< Sum of candidate counts.
  double excess_total_ = 0.0;     ///< Exact sum of (w - kFloor) over near pairs.
  double total_weight_ = 0.0;     ///< kFloor * pairs + excess_total_.
  double max_weight_ = 0.0;       ///< Max observed pair weight (>= kFloor).
};

class ProximityScheduler final : public Scheduler {
 public:
  /// The fairness floor: minimum selection weight of any pair relative to
  /// the peak weight 1.0 at distance 0.
  static constexpr double kFloor = 0.05;

  explicit ProximityScheduler(ProximityParams params) : params_(params) {}

  [[nodiscard]] Encounter next(Rng& rng, int n) override;
  [[nodiscard]] SchedulerWeightModel* weight_model(Rng& rng, int n) override;

  [[nodiscard]] const ProximityParams& params() const noexcept { return params_; }
  /// The model (and its placement), once built by next()/weight_model().
  [[nodiscard]] const ProximityWeightModel* model() const noexcept { return model_.get(); }

 private:
  void ensure_model(Rng& rng, int n);

  ProximityParams params_;
  std::unique_ptr<ProximityWeightModel> model_;
};

}  // namespace netcons
