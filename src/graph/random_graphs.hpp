// Random graph models used by the generic constructors of Section 6.
#pragma once

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace netcons {

/// Erdos-Renyi G(n, p): each unordered pair active independently with
/// probability p. The paper's generic constructors draw from G(n, 1/2).
[[nodiscard]] Graph sample_gnp(int n, double p, Rng& rng);

/// Random connected graph of max degree <= d on n nodes (used by the
/// Theorem 17 "no waste" constructor to seed the logarithmic TM subgraph):
/// random spanning tree capped at degree d, plus random extra edges that
/// respect the cap.
[[nodiscard]] Graph sample_bounded_degree_connected(int n, int d, Rng& rng);

}  // namespace netcons
