#include "graph/graph.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace netcons {

Graph::Graph(int n) : n_(n) {
  if (n < 0) throw std::invalid_argument("Graph: negative order");
  bits_.assign((pair_count(n) + 63) / 64, 0);
  degree_.assign(static_cast<std::size_t>(n), 0);
}

std::size_t Graph::pair_index(int u, int v) noexcept {
  assert(u != v);
  if (u > v) std::swap(u, v);
  return static_cast<std::size_t>(v) * (static_cast<std::size_t>(v) - 1) / 2 +
         static_cast<std::size_t>(u);
}

std::size_t Graph::pair_count(int n) noexcept {
  return static_cast<std::size_t>(n) * (static_cast<std::size_t>(n) - 1) / 2;
}

bool Graph::has_edge(int u, int v) const noexcept {
  if (u == v) return false;
  const std::size_t i = pair_index(u, v);
  return (bits_[i / 64] >> (i % 64)) & 1ULL;
}

bool Graph::set_edge(int u, int v, bool active) {
  if (u == v || u < 0 || v < 0 || u >= n_ || v >= n_) {
    throw std::out_of_range("Graph::set_edge: bad endpoints");
  }
  const std::size_t i = pair_index(u, v);
  const std::uint64_t mask = 1ULL << (i % 64);
  const bool old = (bits_[i / 64] & mask) != 0;
  if (old == active) return false;
  bits_[i / 64] ^= mask;
  const int delta = active ? 1 : -1;
  degree_[static_cast<std::size_t>(u)] += delta;
  degree_[static_cast<std::size_t>(v)] += delta;
  edges_ += delta;
  return true;
}

std::vector<int> Graph::neighbors(int u) const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(degree(u)));
  for (int v = 0; v < n_; ++v) {
    if (v != u && has_edge(u, v)) out.push_back(v);
  }
  return out;
}

std::vector<std::pair<int, int>> Graph::edges() const {
  std::vector<std::pair<int, int>> out;
  out.reserve(static_cast<std::size_t>(edges_));
  for (int v = 1; v < n_; ++v) {
    for (int u = 0; u < v; ++u) {
      if (has_edge(u, v)) out.emplace_back(u, v);
    }
  }
  return out;
}

std::vector<std::vector<int>> Graph::components() const {
  std::vector<int> label(static_cast<std::size_t>(n_), -1);
  std::vector<std::vector<int>> comps;
  std::vector<int> stack;
  for (int s = 0; s < n_; ++s) {
    if (label[static_cast<std::size_t>(s)] != -1) continue;
    const int id = static_cast<int>(comps.size());
    comps.emplace_back();
    stack.push_back(s);
    label[static_cast<std::size_t>(s)] = id;
    while (!stack.empty()) {
      const int u = stack.back();
      stack.pop_back();
      comps[static_cast<std::size_t>(id)].push_back(u);
      for (int v = 0; v < n_; ++v) {
        if (label[static_cast<std::size_t>(v)] == -1 && has_edge(u, v)) {
          label[static_cast<std::size_t>(v)] = id;
          stack.push_back(v);
        }
      }
    }
  }
  return comps;
}

Graph Graph::induced(const std::vector<int>& nodes) const {
  Graph g(static_cast<int>(nodes.size()));
  for (std::size_t a = 0; a < nodes.size(); ++a) {
    for (std::size_t b = a + 1; b < nodes.size(); ++b) {
      if (has_edge(nodes[a], nodes[b])) g.add_edge(static_cast<int>(a), static_cast<int>(b));
    }
  }
  return g;
}

std::string Graph::adjacency_bits() const {
  std::string s(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_), '0');
  for (int u = 0; u < n_; ++u) {
    for (int v = 0; v < n_; ++v) {
      if (u != v && has_edge(u, v)) {
        s[static_cast<std::size_t>(u) * static_cast<std::size_t>(n_) +
          static_cast<std::size_t>(v)] = '1';
      }
    }
  }
  return s;
}

std::optional<Graph> Graph::from_adjacency_bits(const std::string& bits) {
  int n = 0;
  while (static_cast<std::size_t>(n) * static_cast<std::size_t>(n) < bits.size()) ++n;
  if (static_cast<std::size_t>(n) * static_cast<std::size_t>(n) != bits.size()) {
    return std::nullopt;
  }
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      const char c = bits[static_cast<std::size_t>(u) * static_cast<std::size_t>(n) +
                          static_cast<std::size_t>(v)];
      if (c != '0' && c != '1') return std::nullopt;
      const char mirror = bits[static_cast<std::size_t>(v) * static_cast<std::size_t>(n) +
                               static_cast<std::size_t>(u)];
      if (c != mirror) return std::nullopt;
      if (u == v && c == '1') return std::nullopt;
      if (u < v && c == '1') g.add_edge(u, v);
    }
  }
  return g;
}

Graph Graph::line(int n) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

Graph Graph::ring(int n) {
  Graph g = line(n);
  if (n >= 3) g.add_edge(n - 1, 0);
  return g;
}

Graph Graph::star(int n) {
  Graph g(n);
  for (int i = 1; i < n; ++i) g.add_edge(0, i);
  return g;
}

Graph Graph::clique(int n) {
  Graph g(n);
  for (int v = 1; v < n; ++v) {
    for (int u = 0; u < v; ++u) g.add_edge(u, v);
  }
  return g;
}

}  // namespace netcons
