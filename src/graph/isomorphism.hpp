// Graph isomorphism for the small graphs produced in experiments
// (replication targets, generic-constructor outputs). Degree-sequence and
// neighborhood-invariant screening followed by backtracking search; exact.
#pragma once

#include "graph/graph.hpp"

namespace netcons {

/// Exact isomorphism test. Intended for graphs of order <= ~64; complexity is
/// exponential in the worst case but the invariant screening makes the
/// experimental workloads (lines, rings, stars, cliques, sparse G(n,p))
/// effectively instant.
[[nodiscard]] bool are_isomorphic(const Graph& a, const Graph& b);

}  // namespace netcons
