// Simple undirected graph on nodes {0..n-1}, stored as a triangular edge
// bitset plus cached degrees. This is the "output graph" type extracted from
// configurations and the input type of every topology predicate.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace netcons {

class Graph {
 public:
  Graph() = default;
  explicit Graph(int n);

  [[nodiscard]] int order() const noexcept { return n_; }
  [[nodiscard]] std::int64_t edge_count() const noexcept { return edges_; }

  /// Index of the unordered pair {u, v} (u != v) in the triangular layout.
  [[nodiscard]] static std::size_t pair_index(int u, int v) noexcept;
  /// Number of unordered pairs over n nodes.
  [[nodiscard]] static std::size_t pair_count(int n) noexcept;

  [[nodiscard]] bool has_edge(int u, int v) const noexcept;
  /// Sets the edge state; returns true if the state changed.
  bool set_edge(int u, int v, bool active);
  void add_edge(int u, int v) { set_edge(u, v, true); }
  void remove_edge(int u, int v) { set_edge(u, v, false); }

  [[nodiscard]] int degree(int u) const noexcept { return degree_[static_cast<std::size_t>(u)]; }
  [[nodiscard]] const std::vector<int>& degrees() const noexcept { return degree_; }

  /// Neighbors of u (O(n) scan; fine for the small graphs we analyze).
  [[nodiscard]] std::vector<int> neighbors(int u) const;

  /// All active edges as (u, v) pairs with u < v.
  [[nodiscard]] std::vector<std::pair<int, int>> edges() const;

  /// Connected components as node lists (singletons included).
  [[nodiscard]] std::vector<std::vector<int>> components() const;

  [[nodiscard]] bool operator==(const Graph& other) const noexcept = default;

  /// Subgraph induced by `nodes`, relabeled 0..k-1 in the given order.
  [[nodiscard]] Graph induced(const std::vector<int>& nodes) const;

  /// Row-major adjacency-matrix bit string ("0101..."), the TM input
  /// encoding used throughout Section 6.
  [[nodiscard]] std::string adjacency_bits() const;
  [[nodiscard]] static std::optional<Graph> from_adjacency_bits(const std::string& bits);

  /// Named constructions used as test fixtures and replication inputs.
  [[nodiscard]] static Graph line(int n);
  [[nodiscard]] static Graph ring(int n);
  [[nodiscard]] static Graph star(int n);
  [[nodiscard]] static Graph clique(int n);

 private:
  int n_ = 0;
  std::int64_t edges_ = 0;
  std::vector<std::uint64_t> bits_;
  std::vector<int> degree_;
};

}  // namespace netcons
