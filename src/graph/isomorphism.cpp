#include "graph/isomorphism.hpp"

#include <algorithm>
#include <vector>

namespace netcons {
namespace {

/// Per-node invariant: (degree, sorted multiset of neighbor degrees).
struct NodeInvariant {
  int degree = 0;
  std::vector<int> neighbor_degrees;

  bool operator==(const NodeInvariant&) const = default;
  bool operator<(const NodeInvariant& o) const {
    if (degree != o.degree) return degree < o.degree;
    return neighbor_degrees < o.neighbor_degrees;
  }
};

std::vector<NodeInvariant> invariants(const Graph& g) {
  std::vector<NodeInvariant> inv(static_cast<std::size_t>(g.order()));
  for (int u = 0; u < g.order(); ++u) {
    auto& iu = inv[static_cast<std::size_t>(u)];
    iu.degree = g.degree(u);
    for (int v : g.neighbors(u)) iu.neighbor_degrees.push_back(g.degree(v));
    std::sort(iu.neighbor_degrees.begin(), iu.neighbor_degrees.end());
  }
  return inv;
}

/// Backtracking mapper: assign a-nodes in order of decreasing degree
/// (most-constrained first), checking adjacency consistency incrementally.
class Matcher {
 public:
  Matcher(const Graph& a, const Graph& b) : a_(a), b_(b) {
    inv_a_ = invariants(a);
    inv_b_ = invariants(b);
    order_.resize(static_cast<std::size_t>(a.order()));
    for (int u = 0; u < a.order(); ++u) order_[static_cast<std::size_t>(u)] = u;
    std::sort(order_.begin(), order_.end(), [&](int x, int y) {
      return inv_a_[static_cast<std::size_t>(y)] < inv_a_[static_cast<std::size_t>(x)];
    });
    map_.assign(static_cast<std::size_t>(a.order()), -1);
    used_.assign(static_cast<std::size_t>(b.order()), false);
  }

  [[nodiscard]] bool search(std::size_t depth) {
    if (depth == order_.size()) return true;
    const int u = order_[depth];
    for (int v = 0; v < b_.order(); ++v) {
      if (used_[static_cast<std::size_t>(v)]) continue;
      if (!(inv_a_[static_cast<std::size_t>(u)] == inv_b_[static_cast<std::size_t>(v)])) continue;
      if (!consistent(u, v, depth)) continue;
      map_[static_cast<std::size_t>(u)] = v;
      used_[static_cast<std::size_t>(v)] = true;
      if (search(depth + 1)) return true;
      map_[static_cast<std::size_t>(u)] = -1;
      used_[static_cast<std::size_t>(v)] = false;
    }
    return false;
  }

 private:
  [[nodiscard]] bool consistent(int u, int v, std::size_t depth) const {
    for (std::size_t i = 0; i < depth; ++i) {
      const int w = order_[i];
      const int mapped = map_[static_cast<std::size_t>(w)];
      if (a_.has_edge(u, w) != b_.has_edge(v, mapped)) return false;
    }
    return true;
  }

  const Graph& a_;
  const Graph& b_;
  std::vector<NodeInvariant> inv_a_;
  std::vector<NodeInvariant> inv_b_;
  std::vector<int> order_;
  std::vector<int> map_;
  std::vector<bool> used_;
};

}  // namespace

bool are_isomorphic(const Graph& a, const Graph& b) {
  if (a.order() != b.order() || a.edge_count() != b.edge_count()) return false;
  if (a.order() == 0) return true;
  auto ia = invariants(a);
  auto ib = invariants(b);
  auto sa = ia;
  auto sb = ib;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  if (sa != sb) return false;
  Matcher m(a, b);
  return m.search(0);
}

}  // namespace netcons
