#include "graph/random_graphs.hpp"

#include <stdexcept>
#include <vector>

namespace netcons {

Graph sample_gnp(int n, double p, Rng& rng) {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("sample_gnp: p out of [0,1]");
  Graph g(n);
  for (int v = 1; v < n; ++v) {
    for (int u = 0; u < v; ++u) {
      if (rng.bernoulli(p)) g.add_edge(u, v);
    }
  }
  return g;
}

Graph sample_bounded_degree_connected(int n, int d, Rng& rng) {
  if (n > 1 && d < 2 && n > 2) {
    throw std::invalid_argument("sample_bounded_degree_connected: need d >= 2 for n > 2");
  }
  Graph g(n);
  if (n <= 1) return g;
  // Random attachment tree with degree cap: attach node v to a uniformly
  // chosen earlier node that still has capacity.
  std::vector<int> candidates;
  for (int v = 1; v < n; ++v) {
    candidates.clear();
    for (int u = 0; u < v; ++u) {
      if (g.degree(u) < d) candidates.push_back(u);
    }
    if (candidates.empty()) {
      throw std::invalid_argument("sample_bounded_degree_connected: cap too tight");
    }
    const int u = candidates[rng.below(candidates.size())];
    g.add_edge(u, v);
  }
  // A few random extra edges respecting the cap (densifies without bias
  // toward any particular topology).
  const int extra_attempts = n;
  for (int i = 0; i < extra_attempts; ++i) {
    const int u = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    const int v = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    if (u != v && !g.has_edge(u, v) && g.degree(u) < d && g.degree(v) < d) {
      g.add_edge(u, v);
    }
  }
  return g;
}

}  // namespace netcons
