// Topology predicates for every target network of the paper (Section 3.2).
// All predicates operate on the extracted output graph; "spanning" always
// refers to the graph's full node set, and the waste-tolerant variants take
// the allowed number of unused nodes explicitly.
#pragma once

#include "graph/graph.hpp"

namespace netcons {

[[nodiscard]] bool is_connected(const Graph& g);

/// Spanning line: connected, two nodes of degree 1, n-2 nodes of degree 2.
/// (n == 1: trivially a line; n == 2: a single edge.)
[[nodiscard]] bool is_spanning_line(const Graph& g);

/// Spanning ring: connected and 2-regular (requires n >= 3).
[[nodiscard]] bool is_spanning_ring(const Graph& g);

/// Spanning star: one center of degree n-1, the rest degree 1 (n >= 2;
/// n == 2 is the single edge).
[[nodiscard]] bool is_spanning_star(const Graph& g);

/// Cycle cover with waste: at least n - waste nodes have degree exactly 2 and
/// every degree-2 component is a cycle; the remaining nodes are either
/// isolated or form one extra active edge (paper Theorem 5 allows waste 2).
[[nodiscard]] bool is_cycle_cover(const Graph& g, int waste);

/// Connected spanning network where >= n-k+1 nodes have degree k and each of
/// the remaining l <= k-1 nodes has degree in [l-1, k-1] (Theorem 11's
/// guarantee). For the clean case (n*k even and the protocol converged fully)
/// this accepts the k-regular connected graph.
[[nodiscard]] bool is_k_regular_connected_relaxed(const Graph& g, int k);

/// Strict check: connected and k-regular.
[[nodiscard]] bool is_k_regular_connected(const Graph& g, int k);

/// Partition into floor(n/c) cliques of order c; the <= c-1 leftover nodes
/// may form at most one smaller component with arbitrary internal edges.
[[nodiscard]] bool is_clique_partition(const Graph& g, int c);

/// Matching of cardinality floor(n/2): every node has degree <= 1 and the
/// number of edges is floor(n/2).
[[nodiscard]] bool is_maximum_matching(const Graph& g);

/// Every node has at least one active edge (Theorem 1's "spanning network").
[[nodiscard]] bool is_spanning_network(const Graph& g);

/// True if the graph has maximum degree <= d.
[[nodiscard]] bool has_max_degree(const Graph& g, int d);

}  // namespace netcons
