#include "graph/predicates.hpp"

#include <algorithm>

namespace netcons {

bool is_connected(const Graph& g) {
  if (g.order() == 0) return true;
  return g.components().size() == 1;
}

bool is_spanning_line(const Graph& g) {
  const int n = g.order();
  if (n == 0) return false;
  if (n == 1) return g.edge_count() == 0;
  if (g.edge_count() != n - 1) return false;
  int deg1 = 0;
  for (int u = 0; u < n; ++u) {
    const int d = g.degree(u);
    if (d == 1) {
      ++deg1;
    } else if (d != 2) {
      return false;
    }
  }
  return deg1 == 2 && is_connected(g);
}

bool is_spanning_ring(const Graph& g) {
  const int n = g.order();
  if (n < 3) return false;
  if (g.edge_count() != n) return false;
  for (int u = 0; u < n; ++u) {
    if (g.degree(u) != 2) return false;
  }
  return is_connected(g);
}

bool is_spanning_star(const Graph& g) {
  const int n = g.order();
  if (n < 2) return n == 1 && g.edge_count() == 0;
  if (g.edge_count() != n - 1) return false;
  int centers = 0;
  for (int u = 0; u < n; ++u) {
    const int d = g.degree(u);
    if (d == n - 1) {
      ++centers;
    } else if (d != 1) {
      return false;
    }
  }
  // n == 2: both endpoints have degree 1 == n-1; count them as one star.
  return n == 2 ? g.edge_count() == 1 : centers == 1;
}

bool is_cycle_cover(const Graph& g, int waste) {
  int irregular = 0;
  std::vector<char> in_cycle(static_cast<std::size_t>(g.order()), 0);
  for (const auto& comp : g.components()) {
    const auto size = static_cast<int>(comp.size());
    bool all_deg2 = true;
    for (int u : comp) {
      if (g.degree(u) != 2) all_deg2 = false;
    }
    if (all_deg2 && size >= 3) {
      // A connected graph where every node has degree 2 is a single cycle.
      continue;
    }
    // Waste component: isolated node or a single active edge pair; anything
    // larger that is not a cycle is a violation.
    if (size == 1 && g.degree(comp[0]) == 0) {
      irregular += 1;
    } else if (size == 2 && g.degree(comp[0]) == 1 && g.degree(comp[1]) == 1) {
      irregular += 2;
    } else {
      return false;
    }
  }
  return irregular <= waste;
}

bool is_k_regular_connected_relaxed(const Graph& g, int k) {
  const int n = g.order();
  if (n < k + 1) return false;
  if (!is_connected(g)) return false;
  std::vector<int> deficient;
  for (int u = 0; u < n; ++u) {
    if (g.degree(u) > k) return false;
    if (g.degree(u) < k) deficient.push_back(u);
  }
  const auto l = static_cast<int>(deficient.size());
  if (l > k - 1) return false;
  for (int u : deficient) {
    if (g.degree(u) < l - 1) return false;
  }
  return true;
}

bool is_k_regular_connected(const Graph& g, int k) {
  const int n = g.order();
  if (n < k + 1) return false;
  for (int u = 0; u < n; ++u) {
    if (g.degree(u) != k) return false;
  }
  return is_connected(g);
}

bool is_clique_partition(const Graph& g, int c) {
  const int n = g.order();
  int full_cliques = 0;
  int leftover_components = 0;
  for (const auto& comp : g.components()) {
    const auto size = static_cast<int>(comp.size());
    if (size == static_cast<int>(c)) {
      // Must be a complete clique.
      for (std::size_t a = 0; a < comp.size(); ++a) {
        for (std::size_t b = a + 1; b < comp.size(); ++b) {
          if (!g.has_edge(comp[a], comp[b])) return false;
        }
      }
      ++full_cliques;
    } else if (size < c) {
      ++leftover_components;
      // Leftover nodes cannot fill another clique; allow any internal shape
      // but only in a single leftover component (isolated nodes each count
      // as a component, so `c - 1` singletons are also fine).
      if (size > c - 1) return false;
    } else {
      return false;
    }
  }
  const int leftover_nodes = n - full_cliques * c;
  return full_cliques == n / c && leftover_nodes <= c - 1 &&
         leftover_components <= std::max(1, leftover_nodes);
}

bool is_maximum_matching(const Graph& g) {
  const int n = g.order();
  for (int u = 0; u < n; ++u) {
    if (g.degree(u) > 1) return false;
  }
  return g.edge_count() == n / 2;
}

bool is_spanning_network(const Graph& g) {
  for (int u = 0; u < g.order(); ++u) {
    if (g.degree(u) == 0) return false;
  }
  return g.order() > 0;
}

bool has_max_degree(const Graph& g, int d) {
  for (int u = 0; u < g.order(); ++u) {
    if (g.degree(u) > d) return false;
  }
  return true;
}

}  // namespace netcons
