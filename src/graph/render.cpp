#include "graph/render.hpp"

#include <map>
#include <sstream>

namespace netcons {

std::string to_dot(const Graph& g, const DotOptions& options) {
  std::ostringstream os;
  const char* kind = options.directed ? "digraph" : "graph";
  const char* link = options.directed ? " -> " : " -- ";
  os << kind << " \"" << options.graph_name << "\" {\n";
  os << "  node [shape=circle, fontsize=10];\n";
  for (int u = 0; u < g.order(); ++u) {
    os << "  n" << u;
    const bool has_label =
        static_cast<std::size_t>(u) < options.node_labels.size() &&
        !options.node_labels[static_cast<std::size_t>(u)].empty();
    const bool has_color =
        static_cast<std::size_t>(u) < options.node_colors.size() &&
        !options.node_colors[static_cast<std::size_t>(u)].empty();
    if (has_label || has_color) {
      os << " [";
      if (has_label) {
        os << "label=\"" << u << ":" << options.node_labels[static_cast<std::size_t>(u)]
           << "\"";
      }
      if (has_color) {
        if (has_label) os << ", ";
        os << "style=filled, fillcolor=\"" << options.node_colors[static_cast<std::size_t>(u)]
           << "\"";
      }
      os << "]";
    }
    os << ";\n";
  }
  for (const auto& [u, v] : g.edges()) {
    os << "  n" << u << link << "n" << v << ";\n";
  }
  os << "}\n";
  return os.str();
}

std::string ascii_adjacency(const Graph& g) {
  std::ostringstream os;
  const int n = g.order();
  os << "    ";
  for (int v = 0; v < n; ++v) os << v % 10;
  os << '\n';
  for (int u = 0; u < n; ++u) {
    os << (u < 10 ? "  " : " ") << u << ' ';
    for (int v = 0; v < n; ++v) {
      if (v <= u) {
        os << ' ';
      } else {
        os << (g.has_edge(u, v) ? '#' : '.');
      }
    }
    os << '\n';
  }
  return os.str();
}

std::string degree_histogram(const Graph& g) {
  std::map<int, int> hist;
  for (int u = 0; u < g.order(); ++u) ++hist[g.degree(u)];
  std::ostringstream os;
  bool first = true;
  for (const auto& [degree, count] : hist) {
    if (!first) os << ' ';
    os << "deg" << degree << ":" << count;
    first = false;
  }
  return os.str();
}

}  // namespace netcons
