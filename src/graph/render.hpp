// Rendering helpers for constructed networks: Graphviz DOT export (with
// optional per-node state labels) and a compact ASCII adjacency picture for
// terminal inspection. Used by the figure benches and examples; pure
// functions with no I/O of their own.
#pragma once

#include "graph/graph.hpp"

#include <string>
#include <vector>

namespace netcons {

struct DotOptions {
  std::string graph_name = "netcons";
  /// Optional per-node labels (e.g. protocol state names); empty = ids only.
  std::vector<std::string> node_labels;
  /// Optional per-node fill colors (Graphviz color names).
  std::vector<std::string> node_colors;
  bool directed = false;
};

/// Graphviz DOT source for the graph.
[[nodiscard]] std::string to_dot(const Graph& g, const DotOptions& options = {});

/// Upper-triangular ASCII adjacency matrix ('#' = active), with a header
/// row of node indices (mod 10). Intended for n <= ~60.
[[nodiscard]] std::string ascii_adjacency(const Graph& g);

/// One-line degree histogram: "deg0:x deg1:y ...".
[[nodiscard]] std::string degree_histogram(const Graph& g);

}  // namespace netcons
