#include "campaign/campaign.hpp"

#include "campaign/job_queue.hpp"
#include "campaign/seeds.hpp"
#include "faults/fault_session.hpp"
#include "telemetry/heartbeat.hpp"
#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <new>
#include <thread>

namespace netcons::campaign {

namespace {

struct Point {
  const Unit* unit = nullptr;
  const SchedulerOption* scheduler = nullptr;
  const faults::FaultPlan* fault_plan = nullptr;
  const EngineOption* engine = nullptr;
  int n = 0;
  std::uint64_t seed = 0;  ///< Base of this point's per-trial seed stream.
};

/// The canonical grid expansion (unit-major, then scheduler, then fault
/// plan, then engine, then n) with live spec pointers. expand_grid()
/// derives the public GridPoint descriptors from this, so the two can
/// never disagree on order.
std::vector<Point> expand_points(const CampaignSpec& spec) {
  static const SchedulerOption kUniform{};
  std::vector<const SchedulerOption*> schedulers;
  if (spec.schedulers.empty()) {
    schedulers.push_back(&kUniform);
  } else {
    for (const auto& option : spec.schedulers) schedulers.push_back(&option);
  }

  static const faults::FaultPlan kNoFaults{};
  std::vector<const faults::FaultPlan*> fault_plans;
  if (spec.faults.empty()) {
    fault_plans.push_back(&kNoFaults);
  } else {
    for (const auto& plan : spec.faults) fault_plans.push_back(&plan);
  }

  static const EngineOption kNaive{};
  std::vector<const EngineOption*> engines;
  if (spec.engines.empty()) {
    engines.push_back(&kNaive);
  } else {
    for (const auto& option : spec.engines) engines.push_back(&option);
  }

  std::vector<Point> points;
  points.reserve(spec.units.size() * schedulers.size() * fault_plans.size() *
                 engines.size() * spec.ns.size());
  for (const auto& unit : spec.units) {
    for (const auto* scheduler : schedulers) {
      for (const auto* fault_plan : fault_plans) {
        for (const auto* engine : engines) {
          for (const int n : spec.ns) {
            Point point;
            point.unit = &unit;
            point.scheduler = scheduler;
            point.fault_plan = fault_plan;
            point.engine = engine;
            point.n = n;
            point.seed = point_seed(spec.base_seed, points.size());
            points.push_back(point);
          }
        }
      }
    }
  }
  return points;
}

/// One pool job: a run of consecutive entries of the (point, trial) task
/// list this invocation will execute (after shard filtering and resume
/// skips, trials of a point need not be contiguous).
struct Task {
  std::size_t point = 0;
  int trial = 0;
};

struct Chunk {
  std::size_t task_begin = 0;
  std::size_t task_end = 0;
};

TrialOutcome run_unit_trial(const Unit& unit, int n, std::uint64_t seed,
                            const SchedulerFactory& make_scheduler,
                            const faults::FaultPlan& fault_plan,
                            const EngineFactory& make_engine) {
  if (const auto* protocol = std::get_if<ProtocolSpec>(&unit.spec)) {
    return run_protocol_trial(*protocol, n, seed, make_scheduler, fault_plan, make_engine);
  }
  return run_process_trial(std::get<ProcessSpec>(unit.spec), n, seed, make_scheduler,
                           fault_plan, make_engine);
}


/// Shared trial-failure policy: trial-level throws become a failed outcome
/// with the message captured; std::bad_alloc propagates (infrastructure
/// failure, not a property of the trial).
template <typename Body>
TrialOutcome guarded_trial(Body&& body) {
  TrialOutcome outcome;
  try {
    body(outcome);
  } catch (const std::bad_alloc&) {
    throw;
  } catch (const std::exception& e) {
    outcome.success = false;
    outcome.error = e.what();
  } catch (...) {
    outcome.success = false;
    outcome.error = "unknown exception";
  }
  return outcome;
}

}  // namespace

int resolve_threads(int requested) noexcept {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::unique_ptr<Engine> instantiate_engine(const EngineFactory& make_engine,
                                           const Protocol& protocol, int n, std::uint64_t seed,
                                           const SchedulerFactory& make_scheduler) {
  std::unique_ptr<Scheduler> scheduler = make_scheduler ? make_scheduler() : nullptr;
  if (make_engine) return make_engine(protocol, n, seed, std::move(scheduler));
  return std::make_unique<Simulator>(protocol, n, seed, std::move(scheduler));
}

ProtocolTrialReport run_protocol_trial_report(const ProtocolSpec& spec, int n,
                                              std::uint64_t seed,
                                              const SchedulerFactory& make_scheduler,
                                              const faults::FaultPlan& fault_plan,
                                              const EngineFactory& make_engine) {
  const std::unique_ptr<Engine> engine =
      instantiate_engine(make_engine, spec.protocol, n, seed, make_scheduler);
  Engine& sim = *engine;
  if (spec.initialize) spec.initialize(sim.mutable_world());

  Engine::StabilityOptions options;
  if (spec.max_steps) options.max_steps = spec.max_steps(n);
  options.certificate = spec.certificate;

  faults::FaultSession session(fault_plan, seed);
  const ConvergenceReport report =
      faults::run_until_stable_with_faults(sim, session, options);

  ProtocolTrialReport out;
  out.stabilized = report.stabilized;
  out.convergence_step = report.convergence_step;
  out.steps_executed = report.steps_executed;
  out.faults_injected = report.faults_injected;
  out.recovery_steps = report.recovery_steps;
  out.output_edges_deleted = report.output_edges_deleted;
  out.output_edges_repaired = report.output_edges_repaired;
  out.output_edges_residual = report.output_edges_residual;
  if (report.stabilized && spec.target) {
    out.target_ok = spec.target(sim.world().output_graph(spec.protocol));
  } else {
    out.target_ok = report.stabilized;
  }
  if (telemetry::Registry* reg = telemetry::registry()) sim.publish_metrics(*reg);
  return out;
}

TrialOutcome run_protocol_trial(const ProtocolSpec& spec, int n, std::uint64_t seed,
                                const SchedulerFactory& make_scheduler,
                                const faults::FaultPlan& fault_plan,
                                const EngineFactory& make_engine) {
  return guarded_trial([&](TrialOutcome& outcome) {
    const ProtocolTrialReport report =
        run_protocol_trial_report(spec, n, seed, make_scheduler, fault_plan, make_engine);
    outcome.value = report.convergence_step;
    outcome.steps_executed = report.steps_executed;
    outcome.target_ok = report.target_ok;
    outcome.faults_injected = report.faults_injected;
    outcome.recovery_steps = report.recovery_steps;
    outcome.edges_deleted = report.output_edges_deleted;
    outcome.edges_repaired = report.output_edges_repaired;
    outcome.edges_residual = report.output_edges_residual;
    // Under faults the trial succeeds by re-stabilizing; a missed target is
    // residual damage (aggregated as `damaged`), not a failed trial.
    outcome.success = fault_plan.empty() ? report.stabilized && report.target_ok
                                         : report.stabilized;
  });
}

TrialOutcome run_process_trial(const ProcessSpec& spec, int n, std::uint64_t seed,
                               const SchedulerFactory& make_scheduler,
                               const faults::FaultPlan& fault_plan,
                               const EngineFactory& make_engine) {
  return guarded_trial([&](TrialOutcome& outcome) {
    const std::unique_ptr<Engine> engine =
        instantiate_engine(make_engine, spec.protocol, n, seed, make_scheduler);
    Engine& sim = *engine;
    if (spec.initialize) spec.initialize(sim.mutable_world());
    faults::FaultSession session(fault_plan, seed);
    if (!fault_plan.empty()) {
      // No stabilization phase to wait for: fire those events up front.
      (void)session.fire_on_stabilization(sim);
      sim.set_interceptor(&session);
    }
    const auto finished = sim.run_until(spec.done, process_step_budget(spec, n));
    sim.set_interceptor(nullptr);
    if (telemetry::Registry* reg = telemetry::registry()) sim.publish_metrics(*reg);
    outcome.steps_executed = sim.steps();
    outcome.faults_injected = session.faults_injected();
    if (outcome.faults_injected > 0) {
      // Same damage ledger as the protocol driver, against the completion
      // configuration instead of the stable one.
      const std::uint64_t final_edges =
          faults::output_edge_count(sim.protocol(), sim.world());
      const std::uint64_t after = session.output_edges_after_damage();
      const std::uint64_t rebuilt = final_edges > after ? final_edges - after : 0;
      outcome.edges_deleted = session.output_edges_deleted();
      outcome.edges_repaired = std::min(rebuilt, outcome.edges_deleted);
      outcome.edges_residual = outcome.edges_deleted - outcome.edges_repaired;
    }
    if (finished) {
      outcome.success = true;
      outcome.target_ok = true;  // completion IS the process's target
      outcome.value = *finished;
      if (outcome.faults_injected > 0 && *finished > session.last_fault_step()) {
        outcome.recovery_steps = *finished - session.last_fault_step();
      }
    }
  });
}

std::vector<GridPoint> expand_grid(const CampaignSpec& spec) {
  std::vector<GridPoint> grid;
  const std::vector<Point> points = expand_points(spec);
  grid.reserve(points.size());
  for (const Point& point : points) {
    GridPoint g;
    g.unit = point.unit->name;
    g.scheduler = point.scheduler->name;
    g.faults = point.fault_plan->name;
    g.engine = point.engine->name;
    g.faulted = !point.fault_plan->empty();
    g.n = point.n;
    g.seed = point.seed;
    grid.push_back(std::move(g));
  }
  return grid;
}

CampaignResult reduce_outcomes(const std::vector<GridPoint>& grid, int trials,
                               const std::vector<std::vector<TrialOutcome>>& outcomes) {
  CampaignResult result;
  result.points.reserve(grid.size());
  for (std::size_t p = 0; p < grid.size(); ++p) {
    PointResult point_result;
    point_result.unit = grid[p].unit;
    point_result.scheduler = grid[p].scheduler;
    point_result.faults = grid[p].faults;
    point_result.engine = grid[p].engine;
    point_result.n = grid[p].n;
    point_result.trials = trials;
    point_result.seed = grid[p].seed;
    const bool faulted = grid[p].faulted;
    for (const TrialOutcome& outcome : outcomes[p]) {
      point_result.steps_executed.add(static_cast<double>(outcome.steps_executed));
      if (faulted) {
        point_result.faults_injected.add(static_cast<double>(outcome.faults_injected));
        point_result.edges_deleted.add(static_cast<double>(outcome.edges_deleted));
        point_result.edges_repaired.add(static_cast<double>(outcome.edges_repaired));
        point_result.edges_residual.add(static_cast<double>(outcome.edges_residual));
      }
      if (outcome.success) {
        point_result.convergence_steps.add(static_cast<double>(outcome.value));
        if (faulted) {
          point_result.recovery_steps.add(static_cast<double>(outcome.recovery_steps));
          if (!outcome.target_ok) ++point_result.damaged;
        }
      } else {
        ++point_result.failures;
        if (point_result.first_error.empty()) point_result.first_error = outcome.error;
      }
    }
    result.total_failures += static_cast<std::uint64_t>(point_result.failures);
    result.points.push_back(std::move(point_result));
  }
  result.total_trials =
      static_cast<std::uint64_t>(trials) * static_cast<std::uint64_t>(grid.size());
  return result;
}

CampaignResult run(const CampaignSpec& spec, const RunOptions& options) {
  const auto start = std::chrono::steady_clock::now();

  const std::vector<Point> points = expand_points(spec);
  const int trials = std::max(spec.trials, 0);
  const int threads = resolve_threads(options.threads);
  const int shard_count = std::max(options.shard_count, 1);
  const int shard_index = std::clamp(options.shard_index, 0, shard_count - 1);

  // One pre-assigned slot per trial: workers never contend on output.
  // `filled[slot]` records whether the slot holds a real outcome (resumed
  // or executed); a default-constructed slot must never reach reduction.
  std::vector<std::vector<TrialOutcome>> outcomes(points.size());
  for (auto& slots : outcomes) slots.resize(static_cast<std::size_t>(trials));
  const std::size_t slot_count = points.size() * static_cast<std::size_t>(trials);
  std::vector<char> filled(slot_count, 0);
  const auto slot_of = [trials](std::size_t p, int t) {
    return p * static_cast<std::size_t>(trials) + static_cast<std::size_t>(t);
  };

  CampaignResult result;

  // Resume: fill slots from previously recorded outcomes (any shard's).
  if (options.resume) {
    for (const auto& [key, outcome] : *options.resume) {
      const auto& [p, t] = key;
      if (p >= points.size() || t < 0 || t >= trials) continue;
      outcomes[p][static_cast<std::size_t>(t)] = outcome;
      filled[slot_of(p, t)] = 1;
      ++result.resumed_trials;
    }
  }

  // The task list: every unfilled slot of this run's shard, in grid order.
  std::vector<Task> tasks;
  for (std::size_t p = 0; p < points.size(); ++p) {
    for (int t = 0; t < trials; ++t) {
      if (filled[slot_of(p, t)]) continue;
      if (!in_shard(p, t, trials, shard_index, shard_count)) continue;
      if (options.select && !options.select(p, t)) continue;
      tasks.push_back(Task{p, t});
    }
  }

  // Chunk tasks into jobs. The default targets ~8 jobs per worker so the
  // pool stays balanced even when per-trial cost varies wildly across the
  // grid, while keeping per-job overhead negligible.
  int shard_size = options.shard_size;
  if (shard_size <= 0) {
    shard_size = static_cast<int>(std::clamp<std::uint64_t>(
        tasks.size() / (static_cast<std::uint64_t>(threads) * 8), 1, 64));
  }
  std::vector<Chunk> chunks;
  for (std::size_t begin = 0; begin < tasks.size();
       begin += static_cast<std::size_t>(shard_size)) {
    chunks.push_back(
        Chunk{begin, std::min(begin + static_cast<std::size_t>(shard_size), tasks.size())});
  }

  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> started{0};

  if (options.monitor) {
    options.monitor->begin(static_cast<std::uint64_t>(tasks.size()), threads);
  }

  run_jobs(chunks.size(), threads, [&](std::size_t job) {
    NETCONS_TM_SPAN(job_span, "job", "campaign");
    const auto job_start = std::chrono::steady_clock::now();
    const Chunk& chunk = chunks[job];
    std::uint64_t executed_here = 0;
    for (std::size_t i = chunk.task_begin; i < chunk.task_end; ++i) {
      // The trial cap hands out execution tickets: once `trial_cap` trials
      // have started, the rest of the task list is left unexecuted (and
      // unrecorded), exactly as if the process had been killed — but with
      // records flushed, so a --resume run completes the remainder.
      if (options.trial_cap > 0 &&
          started.fetch_add(1, std::memory_order_relaxed) >= options.trial_cap) {
        break;
      }
      const Task& task = tasks[i];
      const Point& point = points[task.point];
      const std::uint64_t seed =
          SeedStream(point.seed).at(static_cast<std::uint64_t>(task.trial));
      NETCONS_TM_SAMPLED_SPAN(trial_span, "trial", "campaign");
      TrialOutcome outcome = run_unit_trial(*point.unit, point.n, seed,
                                            point.scheduler->make, *point.fault_plan,
                                            point.engine->make);
      outcomes[task.point][static_cast<std::size_t>(task.trial)] = outcome;
      filled[slot_of(task.point, task.trial)] = 1;
      if (options.on_trial) options.on_trial(task.point, task.trial, seed, outcome);
      ++executed_here;
    }
    if (options.monitor && executed_here > 0) {
      options.monitor->record_job(
          executed_here,
          std::chrono::duration<double>(std::chrono::steady_clock::now() - job_start)
              .count());
    }
    if (options.progress && executed_here > 0) {
      const auto done = completed.fetch_add(executed_here, std::memory_order_relaxed) +
                        executed_here;
      options.progress(done, static_cast<std::uint64_t>(tasks.size()));
    }
  });

  if (options.monitor) options.monitor->end();

  std::uint64_t filled_count = 0;
  for (const char f : filled) filled_count += static_cast<std::uint64_t>(f);
  result.executed_trials = filled_count - result.resumed_trials;
  result.complete = filled_count == slot_count;
  result.total_trials =
      static_cast<std::uint64_t>(trials) * static_cast<std::uint64_t>(points.size());

  if (result.complete) {
    // Sequential reduction in (point, trial) order: this is what makes the
    // aggregates independent of thread count, chunking, sharding, and
    // resume history.
    CampaignResult reduced = reduce_outcomes(expand_grid(spec), trials, outcomes);
    result.points = std::move(reduced.points);
    result.total_failures = reduced.total_failures;
  } else {
    // Partial grid: a summary would misrepresent unfilled slots, so only
    // the failure count over filled slots is reported.
    for (std::size_t p = 0; p < points.size(); ++p) {
      for (int t = 0; t < trials; ++t) {
        if (filled[slot_of(p, t)] && !outcomes[p][static_cast<std::size_t>(t)].success) {
          ++result.total_failures;
        }
      }
    }
  }
  result.jobs = chunks.size();
  result.threads = threads;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return result;
}

}  // namespace netcons::campaign
