#include "campaign/json.hpp"

#include <cctype>
#include <cstdio>
#include <cmath>
#include <stdexcept>

namespace netcons::campaign::json {

double Value::as_double() const {
  if (number.empty()) throw std::runtime_error("json: expected number");
  return std::strtod(number.c_str(), nullptr);
}

std::uint64_t Value::as_u64() const {
  if (number.empty()) throw std::runtime_error("json: expected number");
  return std::strtoull(number.c_str(), nullptr, 10);
}

bool Value::as_bool() const {
  if (const auto* b = std::get_if<bool>(&value)) return *b;
  throw std::runtime_error("json: expected boolean");
}

const std::string& Value::as_string() const {
  if (const auto* s = std::get_if<std::string>(&value)) return *s;
  throw std::runtime_error("json: expected string");
}

const Object& Value::as_object() const {
  if (const auto* o = std::get_if<Object>(&value)) return *o;
  throw std::runtime_error("json: expected object");
}

const Array& Value::as_array() const {
  if (const auto* a = std::get_if<Array>(&value)) return *a;
  throw std::runtime_error("json: expected array");
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  [[nodiscard]] Value parse() {
    Value v = value();
    skip_whitespace();
    if (pos_ != text_.size()) throw std::runtime_error("json: trailing content");
    return v;
  }

 private:
  [[nodiscard]] Value value() {
    skip_whitespace();
    if (pos_ >= text_.size()) throw std::runtime_error("json: unexpected end");
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return Value{string(), {}};
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') {
      expect_literal("null");
      return Value{nullptr, {}};
    }
    return number();
  }

  [[nodiscard]] Value object() {
    ++pos_;  // '{'
    Object out;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return Value{std::move(out), {}};
    }
    while (true) {
      skip_whitespace();
      std::string key = string();
      skip_whitespace();
      if (peek() != ':') throw std::runtime_error("json: expected ':'");
      ++pos_;
      out.emplace(std::move(key), value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Value{std::move(out), {}};
      }
      throw std::runtime_error("json: expected ',' or '}'");
    }
  }

  [[nodiscard]] Value array() {
    ++pos_;  // '['
    Array out;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return Value{std::move(out), {}};
    }
    while (true) {
      out.push_back(value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Value{std::move(out), {}};
      }
      throw std::runtime_error("json: expected ',' or ']'");
    }
  }

  [[nodiscard]] std::string string() {
    if (peek() != '"') throw std::runtime_error("json: expected string");
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) throw std::runtime_error("json: bad \\u");
            const unsigned code = static_cast<unsigned>(
                std::stoul(std::string(text_.substr(pos_, 4)), nullptr, 16));
            pos_ += 4;
            if (code > 0x7F) throw std::runtime_error("json: non-ASCII \\u unsupported");
            out += static_cast<char>(code);
            break;
          }
          default: throw std::runtime_error("json: bad escape");
        }
      } else {
        out += c;
      }
    }
    throw std::runtime_error("json: unterminated string");
  }

  [[nodiscard]] Value boolean() {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return Value{true, {}};
    }
    expect_literal("false");
    return Value{false, {}};
  }

  [[nodiscard]] Value number() {
    const std::size_t start = pos_;
    auto is_number_char = [](char c) {
      return std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+' ||
             c == '.' || c == 'e' || c == 'E';
    };
    while (pos_ < text_.size() && is_number_char(text_[pos_])) ++pos_;
    if (pos_ == start) throw std::runtime_error("json: unexpected character");
    Value v{nullptr, std::string(text_.substr(start, pos_ - start))};
    return v;
  }

  void expect_literal(const char* literal) {
    const std::size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) != 0) {
      throw std::runtime_error("json: unexpected token");
    }
    pos_ += len;
  }

  [[nodiscard]] char peek() const {
    if (pos_ >= text_.size()) throw std::runtime_error("json: unexpected end");
    return text_[pos_];
  }

  void skip_whitespace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse(); }

const Value& field(const Object& object, const std::string& key) {
  const auto it = object.find(key);
  if (it == object.end()) throw std::runtime_error("json: missing field '" + key + "'");
  return it->second;
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double value) {
  if (!std::isfinite(value)) {  // JSON has no inf/nan; campaigns never emit them.
    out += "0";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out += buf;
}

}  // namespace netcons::campaign::json
