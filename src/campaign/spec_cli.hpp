// Shared campaign-spec CLI vocabulary: every tool that declares a campaign
// grid from flags (netcons_campaign, netcons_coord, netcons_worker) parses
// the same --protocols/--processes/--ns/... flag set through this one
// implementation. That sameness is load-bearing for the fabric: the
// coordinator and its workers independently build CampaignSpec from their
// command lines, and the fingerprint handshake (hello / header_mismatch)
// only ever compares what these functions produced.
#pragma once

#include "campaign/campaign.hpp"
#include "campaign/registry.hpp"

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace netcons::campaign {

/// The raw spec flags, before registry lookups.
struct SpecCli {
  std::vector<std::string> protocols;
  std::vector<std::string> processes;
  std::vector<std::string> schedulers;
  std::vector<std::string> faults;
  std::vector<std::string> engines;
  std::vector<int> ns;
  int trials = 20;
  std::uint64_t seed = 1;
  ProtocolParams params;
};

/// Strict base-10 integer parse: the whole token must be a number in
/// range (no silent truncation or saturation). Shared by the tool CLIs.
[[nodiscard]] std::optional<long long> parse_ll(const std::string& text);
[[nodiscard]] std::optional<int> parse_i(const std::string& text);

/// Split "a,b,c" into tokens, dropping empties.
[[nodiscard]] std::vector<std::string> split_csv(const std::string& text);

/// Re-join CSV items that are `key=value` continuations of a parameterized
/// spec onto the previous item with the canonical ':' separator, so
/// "proximity:alpha=2,r=0.1,uniform" parses as the two specs a human
/// reads: {"proximity:alpha=2:r=0.1", "uniform"}.
[[nodiscard]] std::vector<std::string> join_spec_params(std::vector<std::string> items);

/// Try to consume argv[i] as a spec flag (advancing i past its value).
/// Returns 1 when consumed, 0 when argv[i] is not a spec flag, -1 on a
/// malformed value (diagnostic already printed to stderr).
[[nodiscard]] int consume_spec_flag(SpecCli& cli, int argc, char** argv, int& i);

/// The spec-flag lines of a usage/--help message (each line indented two
/// spaces and newline-terminated).
[[nodiscard]] std::string spec_usage();

/// Print every registered name the spec flags accept (protocols,
/// processes, schedulers, engines, fault-plan examples + grammar) — the
/// body of --list, shared so every spec-declaring tool can offer it.
void print_registry(std::ostream& out);

/// Resolve names against the registries ("all" expands to every registered
/// protocol/process) and assemble the CampaignSpec. nullopt on unknown
/// names or an empty grid, with a diagnostic on stderr naming what IS
/// registered.
[[nodiscard]] std::optional<CampaignSpec> build_spec(const SpecCli& cli);

}  // namespace netcons::campaign
