// Structured export of campaign results.
//
// JSON is the machine-readable archive format (one object per grid point,
// doubles printed with max_digits10 so values round-trip bit-exactly); CSV
// is the flat form for spreadsheets/plotting. parse_json reads back what
// to_json wrote, so a campaign summary can be archived and reloaded without
// re-running (tested as a bit-exact round trip).
//
// Both documents contain only the campaign's deterministic content -- the
// grid points and their aggregates -- never execution details (thread
// count, job count, wall time). Two runs of the same spec therefore emit
// byte-identical files regardless of --threads, which CI enforces with cmp.
#pragma once

#include "campaign/campaign.hpp"

#include <cstddef>
#include <string>
#include <vector>

namespace netcons::campaign {

/// The exported (summary) view of one grid point.
struct PointSummary {
  std::string unit;
  std::string scheduler;
  std::string faults = "none";
  std::string engine = "naive";
  int n = 0;
  int trials = 0;
  int failures = 0;
  int damaged = 0;        ///< Re-stabilized faulted trials that missed the target.
  std::uint64_t seed = 0;
  std::size_t count = 0;  ///< Successful trials aggregated below.
  double mean = 0.0;
  double variance = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double mean_steps_executed = 0.0;
  // Recovery aggregates (all zero for fault-free points).
  double recovery_mean = 0.0;
  double recovery_median = 0.0;
  double mean_faults_injected = 0.0;
  double mean_edges_deleted = 0.0;
  double mean_edges_repaired = 0.0;
  double mean_edges_residual = 0.0;

  [[nodiscard]] bool operator==(const PointSummary&) const = default;
};

[[nodiscard]] PointSummary summarize(const PointResult& point);

/// RFC-4180 quoting for CSV fields that may contain separators — shared by
/// every CSV-emitting surface (summary sink, netcons_report) so quoting
/// policy cannot drift between tools.
[[nodiscard]] std::string csv_field(const std::string& s);

/// Whole-campaign JSON document: metadata + "points" array.
[[nodiscard]] std::string to_json(const CampaignResult& result);

/// Header + one row per point.
[[nodiscard]] std::string to_csv(const CampaignResult& result);

/// Parse a document produced by to_json back into point summaries.
/// Throws std::runtime_error on malformed input.
[[nodiscard]] std::vector<PointSummary> parse_json(const std::string& json);

}  // namespace netcons::campaign
