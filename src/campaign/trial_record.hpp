// Per-trial persistence for campaigns: the JSONL record stream that makes
// runs crash-safe, resumable, and shardable across machines.
//
// A record file is one header line (the campaign's spec fingerprint: base
// seed, trials per point, and the expanded grid) followed by one line per
// completed trial. Trials carry their grid position, so record order is
// irrelevant — workers append as they finish, k shard machines write k
// disjoint files, and netcons_merge folds any set of files for the same
// fingerprint back into the exact summary a single-process run produces.
//
// Crash model: the sink flushes after every line, so a killed run loses at
// most the line being written. Loaders therefore discard an unterminated
// final line (the partial write) and redo that trial; a malformed line
// anywhere *else* in a file is corruption and a hard error.
#pragma once

#include "campaign/campaign.hpp"

#include <cstdint>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace netcons::campaign {

/// The spec fingerprint written at the head of every record file. Two
/// record files interoperate (merge, resume) iff their headers are equal.
struct CampaignHeader {
  std::uint64_t base_seed = 1;
  int trials = 0;
  std::vector<GridPoint> points;

  [[nodiscard]] static CampaignHeader describe(const CampaignSpec& spec);
  [[nodiscard]] bool operator==(const CampaignHeader&) const = default;
};

/// One completed trial, as streamed to disk.
struct TrialRecord {
  std::size_t point = 0;  ///< Grid-point index (into CampaignHeader::points).
  int trial = 0;          ///< Trial index within the point.
  std::uint64_t seed = 0; ///< The position-derived per-trial seed.
  TrialOutcome outcome;
};

/// Serialize to one JSONL line (no trailing newline).
[[nodiscard]] std::string header_line(const CampaignHeader& header);
[[nodiscard]] std::string record_line(const TrialRecord& record);

/// Parse one line (a view, so loaders can slice a whole-file buffer
/// without per-line copies). Throws std::runtime_error on malformed input.
[[nodiscard]] CampaignHeader parse_header_line(std::string_view line);
[[nodiscard]] TrialRecord parse_record_line(std::string_view line);

/// Empty string when the headers match; otherwise a human-readable
/// description naming the first differing field (e.g. "points[2].n:
/// records say 16, campaign says 32").
[[nodiscard]] std::string header_mismatch(const CampaignHeader& expected,
                                          const CampaignHeader& found);

/// Record file name for shard `shard_index` of `shard_count`, generation
/// `generation` (how many earlier invocations wrote records for this shard
/// into the directory). Zero-padded so lexicographic order equals scan
/// order: later generations sort after earlier ones and last-wins
/// deduplication picks up the freshest record.
[[nodiscard]] std::string record_file_name(int shard_index, int shard_count, int generation);

/// First generation number for which record_file_name does not yet exist
/// in `dir` (a resumed invocation writes a fresh file rather than
/// appending behind a possibly-truncated final line).
[[nodiscard]] int next_generation(const std::string& dir, int shard_index, int shard_count);

/// Streaming JSONL writer: header on construction, then one line per
/// record, flushed per line. Thread-safe (the campaign engine calls write
/// from its workers). Throws std::runtime_error if the file cannot be
/// opened or a write fails.
class TrialRecordSink {
 public:
  TrialRecordSink(const std::string& path, const CampaignHeader& header);

  void write(const TrialRecord& record);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::ofstream file_;
  std::mutex mutex_;
};

/// Accumulated result of scanning record files.
struct LoadedRecords {
  /// Fingerprint of the first file scanned; every later file must match.
  std::optional<CampaignHeader> header;
  /// Last-wins per (point, trial) across scan order (files sorted by name,
  /// lines in file order).
  OutcomeMap outcomes;
  std::size_t files = 0;
  std::size_t records = 0;            ///< Lines parsed (including duplicates).
  std::size_t duplicates = 0;         ///< Records that overwrote an earlier one.
  std::size_t discarded_partial = 0;  ///< Unterminated final lines dropped.
};

/// Scan `path` — a single record file, or a directory whose *.jsonl files
/// are read in sorted name order — into `into`. When `into.header` is
/// already set (by a previous call, or pre-seeded with
/// CampaignHeader::describe for resume), every file's header must match it:
/// a mismatch is a hard error (std::runtime_error) naming the differing
/// field. Record indices outside the header's grid are hard errors too.
void load_records(const std::string& path, LoadedRecords& into);

}  // namespace netcons::campaign
