// Per-trial persistence for campaigns: the JSONL record stream that makes
// runs crash-safe, resumable, and shardable across machines.
//
// A record file is one header line (the campaign's spec fingerprint: base
// seed, trials per point, and the expanded grid) followed by one line per
// completed trial. Trials carry their grid position, so record order is
// irrelevant — workers append as they finish, k shard machines write k
// disjoint files, and netcons_merge folds any set of files for the same
// fingerprint back into the exact summary a single-process run produces.
//
// Crash model: the sink flushes after every line, so a killed run loses at
// most the line being written. Loaders therefore discard an unterminated
// final line (the partial write) and redo that trial; a malformed line
// anywhere *else* in a file is corruption and a hard error.
#pragma once

#include "campaign/campaign.hpp"

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace netcons::campaign {

/// The spec fingerprint written at the head of every record file. Two
/// record files interoperate (merge, resume) iff their headers are equal.
struct CampaignHeader {
  std::uint64_t base_seed = 1;
  int trials = 0;
  std::vector<GridPoint> points;

  [[nodiscard]] static CampaignHeader describe(const CampaignSpec& spec);
  [[nodiscard]] bool operator==(const CampaignHeader&) const = default;
};

/// One completed trial, as streamed to disk.
struct TrialRecord {
  std::size_t point = 0;  ///< Grid-point index (into CampaignHeader::points).
  int trial = 0;          ///< Trial index within the point.
  std::uint64_t seed = 0; ///< The position-derived per-trial seed.
  TrialOutcome outcome;
};

/// Serialize to one JSONL line (no trailing newline).
[[nodiscard]] std::string header_line(const CampaignHeader& header);
[[nodiscard]] std::string record_line(const TrialRecord& record);

/// Parse one line (a view, so loaders can slice a whole-file buffer
/// without per-line copies). Throws std::runtime_error on malformed input.
[[nodiscard]] CampaignHeader parse_header_line(std::string_view line);
[[nodiscard]] TrialRecord parse_record_line(std::string_view line);

/// Empty string when the headers match; otherwise a human-readable
/// description naming the first differing field (e.g. "points[2].n:
/// records say 16, campaign says 32").
[[nodiscard]] std::string header_mismatch(const CampaignHeader& expected,
                                          const CampaignHeader& found);

/// Record file name for shard `shard_index` of `shard_count`, generation
/// `generation` (how many earlier invocations wrote records for this shard
/// into the directory). Zero-padded so lexicographic order equals scan
/// order: later generations sort after earlier ones and last-wins
/// deduplication picks up the freshest record.
[[nodiscard]] std::string record_file_name(int shard_index, int shard_count, int generation);

/// First generation number for which record_file_name does not yet exist
/// in `dir` (a resumed invocation writes a fresh file rather than
/// appending behind a possibly-truncated final line).
[[nodiscard]] int next_generation(const std::string& dir, int shard_index, int shard_count);

/// Streaming JSONL writer: header on construction, then one line per
/// record, flushed per line. Thread-safe (the campaign engine calls write
/// from its workers). Throws std::runtime_error if the file cannot be
/// opened or a write fails.
class TrialRecordSink {
 public:
  TrialRecordSink(const std::string& path, const CampaignHeader& header);

  void write(const TrialRecord& record);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::ofstream file_;
  std::mutex mutex_;
};

/// Pull-based streaming reader over a set of record files. Inputs are
/// files and/or directories; a directory contributes its *.jsonl files in
/// sorted name order (== generation order, record_file_name zero-pads).
/// Every file's header must carry the same spec fingerprint; a mismatch is
/// a hard error naming the differing field. Records stream one line at a
/// time, so peak memory is one line — never the record set — which is what
/// lets netcons_report walk million-trial streams. Deduplication is the
/// caller's job (the reader reports scan order; last-wins is a property of
/// how the caller folds it).
class TrialRecordReader {
 public:
  explicit TrialRecordReader(const std::vector<std::string>& inputs);

  /// Pre-seed the expected fingerprint (resume, or validating records
  /// against a live spec): every file header must then match `header`.
  void expect_header(const CampaignHeader& header);

  /// Next record in scan order; std::nullopt at end of stream. Throws
  /// std::runtime_error on unreadable files, malformed headers/records,
  /// header mismatches, and records outside the campaign grid.
  [[nodiscard]] std::optional<TrialRecord> next();

  /// Fingerprint of the first non-empty file; unset until one was read.
  [[nodiscard]] const std::optional<CampaignHeader>& header() const noexcept {
    return header_;
  }
  [[nodiscard]] std::size_t files() const noexcept { return files_; }
  [[nodiscard]] std::size_t records() const noexcept { return records_; }
  [[nodiscard]] std::size_t discarded_partial() const noexcept { return discarded_partial_; }

 private:
  /// True when a line was produced; false at end of the current file.
  bool next_line(std::string& line);

  std::vector<std::string> paths_;
  std::size_t path_index_ = 0;
  std::unique_ptr<std::ifstream> file_;
  std::size_t line_number_ = 0;
  std::optional<CampaignHeader> header_;
  std::size_t files_ = 0;
  std::size_t records_ = 0;
  std::size_t discarded_partial_ = 0;
};

/// Accumulated result of scanning record files.
struct LoadedRecords {
  /// Fingerprint of the first file scanned; every later file must match.
  std::optional<CampaignHeader> header;
  /// Last-wins per (point, trial) across scan order (files sorted by name,
  /// lines in file order).
  OutcomeMap outcomes;
  std::size_t files = 0;
  std::size_t records = 0;            ///< Lines parsed (including duplicates).
  std::size_t duplicates = 0;         ///< Records that overwrote an earlier one.
  std::size_t discarded_partial = 0;  ///< Unterminated final lines dropped.
};

/// Scan `path` — a single record file, or a directory whose *.jsonl files
/// are read in sorted name order — into `into`. When `into.header` is
/// already set (by a previous call, or pre-seeded with
/// CampaignHeader::describe for resume), every file's header must match it:
/// a mismatch is a hard error (std::runtime_error) naming the differing
/// field. Record indices outside the header's grid are hard errors too.
void load_records(const std::string& path, LoadedRecords& into);

/// The one resume-preload path shared by every surface that restarts a
/// campaign from its record directory (netcons_campaign --resume,
/// netcons_coord --resume, the serve-layer Scheduler): scan `dir` validated
/// against `header` — a spec mismatch is a hard error naming the differing
/// field, never a silent reuse of a different campaign's trials — and
/// return the last-wins outcome map. A missing directory resumes nothing
/// (empty map), so first runs and restarts share one call site.
[[nodiscard]] OutcomeMap load_resume_outcomes(const std::string& dir,
                                              const CampaignHeader& header);

/// What a compaction pass did (counts are over the whole input scan).
struct CompactionResult {
  CampaignHeader header;
  std::size_t files = 0;              ///< Input files scanned.
  std::size_t records = 0;            ///< Input lines parsed.
  std::size_t duplicates = 0;         ///< Records superseded by a later one.
  std::size_t discarded_partial = 0;  ///< Unterminated final lines dropped.
  std::size_t written = 0;            ///< Deduplicated records written out.
};

/// Fold any set of record files/directories — shard files, resume
/// generations, earlier compactions — into one deduplicated stream at
/// `output_path`: header, then every winning record (last-wins in scan
/// order) sorted by (point, trial). The order is canonical, so compacting
/// the same record set always yields the same bytes and compacting a
/// compacted file reproduces it exactly (a fixed point). Partial streams
/// compact fine; completeness is a merge/report concern, not a compaction
/// one. With `expected`, every input header must match it (resume-style
/// validation). Throws std::runtime_error on empty input sets, mismatched
/// headers, corruption, or write failure.
CompactionResult compact_records(const std::vector<std::string>& inputs,
                                 const std::string& output_path,
                                 const CampaignHeader* expected = nullptr);

}  // namespace netcons::campaign
