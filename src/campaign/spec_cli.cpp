#include "campaign/spec_cli.hpp"

#include "faults/fault_plan.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <sstream>
#include <utility>

namespace netcons::campaign {

namespace {

/// "a, b, c" -- so an unknown-name error can show what IS registered.
std::string joined(const std::vector<std::string>& names) {
  std::string out;
  for (const auto& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

}  // namespace

std::optional<long long> parse_ll(const std::string& text) {
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) return std::nullopt;
  return value;
}

std::optional<int> parse_i(const std::string& text) {
  const auto value = parse_ll(text);
  if (!value || *value < std::numeric_limits<int>::min() ||
      *value > std::numeric_limits<int>::max()) {
    return std::nullopt;
  }
  return static_cast<int>(*value);
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::vector<std::string> join_spec_params(std::vector<std::string> items) {
  // A bare `key=value` item after a CSV split is a continuation of the
  // previous item's spec -- "proximity:alpha=2,r=0.1" reads naturally but
  // splits at the comma -- so re-join it with the canonical ':' separator.
  std::vector<std::string> out;
  for (std::string& item : items) {
    const std::size_t eq = item.find('=');
    bool continuation = !out.empty() && eq != std::string::npos && eq > 0;
    if (continuation) {
      for (std::size_t i = 0; i < eq; ++i) {
        const char c = item[i];
        if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_') {
          continuation = false;
          break;
        }
      }
      if (continuation && std::isdigit(static_cast<unsigned char>(item[0])) != 0) {
        continuation = false;
      }
    }
    if (continuation) {
      out.back() += ":" + item;
    } else {
      out.push_back(std::move(item));
    }
  }
  return out;
}

int consume_spec_flag(SpecCli& cli, int argc, char** argv, int& i) {
  const std::string arg = argv[i];
  const auto next = [&]() -> const char* { return (i + 1 < argc) ? argv[++i] : nullptr; };
  if (arg == "--protocols" || arg == "--processes" || arg == "--schedulers" ||
      arg == "--scheduler" || arg == "--faults" || arg == "--engine" || arg == "--ns") {
    const char* v = next();
    if (!v) {
      std::cerr << arg << " expects a value\n";
      return -1;
    }
    if (arg == "--protocols") cli.protocols = split_csv(v);
    if (arg == "--processes") cli.processes = split_csv(v);
    if (arg == "--schedulers" || arg == "--scheduler") {
      cli.schedulers = join_spec_params(split_csv(v));
    }
    if (arg == "--faults") cli.faults = split_csv(v);
    if (arg == "--engine") cli.engines = split_csv(v);
    if (arg == "--ns") {
      for (const std::string& item : split_csv(v)) {
        const auto n = parse_i(item);
        if (!n || *n <= 0) {
          std::cerr << "--ns expects positive integers, got '" << item << "'\n";
          return -1;
        }
        cli.ns.push_back(*n);
      }
    }
    return 1;
  }
  if (arg == "--trials" || arg == "--seed" || arg == "--k" || arg == "--c" || arg == "--d") {
    const char* v = next();
    if (!v) {
      std::cerr << arg << " expects a value\n";
      return -1;
    }
    if (arg == "--seed") {
      // Full 64-bit range (strtoll would reject seeds above 2^63 - 1).
      char* end = nullptr;
      errno = 0;
      const std::uint64_t seed = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0' || errno == ERANGE) {
        std::cerr << "--seed expects an unsigned 64-bit integer, got '" << v << "'\n";
        return -1;
      }
      cli.seed = seed;
      return 1;
    }
    const auto value = parse_i(v);
    if (!value) {
      std::cerr << arg << " expects an int-range integer, got '" << v << "'\n";
      return -1;
    }
    if (arg == "--trials") cli.trials = *value;
    if (arg == "--k") cli.params.k = *value;
    if (arg == "--c") cli.params.c = *value;
    if (arg == "--d") cli.params.d = *value;
    return 1;
  }
  return 0;
}

std::string spec_usage() {
  return "  --protocols a,b|all     constructor protocols to run (see --list)\n"
         "  --processes a,b|all     Section 3.3 processes to run\n"
         "  --ns N1,N2,...          population sizes (required)\n"
         "  --trials T              trials per grid point (default 20)\n"
         "  --seed S                base seed (default 1)\n"
         "  --schedulers s1,s2      scheduler axis (default uniform); also --scheduler;\n"
         "                          proximity takes params: proximity:alpha=2,r=0.1,layout=grid\n"
         "  --faults none,crash:k=1,...  fault-plan axis (default none)\n"
         "  --engine naive,census,...|list  execution-engine axis (default naive)\n"
         "  --k K  --c C  --d D     protocol-family parameters\n";
}

void print_registry(std::ostream& out) {
  out << "protocols:\n";
  for (const auto& name : protocol_names()) out << "  " << name << '\n';
  out << "processes:\n";
  for (const auto& name : process_names()) out << "  " << name << '\n';
  out << "schedulers:\n";
  for (const auto& name : scheduler_names()) out << "  " << name << '\n';
  out << "  (proximity takes params: proximity[:alpha=A][:r=R][:layout=L], "
         "layout in {uniform, clustered, grid})\n";
  out << "engines:\n";
  for (const auto& name : engine_names()) out << "  " << name << '\n';
  out << "fault plans (examples; see the grammar for the full space):\n";
  for (const auto& name : fault_plan_examples()) out << "  " << name << '\n';
  out << faults::fault_plan_grammar() << '\n';
}

std::optional<CampaignSpec> build_spec(const SpecCli& cli) {
  CampaignSpec spec;
  spec.ns = cli.ns;
  spec.trials = cli.trials;
  spec.base_seed = cli.seed;

  const std::vector<std::string> protocol_list =
      (cli.protocols.size() == 1 && cli.protocols[0] == "all") ? protocol_names()
                                                               : cli.protocols;
  for (const std::string& name : protocol_list) {
    auto protocol = make_protocol(name, cli.params);
    if (!protocol) {
      std::cerr << "unknown protocol '" << name
                << "'; registered protocols: " << joined(protocol_names()) << "\n";
      return std::nullopt;
    }
    spec.units.push_back(Unit::protocol(name, std::move(*protocol)));
  }
  const std::vector<std::string> process_list =
      (cli.processes.size() == 1 && cli.processes[0] == "all") ? process_names()
                                                               : cli.processes;
  for (const std::string& name : process_list) {
    auto process = make_process(name);
    if (!process) {
      std::cerr << "unknown process '" << name
                << "'; registered processes: " << joined(process_names()) << "\n";
      return std::nullopt;
    }
    // Name the grid point by the slug the user typed (and --list prints),
    // so the exported `unit` column matches the input.
    spec.units.push_back(Unit::process(name, std::move(*process)));
  }
  for (const std::string& name : cli.schedulers) {
    std::string error;
    auto scheduler = make_scheduler(name, &error);
    if (!scheduler) {
      if (!error.empty()) {
        std::cerr << error << "\n";
      } else {
        std::cerr << "unknown scheduler '" << name
                  << "'; registered schedulers: " << joined(scheduler_names()) << "\n";
      }
      return std::nullopt;
    }
    spec.schedulers.push_back(std::move(*scheduler));
  }
  for (const std::string& name : cli.faults) {
    std::string error;
    auto plan = make_fault_plan(name, &error);
    if (!plan) {
      std::cerr << error << "\n";
      return std::nullopt;
    }
    spec.faults.push_back(std::move(*plan));
  }
  for (const std::string& name : cli.engines) {
    auto engine = make_engine(name);
    if (!engine) {
      std::cerr << "unknown engine '" << name
                << "'; registered engines: " << joined(engine_names()) << "\n";
      return std::nullopt;
    }
    spec.engines.push_back(std::move(*engine));
  }

  if (spec.units.empty() || spec.ns.empty()) {
    std::cerr << "nothing to run: need --protocols and/or --processes, plus --ns\n";
    return std::nullopt;
  }
  return spec;
}

}  // namespace netcons::campaign
