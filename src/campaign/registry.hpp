// Name -> spec registries shared by the CLI tools (netcons_run,
// netcons_campaign) and by campaign declarations in benches/tests. One
// place to register a new protocol, process, or scheduler and every
// workload surface picks it up.
#pragma once

#include "campaign/campaign.hpp"

#include <optional>
#include <string>
#include <vector>

namespace netcons::campaign {

/// Parameters for the parameterized protocol families.
struct ProtocolParams {
  int k = 2;  ///< kRC replica count (>= 2).
  int c = 3;  ///< c-Cliques clique order (>= 3).
  int d = 3;  ///< Degree-doubling target degree.
};

/// Registered protocol names, in listing order. Excludes Graph-Replication,
/// whose spec depends on the population size (see netcons_run's
/// `replication-ring`).
[[nodiscard]] const std::vector<std::string>& protocol_names();

/// Spec for a registered protocol name; nullopt if unknown.
[[nodiscard]] std::optional<ProtocolSpec> make_protocol(const std::string& name,
                                                        const ProtocolParams& params = {});

/// Registered Section 3.3 process names (Table 1 order).
[[nodiscard]] const std::vector<std::string>& process_names();

[[nodiscard]] std::optional<ProcessSpec> make_process(const std::string& name);

/// Registered scheduler names ("uniform", "permutation", "stale-biased",
/// "proximity"). Like the fault axis, "proximity" is a spec family, not a
/// single name: `proximity[:alpha=A][:r=R][:layout=L]` with layout one of
/// uniform / clustered / grid (see sched/proximity.hpp).
[[nodiscard]] const std::vector<std::string>& scheduler_names();

/// Scheduler option (name + factory) for a registered name or spec;
/// nullopt if unknown or malformed (the parser's message lands in `error`
/// when non-null). "uniform" yields a null factory (the simulator
/// default). Proximity specs canonicalize -- every omitted parameter is
/// filled with its default in fixed alpha, r, layout order -- so the
/// exported `scheduler` column is stable no matter how the spec was typed.
[[nodiscard]] std::optional<SchedulerOption> make_scheduler(const std::string& name,
                                                            std::string* error = nullptr);

/// Registered execution-engine names ("naive", "census"); see
/// core/engine.hpp for the contract each implements.
[[nodiscard]] const std::vector<std::string>& engine_names();

/// Engine option (name + factory) for a registered name; nullopt if
/// unknown. "naive" yields a null factory (the reference NaiveEngine).
[[nodiscard]] std::optional<EngineOption> make_engine(const std::string& name);

/// Canonical example fault-plan specs for --list. Unlike the other axes the
/// fault axis is open-ended: any spec matching the grammar of
/// faults/fault_plan.hpp is a valid value.
[[nodiscard]] const std::vector<std::string>& fault_plan_examples();

/// Parse a fault-plan axis value ("none", "crash:k=2", ...). On bad grammar
/// returns nullopt and, when `error` is non-null, stores the parser's
/// message (which quotes the grammar) there.
[[nodiscard]] std::optional<faults::FaultPlan> make_fault_plan(const std::string& spec,
                                                               std::string* error = nullptr);

}  // namespace netcons::campaign
