#include "campaign/result_sink.hpp"

#include "campaign/json.hpp"

#include <stdexcept>

namespace netcons::campaign {

namespace {

void append_point(std::string& out, const PointSummary& p) {
  out += "    {\"unit\": ";
  json::append_escaped(out, p.unit);
  out += ", \"scheduler\": ";
  json::append_escaped(out, p.scheduler);
  out += ", \"faults\": ";
  json::append_escaped(out, p.faults);
  out += ", \"engine\": ";
  json::append_escaped(out, p.engine);
  out += ", \"n\": " + std::to_string(p.n);
  out += ", \"trials\": " + std::to_string(p.trials);
  out += ", \"failures\": " + std::to_string(p.failures);
  out += ", \"damaged\": " + std::to_string(p.damaged);
  out += ", \"seed\": " + std::to_string(p.seed);
  out += ", \"count\": " + std::to_string(p.count);
  out += ", \"mean\": ";
  json::append_double(out, p.mean);
  out += ", \"variance\": ";
  json::append_double(out, p.variance);
  out += ", \"min\": ";
  json::append_double(out, p.min);
  out += ", \"max\": ";
  json::append_double(out, p.max);
  out += ", \"median\": ";
  json::append_double(out, p.median);
  out += ", \"mean_steps_executed\": ";
  json::append_double(out, p.mean_steps_executed);
  out += ", \"recovery_mean\": ";
  json::append_double(out, p.recovery_mean);
  out += ", \"recovery_median\": ";
  json::append_double(out, p.recovery_median);
  out += ", \"mean_faults_injected\": ";
  json::append_double(out, p.mean_faults_injected);
  out += ", \"mean_edges_deleted\": ";
  json::append_double(out, p.mean_edges_deleted);
  out += ", \"mean_edges_repaired\": ";
  json::append_double(out, p.mean_edges_repaired);
  out += ", \"mean_edges_residual\": ";
  json::append_double(out, p.mean_edges_residual);
  out += "}";
}

}  // namespace

PointSummary summarize(const PointResult& point) {
  PointSummary s;
  s.unit = point.unit;
  s.scheduler = point.scheduler;
  s.faults = point.faults;
  s.engine = point.engine;
  s.n = point.n;
  s.trials = point.trials;
  s.failures = point.failures;
  s.damaged = point.damaged;
  s.seed = point.seed;
  s.count = point.convergence_steps.count();
  s.mean = point.convergence_steps.mean();
  s.variance = point.convergence_steps.variance();
  s.min = point.convergence_steps.min();
  s.max = point.convergence_steps.max();
  s.median = point.convergence_steps.median();
  s.mean_steps_executed = point.steps_executed.mean();
  s.recovery_mean = point.recovery_steps.mean();
  s.recovery_median = point.recovery_steps.median();
  s.mean_faults_injected = point.faults_injected.mean();
  s.mean_edges_deleted = point.edges_deleted.mean();
  s.mean_edges_repaired = point.edges_repaired.mean();
  s.mean_edges_residual = point.edges_residual.mean();
  return s;
}

std::string to_json(const CampaignResult& result) {
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"netcons-campaign-v3\",\n";
  out += "  \"total_trials\": " + std::to_string(result.total_trials) + ",\n";
  out += "  \"total_failures\": " + std::to_string(result.total_failures) + ",\n";
  out += "  \"points\": [\n";
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    append_point(out, summarize(result.points[i]));
    out += (i + 1 < result.points.size()) ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string to_csv(const CampaignResult& result) {
  std::string out =
      "unit,scheduler,faults,engine,n,trials,failures,damaged,seed,count,mean,variance,min,"
      "max,"
      "median,mean_steps_executed,recovery_mean,recovery_median,mean_faults_injected,"
      "mean_edges_deleted,mean_edges_repaired,mean_edges_residual\n";
  for (const PointResult& point : result.points) {
    const PointSummary s = summarize(point);
    out += csv_field(s.unit) + ',' + csv_field(s.scheduler) + ',' + csv_field(s.faults) + ',' +
           csv_field(s.engine) + ',' + std::to_string(s.n) + ',' + std::to_string(s.trials) +
           ',' +
           std::to_string(s.failures) + ',' + std::to_string(s.damaged) + ',' +
           std::to_string(s.seed) + ',' + std::to_string(s.count) + ',';
    const double columns[] = {s.mean,
                              s.variance,
                              s.min,
                              s.max,
                              s.median,
                              s.mean_steps_executed,
                              s.recovery_mean,
                              s.recovery_median,
                              s.mean_faults_injected,
                              s.mean_edges_deleted,
                              s.mean_edges_repaired,
                              s.mean_edges_residual};
    for (std::size_t i = 0; i < std::size(columns); ++i) {
      if (i != 0) out += ',';
      json::append_double(out, columns[i]);
    }
    out += '\n';
  }
  return out;
}

std::vector<PointSummary> parse_json(const std::string& text) {
  const json::Value document = json::parse(text);
  const json::Object& root = document.as_object();
  const json::Array& points = json::field(root, "points").as_array();

  std::vector<PointSummary> out;
  out.reserve(points.size());
  for (const json::Value& entry : points) {
    const json::Object& object = entry.as_object();
    PointSummary s;
    s.unit = json::field(object, "unit").as_string();
    s.scheduler = json::field(object, "scheduler").as_string();
    s.faults = json::field(object, "faults").as_string();
    s.engine = json::field(object, "engine").as_string();
    s.n = static_cast<int>(json::field(object, "n").as_u64());
    s.trials = static_cast<int>(json::field(object, "trials").as_u64());
    s.failures = static_cast<int>(json::field(object, "failures").as_u64());
    s.damaged = static_cast<int>(json::field(object, "damaged").as_u64());
    s.seed = json::field(object, "seed").as_u64();
    s.count = static_cast<std::size_t>(json::field(object, "count").as_u64());
    s.mean = json::field(object, "mean").as_double();
    s.variance = json::field(object, "variance").as_double();
    s.min = json::field(object, "min").as_double();
    s.max = json::field(object, "max").as_double();
    s.median = json::field(object, "median").as_double();
    s.mean_steps_executed = json::field(object, "mean_steps_executed").as_double();
    s.recovery_mean = json::field(object, "recovery_mean").as_double();
    s.recovery_median = json::field(object, "recovery_median").as_double();
    s.mean_faults_injected = json::field(object, "mean_faults_injected").as_double();
    s.mean_edges_deleted = json::field(object, "mean_edges_deleted").as_double();
    s.mean_edges_repaired = json::field(object, "mean_edges_repaired").as_double();
    s.mean_edges_residual = json::field(object, "mean_edges_residual").as_double();
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace netcons::campaign
