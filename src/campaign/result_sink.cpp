#include "campaign/result_sink.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <stdexcept>
#include <variant>

namespace netcons::campaign {

namespace {

// ----------------------------------------------------------- serialization

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Shortest representation that parses back to the same double (%.17g is
/// always sufficient for IEEE binary64).
void append_double(std::string& out, double value) {
  if (!std::isfinite(value)) {  // JSON has no inf/nan; campaigns never emit them.
    out += "0";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out += buf;
}

void append_point(std::string& out, const PointSummary& p) {
  out += "    {\"unit\": ";
  append_escaped(out, p.unit);
  out += ", \"scheduler\": ";
  append_escaped(out, p.scheduler);
  out += ", \"faults\": ";
  append_escaped(out, p.faults);
  out += ", \"n\": " + std::to_string(p.n);
  out += ", \"trials\": " + std::to_string(p.trials);
  out += ", \"failures\": " + std::to_string(p.failures);
  out += ", \"damaged\": " + std::to_string(p.damaged);
  out += ", \"seed\": " + std::to_string(p.seed);
  out += ", \"count\": " + std::to_string(p.count);
  out += ", \"mean\": ";
  append_double(out, p.mean);
  out += ", \"variance\": ";
  append_double(out, p.variance);
  out += ", \"min\": ";
  append_double(out, p.min);
  out += ", \"max\": ";
  append_double(out, p.max);
  out += ", \"median\": ";
  append_double(out, p.median);
  out += ", \"mean_steps_executed\": ";
  append_double(out, p.mean_steps_executed);
  out += ", \"recovery_mean\": ";
  append_double(out, p.recovery_mean);
  out += ", \"recovery_median\": ";
  append_double(out, p.recovery_median);
  out += ", \"mean_faults_injected\": ";
  append_double(out, p.mean_faults_injected);
  out += ", \"mean_edges_deleted\": ";
  append_double(out, p.mean_edges_deleted);
  out += ", \"mean_edges_repaired\": ";
  append_double(out, p.mean_edges_repaired);
  out += ", \"mean_edges_residual\": ";
  append_double(out, p.mean_edges_residual);
  out += "}";
}

// ------------------------------------------------------- minimal JSON read

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  // Numbers are kept as the raw token so integers up to 2^64-1 and doubles
  // both parse losslessly at extraction time.
  std::variant<std::nullptr_t, bool, std::string, JsonObject, JsonArray> value;
  std::string number;  ///< Non-empty iff the value is a number token.

  [[nodiscard]] double as_double() const {
    if (number.empty()) throw std::runtime_error("json: expected number");
    return std::strtod(number.c_str(), nullptr);
  }
  [[nodiscard]] std::uint64_t as_u64() const {
    if (number.empty()) throw std::runtime_error("json: expected number");
    return std::strtoull(number.c_str(), nullptr, 10);
  }
  [[nodiscard]] const std::string& as_string() const {
    if (const auto* s = std::get_if<std::string>(&value)) return *s;
    throw std::runtime_error("json: expected string");
  }
  [[nodiscard]] const JsonObject& as_object() const {
    if (const auto* o = std::get_if<JsonObject>(&value)) return *o;
    throw std::runtime_error("json: expected object");
  }
  [[nodiscard]] const JsonArray& as_array() const {
    if (const auto* a = std::get_if<JsonArray>(&value)) return *a;
    throw std::runtime_error("json: expected array");
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  [[nodiscard]] JsonValue parse() {
    JsonValue v = value();
    skip_whitespace();
    if (pos_ != text_.size()) throw std::runtime_error("json: trailing content");
    return v;
  }

 private:
  [[nodiscard]] JsonValue value() {
    skip_whitespace();
    if (pos_ >= text_.size()) throw std::runtime_error("json: unexpected end");
    const char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return JsonValue{string(), {}};
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') {
      expect_literal("null");
      return JsonValue{nullptr, {}};
    }
    return number();
  }

  [[nodiscard]] JsonValue object() {
    ++pos_;  // '{'
    JsonObject out;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return JsonValue{std::move(out), {}};
    }
    while (true) {
      skip_whitespace();
      std::string key = string();
      skip_whitespace();
      if (peek() != ':') throw std::runtime_error("json: expected ':'");
      ++pos_;
      out.emplace(std::move(key), value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return JsonValue{std::move(out), {}};
      }
      throw std::runtime_error("json: expected ',' or '}'");
    }
  }

  [[nodiscard]] JsonValue array() {
    ++pos_;  // '['
    JsonArray out;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return JsonValue{std::move(out), {}};
    }
    while (true) {
      out.push_back(value());
      skip_whitespace();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return JsonValue{std::move(out), {}};
      }
      throw std::runtime_error("json: expected ',' or ']'");
    }
  }

  [[nodiscard]] std::string string() {
    if (peek() != '"') throw std::runtime_error("json: expected string");
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) throw std::runtime_error("json: bad \\u");
            const unsigned code =
                static_cast<unsigned>(std::stoul(text_.substr(pos_, 4), nullptr, 16));
            pos_ += 4;
            if (code > 0x7F) throw std::runtime_error("json: non-ASCII \\u unsupported");
            out += static_cast<char>(code);
            break;
          }
          default: throw std::runtime_error("json: bad escape");
        }
      } else {
        out += c;
      }
    }
    throw std::runtime_error("json: unterminated string");
  }

  [[nodiscard]] JsonValue boolean() {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return JsonValue{true, {}};
    }
    expect_literal("false");
    return JsonValue{false, {}};
  }

  [[nodiscard]] JsonValue number() {
    const std::size_t start = pos_;
    auto is_number_char = [](char c) {
      return std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+' ||
             c == '.' || c == 'e' || c == 'E';
    };
    while (pos_ < text_.size() && is_number_char(text_[pos_])) ++pos_;
    if (pos_ == start) throw std::runtime_error("json: unexpected character");
    JsonValue v{nullptr, text_.substr(start, pos_ - start)};
    return v;
  }

  void expect_literal(const char* literal) {
    const std::size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) != 0) {
      throw std::runtime_error("json: unexpected token");
    }
    pos_ += len;
  }

  [[nodiscard]] char peek() const {
    if (pos_ >= text_.size()) throw std::runtime_error("json: unexpected end");
    return text_[pos_];
  }

  void skip_whitespace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

[[nodiscard]] const JsonValue& field(const JsonObject& object, const std::string& key) {
  const auto it = object.find(key);
  if (it == object.end()) throw std::runtime_error("json: missing field '" + key + "'");
  return it->second;
}

}  // namespace

PointSummary summarize(const PointResult& point) {
  PointSummary s;
  s.unit = point.unit;
  s.scheduler = point.scheduler;
  s.faults = point.faults;
  s.n = point.n;
  s.trials = point.trials;
  s.failures = point.failures;
  s.damaged = point.damaged;
  s.seed = point.seed;
  s.count = point.convergence_steps.count();
  s.mean = point.convergence_steps.mean();
  s.variance = point.convergence_steps.variance();
  s.min = point.convergence_steps.min();
  s.max = point.convergence_steps.max();
  s.median = point.convergence_steps.median();
  s.mean_steps_executed = point.steps_executed.mean();
  s.recovery_mean = point.recovery_steps.mean();
  s.recovery_median = point.recovery_steps.median();
  s.mean_faults_injected = point.faults_injected.mean();
  s.mean_edges_deleted = point.edges_deleted.mean();
  s.mean_edges_repaired = point.edges_repaired.mean();
  s.mean_edges_residual = point.edges_residual.mean();
  return s;
}

std::string to_json(const CampaignResult& result) {
  std::string out;
  out += "{\n";
  out += "  \"schema\": \"netcons-campaign-v2\",\n";
  out += "  \"total_trials\": " + std::to_string(result.total_trials) + ",\n";
  out += "  \"total_failures\": " + std::to_string(result.total_failures) + ",\n";
  out += "  \"points\": [\n";
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    append_point(out, summarize(result.points[i]));
    out += (i + 1 < result.points.size()) ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

namespace {

/// RFC-4180 quoting for fields that may contain separators.
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string to_csv(const CampaignResult& result) {
  std::string out =
      "unit,scheduler,faults,n,trials,failures,damaged,seed,count,mean,variance,min,max,"
      "median,mean_steps_executed,recovery_mean,recovery_median,mean_faults_injected,"
      "mean_edges_deleted,mean_edges_repaired,mean_edges_residual\n";
  for (const PointResult& point : result.points) {
    const PointSummary s = summarize(point);
    out += csv_field(s.unit) + ',' + csv_field(s.scheduler) + ',' + csv_field(s.faults) + ',' +
           std::to_string(s.n) + ',' + std::to_string(s.trials) + ',' +
           std::to_string(s.failures) + ',' + std::to_string(s.damaged) + ',' +
           std::to_string(s.seed) + ',' + std::to_string(s.count) + ',';
    const double columns[] = {s.mean,
                              s.variance,
                              s.min,
                              s.max,
                              s.median,
                              s.mean_steps_executed,
                              s.recovery_mean,
                              s.recovery_median,
                              s.mean_faults_injected,
                              s.mean_edges_deleted,
                              s.mean_edges_repaired,
                              s.mean_edges_residual};
    for (std::size_t i = 0; i < std::size(columns); ++i) {
      if (i != 0) out += ',';
      append_double(out, columns[i]);
    }
    out += '\n';
  }
  return out;
}

std::vector<PointSummary> parse_json(const std::string& json) {
  const JsonValue document = JsonParser(json).parse();
  const JsonObject& root = document.as_object();
  const JsonArray& points = field(root, "points").as_array();

  std::vector<PointSummary> out;
  out.reserve(points.size());
  for (const JsonValue& entry : points) {
    const JsonObject& object = entry.as_object();
    PointSummary s;
    s.unit = field(object, "unit").as_string();
    s.scheduler = field(object, "scheduler").as_string();
    s.faults = field(object, "faults").as_string();
    s.n = static_cast<int>(field(object, "n").as_u64());
    s.trials = static_cast<int>(field(object, "trials").as_u64());
    s.failures = static_cast<int>(field(object, "failures").as_u64());
    s.damaged = static_cast<int>(field(object, "damaged").as_u64());
    s.seed = field(object, "seed").as_u64();
    s.count = static_cast<std::size_t>(field(object, "count").as_u64());
    s.mean = field(object, "mean").as_double();
    s.variance = field(object, "variance").as_double();
    s.min = field(object, "min").as_double();
    s.max = field(object, "max").as_double();
    s.median = field(object, "median").as_double();
    s.mean_steps_executed = field(object, "mean_steps_executed").as_double();
    s.recovery_mean = field(object, "recovery_mean").as_double();
    s.recovery_median = field(object, "recovery_median").as_double();
    s.mean_faults_injected = field(object, "mean_faults_injected").as_double();
    s.mean_edges_deleted = field(object, "mean_edges_deleted").as_double();
    s.mean_edges_repaired = field(object, "mean_edges_repaired").as_double();
    s.mean_edges_residual = field(object, "mean_edges_residual").as_double();
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace netcons::campaign
