// Deterministic seed derivation for campaign grids.
//
// The engine's determinism contract — bit-identical aggregates regardless of
// thread count, shard size, or execution order — requires that the seed of
// every trial be a pure function of (campaign seed, point index, trial
// index). Both levels are random-access SplitMix64 streams: element i of the
// stream with state `base` is finalize(base + (i+1) * gamma), i.e. exactly
// the (i+1)-th output of a sequential splitmix64 generator started at
// `base`. Nearby bases and indices therefore yield statistically unrelated
// streams (unlike arithmetic on the base seed, which correlates them).
#pragma once

#include "util/rng.hpp"

#include <cstdint>

namespace netcons::campaign {

/// Element `index` of the SplitMix64 stream with initial state `base`
/// (same derivation as `trial_seed`, re-exported under the stream name the
/// campaign layer speaks).
[[nodiscard]] constexpr std::uint64_t stream_seed(std::uint64_t base,
                                                  std::uint64_t index) noexcept {
  return trial_seed(base, index);
}

/// Random-access view of one stream (the engine walks points and trials by
/// index; there is deliberately no mutable cursor to keep replay trivial).
class SeedStream {
 public:
  explicit constexpr SeedStream(std::uint64_t base) noexcept : base_(base) {}

  [[nodiscard]] constexpr std::uint64_t at(std::uint64_t index) const noexcept {
    return stream_seed(base_, index);
  }

  /// Sub-stream rooted at element `index` (hierarchical derivation:
  /// campaign stream -> per-point streams -> per-trial seeds).
  [[nodiscard]] constexpr SeedStream child(std::uint64_t index) const noexcept {
    return SeedStream(at(index));
  }

 private:
  std::uint64_t base_;
};

/// Seed of grid point `point_index` within a campaign.
[[nodiscard]] constexpr std::uint64_t point_seed(std::uint64_t campaign_seed,
                                                 std::uint64_t point_index) noexcept {
  return stream_seed(campaign_seed, point_index);
}

static_assert(SeedStream(7).at(3) == stream_seed(7, 3));
static_assert(stream_seed(1, 0) != stream_seed(1, 1));
static_assert(stream_seed(1, 0) != stream_seed(2, 0));

}  // namespace netcons::campaign
