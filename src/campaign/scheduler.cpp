#include "campaign/scheduler.hpp"

#include "analysis/report.hpp"
#include "campaign/result_sink.hpp"
#include "fabric/coordinator.hpp"
#include "telemetry/heartbeat.hpp"
#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace netcons::campaign {

namespace {

void write_text(const std::filesystem::path& path, const std::string& content) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file << content;
  file.flush();
  if (!file) {
    throw std::runtime_error("scheduler: cannot write " + path.string());
  }
}

/// Last parseable heartbeat line of the job spool — the live progress a
/// poll reports. Torn tails and foreign lines skip silently, exactly like
/// the other tailing readers (netcons_top, the fabric coordinator).
void fill_progress(const std::string& path, JobStatus& status) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return;
  std::string line;
  std::optional<telemetry::HeartbeatPoint> last;
  while (std::getline(file, line)) {
    if (auto point = telemetry::parse_heartbeat_line(line)) last = std::move(point);
  }
  if (!last) return;
  status.trials_done = last->trials_done;
  status.trials_per_sec = last->trials_per_sec;
  status.eta_s = last->eta_s;
}

}  // namespace

std::string spec_fingerprint(const CampaignHeader& header) {
  const std::string line = header_line(header);
  std::uint64_t hash = 1469598103934665603ull;  // FNV-1a 64-bit offset basis.
  for (const unsigned char c : line) {
    hash ^= static_cast<std::uint64_t>(c);
    hash *= 1099511628211ull;
  }
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx", static_cast<unsigned long long>(hash));
  return buffer;
}

std::string_view job_dispatch_name(JobDispatch dispatch) noexcept {
  return dispatch == JobDispatch::kFabric ? "fabric" : "local";
}

std::string_view job_state_name(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
  }
  return "queued";
}

struct Scheduler::Job {
  std::string id;
  CampaignSpec spec;
  CampaignHeader header;
  JobDispatch dispatch = JobDispatch::kLocal;
  JobState state = JobState::kQueued;
  double wall_seconds = 0.0;
  int fabric_port = -1;
  std::string error;
  std::vector<Observer> observers;
};

Scheduler::Scheduler(Options options) : options_(std::move(options)) {
  if (options_.cache_dir.empty()) {
    throw std::runtime_error("scheduler: a cache directory is required");
  }
  std::filesystem::create_directories(options_.cache_dir);
  const int workers = std::max(1, options_.job_workers);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

Scheduler::~Scheduler() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::string Scheduler::entry_dir(const std::string& id) const {
  return (std::filesystem::path(options_.cache_dir) / id).string();
}

std::string Scheduler::spool_records_dir(const std::string& id) const {
  return (std::filesystem::path(options_.cache_dir) / "jobs" / id / "records").string();
}

bool Scheduler::cache_entry_matches(const std::string& id, const CampaignHeader& header) const {
  const std::filesystem::path entry = entry_dir(id);
  if (!std::filesystem::exists(entry / "summary.json")) return false;
  std::ifstream file(entry / "header.jsonl", std::ios::binary);
  std::string line;
  if (!file || !std::getline(file, line)) return false;
  return line == header_line(header);
}

JobStatus Scheduler::status_locked(const Job& job) const {
  JobStatus status;
  status.id = job.id;
  status.state = job.state;
  status.trials_total = static_cast<std::uint64_t>(job.header.points.size()) *
                        static_cast<std::uint64_t>(job.header.trials);
  if (job.state == JobState::kDone) status.trials_done = status.trials_total;
  status.wall_seconds = job.wall_seconds;
  status.fabric_port = job.fabric_port;
  if (job.state == JobState::kQueued || job.state == JobState::kRunning) {
    status.records_dir = spool_records_dir(job.id);
  }
  status.error = job.error;
  return status;
}

void Scheduler::count(std::string_view name) const {
  if (options_.registry != nullptr) options_.registry->add(name);
}

Scheduler::Submitted Scheduler::submit(const CampaignSpec& spec, JobDispatch dispatch,
                                       Observer observer) {
  const CampaignHeader header = CampaignHeader::describe(spec);
  Submitted submitted{spec_fingerprint(header), false, false};
  const std::string& id = submitted.id;
  std::optional<JobStatus> immediate;  // Fires the observer outside the lock.
  {
    std::lock_guard lock(mutex_);
    const auto it = jobs_.find(id);
    if (it != jobs_.end()) {
      Job& job = *it->second;
      switch (job.state) {
        case JobState::kQueued:
        case JobState::kRunning:
          if (observer) job.observers.push_back(std::move(observer));
          submitted.coalesced = true;
          count("scheduler.coalesced");
          return submitted;
        case JobState::kDone:
          if (!cache_entry_matches(id, header)) {
            // Completed earlier but evicted since: treat as a miss.
            job.state = JobState::kQueued;
            job.error.clear();
            job.dispatch = dispatch;
            if (observer) job.observers.push_back(std::move(observer));
            queue_.push_back(it->second);
            count("scheduler.cache_misses");
            work_cv_.notify_one();
            return submitted;
          }
          // Completed earlier in this process: the artifacts are in the
          // cache; answer without scheduling anything.
          submitted.cached = true;
          immediate = status_locked(job);
          immediate->cached = true;
          count("scheduler.cache_hits");
          break;
        case JobState::kFailed:
          // A failure (disk, fabric give-up) is retryable: the spool kept
          // its records, so the retry resumes instead of starting over.
          job.state = JobState::kQueued;
          job.error.clear();
          job.dispatch = dispatch;
          if (observer) job.observers.push_back(std::move(observer));
          queue_.push_back(it->second);
          count("scheduler.retries");
          work_cv_.notify_one();
          return submitted;
      }
    } else if (cache_entry_matches(id, header)) {
      submitted.cached = true;
      JobStatus status;
      status.id = id;
      status.state = JobState::kDone;
      status.cached = true;
      status.trials_total = static_cast<std::uint64_t>(header.points.size()) *
                            static_cast<std::uint64_t>(header.trials);
      status.trials_done = status.trials_total;
      immediate = status;
      // Refresh the entry so least-recently-hit eviction keeps hot specs.
      std::error_code ec;
      std::filesystem::last_write_time(std::filesystem::path(entry_dir(id)) / "summary.json",
                                       std::filesystem::file_time_type::clock::now(), ec);
      count("scheduler.cache_hits");
    } else {
      auto job = std::make_shared<Job>();
      job->id = id;
      job->spec = spec;
      job->header = header;
      job->dispatch = dispatch;
      if (observer) job->observers.push_back(std::move(observer));
      jobs_.emplace(id, job);
      queue_.push_back(std::move(job));
      count("scheduler.cache_misses");
      work_cv_.notify_one();
      return submitted;
    }
  }
  if (immediate && observer) observer(*immediate);
  return submitted;
}

std::optional<JobStatus> Scheduler::poll(const std::string& id) const {
  std::string heartbeat_path;
  JobStatus status;
  {
    std::lock_guard lock(mutex_);
    const auto it = jobs_.find(id);
    if (it != jobs_.end()) {
      status = status_locked(*it->second);
      if (status.state == JobState::kRunning) {
        heartbeat_path = (std::filesystem::path(options_.cache_dir) / "jobs" / id /
                          "heartbeat.jsonl")
                             .string();
      }
    } else {
      // Not a job this process ran: a completed entry in the cache still
      // answers (that is the whole point of fingerprint-keyed storage).
      const std::filesystem::path entry = entry_dir(id);
      if (!std::filesystem::exists(entry / "summary.json")) return std::nullopt;
      std::ifstream file(entry / "header.jsonl", std::ios::binary);
      std::string line;
      if (!file || !std::getline(file, line)) return std::nullopt;
      const CampaignHeader header = parse_header_line(line);
      status.id = id;
      status.state = JobState::kDone;
      status.cached = true;
      status.trials_total = static_cast<std::uint64_t>(header.points.size()) *
                            static_cast<std::uint64_t>(header.trials);
      status.trials_done = status.trials_total;
    }
  }
  if (!heartbeat_path.empty()) fill_progress(heartbeat_path, status);
  return status;
}

JobStatus Scheduler::wait(const std::string& id) {
  std::unique_lock lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    lock.unlock();
    const auto status = poll(id);
    if (!status) throw std::runtime_error("scheduler: unknown job id '" + id + "'");
    return *status;
  }
  const std::shared_ptr<Job> job = it->second;
  done_cv_.wait(lock, [&] {
    return job->state == JobState::kDone || job->state == JobState::kFailed;
  });
  return status_locked(*job);
}

std::string Scheduler::artifact_path(const std::string& id, std::string_view name) const {
  const std::filesystem::path path = std::filesystem::path(entry_dir(id)) / name;
  // The summary is the last artifact promoted (rename makes the whole
  // entry appear at once), so existence of the file == entry is complete.
  return std::filesystem::exists(path) ? path.string() : std::string();
}

void Scheduler::worker_main() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_, nothing left to start
      job = queue_.front();
      queue_.pop_front();
      job->state = JobState::kRunning;
    }
    execute(*job);
  }
}

void Scheduler::execute(Job& job) {
  try {
    run_job(job);
    std::lock_guard lock(mutex_);
    job.state = JobState::kDone;
  } catch (const std::exception& error) {
    std::lock_guard lock(mutex_);
    job.state = JobState::kFailed;
    job.error = error.what();
  }
  std::vector<Observer> observers;
  JobStatus final_status;
  {
    std::lock_guard lock(mutex_);
    observers = std::move(job.observers);
    job.observers.clear();
    final_status = status_locked(job);
  }
  count(final_status.state == JobState::kDone ? "scheduler.jobs_completed"
                                              : "scheduler.jobs_failed");
  done_cv_.notify_all();
  for (const Observer& fire : observers) {
    if (fire) fire(final_status);
  }
}

void Scheduler::run_job(Job& job) {
  const std::filesystem::path spool = std::filesystem::path(options_.cache_dir) / "jobs" / job.id;
  const std::string records = spool_records_dir(job.id);
  std::filesystem::create_directories(records);

  OutcomeMap resume;
  try {
    resume = load_resume_outcomes(records, job.header);
  } catch (const std::exception&) {
    // A stale spool (a fingerprint collision, or corruption past the
    // crash-safe tail) must not poison this job: start clean.
    std::filesystem::remove_all(records);
    std::filesystem::create_directories(records);
  }

  // The heartbeat stream poll() derives live progress from. The monitor is
  // purely observational — summary bytes are identical with or without it.
  std::ofstream heartbeat((spool / "heartbeat.jsonl").string(),
                          std::ios::binary | std::ios::trunc);
  telemetry::CampaignMonitor::Options monitor_options;
  monitor_options.period_seconds = options_.heartbeat_period_seconds;
  monitor_options.heartbeat = heartbeat ? &heartbeat : nullptr;
  monitor_options.registry = options_.registry;
  telemetry::CampaignMonitor monitor(monitor_options);

  CampaignResult result;
  if (job.dispatch == JobDispatch::kFabric) {
    result = run_fabric(job, resume);
  } else {
    const int generation = next_generation(records, 0, 1);
    TrialRecordSink sink((std::filesystem::path(records) /
                          record_file_name(0, 1, generation))
                             .string(),
                         job.header);
    RunOptions run_options;
    run_options.threads = options_.threads;
    if (!resume.empty()) run_options.resume = &resume;
    run_options.on_trial = [&sink](std::size_t point, int trial, std::uint64_t seed,
                                   const TrialOutcome& outcome) {
      sink.write(TrialRecord{point, trial, seed, outcome});
    };
    run_options.monitor = &monitor;
    result = options_.executor ? options_.executor(job.spec, run_options)
                               : run(job.spec, run_options);
  }
  monitor.end();
  if (!result.complete) {
    throw std::runtime_error("scheduler: campaign did not complete");
  }

  store_entry(job, result);
  {
    std::lock_guard lock(mutex_);
    job.wall_seconds = result.wall_seconds;
  }
  std::error_code ec;
  std::filesystem::remove_all(spool, ec);  // The cache entry holds the truth now.
  evict();
}

CampaignResult Scheduler::run_fabric(Job& job, const OutcomeMap& resume) {
  fabric::CoordinatorOptions coordinator_options;
  coordinator_options.host = options_.fabric_host;
  coordinator_options.port = 0;
  coordinator_options.lease_size = options_.fabric_lease_size;
  coordinator_options.deadline_seconds = options_.fabric_deadline_seconds;
  coordinator_options.max_idle_seconds = options_.fabric_max_idle_seconds;
  coordinator_options.quiet = true;
  coordinator_options.registry = options_.registry;
  coordinator_options.on_listening = [this, &job](int port) {
    std::lock_guard lock(mutex_);
    job.fabric_port = port;
  };

  fabric::CoordinatorSummary summary;
  try {
    fabric::Coordinator coordinator(job.header, resume.empty() ? nullptr : &resume,
                                    coordinator_options);
    summary = coordinator.serve();
  } catch (...) {
    std::lock_guard lock(mutex_);
    job.fabric_port = -1;
    throw;
  }
  {
    std::lock_guard lock(mutex_);
    job.fabric_port = -1;
  }
  if (!summary.complete) {
    throw std::runtime_error(
        "scheduler: fabric dispatch gave up with " + std::to_string(summary.trials_committed) +
        "/" + std::to_string(summary.trials_total) +
        " trials committed; resubmit to resume (workers stream records into " +
        spool_records_dir(job.id) + ")");
  }

  // The coordinator only schedules; the workers streamed the records into
  // this job's spool. Fold them through the same resume + sequential
  // reduction a single-host run uses — byte-identical summary, and any
  // slot a worker somehow missed is executed locally right here.
  const OutcomeMap outcomes = load_resume_outcomes(spool_records_dir(job.id), job.header);
  RunOptions run_options;
  run_options.threads = options_.threads;
  if (!outcomes.empty()) run_options.resume = &outcomes;
  return options_.executor ? options_.executor(job.spec, run_options)
                           : run(job.spec, run_options);
}

void Scheduler::store_entry(const Job& job, const CampaignResult& result) {
  const std::filesystem::path entry = entry_dir(job.id);
  const std::filesystem::path tmp = entry_dir(job.id) + ".tmp";
  std::filesystem::remove_all(tmp);
  std::filesystem::create_directories(tmp);

  write_text(tmp / "header.jsonl", header_line(job.header) + "\n");
  write_text(tmp / "summary.json", to_json(result));
  write_text(tmp / "summary.csv", to_csv(result));
  // Canonical record stream: compaction is deterministic in the record
  // set, so the cached records are byte-identical to `netcons_merge
  // --compact` over the same trials.
  compact_records({spool_records_dir(job.id)}, (tmp / "records.jsonl").string(), &job.header);
  analysis::RecordDistributionBuilder builder =
      analysis::load_distributions({(tmp / "records.jsonl").string()});
  const std::vector<analysis::PointDistributions> dists = builder.build();
  write_text(tmp / "report.json",
             analysis::report_json(builder, dists, analysis::default_report_spec()));

  // Promote atomically: a reader either sees no entry or a complete one.
  // On a fingerprint collision (different header, same hash) last-wins —
  // the header.jsonl guard then classifies the loser as a miss.
  std::filesystem::remove_all(entry);
  std::filesystem::rename(tmp, entry);
}

void Scheduler::evict() {
  if (options_.cache_max_entries == 0) return;
  struct Entry {
    std::filesystem::file_time_type hit_time;
    std::filesystem::path path;
  };
  std::vector<Entry> entries;
  for (const auto& item : std::filesystem::directory_iterator(options_.cache_dir)) {
    if (!item.is_directory()) continue;
    // Only complete entries qualify; the jobs/ spool tree and in-flight
    // .tmp promotions have no summary.json and are never evicted here.
    std::error_code ec;
    const auto hit_time = std::filesystem::last_write_time(item.path() / "summary.json", ec);
    if (ec) continue;
    entries.push_back({hit_time, item.path()});
  }
  if (entries.size() <= options_.cache_max_entries) return;
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.hit_time != b.hit_time ? a.hit_time < b.hit_time : a.path < b.path;
  });
  const std::size_t excess = entries.size() - options_.cache_max_entries;
  for (std::size_t i = 0; i < excess; ++i) {
    std::error_code ec;
    std::filesystem::remove_all(entries[i].path, ec);
    if (!ec) count("scheduler.cache_evictions");
  }
}

}  // namespace netcons::campaign
