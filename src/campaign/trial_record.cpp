#include "campaign/trial_record.hpp"

#include "campaign/json.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <stdexcept>
#include <utility>

namespace netcons::campaign {

namespace {

constexpr const char* kTrialSchema = "netcons-trials-v2";

void append_u64(std::string& out, const char* key, std::uint64_t value) {
  out += ", \"";
  out += key;
  out += "\": " + std::to_string(value);
}

}  // namespace

CampaignHeader CampaignHeader::describe(const CampaignSpec& spec) {
  CampaignHeader header;
  header.base_seed = spec.base_seed;
  header.trials = std::max(spec.trials, 0);
  header.points = expand_grid(spec);
  return header;
}

std::string header_line(const CampaignHeader& header) {
  std::string out = "{\"schema\": \"";
  out += kTrialSchema;
  out += "\", \"base_seed\": " + std::to_string(header.base_seed);
  out += ", \"trials\": " + std::to_string(header.trials);
  out += ", \"points\": [";
  for (std::size_t i = 0; i < header.points.size(); ++i) {
    const GridPoint& p = header.points[i];
    if (i != 0) out += ", ";
    out += "{\"unit\": ";
    json::append_escaped(out, p.unit);
    out += ", \"scheduler\": ";
    json::append_escaped(out, p.scheduler);
    out += ", \"faults\": ";
    json::append_escaped(out, p.faults);
    out += ", \"engine\": ";
    json::append_escaped(out, p.engine);
    out += ", \"faulted\": ";
    out += p.faulted ? "true" : "false";
    out += ", \"n\": " + std::to_string(p.n);
    out += ", \"seed\": " + std::to_string(p.seed);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string record_line(const TrialRecord& record) {
  std::string out = "{\"point\": " + std::to_string(record.point);
  out += ", \"trial\": " + std::to_string(record.trial);
  append_u64(out, "seed", record.seed);
  out += ", \"success\": ";
  out += record.outcome.success ? "true" : "false";
  out += ", \"target_ok\": ";
  out += record.outcome.target_ok ? "true" : "false";
  append_u64(out, "value", record.outcome.value);
  append_u64(out, "steps", record.outcome.steps_executed);
  append_u64(out, "faults_injected", record.outcome.faults_injected);
  append_u64(out, "recovery_steps", record.outcome.recovery_steps);
  append_u64(out, "edges_deleted", record.outcome.edges_deleted);
  append_u64(out, "edges_repaired", record.outcome.edges_repaired);
  append_u64(out, "edges_residual", record.outcome.edges_residual);
  out += ", \"error\": ";
  json::append_escaped(out, record.outcome.error);
  out += "}";
  return out;
}

CampaignHeader parse_header_line(std::string_view line) {
  const json::Value document = json::parse(line);
  const json::Object& root = document.as_object();
  const std::string& schema = json::field(root, "schema").as_string();
  if (schema != kTrialSchema) {
    throw std::runtime_error("trial records: unsupported schema '" + schema + "' (expected " +
                             kTrialSchema + ")");
  }
  CampaignHeader header;
  header.base_seed = json::field(root, "base_seed").as_u64();
  header.trials = static_cast<int>(json::field(root, "trials").as_u64());
  for (const json::Value& entry : json::field(root, "points").as_array()) {
    const json::Object& object = entry.as_object();
    GridPoint p;
    p.unit = json::field(object, "unit").as_string();
    p.scheduler = json::field(object, "scheduler").as_string();
    p.faults = json::field(object, "faults").as_string();
    p.engine = json::field(object, "engine").as_string();
    p.faulted = json::field(object, "faulted").as_bool();
    p.n = static_cast<int>(json::field(object, "n").as_u64());
    p.seed = json::field(object, "seed").as_u64();
    header.points.push_back(std::move(p));
  }
  return header;
}

TrialRecord parse_record_line(std::string_view line) {
  const json::Value document = json::parse(line);
  const json::Object& root = document.as_object();
  TrialRecord record;
  record.point = static_cast<std::size_t>(json::field(root, "point").as_u64());
  record.trial = static_cast<int>(json::field(root, "trial").as_u64());
  record.seed = json::field(root, "seed").as_u64();
  record.outcome.success = json::field(root, "success").as_bool();
  record.outcome.target_ok = json::field(root, "target_ok").as_bool();
  record.outcome.value = json::field(root, "value").as_u64();
  record.outcome.steps_executed = json::field(root, "steps").as_u64();
  record.outcome.faults_injected = json::field(root, "faults_injected").as_u64();
  record.outcome.recovery_steps = json::field(root, "recovery_steps").as_u64();
  record.outcome.edges_deleted = json::field(root, "edges_deleted").as_u64();
  record.outcome.edges_repaired = json::field(root, "edges_repaired").as_u64();
  record.outcome.edges_residual = json::field(root, "edges_residual").as_u64();
  record.outcome.error = json::field(root, "error").as_string();
  return record;
}

namespace {

std::string grid_point_mismatch(std::size_t index, const GridPoint& expected,
                                const GridPoint& found) {
  const auto describe = [index](const char* field, const std::string& want,
                                const std::string& got) {
    return "points[" + std::to_string(index) + "]." + field + ": records say " + got +
           ", campaign says " + want;
  };
  if (expected.unit != found.unit) return describe("unit", expected.unit, found.unit);
  if (expected.scheduler != found.scheduler) {
    return describe("scheduler", expected.scheduler, found.scheduler);
  }
  if (expected.faults != found.faults) {
    return describe("faults", expected.faults, found.faults);
  }
  if (expected.engine != found.engine) {
    return describe("engine", expected.engine, found.engine);
  }
  if (expected.faulted != found.faulted) {
    return describe("faulted", expected.faulted ? "true" : "false",
                    found.faulted ? "true" : "false");
  }
  if (expected.n != found.n) {
    return describe("n", std::to_string(expected.n), std::to_string(found.n));
  }
  if (expected.seed != found.seed) {
    return describe("seed", std::to_string(expected.seed), std::to_string(found.seed));
  }
  return {};
}

}  // namespace

std::string header_mismatch(const CampaignHeader& expected, const CampaignHeader& found) {
  if (expected.base_seed != found.base_seed) {
    return "base_seed: records say " + std::to_string(found.base_seed) + ", campaign says " +
           std::to_string(expected.base_seed);
  }
  if (expected.trials != found.trials) {
    return "trials: records say " + std::to_string(found.trials) + ", campaign says " +
           std::to_string(expected.trials);
  }
  if (expected.points.size() != found.points.size()) {
    return "points: records say " + std::to_string(found.points.size()) +
           " grid points, campaign says " + std::to_string(expected.points.size());
  }
  for (std::size_t i = 0; i < expected.points.size(); ++i) {
    std::string diff = grid_point_mismatch(i, expected.points[i], found.points[i]);
    if (!diff.empty()) return diff;
  }
  return {};
}

std::string record_file_name(int shard_index, int shard_count, int generation) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "trials-s%04d-of-%04d-g%04d.jsonl", shard_index, shard_count,
                generation);
  return buf;
}

int next_generation(const std::string& dir, int shard_index, int shard_count) {
  int generation = 0;
  while (std::filesystem::exists(std::filesystem::path(dir) /
                                 record_file_name(shard_index, shard_count, generation))) {
    ++generation;
  }
  return generation;
}

TrialRecordSink::TrialRecordSink(const std::string& path, const CampaignHeader& header)
    : path_(path), file_(path, std::ios::out | std::ios::trunc) {
  if (!file_) throw std::runtime_error("trial records: cannot open '" + path + "' for writing");
  file_ << header_line(header) << '\n';
  file_.flush();
  if (!file_) throw std::runtime_error("trial records: write failed on '" + path + "'");
}

void TrialRecordSink::write(const TrialRecord& record) {
  const std::string line = record_line(record);
  const std::lock_guard<std::mutex> lock(mutex_);
  // Line + flush per record: a killed process loses at most this line,
  // which the loader's partial-write rule discards and redoes.
  file_ << line << '\n';
  file_.flush();
  if (!file_) throw std::runtime_error("trial records: write failed on '" + path_ + "'");
}

TrialRecordReader::TrialRecordReader(const std::vector<std::string>& inputs) {
  for (const std::string& input : inputs) {
    const std::filesystem::path fs_path(input);
    if (std::filesystem::is_directory(fs_path)) {
      std::vector<std::string> files;
      for (const auto& entry : std::filesystem::directory_iterator(fs_path)) {
        if (entry.is_regular_file() && entry.path().extension() == ".jsonl") {
          files.push_back(entry.path().string());
        }
      }
      // Sorted name order == generation order (record_file_name zero-pads),
      // so last-wins deduplication prefers the freshest generation.
      std::sort(files.begin(), files.end());
      paths_.insert(paths_.end(), files.begin(), files.end());
      continue;
    }
    if (!std::filesystem::exists(fs_path)) {
      throw std::runtime_error("trial records: no such file or directory: '" + input + "'");
    }
    paths_.push_back(input);
  }
}

void TrialRecordReader::expect_header(const CampaignHeader& header) { header_ = header; }

bool TrialRecordReader::next_line(std::string& line) {
  if (!std::getline(*file_, line)) return false;
  if (file_->eof() && !line.empty()) {
    // An unterminated final segment is the partial write of a killed run —
    // discarded (and redone on resume), never an error.
    ++discarded_partial_;
    return false;
  }
  ++line_number_;
  return true;
}

std::optional<TrialRecord> TrialRecordReader::next() {
  std::string line;
  while (true) {
    if (!file_) {
      if (path_index_ >= paths_.size()) return std::nullopt;
      const std::string& path = paths_[path_index_++];
      file_ = std::make_unique<std::ifstream>(path, std::ios::binary);
      if (!*file_) {
        throw std::runtime_error("trial records: cannot read '" + path + "'");
      }
      line_number_ = 0;
    }
    const std::string& path = paths_[path_index_ - 1];

    if (!next_line(line)) {  // End of this file (or its partial tail).
      file_.reset();
      continue;
    }

    if (line_number_ == 1) {
      CampaignHeader header;
      try {
        header = parse_header_line(line);
      } catch (const std::exception& e) {
        throw std::runtime_error("trial records: malformed header in '" + path +
                                 "': " + e.what());
      }
      if (header_) {
        const std::string diff = header_mismatch(*header_, header);
        if (!diff.empty()) {
          throw std::runtime_error("trial records in '" + path +
                                   "' were written by a different campaign: " + diff);
        }
      } else {
        header_ = std::move(header);
      }
      ++files_;
      continue;
    }

    TrialRecord record;
    try {
      record = parse_record_line(line);
    } catch (const std::exception& e) {
      // Terminated lines must parse; only the unterminated tail may be cut
      // short. A malformed interior line is corruption, not a crash.
      throw std::runtime_error("trial records: malformed record at '" + path + "' line " +
                               std::to_string(line_number_) + ": " + e.what());
    }
    if (record.point >= header_->points.size() || record.trial < 0 ||
        record.trial >= header_->trials) {
      throw std::runtime_error("trial records: record at '" + path + "' line " +
                               std::to_string(line_number_) +
                               " is outside the campaign grid (point " +
                               std::to_string(record.point) + ", trial " +
                               std::to_string(record.trial) + ")");
    }
    ++records_;
    return record;
  }
}

void load_records(const std::string& path, LoadedRecords& into) {
  TrialRecordReader reader({path});
  if (into.header) reader.expect_header(*into.header);
  while (const std::optional<TrialRecord> record = reader.next()) {
    const auto [it, inserted] =
        into.outcomes.insert_or_assign({record->point, record->trial}, record->outcome);
    (void)it;
    if (!inserted) ++into.duplicates;  // Last wins in scan order.
  }
  if (!into.header) into.header = reader.header();
  into.files += reader.files();
  into.records += reader.records();
  into.discarded_partial += reader.discarded_partial();
}

OutcomeMap load_resume_outcomes(const std::string& dir, const CampaignHeader& header) {
  if (!std::filesystem::exists(dir)) return {};
  LoadedRecords loaded;
  // Pre-seeding the expected header turns a spec mismatch into a hard error
  // naming the differing field, instead of silently reusing trials from a
  // different campaign.
  loaded.header = header;
  load_records(dir, loaded);
  return std::move(loaded.outcomes);
}

CompactionResult compact_records(const std::vector<std::string>& inputs,
                                 const std::string& output_path,
                                 const CampaignHeader* expected) {
  TrialRecordReader reader(inputs);
  if (expected != nullptr) reader.expect_header(*expected);

  // Winners keyed by grid position: last-wins in scan order while reading,
  // canonical (point, trial) order when writing — which is what makes
  // compaction deterministic in its input set and a fixed point of itself.
  std::map<std::pair<std::size_t, int>, TrialRecord> winners;
  CompactionResult result;
  while (const std::optional<TrialRecord> record = reader.next()) {
    const auto [it, inserted] = winners.insert_or_assign({record->point, record->trial}, *record);
    (void)it;
    if (!inserted) ++result.duplicates;
  }
  if (!reader.header()) {
    throw std::runtime_error("trial records: nothing to compact (no records found)");
  }
  result.header = *reader.header();
  result.files = reader.files();
  result.records = reader.records();
  result.discarded_partial = reader.discarded_partial();

  // Plain buffered writes (one flush at the end): a compaction is
  // re-runnable from its inputs, so it does not need the sink's
  // crash-safety flush per line.
  std::ofstream out(output_path, std::ios::out | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("trial records: cannot open '" + output_path + "' for writing");
  }
  out << header_line(result.header) << '\n';
  for (const auto& [position, record] : winners) {
    out << record_line(record) << '\n';
  }
  out.flush();
  if (!out) {
    throw std::runtime_error("trial records: write failed on '" + output_path + "'");
  }
  result.written = winners.size();
  return result;
}

}  // namespace netcons::campaign
