// The async submit/poll core behind campaign-as-a-service: one engine that
// the netcons_serve daemon, and any other long-lived embedder, drives
// instead of the one-shot campaign::run call.
//
// Jobs are keyed by the *spec fingerprint* — a 64-bit FNV-1a hash of the
// trial-record header line (base seed, trials per point, the expanded
// grid), the exact identity record files already interoperate on. That one
// key gives the serving layer its two economies:
//
//   * Coalescing: submitting a spec whose job is already queued or running
//     attaches the caller to the in-flight job instead of starting a
//     second one. N identical concurrent clients cost one campaign.
//   * Caching: a completed job's artifacts (summary JSON/CSV, compacted
//     records, report) persist in an on-disk cache directory named by the
//     fingerprint, so re-submitting an identical spec is an O(1) lookup —
//     no trials run at all.
//
// Determinism contract: cached artifacts are produced by the same code
// paths the CLIs use (campaign::run reduction, result_sink, compaction,
// analysis::report), so a daemon-served summary/report is byte-identical
// to `netcons_campaign --json` / `netcons_report --json` for the same
// spec. CI cmp-enforces this.
//
// Crash model: an interrupted job leaves its spool (per-trial records,
// flushed per line) under <cache>/jobs/<fingerprint>/; re-submitting the
// same spec resumes from those records via the shared
// load_resume_outcomes path. Only *complete* results are promoted into
// the cache, with a temp-dir + rename so readers never observe a partial
// entry.
#pragma once

#include "campaign/campaign.hpp"
#include "campaign/trial_record.hpp"

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace netcons::telemetry {
class CampaignMonitor;
class Registry;
}  // namespace netcons::telemetry

namespace netcons::campaign {

/// The job id and cache key: 16 lowercase hex digits, the FNV-1a 64-bit
/// hash of header_line(header). Stable across processes and machines —
/// it hashes the canonical serialized fingerprint, not object layout.
[[nodiscard]] std::string spec_fingerprint(const CampaignHeader& header);

/// Where a job runs: on this process's thread pool, or as an embedded
/// fabric coordinator handing leases to external netcons_worker processes
/// (which must write records into the job's spool directory).
enum class JobDispatch { kLocal, kFabric };
[[nodiscard]] std::string_view job_dispatch_name(JobDispatch dispatch) noexcept;

enum class JobState { kQueued, kRunning, kDone, kFailed };
[[nodiscard]] std::string_view job_state_name(JobState state) noexcept;

/// One poll of a job. For running jobs, progress fields derive from the
/// spool heartbeat stream (trials_done counts this invocation's executed
/// trials); for done jobs, trials_done == trials_total.
struct JobStatus {
  std::string id;
  JobState state = JobState::kQueued;
  /// Served from the on-disk cache: no trials ran in this process for it.
  bool cached = false;
  std::uint64_t trials_total = 0;
  std::uint64_t trials_done = 0;
  double trials_per_sec = 0.0;
  double eta_s = 0.0;
  double wall_seconds = 0.0;  ///< Execution wall time once done (else 0).
  /// Fabric-dispatched and currently serving leases: the coordinator's
  /// TCP port workers should connect to. -1 otherwise.
  int fabric_port = -1;
  /// While queued/running: the spool directory fabric workers must stream
  /// records into (--records). Empty once the job completed.
  std::string records_dir;
  std::string error;  ///< what() of the failure when state == kFailed.
};

class Scheduler {
 public:
  struct Options {
    /// Cache root (required). Layout: <cache_dir>/<fingerprint>/ holds a
    /// completed entry (header.jsonl, summary.json, summary.csv,
    /// records.jsonl, report.json); <cache_dir>/jobs/<fingerprint>/ holds
    /// the spool of a queued/running/failed job. One live Scheduler per
    /// cache directory — entries are promoted with temp + rename, but two
    /// writers would race the eviction scan.
    std::string cache_dir;
    int threads = 0;      ///< Engine threads per job (0: all cores).
    int job_workers = 1;  ///< Jobs executed concurrently.
    /// Keep at most this many completed cache entries, evicting the
    /// least-recently-hit first (0: unbounded). Hits refresh an entry.
    std::size_t cache_max_entries = 0;
    double heartbeat_period_seconds = 0.5;
    // Fabric dispatch (JobDispatch::kFabric): the embedded coordinator's
    // bind host and scheduling knobs (see fabric::CoordinatorOptions).
    std::string fabric_host = "127.0.0.1";
    int fabric_lease_size = 32;
    double fabric_deadline_seconds = 10.0;
    /// Give up on a fabric job with work remaining but no connected
    /// workers for this long (0: wait forever).
    double fabric_max_idle_seconds = 600.0;
    /// scheduler.* counters published here (not owned; may be null).
    telemetry::Registry* registry = nullptr;
    /// Test seam: executes one campaign (default: campaign::run). Must
    /// honor RunOptions like run() does — in particular resume, on_trial
    /// (the record sink feeding the cache), and monitor.
    std::function<CampaignResult(const CampaignSpec&, const RunOptions&)> executor;
  };

  /// What submit() decided: the job id (== fingerprint), whether the
  /// answer came straight from the cache (no work scheduled), and whether
  /// the spec coalesced onto an already-in-flight job.
  struct Submitted {
    std::string id;
    bool cached = false;
    bool coalesced = false;
  };

  /// Completion callback, invoked exactly once with the final status —
  /// from a worker thread when the job runs, or synchronously inside
  /// submit() on a cache hit. Every observer attached to a coalesced job
  /// fires when that one job completes.
  using Observer = std::function<void(const JobStatus&)>;

  /// Creates the cache directory and starts the job workers. Throws
  /// std::runtime_error on an empty cache_dir or unusable directory.
  explicit Scheduler(Options options);

  /// Drains nothing: the running jobs finish, still-queued jobs are
  /// abandoned (their spools persist for a future resume), then workers
  /// join. Observers of abandoned jobs never fire.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  Submitted submit(const CampaignSpec& spec, JobDispatch dispatch = JobDispatch::kLocal,
                   Observer observer = {});

  /// Status of a job known to this scheduler or present in the cache;
  /// std::nullopt for an unknown id.
  [[nodiscard]] std::optional<JobStatus> poll(const std::string& id) const;

  /// Block until the job reaches kDone/kFailed and return its final
  /// status. Throws std::runtime_error for an unknown id.
  JobStatus wait(const std::string& id);

  /// Absolute path of a completed entry's artifact ("summary.json",
  /// "summary.csv", "records.jsonl", "report.json", "header.jsonl"), or
  /// "" while the job is not in the cache (still running, failed, or
  /// unknown).
  [[nodiscard]] std::string artifact_path(const std::string& id, std::string_view name) const;

  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  struct Job;

  void worker_main();
  void execute(Job& job);
  void run_job(Job& job);
  [[nodiscard]] CampaignResult run_fabric(Job& job, const OutcomeMap& resume);
  void store_entry(const Job& job, const CampaignResult& result);
  void evict();
  void count(std::string_view name) const;

  [[nodiscard]] std::string entry_dir(const std::string& id) const;
  [[nodiscard]] std::string spool_records_dir(const std::string& id) const;
  /// Entry present, complete, and carrying this exact header (the
  /// header.jsonl guard demotes a fingerprint collision to a cache miss).
  [[nodiscard]] bool cache_entry_matches(const std::string& id,
                                         const CampaignHeader& header) const;
  [[nodiscard]] JobStatus status_locked(const Job& job) const;

  Options options_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::map<std::string, std::shared_ptr<Job>> jobs_;
  std::deque<std::shared_ptr<Job>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace netcons::campaign
