// The Monte-Carlo campaign engine: executes an arbitrary grid of
// (protocol | process) x n x scheduler, `trials` independent trials per
// point, as sharded jobs on a thread pool.
//
// Determinism contract: the seed of trial t of grid point p is a pure
// function of (spec.base_seed, p, t) — see seeds.hpp — and every trial
// writes its outcome into a pre-assigned slot, with aggregation performed
// sequentially in (point, trial) order after the pool drains. Aggregate
// statistics are therefore bit-identical regardless of thread count, shard
// size, or the order in which the OS schedules the workers.
//
// The grid is expanded unit-major, then scheduler, then fault plan, then
// execution engine, then n:
//   point_index = (((unit_index * |schedulers| + scheduler_index) * |faults|
//                   + fault_index) * |engines| + engine_index) * |ns| + n_index
// With no fault axis declared, |faults| == 1 (the implicit "none" plan);
// with no engine axis, |engines| == 1 (the implicit "naive" engine). Both
// defaults keep the indexing -- hence every per-trial seed -- identical to
// the pre-axis engine.
#pragma once

#include "core/spec.hpp"
#include "faults/fault_plan.hpp"
#include "processes/processes.hpp"
#include "util/stats.hpp"

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace netcons::telemetry {
class CampaignMonitor;
}  // namespace netcons::telemetry

namespace netcons::campaign {

/// Creates a fresh scheduler per trial; a null factory means the
/// simulator's default (the uniform random scheduler of the paper's model).
using SchedulerFactory = std::function<std::unique_ptr<Scheduler>()>;

struct SchedulerOption {
  std::string name = "uniform";
  SchedulerFactory make;  ///< Null: uniform random.
};

/// Creates a fresh execution engine per trial (core/engine.hpp); a null
/// factory means the reference NaiveEngine. The scheduler argument may be
/// null (the uniform default) and is consumed by the engine.
using EngineFactory = std::function<std::unique_ptr<Engine>(
    const Protocol& protocol, int n, std::uint64_t seed, std::unique_ptr<Scheduler> scheduler)>;

struct EngineOption {
  std::string name = "naive";
  EngineFactory make;  ///< Null: NaiveEngine (the reference semantics).
};

/// Instantiate an engine under the null-factory convention (null
/// `make_engine`: the reference NaiveEngine; null `make_scheduler`: the
/// uniform default). The one definition of that policy — the campaign
/// trial runners and the CLI tools all construct through here.
[[nodiscard]] std::unique_ptr<Engine> instantiate_engine(const EngineFactory& make_engine,
                                                         const Protocol& protocol, int n,
                                                         std::uint64_t seed,
                                                         const SchedulerFactory& make_scheduler);

/// One row of the campaign grid: a named constructor protocol or a named
/// Section 3.3 process.
struct Unit {
  std::string name;
  std::variant<ProtocolSpec, ProcessSpec> spec;

  [[nodiscard]] static Unit protocol(std::string name, ProtocolSpec spec) {
    return Unit{std::move(name), std::move(spec)};
  }
  /// Grid-point name under the caller's control (e.g. the CLI passes the
  /// registry slug the user typed, so exports match the input).
  [[nodiscard]] static Unit process(std::string name, ProcessSpec spec) {
    return Unit{std::move(name), std::move(spec)};
  }
  [[nodiscard]] static Unit process(ProcessSpec spec) {
    std::string name = spec.name;
    return Unit{std::move(name), std::move(spec)};
  }
};

struct CampaignSpec {
  std::vector<Unit> units;
  std::vector<int> ns;
  int trials = 1;
  /// Empty: one implicit {"uniform", null} option.
  std::vector<SchedulerOption> schedulers;
  /// Fault-plan axis (see faults/fault_plan.hpp). Empty: one implicit
  /// "none" plan, i.e. the classic fault-free campaign.
  std::vector<faults::FaultPlan> faults;
  /// Execution-engine axis (core/engine.hpp). Empty: one implicit
  /// {"naive", null} option -- the reference per-step engine.
  std::vector<EngineOption> engines;
  std::uint64_t base_seed = 1;
};

/// Outcome of a single trial (slot written by exactly one worker).
struct TrialOutcome {
  bool success = false;
  /// Convergence step (protocols) or completion step (processes).
  std::uint64_t value = 0;
  std::uint64_t steps_executed = 0;
  /// what() of an exception thrown by this trial, if any (empty otherwise).
  std::string error;
  /// Protocols: the stabilized output graph matched the target. Under a
  /// fault plan, success means re-stabilization and target_ok is tracked
  /// separately (a re-stabilized but damaged topology is the interesting
  /// residual-fault outcome, not a trial failure).
  bool target_ok = false;
  // Recovery metrics (zero for fault-free trials); see ConvergenceReport.
  std::uint64_t faults_injected = 0;
  std::uint64_t recovery_steps = 0;
  std::uint64_t edges_deleted = 0;
  std::uint64_t edges_repaired = 0;
  std::uint64_t edges_residual = 0;
};

/// Identity of one expanded grid point: everything the summary sinks and
/// the trial-record header need to name the point, without the live spec
/// objects behind it. This is the unit of the spec fingerprint that
/// sharded/resumed record files are validated against.
struct GridPoint {
  std::string unit;
  std::string scheduler;
  std::string faults = "none";
  std::string engine = "naive";  ///< Execution-engine name of this point.
  /// Non-empty fault plan (drives the reduction's recovery aggregation).
  bool faulted = false;
  int n = 0;
  std::uint64_t seed = 0;  ///< Base of this point's per-trial seed stream.

  [[nodiscard]] bool operator==(const GridPoint&) const = default;
};

/// The campaign's expanded grid, in the canonical point order (unit-major,
/// then scheduler, then fault plan, then engine, then n) with
/// position-derived seeds.
[[nodiscard]] std::vector<GridPoint> expand_grid(const CampaignSpec& spec);

struct PointResult {
  std::string unit;
  std::string scheduler;
  std::string faults = "none";  ///< Fault-plan name of this grid point.
  std::string engine = "naive"; ///< Execution-engine name of this grid point.
  int n = 0;
  int trials = 0;
  int failures = 0;  ///< Timeouts, target mismatches, or per-trial throws.
  /// Re-stabilized faulted trials whose final output graph missed the
  /// target: the damage the protocol could not repair.
  int damaged = 0;
  std::uint64_t seed = 0;           ///< The point's seed-stream base.
  RunningStats convergence_steps;   ///< Over successful trials only.
  RunningStats steps_executed;      ///< Over all trials (certification cost).
  RunningStats recovery_steps;      ///< Re-stabilization time after the last
                                    ///< fault, over successful faulted trials.
  RunningStats faults_injected;     ///< Fault events per trial (all trials).
  RunningStats edges_deleted;       ///< Output edges destroyed by faults.
  RunningStats edges_repaired;      ///< Of those, rebuilt by count.
  RunningStats edges_residual;      ///< Damage never repaired.
  /// First exception message among this point's failed trials (empty when
  /// failures are plain timeouts/target mismatches) — the diagnostic handle
  /// for "why did this point fail".
  std::string first_error;
};

/// Preloaded trial outcomes keyed by (point index, trial index) — what a
/// resume scan of existing trial-record files produces.
using OutcomeMap = std::map<std::pair<std::size_t, int>, TrialOutcome>;

/// Shard membership of trial `trial` of point `point`: the grid is striped
/// at trial granularity (global trial id modulo shard count), so k shards
/// partition any grid into disjoint, load-balanced, position-deterministic
/// slices regardless of how trials and points trade off.
[[nodiscard]] constexpr bool in_shard(std::size_t point, int trial, int trials,
                                      int shard_index, int shard_count) noexcept {
  const std::uint64_t id = static_cast<std::uint64_t>(point) *
                               static_cast<std::uint64_t>(trials) +
                           static_cast<std::uint64_t>(trial);
  return id % static_cast<std::uint64_t>(shard_count) ==
         static_cast<std::uint64_t>(shard_index);
}

struct RunOptions {
  int threads = 0;     ///< 0: hardware concurrency (min 1).
  int shard_size = 0;  ///< Trials per job; 0: derived from trials/threads.
  /// Grid slice to execute: shard `shard_index` of `shard_count` (see
  /// in_shard). The default 0/1 runs the whole grid.
  int shard_index = 0;
  int shard_count = 1;
  /// Stop scheduling new trials once this many have been executed this run
  /// (0: unlimited). The run then reports complete == false; used to test
  /// and exercise crash/resume paths deterministically.
  std::uint64_t trial_cap = 0;
  /// Outcomes already known from a previous run's trial records; those
  /// slots are filled without re-executing. Keys outside the grid are
  /// ignored. Not owned; must outlive run().
  const OutcomeMap* resume = nullptr;
  /// Optional slot filter: when set, only (point, trial) slots for which it
  /// returns true are scheduled this run (composes with shard striping and
  /// resume skips — a filtered-out slot is simply not this run's work).
  /// This is how a fabric worker executes a lease: one run() per leased
  /// trial range, selecting exactly those slots.
  std::function<bool(std::size_t point, int trial)> select;
  /// Optional progress callback, invoked from worker threads after each
  /// completed job with (executed_trials, trials_scheduled_this_run) —
  /// resumed and out-of-shard trials are not scheduled, so the total
  /// reflects this invocation's actual work. Must be thread-safe.
  std::function<void(std::uint64_t, std::uint64_t)> progress;
  /// Optional per-trial observer, invoked from worker threads immediately
  /// after each *executed* trial (never for resumed slots) with the trial's
  /// grid position, derived seed, and outcome. Must be thread-safe; this is
  /// where a TrialRecordSink plugs in.
  std::function<void(std::size_t point, int trial, std::uint64_t seed,
                     const TrialOutcome& outcome)>
      on_trial;
  /// Optional progress/heartbeat monitor (telemetry/heartbeat.hpp): run()
  /// calls begin() with this invocation's scheduled trial count and worker
  /// count, record_job() from every worker, and end() when the pool drains.
  /// Not owned; must outlive run(). Purely observational -- attaching a
  /// monitor never changes outcomes or summary bytes.
  telemetry::CampaignMonitor* monitor = nullptr;
};

struct CampaignResult {
  /// Deterministic grid order. Populated only when `complete` — a sharded
  /// or capped run holds a partial outcome set that only the trial-record
  /// stream (and netcons_merge) can turn into a faithful summary.
  std::vector<PointResult> points;
  bool complete = true;  ///< Every (point, trial) slot executed or resumed.
  std::uint64_t total_trials = 0;     ///< Grid size: points x trials.
  std::uint64_t executed_trials = 0;  ///< Trials actually run this invocation.
  std::uint64_t resumed_trials = 0;   ///< Slots filled from RunOptions::resume.
  std::uint64_t total_failures = 0;   ///< Over all filled slots.
  std::size_t jobs = 0;
  int threads = 0;
  double wall_seconds = 0.0;  ///< Execution time (not part of determinism).
};

/// The engine's sequential reduction: fold fully-populated outcome slots
/// into PointResults in (point, trial) order. Exposed so netcons_merge can
/// rebuild the exact summary a single-process run would have produced from
/// a merged record stream — same code path, byte-identical JSON/CSV.
/// `outcomes` must hold one slot per grid point, `trials` slots each.
[[nodiscard]] CampaignResult reduce_outcomes(
    const std::vector<GridPoint>& grid, int trials,
    const std::vector<std::vector<TrialOutcome>>& outcomes);

/// Execute the campaign. Trial-level throws (timeouts, protocol predicates)
/// are counted as failures and their first message is recorded on the
/// point; std::bad_alloc propagates (an out-of-memory campaign must abort,
/// not masquerade as protocol non-convergence).
[[nodiscard]] CampaignResult run(const CampaignSpec& spec, const RunOptions& options = {});

/// Full report of one protocol trial: simulate to certified stability under
/// the given scheduler and fault plan (empty plan: fault-free), then
/// validate the output graph. This is THE canonical trial-driving sequence
/// — analysis::run_trial and the campaign engine both delegate here.
/// Exceptions propagate.
struct ProtocolTrialReport {
  bool stabilized = false;
  bool target_ok = false;
  std::uint64_t convergence_step = 0;
  std::uint64_t steps_executed = 0;
  // Recovery metrics, copied from ConvergenceReport (zero when fault-free).
  std::uint64_t faults_injected = 0;
  std::uint64_t recovery_steps = 0;
  std::uint64_t output_edges_deleted = 0;
  std::uint64_t output_edges_repaired = 0;
  std::uint64_t output_edges_residual = 0;
};
[[nodiscard]] ProtocolTrialReport run_protocol_trial_report(
    const ProtocolSpec& spec, int n, std::uint64_t seed,
    const SchedulerFactory& make_scheduler = {},
    const faults::FaultPlan& fault_plan = {}, const EngineFactory& make_engine = {});

/// Run one protocol trial as the engine's inner loop: the report collapsed
/// to a TrialOutcome, with trial-level throws captured instead of raised.
/// Fault-free: success = stabilized && target matched. Under a fault plan:
/// success = re-stabilized after the plan ran, with target_ok recorded
/// separately (see TrialOutcome).
[[nodiscard]] TrialOutcome run_protocol_trial(const ProtocolSpec& spec, int n,
                                              std::uint64_t seed,
                                              const SchedulerFactory& make_scheduler = {},
                                              const faults::FaultPlan& fault_plan = {},
                                              const EngineFactory& make_engine = {});

/// Run one process trial (completion of the census condition) with an
/// explicit scheduler factory. A timeout is reported as failure, not thrown.
/// Processes have no stabilization phase, so stabilization-triggered fault
/// events fire before the first step instead.
[[nodiscard]] TrialOutcome run_process_trial(const ProcessSpec& spec, int n,
                                             std::uint64_t seed,
                                             const SchedulerFactory& make_scheduler = {},
                                             const faults::FaultPlan& fault_plan = {},
                                             const EngineFactory& make_engine = {});

/// Effective thread count for `requested` (0 resolves to hardware).
[[nodiscard]] int resolve_threads(int requested) noexcept;

}  // namespace netcons::campaign
