// The Monte-Carlo campaign engine: executes an arbitrary grid of
// (protocol | process) x n x scheduler, `trials` independent trials per
// point, as sharded jobs on a thread pool.
//
// Determinism contract: the seed of trial t of grid point p is a pure
// function of (spec.base_seed, p, t) — see seeds.hpp — and every trial
// writes its outcome into a pre-assigned slot, with aggregation performed
// sequentially in (point, trial) order after the pool drains. Aggregate
// statistics are therefore bit-identical regardless of thread count, shard
// size, or the order in which the OS schedules the workers.
//
// The grid is expanded unit-major, then scheduler, then n:
//   point_index = (unit_index * |schedulers| + scheduler_index) * |ns| + n_index
#pragma once

#include "core/spec.hpp"
#include "processes/processes.hpp"
#include "util/stats.hpp"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace netcons::campaign {

/// Creates a fresh scheduler per trial; a null factory means the
/// simulator's default (the uniform random scheduler of the paper's model).
using SchedulerFactory = std::function<std::unique_ptr<Scheduler>()>;

struct SchedulerOption {
  std::string name = "uniform";
  SchedulerFactory make;  ///< Null: uniform random.
};

/// One row of the campaign grid: a named constructor protocol or a named
/// Section 3.3 process.
struct Unit {
  std::string name;
  std::variant<ProtocolSpec, ProcessSpec> spec;

  [[nodiscard]] static Unit protocol(std::string name, ProtocolSpec spec) {
    return Unit{std::move(name), std::move(spec)};
  }
  [[nodiscard]] static Unit process(ProcessSpec spec) {
    std::string name = spec.name;
    return Unit{std::move(name), std::move(spec)};
  }
};

struct CampaignSpec {
  std::vector<Unit> units;
  std::vector<int> ns;
  int trials = 1;
  /// Empty: one implicit {"uniform", null} option.
  std::vector<SchedulerOption> schedulers;
  std::uint64_t base_seed = 1;
};

/// Outcome of a single trial (slot written by exactly one worker).
struct TrialOutcome {
  bool success = false;
  /// Convergence step (protocols) or completion step (processes).
  std::uint64_t value = 0;
  std::uint64_t steps_executed = 0;
  /// what() of an exception thrown by this trial, if any (empty otherwise).
  std::string error;
};

struct PointResult {
  std::string unit;
  std::string scheduler;
  int n = 0;
  int trials = 0;
  int failures = 0;  ///< Timeouts, target mismatches, or per-trial throws.
  std::uint64_t seed = 0;           ///< The point's seed-stream base.
  RunningStats convergence_steps;   ///< Over successful trials only.
  RunningStats steps_executed;      ///< Over all trials (certification cost).
  /// First exception message among this point's failed trials (empty when
  /// failures are plain timeouts/target mismatches) — the diagnostic handle
  /// for "why did this point fail".
  std::string first_error;
};

struct RunOptions {
  int threads = 0;     ///< 0: hardware concurrency (min 1).
  int shard_size = 0;  ///< Trials per job; 0: derived from trials/threads.
  /// Optional progress callback, invoked from worker threads after each
  /// completed shard with (completed_trials, total_trials). Must be
  /// thread-safe.
  std::function<void(std::uint64_t, std::uint64_t)> progress;
};

struct CampaignResult {
  std::vector<PointResult> points;  ///< Deterministic grid order.
  std::uint64_t total_trials = 0;
  std::uint64_t total_failures = 0;
  std::size_t jobs = 0;
  int threads = 0;
  double wall_seconds = 0.0;  ///< Execution time (not part of determinism).
};

/// Execute the campaign. Trial-level throws (timeouts, protocol predicates)
/// are counted as failures and their first message is recorded on the
/// point; std::bad_alloc propagates (an out-of-memory campaign must abort,
/// not masquerade as protocol non-convergence).
[[nodiscard]] CampaignResult run(const CampaignSpec& spec, const RunOptions& options = {});

/// Full report of one protocol trial: simulate to certified stability under
/// the given scheduler, then validate the output graph. This is THE
/// canonical trial-driving sequence — analysis::run_trial and the campaign
/// engine both delegate here. Exceptions propagate.
struct ProtocolTrialReport {
  bool stabilized = false;
  bool target_ok = false;
  std::uint64_t convergence_step = 0;
  std::uint64_t steps_executed = 0;
};
[[nodiscard]] ProtocolTrialReport run_protocol_trial_report(
    const ProtocolSpec& spec, int n, std::uint64_t seed,
    const SchedulerFactory& make_scheduler = {});

/// Run one protocol trial as the engine's inner loop: the report collapsed
/// to a TrialOutcome, with trial-level throws captured instead of raised.
[[nodiscard]] TrialOutcome run_protocol_trial(const ProtocolSpec& spec, int n,
                                              std::uint64_t seed,
                                              const SchedulerFactory& make_scheduler = {});

/// Run one process trial (completion of the census condition) with an
/// explicit scheduler factory. A timeout is reported as failure, not thrown.
[[nodiscard]] TrialOutcome run_process_trial(const ProcessSpec& spec, int n,
                                             std::uint64_t seed,
                                             const SchedulerFactory& make_scheduler = {});

/// Effective thread count for `requested` (0 resolves to hardware).
[[nodiscard]] int resolve_threads(int requested) noexcept;

}  // namespace netcons::campaign
