// The Monte-Carlo campaign engine: executes an arbitrary grid of
// (protocol | process) x n x scheduler, `trials` independent trials per
// point, as sharded jobs on a thread pool.
//
// Determinism contract: the seed of trial t of grid point p is a pure
// function of (spec.base_seed, p, t) — see seeds.hpp — and every trial
// writes its outcome into a pre-assigned slot, with aggregation performed
// sequentially in (point, trial) order after the pool drains. Aggregate
// statistics are therefore bit-identical regardless of thread count, shard
// size, or the order in which the OS schedules the workers.
//
// The grid is expanded unit-major, then scheduler, then fault plan, then n:
//   point_index = ((unit_index * |schedulers| + scheduler_index) * |faults|
//                  + fault_index) * |ns| + n_index
// With no fault axis declared, |faults| == 1 (the implicit "none" plan) and
// the indexing -- hence every per-trial seed -- is identical to the
// pre-fault-axis engine.
#pragma once

#include "core/spec.hpp"
#include "faults/fault_plan.hpp"
#include "processes/processes.hpp"
#include "util/stats.hpp"

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace netcons::campaign {

/// Creates a fresh scheduler per trial; a null factory means the
/// simulator's default (the uniform random scheduler of the paper's model).
using SchedulerFactory = std::function<std::unique_ptr<Scheduler>()>;

struct SchedulerOption {
  std::string name = "uniform";
  SchedulerFactory make;  ///< Null: uniform random.
};

/// One row of the campaign grid: a named constructor protocol or a named
/// Section 3.3 process.
struct Unit {
  std::string name;
  std::variant<ProtocolSpec, ProcessSpec> spec;

  [[nodiscard]] static Unit protocol(std::string name, ProtocolSpec spec) {
    return Unit{std::move(name), std::move(spec)};
  }
  /// Grid-point name under the caller's control (e.g. the CLI passes the
  /// registry slug the user typed, so exports match the input).
  [[nodiscard]] static Unit process(std::string name, ProcessSpec spec) {
    return Unit{std::move(name), std::move(spec)};
  }
  [[nodiscard]] static Unit process(ProcessSpec spec) {
    std::string name = spec.name;
    return Unit{std::move(name), std::move(spec)};
  }
};

struct CampaignSpec {
  std::vector<Unit> units;
  std::vector<int> ns;
  int trials = 1;
  /// Empty: one implicit {"uniform", null} option.
  std::vector<SchedulerOption> schedulers;
  /// Fault-plan axis (see faults/fault_plan.hpp). Empty: one implicit
  /// "none" plan, i.e. the classic fault-free campaign.
  std::vector<faults::FaultPlan> faults;
  std::uint64_t base_seed = 1;
};

/// Outcome of a single trial (slot written by exactly one worker).
struct TrialOutcome {
  bool success = false;
  /// Convergence step (protocols) or completion step (processes).
  std::uint64_t value = 0;
  std::uint64_t steps_executed = 0;
  /// what() of an exception thrown by this trial, if any (empty otherwise).
  std::string error;
  /// Protocols: the stabilized output graph matched the target. Under a
  /// fault plan, success means re-stabilization and target_ok is tracked
  /// separately (a re-stabilized but damaged topology is the interesting
  /// residual-fault outcome, not a trial failure).
  bool target_ok = false;
  // Recovery metrics (zero for fault-free trials); see ConvergenceReport.
  std::uint64_t faults_injected = 0;
  std::uint64_t recovery_steps = 0;
  std::uint64_t edges_deleted = 0;
  std::uint64_t edges_repaired = 0;
  std::uint64_t edges_residual = 0;
};

struct PointResult {
  std::string unit;
  std::string scheduler;
  std::string faults = "none";  ///< Fault-plan name of this grid point.
  int n = 0;
  int trials = 0;
  int failures = 0;  ///< Timeouts, target mismatches, or per-trial throws.
  /// Re-stabilized faulted trials whose final output graph missed the
  /// target: the damage the protocol could not repair.
  int damaged = 0;
  std::uint64_t seed = 0;           ///< The point's seed-stream base.
  RunningStats convergence_steps;   ///< Over successful trials only.
  RunningStats steps_executed;      ///< Over all trials (certification cost).
  RunningStats recovery_steps;      ///< Re-stabilization time after the last
                                    ///< fault, over successful faulted trials.
  RunningStats faults_injected;     ///< Fault events per trial (all trials).
  RunningStats edges_deleted;       ///< Output edges destroyed by faults.
  RunningStats edges_repaired;      ///< Of those, rebuilt by count.
  RunningStats edges_residual;      ///< Damage never repaired.
  /// First exception message among this point's failed trials (empty when
  /// failures are plain timeouts/target mismatches) — the diagnostic handle
  /// for "why did this point fail".
  std::string first_error;
};

struct RunOptions {
  int threads = 0;     ///< 0: hardware concurrency (min 1).
  int shard_size = 0;  ///< Trials per job; 0: derived from trials/threads.
  /// Optional progress callback, invoked from worker threads after each
  /// completed shard with (completed_trials, total_trials). Must be
  /// thread-safe.
  std::function<void(std::uint64_t, std::uint64_t)> progress;
};

struct CampaignResult {
  std::vector<PointResult> points;  ///< Deterministic grid order.
  std::uint64_t total_trials = 0;
  std::uint64_t total_failures = 0;
  std::size_t jobs = 0;
  int threads = 0;
  double wall_seconds = 0.0;  ///< Execution time (not part of determinism).
};

/// Execute the campaign. Trial-level throws (timeouts, protocol predicates)
/// are counted as failures and their first message is recorded on the
/// point; std::bad_alloc propagates (an out-of-memory campaign must abort,
/// not masquerade as protocol non-convergence).
[[nodiscard]] CampaignResult run(const CampaignSpec& spec, const RunOptions& options = {});

/// Full report of one protocol trial: simulate to certified stability under
/// the given scheduler and fault plan (empty plan: fault-free), then
/// validate the output graph. This is THE canonical trial-driving sequence
/// — analysis::run_trial and the campaign engine both delegate here.
/// Exceptions propagate.
struct ProtocolTrialReport {
  bool stabilized = false;
  bool target_ok = false;
  std::uint64_t convergence_step = 0;
  std::uint64_t steps_executed = 0;
  // Recovery metrics, copied from ConvergenceReport (zero when fault-free).
  std::uint64_t faults_injected = 0;
  std::uint64_t recovery_steps = 0;
  std::uint64_t output_edges_deleted = 0;
  std::uint64_t output_edges_repaired = 0;
  std::uint64_t output_edges_residual = 0;
};
[[nodiscard]] ProtocolTrialReport run_protocol_trial_report(
    const ProtocolSpec& spec, int n, std::uint64_t seed,
    const SchedulerFactory& make_scheduler = {},
    const faults::FaultPlan& fault_plan = {});

/// Run one protocol trial as the engine's inner loop: the report collapsed
/// to a TrialOutcome, with trial-level throws captured instead of raised.
/// Fault-free: success = stabilized && target matched. Under a fault plan:
/// success = re-stabilized after the plan ran, with target_ok recorded
/// separately (see TrialOutcome).
[[nodiscard]] TrialOutcome run_protocol_trial(const ProtocolSpec& spec, int n,
                                              std::uint64_t seed,
                                              const SchedulerFactory& make_scheduler = {},
                                              const faults::FaultPlan& fault_plan = {});

/// Run one process trial (completion of the census condition) with an
/// explicit scheduler factory. A timeout is reported as failure, not thrown.
/// Processes have no stabilization phase, so stabilization-triggered fault
/// events fire before the first step instead.
[[nodiscard]] TrialOutcome run_process_trial(const ProcessSpec& spec, int n,
                                             std::uint64_t seed,
                                             const SchedulerFactory& make_scheduler = {},
                                             const faults::FaultPlan& fault_plan = {});

/// Effective thread count for `requested` (0 resolves to hardware).
[[nodiscard]] int resolve_threads(int requested) noexcept;

}  // namespace netcons::campaign
