#include "campaign/registry.hpp"

#include "core/census_engine.hpp"
#include "protocols/protocols.hpp"
#include "sched/proximity.hpp"
#include "sched/schedulers.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>

namespace netcons::campaign {

namespace {

using ProtocolFactory = std::function<ProtocolSpec(const ProtocolParams&)>;

const std::map<std::string, ProtocolFactory>& protocol_map() {
  static const std::map<std::string, ProtocolFactory> map = {
      {"simple-global-line", [](const ProtocolParams&) { return protocols::simple_global_line(); }},
      {"fast-global-line", [](const ProtocolParams&) { return protocols::fast_global_line(); }},
      {"faster-global-line", [](const ProtocolParams&) { return protocols::faster_global_line(); }},
      {"preelected-line", [](const ProtocolParams&) { return protocols::preelected_line(); }},
      {"cycle-cover", [](const ProtocolParams&) { return protocols::cycle_cover(); }},
      {"global-star", [](const ProtocolParams&) { return protocols::global_star(); }},
      {"global-ring", [](const ProtocolParams&) { return protocols::global_ring(); }},
      {"2rc", [](const ProtocolParams&) { return protocols::two_rc(); }},
      {"krc", [](const ProtocolParams& p) { return protocols::krc(p.k); }},
      {"c-cliques", [](const ProtocolParams& p) { return protocols::c_cliques(p.c); }},
      {"spanning-net", [](const ProtocolParams&) { return protocols::spanning_net(); }},
      {"degree-doubling", [](const ProtocolParams& p) { return protocols::degree_doubling(p.d); }},
      {"partition-udm", [](const ProtocolParams&) { return protocols::partition_udm(); }},
  };
  return map;
}

const std::vector<ProcessSpec>& process_list() {
  static const std::vector<ProcessSpec> list = all_processes();
  return list;
}

/// CLI-friendly name: "One-way epidemic" -> "one-way-epidemic".
std::string slugify(const std::string& name) {
  std::string out;
  for (const char c : name) {
    out += (c == ' ') ? '-' : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

constexpr const char* kProximityGrammar =
    "proximity spec: proximity[:alpha=A][:r=R][:layout=L] with A > 0, "
    "0 < R <= 1, L in {uniform, clustered, grid}";

/// Strict positive-double parse (the whole token must be a number).
std::optional<double> parse_positive(const std::string& text) {
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) return std::nullopt;
  if (!(value > 0.0)) return std::nullopt;
  return value;
}

/// Parse a proximity spec, filling `params` and the canonicalized spec
/// string (defaults spelled out, fixed alpha/r/layout order, the user's
/// literal value tokens preserved).
bool parse_proximity(const std::string& spec, ProximityParams* params,
                     std::string* canonical, std::string* error) {
  std::string alpha_tok = "2";
  std::string r_tok = "0.1";
  std::string layout_tok = "uniform";

  std::stringstream stream(spec);
  std::string item;
  std::getline(stream, item, ':');  // the "proximity" head, already matched
  while (std::getline(stream, item, ':')) {
    const std::size_t eq = item.find('=');
    const std::string key = eq == std::string::npos ? item : item.substr(0, eq);
    const std::string value = eq == std::string::npos ? "" : item.substr(eq + 1);
    if (eq == std::string::npos || value.empty()) {
      if (error != nullptr) {
        *error = "proximity: expected key=value, got '" + item + "'; " + kProximityGrammar;
      }
      return false;
    }
    if (key == "alpha") {
      const auto alpha = parse_positive(value);
      if (!alpha) {
        if (error != nullptr) {
          *error = "proximity: alpha must be a positive number, got '" + value + "'";
        }
        return false;
      }
      params->alpha = *alpha;
      alpha_tok = value;
    } else if (key == "r") {
      const auto r = parse_positive(value);
      if (!r || *r > 1.0) {
        if (error != nullptr) {
          *error = "proximity: r must be in (0, 1], got '" + value + "'";
        }
        return false;
      }
      params->radius = *r;
      r_tok = value;
    } else if (key == "layout") {
      const auto layout = spatial::layout_by_name(value);
      if (!layout) {
        if (error != nullptr) {
          *error = "proximity: unknown layout '" + value +
                   "' (expected uniform, clustered, or grid)";
        }
        return false;
      }
      params->layout = *layout;
      layout_tok = value;
    } else {
      if (error != nullptr) {
        *error = "proximity: unknown parameter '" + key + "'; " + kProximityGrammar;
      }
      return false;
    }
  }
  *canonical = "proximity:alpha=" + alpha_tok + ":r=" + r_tok + ":layout=" + layout_tok;
  return true;
}

}  // namespace

const std::vector<std::string>& protocol_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const auto& [name, factory] : protocol_map()) out.push_back(name);
    return out;
  }();
  return names;
}

std::optional<ProtocolSpec> make_protocol(const std::string& name,
                                          const ProtocolParams& params) {
  const auto it = protocol_map().find(name);
  if (it == protocol_map().end()) return std::nullopt;
  return it->second(params);
}

const std::vector<std::string>& process_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const auto& spec : process_list()) out.push_back(slugify(spec.name));
    return out;
  }();
  return names;
}

std::optional<ProcessSpec> make_process(const std::string& name) {
  for (const auto& spec : process_list()) {
    if (spec.name == name || slugify(spec.name) == name) return spec;
  }
  return std::nullopt;
}

const std::vector<std::string>& scheduler_names() {
  static const std::vector<std::string> names = {"uniform", "permutation", "stale-biased",
                                                 "proximity"};
  return names;
}

const std::vector<std::string>& fault_plan_examples() {
  static const std::vector<std::string> examples = {
      "none", "crash:k=1", "crash:k=2", "crash:k=1:target=max-degree",
      "crash:k=1:target=leader", "edge-burst:f=0.1", "edge-rate:p=1e-4", "reset:k=1"};
  return examples;
}

const std::vector<std::string>& engine_names() {
  static const std::vector<std::string> names = {"naive", "census", "census-leap"};
  return names;
}

std::optional<EngineOption> make_engine(const std::string& name) {
  if (name == "naive") return EngineOption{"naive", nullptr};
  if (name == "census") {
    return EngineOption{"census",
                        [](const Protocol& protocol, int n, std::uint64_t seed,
                           std::unique_ptr<Scheduler> scheduler) -> std::unique_ptr<Engine> {
                          return std::make_unique<CensusEngine>(protocol, n, seed,
                                                                std::move(scheduler));
                        }};
  }
  if (name == "census-leap") {
    return EngineOption{"census-leap",
                        [](const Protocol& protocol, int n, std::uint64_t seed,
                           std::unique_ptr<Scheduler> scheduler) -> std::unique_ptr<Engine> {
                          CensusLeapOptions leap;
                          leap.enabled = true;
                          return std::make_unique<CensusEngine>(protocol, n, seed,
                                                                std::move(scheduler), leap);
                        }};
  }
  return std::nullopt;
}

std::optional<faults::FaultPlan> make_fault_plan(const std::string& spec, std::string* error) {
  try {
    return faults::parse_fault_plan(spec);
  } catch (const std::invalid_argument& e) {
    if (error != nullptr) *error = e.what();
    return std::nullopt;
  }
}

std::optional<SchedulerOption> make_scheduler(const std::string& name, std::string* error) {
  if (name == "uniform") return SchedulerOption{"uniform", nullptr};
  if (name == "permutation") {
    return SchedulerOption{"permutation",
                           [] { return std::make_unique<RandomPermutationScheduler>(); }};
  }
  if (name == "stale-biased") {
    return SchedulerOption{"stale-biased",
                           [] { return std::make_unique<StaleBiasedScheduler>(); }};
  }
  if (name.rfind("stale-biased:", 0) == 0) {
    // The bare name keeps its historical spelling (bias 0.5); only the
    // parameterized form canonicalizes the bias into the point name.
    const std::string value = name.substr(std::string("stale-biased:").size());
    if (value.rfind("bias=", 0) != 0) {
      if (error != nullptr) {
        *error = "stale-biased spec: stale-biased[:bias=B] with B in [0, 1), got '" + name + "'";
      }
      return std::nullopt;
    }
    const std::string bias_tok = value.substr(std::string("bias=").size());
    char* end = nullptr;
    errno = 0;
    const double bias = std::strtod(bias_tok.c_str(), &end);
    if (bias_tok.empty() || end == bias_tok.c_str() || *end != '\0' || errno == ERANGE ||
        bias < 0.0 || bias >= 1.0) {
      if (error != nullptr) {
        *error = "stale-biased: bias must be in [0, 1), got '" + bias_tok + "'";
      }
      return std::nullopt;
    }
    return SchedulerOption{"stale-biased:bias=" + bias_tok,
                           [bias] { return std::make_unique<StaleBiasedScheduler>(bias); }};
  }
  if (name == "proximity" || name.rfind("proximity:", 0) == 0) {
    ProximityParams params;
    std::string canonical;
    if (!parse_proximity(name, &params, &canonical, error)) return std::nullopt;
    return SchedulerOption{canonical,
                           [params] { return std::make_unique<ProximityScheduler>(params); }};
  }
  return std::nullopt;
}

}  // namespace netcons::campaign
