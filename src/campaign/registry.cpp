#include "campaign/registry.hpp"

#include "core/census_engine.hpp"
#include "protocols/protocols.hpp"
#include "sched/schedulers.hpp"

#include <cctype>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>

namespace netcons::campaign {

namespace {

using ProtocolFactory = std::function<ProtocolSpec(const ProtocolParams&)>;

const std::map<std::string, ProtocolFactory>& protocol_map() {
  static const std::map<std::string, ProtocolFactory> map = {
      {"simple-global-line", [](const ProtocolParams&) { return protocols::simple_global_line(); }},
      {"fast-global-line", [](const ProtocolParams&) { return protocols::fast_global_line(); }},
      {"faster-global-line", [](const ProtocolParams&) { return protocols::faster_global_line(); }},
      {"preelected-line", [](const ProtocolParams&) { return protocols::preelected_line(); }},
      {"cycle-cover", [](const ProtocolParams&) { return protocols::cycle_cover(); }},
      {"global-star", [](const ProtocolParams&) { return protocols::global_star(); }},
      {"global-ring", [](const ProtocolParams&) { return protocols::global_ring(); }},
      {"2rc", [](const ProtocolParams&) { return protocols::two_rc(); }},
      {"krc", [](const ProtocolParams& p) { return protocols::krc(p.k); }},
      {"c-cliques", [](const ProtocolParams& p) { return protocols::c_cliques(p.c); }},
      {"spanning-net", [](const ProtocolParams&) { return protocols::spanning_net(); }},
      {"degree-doubling", [](const ProtocolParams& p) { return protocols::degree_doubling(p.d); }},
      {"partition-udm", [](const ProtocolParams&) { return protocols::partition_udm(); }},
  };
  return map;
}

const std::vector<ProcessSpec>& process_list() {
  static const std::vector<ProcessSpec> list = all_processes();
  return list;
}

/// CLI-friendly name: "One-way epidemic" -> "one-way-epidemic".
std::string slugify(const std::string& name) {
  std::string out;
  for (const char c : name) {
    out += (c == ' ') ? '-' : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

}  // namespace

const std::vector<std::string>& protocol_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const auto& [name, factory] : protocol_map()) out.push_back(name);
    return out;
  }();
  return names;
}

std::optional<ProtocolSpec> make_protocol(const std::string& name,
                                          const ProtocolParams& params) {
  const auto it = protocol_map().find(name);
  if (it == protocol_map().end()) return std::nullopt;
  return it->second(params);
}

const std::vector<std::string>& process_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const auto& spec : process_list()) out.push_back(slugify(spec.name));
    return out;
  }();
  return names;
}

std::optional<ProcessSpec> make_process(const std::string& name) {
  for (const auto& spec : process_list()) {
    if (spec.name == name || slugify(spec.name) == name) return spec;
  }
  return std::nullopt;
}

const std::vector<std::string>& scheduler_names() {
  static const std::vector<std::string> names = {"uniform", "permutation", "stale-biased"};
  return names;
}

const std::vector<std::string>& fault_plan_examples() {
  static const std::vector<std::string> examples = {
      "none", "crash:k=1", "crash:k=2", "crash:k=1:target=max-degree",
      "crash:k=1:target=leader", "edge-burst:f=0.1", "edge-rate:p=1e-4", "reset:k=1"};
  return examples;
}

const std::vector<std::string>& engine_names() {
  static const std::vector<std::string> names = {"naive", "census", "census-leap"};
  return names;
}

std::optional<EngineOption> make_engine(const std::string& name) {
  if (name == "naive") return EngineOption{"naive", nullptr};
  if (name == "census") {
    return EngineOption{"census",
                        [](const Protocol& protocol, int n, std::uint64_t seed,
                           std::unique_ptr<Scheduler> scheduler) -> std::unique_ptr<Engine> {
                          return std::make_unique<CensusEngine>(protocol, n, seed,
                                                                std::move(scheduler));
                        }};
  }
  if (name == "census-leap") {
    return EngineOption{"census-leap",
                        [](const Protocol& protocol, int n, std::uint64_t seed,
                           std::unique_ptr<Scheduler> scheduler) -> std::unique_ptr<Engine> {
                          CensusLeapOptions leap;
                          leap.enabled = true;
                          return std::make_unique<CensusEngine>(protocol, n, seed,
                                                                std::move(scheduler), leap);
                        }};
  }
  return std::nullopt;
}

std::optional<faults::FaultPlan> make_fault_plan(const std::string& spec, std::string* error) {
  try {
    return faults::parse_fault_plan(spec);
  } catch (const std::invalid_argument& e) {
    if (error != nullptr) *error = e.what();
    return std::nullopt;
  }
}

std::optional<SchedulerOption> make_scheduler(const std::string& name) {
  if (name == "uniform") return SchedulerOption{"uniform", nullptr};
  if (name == "permutation") {
    return SchedulerOption{"permutation",
                           [] { return std::make_unique<RandomPermutationScheduler>(); }};
  }
  if (name == "stale-biased") {
    return SchedulerOption{"stale-biased",
                           [] { return std::make_unique<StaleBiasedScheduler>(); }};
  }
  return std::nullopt;
}

}  // namespace netcons::campaign
