// A minimal work-stealing-free job queue: jobs are indices into a
// caller-owned vector, handed out by an atomic cursor. Because every job
// writes only to its own pre-assigned output slots, workers need no further
// synchronization, and the final (sequential) reduction over the slots is
// independent of which thread ran which job — the keystone of the campaign
// engine's bit-identical-results guarantee.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace netcons::campaign {

class JobQueue {
 public:
  explicit JobQueue(std::size_t job_count) noexcept : job_count_(job_count) {}

  /// Next unclaimed job index, or nullopt when the queue is drained.
  [[nodiscard]] std::optional<std::size_t> pop() noexcept {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= job_count_) return std::nullopt;
    return i;
  }

  [[nodiscard]] std::size_t size() const noexcept { return job_count_; }

 private:
  std::size_t job_count_;
  std::atomic<std::size_t> next_{0};
};

/// Run `body(job_index)` for every job in [0, job_count) on `threads`
/// workers (the calling thread participates, so threads == 1 never spawns).
/// The first exception escaping `body` is rethrown on the caller after all
/// workers finish; remaining jobs are abandoned once it is raised.
inline void run_jobs(std::size_t job_count, int threads,
                     const std::function<void(std::size_t)>& body) {
  if (job_count == 0) return;
  if (threads < 1) threads = 1;
  // Never spawn workers that would only pop an empty queue.
  threads = static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(threads), job_count));

  JobQueue queue(job_count);
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    while (!failed.load(std::memory_order_relaxed)) {
      const auto job = queue.pop();
      if (!job) return;
      try {
        body(*job);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads - 1));
  try {
    for (int t = 1; t < threads; ++t) pool.emplace_back(worker);
  } catch (...) {
    // Thread exhaustion mid-spawn: stop handing out jobs, join what
    // started (never destroy a joinable std::thread), then surface it.
    failed.store(true, std::memory_order_relaxed);
    for (auto& thread : pool) thread.join();
    throw;
  }
  worker();
  for (auto& thread : pool) thread.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace netcons::campaign
