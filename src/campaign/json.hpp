// Minimal JSON reading/writing shared by the campaign export surfaces
// (result_sink's summary documents, trial_record's JSONL streams).
//
// Writing is append-to-string with two invariants the byte-identity
// contract depends on: strings are escaped the same way everywhere, and
// doubles print with %.17g (shortest form that round-trips IEEE binary64).
// Reading keeps number tokens as raw text so 64-bit integers and doubles
// both extract losslessly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace netcons::campaign::json {

struct Value;
using Object = std::map<std::string, Value>;
using Array = std::vector<Value>;

struct Value {
  // Numbers are kept as the raw token so integers up to 2^64-1 and doubles
  // both parse losslessly at extraction time.
  std::variant<std::nullptr_t, bool, std::string, Object, Array> value;
  std::string number;  ///< Non-empty iff the value is a number token.

  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::uint64_t as_u64() const;
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] const Array& as_array() const;
};

/// Parse a complete JSON document. Throws std::runtime_error on malformed
/// input or trailing content. Takes a view so JSONL consumers can parse
/// line slices of a large buffer without per-line copies.
[[nodiscard]] Value parse(std::string_view text);

/// Required-field lookup; throws std::runtime_error naming the key.
[[nodiscard]] const Value& field(const Object& object, const std::string& key);

/// Append `s` as a quoted, escaped JSON string.
void append_escaped(std::string& out, const std::string& s);

/// Append the shortest representation that parses back to the same double
/// (%.17g is always sufficient for IEEE binary64). Non-finite values print
/// as 0 (JSON has no inf/nan; campaigns never emit them).
void append_double(std::string& out, double value);

}  // namespace netcons::campaign::json
