// The fabric worker: connects to a coordinator, proves it was launched
// with the same campaign spec (hello carries the netcons-trials-v2 header
// line; the coordinator diffs fingerprints), then loops request → grant →
// execute → done until the coordinator answers drain.
//
// Each granted lease executes as one campaign::run invocation with
// RunOptions::select restricted to the leased trial range, so engines,
// fault plans, schedulers, per-trial seeds, and telemetry flow through the
// exact single-host code path — the fabric adds scheduling, never
// semantics. Outcomes stream to a per-worker record file in the shared
// records directory (fabric-wNNNN-gNNNN.jsonl); netcons_merge folds any
// set of worker files into the byte-identical single-host summary.
//
// Liveness: one long-lived CampaignMonitor watches every run; its
// netcons-heartbeat-v1 lines are forwarded verbatim as heartbeat frames
// from the monitor's ticker thread (socket writes are mutex-serialized
// against the request/done traffic). Between leases the request traffic
// itself is the liveness signal.
#pragma once

#include "campaign/campaign.hpp"

#include <cstdint>
#include <string>

namespace netcons::fabric {

struct WorkerOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  /// Directory shared (or later collected) with every other worker's
  /// records; this worker writes fabric-wNNNN-gNNNN.jsonl into it.
  std::string records_dir;
  int threads = 0;  ///< 0: hardware concurrency.
  /// Socket I/O timeout: a coordinator silent this long is treated as
  /// dead and the worker exits with an error (0: block forever).
  double io_timeout_seconds = 30.0;
  /// Shared secret carried in the hello frame; must equal the
  /// coordinator's --token (empty on both sides disables auth).
  std::string token;
  bool quiet = false;  ///< Suppress per-lease progress lines on stderr.
};

struct WorkerSummary {
  int worker = 0;  ///< Coordinator-assigned id.
  std::uint64_t leases = 0;
  std::uint64_t executed_trials = 0;
  bool drained = false;  ///< True: clean drain; false never returns (throws).
};

/// Run the worker loop to completion. Throws std::runtime_error on
/// connection failure, a coordinator error reply (e.g. spec mismatch), or
/// a coordinator that vanished mid-campaign.
[[nodiscard]] WorkerSummary run_worker(const campaign::CampaignSpec& spec,
                                       const WorkerOptions& options);

}  // namespace netcons::fabric
