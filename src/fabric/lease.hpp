// The coordinator's lease bookkeeping, socket-free so tests can drive the
// full grant/expiry/reassignment state machine directly with a fake clock.
//
// The campaign grid is (points x trials) slots, exactly the slot space of
// campaign::run. Work is handed out as *leases*: a contiguous trial range
// on one grid point, at most `lease_size` trials. A lease is *outstanding*
// from grant until its worker reports done (commit) or the worker is
// declared dead (requeue); commitment is tracked per slot, so completing a
// lease that was already reassigned — or that partially overlaps earlier
// work after a resume — commits only the slots not yet covered. Slots,
// never leases, decide done(): a double-completed range cannot be counted
// twice, and a requeued range cannot be lost.
//
// Liveness: every message from a worker refreshes its timestamp; expire()
// declares workers silent past the deadline dead and moves their
// outstanding leases to the front of the pending queue (reassignment
// before fresh work keeps tail latency bounded). A dead worker's late
// completion still commits its slots — the records are on disk, and trial
// outcomes are position-derived, so duplicated execution merges to the
// same bytes (last-wins record semantics).
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

namespace netcons::fabric {

/// A contiguous trial range [begin, end) on one grid point.
struct LeaseRange {
  std::size_t point = 0;
  int begin = 0;
  int end = 0;

  [[nodiscard]] bool operator==(const LeaseRange&) const = default;
  [[nodiscard]] int trials() const noexcept { return end - begin; }
};

struct Lease {
  std::uint64_t id = 0;
  LeaseRange range;
  int worker = 0;
};

struct CoreOptions {
  /// Maximum trials per lease (the work-stealing granularity): small
  /// enough that a dead worker forfeits little, large enough that the
  /// request/grant round-trip amortizes.
  int lease_size = 32;
  /// A worker silent for longer is declared dead and its leases requeued.
  std::chrono::steady_clock::duration deadline = std::chrono::seconds(10);
};

class CoordinatorCore {
 public:
  using Clock = std::chrono::steady_clock;

  CoordinatorCore(std::size_t points, int trials, CoreOptions options);

  /// Mark one slot already committed (resume: outcomes recorded by an
  /// earlier run). Must precede the first grant; out-of-grid slots are
  /// ignored, like RunOptions::resume does.
  void precommit(std::size_t point, int trial);

  /// Register a connection; returns the worker id (>= 1, never reused).
  [[nodiscard]] int connect(Clock::time_point now);

  /// Clean or unclean connection loss: requeue the worker's outstanding
  /// leases. Idempotent; unknown ids are ignored.
  void disconnect(int worker);

  /// Any inbound message refreshes the worker's liveness.
  void heartbeat(int worker, Clock::time_point now);

  /// Grant the next lease: requeued ranges first, then fresh ones, in grid
  /// order. nullopt when nothing is pending — either every slot is
  /// committed (done()) or outstanding leases must finish or expire first.
  [[nodiscard]] std::optional<Lease> grant(int worker, Clock::time_point now);

  /// A worker finished its lease. Returns the number of slots newly
  /// committed: 0 for an unknown id, and less than the range for slots
  /// another completion (reassignment, resume) already covered.
  int complete(int worker, std::uint64_t lease_id, Clock::time_point now);

  /// Declare workers silent past the deadline dead; their outstanding
  /// leases go back to the front of the pending queue. Returns the ids.
  [[nodiscard]] std::vector<int> expire(Clock::time_point now);

  [[nodiscard]] bool done() const noexcept { return committed_count_ == slot_count_; }
  [[nodiscard]] std::uint64_t committed() const noexcept { return committed_count_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return slot_count_; }
  [[nodiscard]] std::size_t pending() const noexcept { return pending_.size(); }
  [[nodiscard]] std::size_t outstanding() const noexcept { return outstanding_.size(); }
  [[nodiscard]] std::size_t live_workers() const noexcept;

  struct Stats {
    std::uint64_t leases_granted = 0;
    std::uint64_t leases_completed = 0;   ///< Completions that committed >= 1 slot.
    std::uint64_t leases_requeued = 0;    ///< Ranges sent back by death/disconnect.
    std::uint64_t late_completions = 0;   ///< Done for a lease no longer outstanding.
    std::uint64_t duplicate_trials = 0;   ///< Slots re-executed but already committed.
    std::uint64_t workers_seen = 0;
    std::uint64_t workers_dead = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct WorkerState {
    Clock::time_point last_seen;
    bool alive = true;
  };

  /// Lazily split fresh work into pending ranges on first grant (so every
  /// precommit is in by then).
  void seed_pending();
  void requeue_worker_leases(int worker);
  int commit_range(const LeaseRange& range);

  std::size_t points_;
  int trials_;
  CoreOptions options_;
  std::uint64_t slot_count_ = 0;
  std::uint64_t committed_count_ = 0;
  std::vector<bool> committed_;  ///< point * trials + trial, like campaign::run's slots.
  bool seeded_ = false;
  std::deque<LeaseRange> pending_;
  std::map<std::uint64_t, Lease> outstanding_;
  /// Requeued leases, kept by old id so a late completion still commits.
  std::map<std::uint64_t, LeaseRange> superseded_;
  std::map<int, WorkerState> workers_;
  std::uint64_t next_lease_id_ = 1;
  int next_worker_id_ = 1;
  Stats stats_;
};

}  // namespace netcons::fabric
