#include "fabric/coordinator.hpp"

#include "fabric/frame.hpp"
#include "fabric/messages.hpp"
#include "telemetry/metrics.hpp"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <iostream>
#include <list>
#include <utility>
#include <vector>

namespace netcons::fabric {

namespace {

/// One accepted connection. `worker` stays 0 until a valid hello.
struct Connection {
  Socket socket;
  FrameBuffer frames;
  int worker = 0;
  bool closing = false;
};

}  // namespace

Coordinator::Coordinator(campaign::CampaignHeader header, const campaign::OutcomeMap* resume,
                         CoordinatorOptions options)
    : header_(std::move(header)), resume_(resume), options_(std::move(options)) {}

CoordinatorSummary Coordinator::serve() {
  using Clock = CoordinatorCore::Clock;
  using std::chrono::duration;
  using std::chrono::duration_cast;

  CoreOptions core_options;
  core_options.lease_size = options_.lease_size;
  core_options.deadline = duration_cast<Clock::duration>(duration<double>(
      options_.deadline_seconds > 0.0 ? options_.deadline_seconds : 1e9));
  CoordinatorCore core(header_.points.size(), header_.trials, core_options);
  if (resume_ != nullptr) {
    for (const auto& [key, outcome] : *resume_) core.precommit(key.first, key.second);
  }

  Socket listener = listen_on(options_.host, options_.port);
  const int port = local_port(listener);
  if (options_.on_listening) {
    // An embedding process (the serve-layer Scheduler) owns its own stdout;
    // the callback replaces the announce line.
    options_.on_listening(port);
  } else {
    // Orchestrators parse this line to learn a kernel-assigned port.
    std::cout << "netcons_coord listening on " << options_.host << ":" << port << "\n"
              << std::flush;
  }

  std::list<Connection> connections;
  const auto started = Clock::now();
  auto last_activity = started;
  bool aborted = false;

  const auto log = [&](const std::string& line) {
    if (!options_.quiet) std::fprintf(stderr, "[coord] %s\n", line.c_str());
  };

  const auto send = [&](Connection& connection, const Message& message) {
    if (!write_frame(connection.socket.fd(), message.encode())) connection.closing = true;
  };

  // Handle one decoded frame; true to keep the connection open.
  const auto handle = [&](Connection& connection, const Message& message,
                          Clock::time_point now) -> bool {
    if (connection.worker == 0) {
      if (message.type != Message::Type::kHello) {
        send(connection, Message::error("expected hello, got " +
                                        std::string(type_name(message.type))));
        return false;
      }
      if (message.token != options_.token) {
        // Never echo the expected token; the reason string is enough to
        // diagnose a worker launched without (or with the wrong) --token.
        send(connection, Message::error(
                             "authentication failed: hello token does not match the "
                             "coordinator's --token"));
        log("refused a connection (token mismatch)");
        return false;
      }
      campaign::CampaignHeader theirs;
      try {
        theirs = campaign::parse_header_line(message.text);
      } catch (const std::exception& error) {
        send(connection, Message::error(std::string("malformed hello header: ") +
                                        error.what()));
        return false;
      }
      const std::string mismatch = campaign::header_mismatch(header_, theirs);
      if (!mismatch.empty()) {
        send(connection, Message::error("campaign spec mismatch: " + mismatch));
        return false;
      }
      connection.worker = core.connect(now);
      send(connection, Message::welcome(connection.worker, options_.heartbeat_period_seconds,
                                        options_.deadline_seconds));
      log("worker " + std::to_string(connection.worker) + " joined (" +
          std::to_string(message.threads) + " threads)");
      return true;
    }
    switch (message.type) {
      case Message::Type::kRequest: {
        const auto lease = core.grant(connection.worker, now);
        if (lease) {
          send(connection, Message::grant(lease->id, lease->range.point, lease->range.begin,
                                          lease->range.end));
        } else if (core.done()) {
          send(connection, Message::drain());
          return false;  // the campaign is over for this worker
        } else {
          // Work exists but is all leased out; the worker re-requests, and
          // the request doubles as its liveness signal while idle.
          send(connection, Message::wait(250));
        }
        return true;
      }
      case Message::Type::kDone:
        core.complete(connection.worker, message.lease, now);
        return true;
      case Message::Type::kHeartbeat:
        core.heartbeat(connection.worker, now);
        return true;
      default:
        send(connection, Message::error("unexpected " + std::string(type_name(message.type)) +
                                        " from a worker"));
        return false;
    }
  };

  while (!core.done()) {
    std::vector<pollfd> fds;
    fds.push_back(pollfd{listener.fd(), POLLIN, 0});
    for (const Connection& connection : connections) {
      fds.push_back(pollfd{connection.socket.fd(), POLLIN, 0});
    }
    const int ready = ::poll(fds.data(), fds.size(), 200);
    if (ready < 0 && errno != EINTR) break;
    const auto now = Clock::now();

    if (fds[0].revents & POLLIN) {
      Socket accepted = accept_on(listener);
      if (accepted.valid()) {
        set_nonblocking(accepted);
        connections.push_back(Connection{std::move(accepted), {}, 0, false});
        last_activity = now;
      }
    }

    std::size_t index = 1;
    for (auto it = connections.begin(); it != connections.end(); ++index) {
      Connection& connection = *it;
      bool open = !connection.closing;
      if (open && (fds[index].revents & (POLLIN | POLLHUP | POLLERR))) {
        char buffer[65536];
        while (open) {
          const ssize_t n = ::read(connection.socket.fd(), buffer, sizeof buffer);
          if (n > 0) {
            connection.frames.append(buffer, static_cast<std::size_t>(n));
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (n < 0 && errno == EINTR) continue;
          open = false;  // EOF or hard error: the worker is gone
        }
        try {
          while (auto frame = connection.frames.pop()) {
            last_activity = now;
            if (!handle(connection, Message::decode(*frame), now)) {
              open = false;
              break;
            }
          }
        } catch (const std::exception& error) {
          log("dropping worker " + std::to_string(connection.worker) + ": " + error.what());
          open = false;
        }
      }
      if (!open || connection.closing) {
        if (connection.worker != 0) {
          core.disconnect(connection.worker);
          log("worker " + std::to_string(connection.worker) + " disconnected");
        }
        it = connections.erase(it);
      } else {
        ++it;
      }
    }

    for (const int dead : core.expire(now)) {
      log("worker " + std::to_string(dead) + " missed its heartbeat deadline; leases requeued");
      for (auto it = connections.begin(); it != connections.end();) {
        if (it->worker == dead) {
          it = connections.erase(it);
        } else {
          ++it;
        }
      }
    }

    if (options_.registry != nullptr) {
      const CoordinatorCore::Stats& stats = core.stats();
      telemetry::Registry& registry = *options_.registry;
      registry.set("fabric.trials_total", static_cast<double>(core.total()));
      registry.set("fabric.trials_committed", static_cast<double>(core.committed()));
      registry.set("fabric.live_workers", static_cast<double>(core.live_workers()));
      registry.set("fabric.pending_leases", static_cast<double>(core.pending()));
      registry.set("fabric.outstanding_leases", static_cast<double>(core.outstanding()));
      registry.set("fabric.workers_seen", static_cast<double>(stats.workers_seen));
      registry.set("fabric.workers_dead", static_cast<double>(stats.workers_dead));
      registry.set("fabric.leases_granted", static_cast<double>(stats.leases_granted));
      registry.set("fabric.leases_completed", static_cast<double>(stats.leases_completed));
      registry.set("fabric.leases_requeued", static_cast<double>(stats.leases_requeued));
      registry.set("fabric.late_completions", static_cast<double>(stats.late_completions));
      registry.set("fabric.duplicate_trials", static_cast<double>(stats.duplicate_trials));
    }

    if (!connections.empty()) last_activity = now;
    if (options_.max_idle_seconds > 0.0 && connections.empty() &&
        duration<double>(now - last_activity).count() > options_.max_idle_seconds) {
      log("no workers for " + std::to_string(options_.max_idle_seconds) +
          "s with work remaining; giving up");
      aborted = true;
      break;
    }
  }

  // Let already-connected workers hear their drain instead of a reset: any
  // request now answers drain (core.done() holds), and everyone who was
  // mid-lease reports done first. Bounded by the liveness deadline.
  if (!aborted) {
    const auto drain_deadline =
        Clock::now() + duration_cast<Clock::duration>(
                           duration<double>(options_.deadline_seconds > 0.0
                                                ? options_.deadline_seconds
                                                : 5.0));
    while (!connections.empty() && Clock::now() < drain_deadline) {
      std::vector<pollfd> fds;
      for (const Connection& connection : connections) {
        fds.push_back(pollfd{connection.socket.fd(), POLLIN, 0});
      }
      if (::poll(fds.data(), fds.size(), 200) < 0 && errno != EINTR) break;
      const auto now = Clock::now();
      std::size_t index = 0;
      for (auto it = connections.begin(); it != connections.end(); ++index) {
        Connection& connection = *it;
        bool open = !connection.closing;
        if (open && (fds[index].revents & (POLLIN | POLLHUP | POLLERR))) {
          char buffer[65536];
          while (open) {
            const ssize_t n = ::read(connection.socket.fd(), buffer, sizeof buffer);
            if (n > 0) {
              connection.frames.append(buffer, static_cast<std::size_t>(n));
              continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
            if (n < 0 && errno == EINTR) continue;
            open = false;
          }
          try {
            while (auto frame = connection.frames.pop()) {
              if (!handle(connection, Message::decode(*frame), now)) {
                open = false;
                break;
              }
            }
          } catch (const std::exception&) {
            open = false;
          }
        }
        it = open && !connection.closing ? std::next(it) : connections.erase(it);
      }
    }
  }

  CoordinatorSummary summary;
  summary.complete = core.done();
  summary.trials_total = core.total();
  summary.trials_committed = core.committed();
  summary.stats = core.stats();
  summary.wall_seconds = duration<double>(Clock::now() - started).count();
  return summary;
}

}  // namespace netcons::fabric
