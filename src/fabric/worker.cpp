#include "fabric/worker.hpp"

#include "campaign/trial_record.hpp"
#include "fabric/frame.hpp"
#include "fabric/messages.hpp"
#include "telemetry/heartbeat.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <streambuf>
#include <thread>
#include <utility>

namespace netcons::fabric {

namespace {

/// streambuf that hands complete lines (without the newline) to a
/// callback: the bridge between CampaignMonitor's heartbeat ostream and
/// heartbeat frames. The monitor writes one whole line per emit and
/// flushes, so buffering until '\n' never holds a partial heartbeat long.
class LineForwardBuf : public std::streambuf {
 public:
  explicit LineForwardBuf(std::function<void(const std::string&)> on_line)
      : on_line_(std::move(on_line)) {}

 protected:
  int overflow(int ch) override {
    if (ch != traits_type::eof()) {
      if (ch == '\n') {
        on_line_(line_);
        line_.clear();
      } else {
        line_.push_back(static_cast<char>(ch));
      }
    }
    return ch;
  }

  std::streamsize xsputn(const char* data, std::streamsize size) override {
    for (std::streamsize i = 0; i < size; ++i) overflow(data[i]);
    return size;
  }

 private:
  std::function<void(const std::string&)> on_line_;
  std::string line_;
};

std::string worker_record_path(const std::string& dir, int worker) {
  char name[64];
  for (int generation = 0;; ++generation) {
    std::snprintf(name, sizeof name, "fabric-w%04d-g%04d.jsonl", worker, generation);
    const std::filesystem::path path = std::filesystem::path(dir) / name;
    if (!std::filesystem::exists(path)) return path.string();
  }
}

Message read_message(int fd, std::string& scratch) {
  switch (read_frame(fd, scratch)) {
    case ReadResult::kFrame: return Message::decode(scratch);
    case ReadResult::kEof: throw std::runtime_error("fabric: coordinator closed the connection");
    case ReadResult::kError: break;
  }
  throw std::runtime_error("fabric: lost the coordinator (read error or timeout)");
}

}  // namespace

WorkerSummary run_worker(const campaign::CampaignSpec& spec, const WorkerOptions& options) {
  const campaign::CampaignHeader header = campaign::CampaignHeader::describe(spec);
  const int threads = campaign::resolve_threads(options.threads);

  Socket socket = connect_to(options.host, options.port, options.io_timeout_seconds);
  // One frame writer for both the main loop and the monitor's ticker
  // thread; frames must not interleave mid-frame.
  std::mutex write_mutex;
  const auto send = [&](const Message& message) {
    const std::lock_guard<std::mutex> lock(write_mutex);
    if (!write_frame(socket.fd(), message.encode())) {
      throw std::runtime_error("fabric: lost the coordinator (write failed)");
    }
  };

  send(Message::hello(campaign::header_line(header), threads, options.token));
  std::string scratch;
  const Message welcome = read_message(socket.fd(), scratch);
  if (welcome.type == Message::Type::kError) {
    throw std::runtime_error("fabric: coordinator refused: " + welcome.text);
  }
  if (welcome.type != Message::Type::kWelcome) {
    throw std::runtime_error(std::string("fabric: expected welcome, got ") +
                             type_name(welcome.type));
  }

  WorkerSummary summary;
  summary.worker = welcome.worker;
  const auto log = [&](const std::string& line) {
    if (!options.quiet) {
      std::fprintf(stderr, "[worker %d] %s\n", summary.worker, line.c_str());
    }
  };

  std::filesystem::create_directories(options.records_dir);
  campaign::TrialRecordSink sink(worker_record_path(options.records_dir, summary.worker),
                                 header);

  // Heartbeats ride the ticker thread; a write failure there must not tear
  // down the ostream (the main loop will hit the dead socket itself), so
  // forwarding swallows errors.
  LineForwardBuf heartbeat_buffer([&](const std::string& line) {
    const std::lock_guard<std::mutex> lock(write_mutex);
    (void)write_frame(socket.fd(), Message::heartbeat(line).encode());
  });
  std::ostream heartbeat_stream(&heartbeat_buffer);
  telemetry::CampaignMonitor monitor({.period_seconds = welcome.period_s,
                                      .heartbeat = &heartbeat_stream,
                                      .progress_stderr = false,
                                      .registry = nullptr});

  while (true) {
    send(Message::request());
    const Message reply = read_message(socket.fd(), scratch);
    switch (reply.type) {
      case Message::Type::kGrant: {
        const std::size_t point = reply.point;
        const int begin = reply.begin;
        const int end = reply.end;
        campaign::RunOptions run_options;
        run_options.threads = options.threads;
        run_options.select = [point, begin, end](std::size_t p, int t) {
          return p == point && t >= begin && t < end;
        };
        run_options.on_trial = [&sink](std::size_t p, int t, std::uint64_t seed,
                                       const campaign::TrialOutcome& outcome) {
          sink.write(campaign::TrialRecord{p, t, seed, outcome});
        };
        run_options.monitor = &monitor;
        const campaign::CampaignResult result = campaign::run(spec, run_options);
        summary.executed_trials += result.executed_trials;
        ++summary.leases;
        send(Message::done(reply.lease, result.executed_trials));
        log("lease " + std::to_string(reply.lease) + ": point " + std::to_string(point) +
            " trials [" + std::to_string(begin) + ", " + std::to_string(end) + ")");
        break;
      }
      case Message::Type::kWait:
        std::this_thread::sleep_for(std::chrono::milliseconds(
            reply.retry_ms > 0 ? reply.retry_ms : 250));
        break;
      case Message::Type::kDrain:
        summary.drained = true;
        log("drained after " + std::to_string(summary.leases) + " leases, " +
            std::to_string(summary.executed_trials) + " trials");
        return summary;
      case Message::Type::kError:
        throw std::runtime_error("fabric: coordinator error: " + reply.text);
      default:
        throw std::runtime_error(std::string("fabric: unexpected ") + type_name(reply.type) +
                                 " from the coordinator");
    }
  }
}

}  // namespace netcons::fabric
