#include "fabric/lease.hpp"

#include <algorithm>

namespace netcons::fabric {

CoordinatorCore::CoordinatorCore(std::size_t points, int trials, CoreOptions options)
    : points_(points),
      trials_(trials < 0 ? 0 : trials),
      options_(options),
      slot_count_(static_cast<std::uint64_t>(points) * static_cast<std::uint64_t>(trials_)),
      committed_(slot_count_, false) {
  if (options_.lease_size < 1) options_.lease_size = 1;
}

void CoordinatorCore::precommit(std::size_t point, int trial) {
  if (seeded_) return;  // too late to matter: the slot is already in a pending range
  if (point >= points_ || trial < 0 || trial >= trials_) return;
  const std::uint64_t slot = point * static_cast<std::uint64_t>(trials_) + trial;
  if (!committed_[slot]) {
    committed_[slot] = true;
    ++committed_count_;
  }
}

int CoordinatorCore::connect(Clock::time_point now) {
  const int id = next_worker_id_++;
  workers_[id] = WorkerState{now, true};
  ++stats_.workers_seen;
  return id;
}

void CoordinatorCore::disconnect(int worker) {
  const auto it = workers_.find(worker);
  if (it == workers_.end() || !it->second.alive) return;
  it->second.alive = false;
  requeue_worker_leases(worker);
}

void CoordinatorCore::heartbeat(int worker, Clock::time_point now) {
  const auto it = workers_.find(worker);
  if (it != workers_.end() && it->second.alive) it->second.last_seen = now;
}

void CoordinatorCore::seed_pending() {
  seeded_ = true;
  // Walk the grid in slot order and coalesce runs of uncommitted slots into
  // ranges of at most lease_size. Grid order keeps a fault-free run's grant
  // sequence deterministic (modulo which worker asks first).
  for (std::size_t p = 0; p < points_; ++p) {
    int begin = -1;
    for (int t = 0; t <= trials_; ++t) {
      const bool open =
          t < trials_ && !committed_[p * static_cast<std::uint64_t>(trials_) + t];
      if (open && begin < 0) begin = t;
      if (!open && begin >= 0) {
        for (int b = begin; b < t; b += options_.lease_size) {
          pending_.push_back(LeaseRange{p, b, std::min(t, b + options_.lease_size)});
        }
        begin = -1;
      }
    }
  }
}

std::optional<Lease> CoordinatorCore::grant(int worker, Clock::time_point now) {
  heartbeat(worker, now);
  if (!seeded_) seed_pending();
  while (!pending_.empty()) {
    LeaseRange range = pending_.front();
    pending_.pop_front();
    // A requeued range may have been committed since (late completion by
    // the worker it was taken from); skip the covered prefix/suffix rather
    // than re-running trials for nothing.
    const std::uint64_t base = range.point * static_cast<std::uint64_t>(trials_);
    while (range.begin < range.end && committed_[base + range.begin]) ++range.begin;
    while (range.end > range.begin && committed_[base + range.end - 1]) --range.end;
    if (range.trials() <= 0) continue;
    Lease lease{next_lease_id_++, range, worker};
    outstanding_[lease.id] = lease;
    ++stats_.leases_granted;
    return lease;
  }
  return std::nullopt;
}

int CoordinatorCore::commit_range(const LeaseRange& range) {
  int fresh = 0;
  const std::uint64_t base = range.point * static_cast<std::uint64_t>(trials_);
  for (int t = range.begin; t < range.end; ++t) {
    if (committed_[base + t]) {
      ++stats_.duplicate_trials;
    } else {
      committed_[base + t] = true;
      ++committed_count_;
      ++fresh;
    }
  }
  return fresh;
}

int CoordinatorCore::complete(int worker, std::uint64_t lease_id, Clock::time_point now) {
  heartbeat(worker, now);
  const auto it = outstanding_.find(lease_id);
  if (it == outstanding_.end()) {
    // The lease was requeued (its worker was declared dead) and possibly
    // re-granted under a new id — but this completion's records are on
    // disk, and last-wins dedup makes them as good as anyone's. Committing
    // here is what makes double-completion harmless rather than fatal.
    const auto late = superseded_.find(lease_id);
    if (late == superseded_.end()) return 0;
    ++stats_.late_completions;
    const int fresh = commit_range(late->second);
    superseded_.erase(late);
    if (fresh > 0) ++stats_.leases_completed;
    return fresh;
  }
  const LeaseRange range = it->second.range;
  outstanding_.erase(it);
  const int fresh = commit_range(range);
  if (fresh > 0) ++stats_.leases_completed;
  return fresh;
}

void CoordinatorCore::requeue_worker_leases(int worker) {
  if (!seeded_) seed_pending();
  std::vector<std::uint64_t> ids;
  for (const auto& [id, lease] : outstanding_) {
    if (lease.worker == worker) ids.push_back(id);
  }
  // Front of the queue: a range someone already started is the campaign's
  // critical path, so it must beat fresh work to the next free worker.
  for (auto rit = ids.rbegin(); rit != ids.rend(); ++rit) {
    const auto it = outstanding_.find(*rit);
    pending_.push_front(it->second.range);
    superseded_[*rit] = it->second.range;
    outstanding_.erase(it);
    ++stats_.leases_requeued;
  }
}

std::vector<int> CoordinatorCore::expire(Clock::time_point now) {
  std::vector<int> dead;
  for (auto& [id, state] : workers_) {
    if (state.alive && now - state.last_seen > options_.deadline) {
      state.alive = false;
      ++stats_.workers_dead;
      requeue_worker_leases(id);
      dead.push_back(id);
    }
  }
  return dead;
}

std::size_t CoordinatorCore::live_workers() const noexcept {
  std::size_t count = 0;
  for (const auto& [id, state] : workers_) {
    if (state.alive) ++count;
  }
  return count;
}

}  // namespace netcons::fabric
