// TCP transport for the distributed campaign fabric: a thin RAII socket
// wrapper plus length-prefixed framing.
//
// A frame is a 4-byte big-endian payload length followed by that many
// bytes of UTF-8 JSON (one fabric message, see fabric/messages.hpp). The
// prefix makes message boundaries explicit on a byte stream, so a reader
// never has to scan for delimiters inside JSON, and a torn tail — the
// half-written frame of a SIGKILLed worker — is detected as a short read
// instead of being parsed as garbage. Payloads above kMaxFramePayload are
// protocol corruption and a hard error, never an allocation.
//
// Two read styles, matching the two fabric roles: the worker blocks on one
// socket (read_frame), while the coordinator multiplexes many via poll()
// and feeds whatever bytes arrived into a per-connection FrameBuffer.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace netcons::fabric {

/// Upper bound on one frame's payload (a campaign header for a huge grid
/// fits in well under a megabyte; anything near this is corruption).
inline constexpr std::size_t kMaxFramePayload = 16u << 20;

/// Move-only owner of a socket file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Listening IPv4 socket on `host:port` (port 0: kernel-assigned; read it
/// back with local_port). Throws std::runtime_error on failure.
[[nodiscard]] Socket listen_on(const std::string& host, int port);

/// The port a bound socket actually listens on.
[[nodiscard]] int local_port(const Socket& socket);

/// Blocking connect to `host:port`; throws std::runtime_error on failure.
/// `io_timeout_seconds` > 0 arms SO_RCVTIMEO/SO_SNDTIMEO so a dead peer
/// surfaces as an error instead of a hang.
[[nodiscard]] Socket connect_to(const std::string& host, int port,
                                double io_timeout_seconds = 0.0);

/// Accept one pending connection; invalid Socket on transient failure.
[[nodiscard]] Socket accept_on(const Socket& listener);

/// Put a socket into non-blocking mode (the coordinator's poll loop).
void set_nonblocking(const Socket& socket);

/// Write one frame (length prefix + payload). Returns false when the peer
/// is gone (connection reset / closed); never raises SIGPIPE. Throws on
/// payloads above kMaxFramePayload.
[[nodiscard]] bool write_frame(int fd, std::string_view payload);

enum class ReadResult { kFrame, kEof, kError };

/// Blocking read of exactly one frame into `payload`. kEof: the peer
/// closed cleanly between frames; kError: mid-frame EOF, socket error, or
/// an oversized length prefix.
[[nodiscard]] ReadResult read_frame(int fd, std::string& payload);

/// Incremental frame decoder for non-blocking readers: append whatever
/// bytes arrived, then pop complete frames until it returns nullopt.
class FrameBuffer {
 public:
  void append(const char* data, std::size_t size) { buffer_.append(data, size); }

  /// Next complete frame, or nullopt while more bytes are needed. Throws
  /// std::runtime_error on an oversized length prefix (corrupt stream).
  [[nodiscard]] std::optional<std::string> pop();

 private:
  std::string buffer_;
};

}  // namespace netcons::fabric
