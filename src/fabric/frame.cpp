#include "fabric/frame.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace netcons::fabric {

namespace {

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

sockaddr_in resolve(const std::string& host, int port) {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    throw std::runtime_error("fabric: not an IPv4 address: '" + host + "'");
  }
  return address;
}

void encode_length(char out[4], std::size_t size) {
  out[0] = static_cast<char>((size >> 24) & 0xff);
  out[1] = static_cast<char>((size >> 16) & 0xff);
  out[2] = static_cast<char>((size >> 8) & 0xff);
  out[3] = static_cast<char>(size & 0xff);
}

std::size_t decode_length(const char in[4]) {
  const auto byte = [&](int i) {
    return static_cast<std::size_t>(static_cast<unsigned char>(in[i]));
  };
  return (byte(0) << 24) | (byte(1) << 16) | (byte(2) << 8) | byte(3);
}

/// Write all of `data`, restarting on EINTR; false once the peer is gone.
bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE, not SIGPIPE.
    const ssize_t written = ::send(fd, data, size, MSG_NOSIGNAL);
    if (written < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += written;
    size -= static_cast<std::size_t>(written);
  }
  return true;
}

/// Read exactly `size` bytes. 1: done, 0: clean EOF before any byte,
/// -1: error or mid-read EOF.
int read_all(int fd, char* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, data + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) return got == 0 ? 0 : -1;
    got += static_cast<std::size_t>(n);
  }
  return 1;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket listen_on(const std::string& host, int port) {
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) throw std::runtime_error(errno_text("fabric: socket"));
  const int enable = 1;
  ::setsockopt(socket.fd(), SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);
  const sockaddr_in address = resolve(host, port);
  if (::bind(socket.fd(), reinterpret_cast<const sockaddr*>(&address), sizeof address) != 0) {
    throw std::runtime_error(errno_text("fabric: bind"));
  }
  if (::listen(socket.fd(), 64) != 0) throw std::runtime_error(errno_text("fabric: listen"));
  return socket;
}

int local_port(const Socket& socket) {
  sockaddr_in address{};
  socklen_t size = sizeof address;
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&address), &size) != 0) {
    throw std::runtime_error(errno_text("fabric: getsockname"));
  }
  return static_cast<int>(ntohs(address.sin_port));
}

Socket connect_to(const std::string& host, int port, double io_timeout_seconds) {
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) throw std::runtime_error(errno_text("fabric: socket"));
  if (io_timeout_seconds > 0.0) {
    timeval timeout{};
    timeout.tv_sec = static_cast<time_t>(io_timeout_seconds);
    timeout.tv_usec =
        static_cast<suseconds_t>((io_timeout_seconds - static_cast<double>(timeout.tv_sec)) * 1e6);
    ::setsockopt(socket.fd(), SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
    ::setsockopt(socket.fd(), SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof timeout);
  }
  const sockaddr_in address = resolve(host, port);
  if (::connect(socket.fd(), reinterpret_cast<const sockaddr*>(&address), sizeof address) != 0) {
    throw std::runtime_error("fabric: cannot connect to " + host + ":" + std::to_string(port) +
                             ": " + std::strerror(errno));
  }
  return socket;
}

Socket accept_on(const Socket& listener) {
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  return Socket(fd);  // invalid on transient failure; the poll loop retries
}

void set_nonblocking(const Socket& socket) {
  const int flags = ::fcntl(socket.fd(), F_GETFL, 0);
  if (flags >= 0) ::fcntl(socket.fd(), F_SETFL, flags | O_NONBLOCK);
}

bool write_frame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    throw std::runtime_error("fabric: frame payload of " + std::to_string(payload.size()) +
                             " bytes exceeds the " + std::to_string(kMaxFramePayload) +
                             "-byte limit");
  }
  char prefix[4];
  encode_length(prefix, payload.size());
  return write_all(fd, prefix, sizeof prefix) && write_all(fd, payload.data(), payload.size());
}

ReadResult read_frame(int fd, std::string& payload) {
  char prefix[4];
  const int head = read_all(fd, prefix, sizeof prefix);
  if (head == 0) return ReadResult::kEof;
  if (head < 0) return ReadResult::kError;
  const std::size_t size = decode_length(prefix);
  if (size > kMaxFramePayload) return ReadResult::kError;
  payload.resize(size);
  if (read_all(fd, payload.data(), size) != 1) return ReadResult::kError;
  return ReadResult::kFrame;
}

std::optional<std::string> FrameBuffer::pop() {
  if (buffer_.size() < 4) return std::nullopt;
  const std::size_t size = decode_length(buffer_.data());
  if (size > kMaxFramePayload) {
    throw std::runtime_error("fabric: oversized frame (" + std::to_string(size) +
                             " bytes) — corrupt stream");
  }
  if (buffer_.size() < 4 + size) return std::nullopt;
  std::string frame = buffer_.substr(4, size);
  buffer_.erase(0, 4 + size);
  return frame;
}

}  // namespace netcons::fabric
