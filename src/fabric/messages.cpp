#include "fabric/messages.hpp"

#include "campaign/json.hpp"

#include <stdexcept>

namespace netcons::fabric {

namespace json = campaign::json;

namespace {

Message::Type type_from_name(const std::string& name) {
  if (name == "hello") return Message::Type::kHello;
  if (name == "request") return Message::Type::kRequest;
  if (name == "done") return Message::Type::kDone;
  if (name == "heartbeat") return Message::Type::kHeartbeat;
  if (name == "welcome") return Message::Type::kWelcome;
  if (name == "grant") return Message::Type::kGrant;
  if (name == "wait") return Message::Type::kWait;
  if (name == "drain") return Message::Type::kDrain;
  if (name == "error") return Message::Type::kError;
  throw std::runtime_error("fabric: unknown message type '" + name + "'");
}

void append_u64(std::string& out, const char* key, std::uint64_t value) {
  out += ", \"";
  out += key;
  out += "\": " + std::to_string(value);
}

void append_int(std::string& out, const char* key, long long value) {
  out += ", \"";
  out += key;
  out += "\": " + std::to_string(value);
}

void append_dbl(std::string& out, const char* key, double value) {
  out += ", \"";
  out += key;
  out += "\": ";
  json::append_double(out, value);
}

void append_str(std::string& out, const char* key, const std::string& value) {
  out += ", \"";
  out += key;
  out += "\": ";
  json::append_escaped(out, value);
}

}  // namespace

const char* type_name(Message::Type type) {
  switch (type) {
    case Message::Type::kHello: return "hello";
    case Message::Type::kRequest: return "request";
    case Message::Type::kDone: return "done";
    case Message::Type::kHeartbeat: return "heartbeat";
    case Message::Type::kWelcome: return "welcome";
    case Message::Type::kGrant: return "grant";
    case Message::Type::kWait: return "wait";
    case Message::Type::kDrain: return "drain";
    case Message::Type::kError: return "error";
  }
  return "?";
}

std::string Message::encode() const {
  std::string out = "{\"fabric\": \"";
  out += kFabricSchema;
  out += "\", \"type\": \"";
  out += type_name(type);
  out += '"';
  switch (type) {
    case Type::kHello:
      append_int(out, "threads", threads);
      append_str(out, "header", text);
      if (!token.empty()) append_str(out, "token", token);
      break;
    case Type::kDone:
      append_u64(out, "lease", lease);
      append_u64(out, "executed", executed);
      break;
    case Type::kHeartbeat: append_str(out, "line", text); break;
    case Type::kWelcome:
      append_int(out, "worker", worker);
      append_dbl(out, "period_s", period_s);
      append_dbl(out, "deadline_s", deadline_s);
      break;
    case Type::kGrant:
      append_u64(out, "lease", lease);
      append_u64(out, "point", point);
      append_int(out, "begin", begin);
      append_int(out, "end", end);
      break;
    case Type::kWait: append_int(out, "retry_ms", retry_ms); break;
    case Type::kError: append_str(out, "message", text); break;
    case Type::kRequest:
    case Type::kDrain: break;
  }
  out += '}';
  return out;
}

Message Message::decode(std::string_view payload) {
  const json::Value document = json::parse(payload);
  const json::Object& object = document.as_object();
  const std::string& schema = json::field(object, "fabric").as_string();
  if (schema != kFabricSchema) {
    throw std::runtime_error("fabric: peer speaks '" + schema + "', this binary speaks '" +
                             kFabricSchema + "'");
  }
  Message message;
  message.type = type_from_name(json::field(object, "type").as_string());
  switch (message.type) {
    case Type::kHello: {
      message.threads = static_cast<int>(json::field(object, "threads").as_u64());
      message.text = json::field(object, "header").as_string();
      // Optional on the wire: tokenless peers never encode it.
      const auto token = object.find("token");
      if (token != object.end()) message.token = token->second.as_string();
      break;
    }
    case Type::kDone:
      message.lease = json::field(object, "lease").as_u64();
      message.executed = json::field(object, "executed").as_u64();
      break;
    case Type::kHeartbeat: message.text = json::field(object, "line").as_string(); break;
    case Type::kWelcome:
      message.worker = static_cast<int>(json::field(object, "worker").as_u64());
      message.period_s = json::field(object, "period_s").as_double();
      message.deadline_s = json::field(object, "deadline_s").as_double();
      break;
    case Type::kGrant:
      message.lease = json::field(object, "lease").as_u64();
      message.point = json::field(object, "point").as_u64();
      message.begin = static_cast<int>(json::field(object, "begin").as_u64());
      message.end = static_cast<int>(json::field(object, "end").as_u64());
      break;
    case Type::kWait:
      message.retry_ms = static_cast<int>(json::field(object, "retry_ms").as_u64());
      break;
    case Type::kError: message.text = json::field(object, "message").as_string(); break;
    case Type::kRequest:
    case Type::kDrain: break;
  }
  return message;
}

Message Message::hello(std::string header_line, int threads, std::string token) {
  Message m;
  m.type = Type::kHello;
  m.text = std::move(header_line);
  m.threads = threads;
  m.token = std::move(token);
  return m;
}

Message Message::request() {
  Message m;
  m.type = Type::kRequest;
  return m;
}

Message Message::done(std::uint64_t lease, std::uint64_t executed) {
  Message m;
  m.type = Type::kDone;
  m.lease = lease;
  m.executed = executed;
  return m;
}

Message Message::heartbeat(std::string line) {
  Message m;
  m.type = Type::kHeartbeat;
  m.text = std::move(line);
  return m;
}

Message Message::welcome(int worker, double period_s, double deadline_s) {
  Message m;
  m.type = Type::kWelcome;
  m.worker = worker;
  m.period_s = period_s;
  m.deadline_s = deadline_s;
  return m;
}

Message Message::grant(std::uint64_t lease, std::uint64_t point, int begin, int end) {
  Message m;
  m.type = Type::kGrant;
  m.lease = lease;
  m.point = point;
  m.begin = begin;
  m.end = end;
  return m;
}

Message Message::wait(int retry_ms) {
  Message m;
  m.type = Type::kWait;
  m.retry_ms = retry_ms;
  return m;
}

Message Message::drain() {
  Message m;
  m.type = Type::kDrain;
  return m;
}

Message Message::error(std::string message) {
  Message m;
  m.type = Type::kError;
  m.text = std::move(message);
  return m;
}

}  // namespace netcons::fabric
