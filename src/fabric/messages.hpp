// The fabric wire vocabulary: one JSON object per frame, discriminated by
// "type", all stamped "fabric": "netcons-fabric-v1" (an incompatible
// revision bumps the stamp, so mismatched binaries fail loudly at hello
// instead of mis-parsing each other mid-campaign).
//
// Worker -> coordinator: hello (campaign-spec fingerprint + thread count),
// request (give me a lease), done (lease finished), heartbeat (one
// netcons-heartbeat-v1 line, carried verbatim as a string).
// Coordinator -> worker: welcome (worker id + heartbeat cadence/deadline),
// grant (a trial-range lease on one grid point), wait (nothing grantable
// right now, retry), drain (every trial committed — exit cleanly), error
// (refusal, e.g. a spec-fingerprint mismatch, naming the field).
//
// The full protocol — frame layout, message catalog, lease lifecycle,
// failure semantics — is specified in docs/fabric-protocol.md.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace netcons::fabric {

inline constexpr const char* kFabricSchema = "netcons-fabric-v1";

struct Message {
  enum class Type { kHello, kRequest, kDone, kHeartbeat, kWelcome, kGrant, kWait, kDrain, kError };

  Type type = Type::kRequest;
  /// hello: the netcons-trials-v2 header line, verbatim. heartbeat: one
  /// netcons-heartbeat-v1 line, verbatim. error: human-readable reason.
  std::string text;
  /// hello: the shared secret (--token). Encoded only when non-empty, so
  /// tokenless deployments speak byte-identical netcons-fabric-v1 frames;
  /// absent on the wire decodes as empty. The coordinator compares it
  /// against its own --token before it even parses the header.
  std::string token;
  int threads = 0;         ///< hello: the worker's thread count (informational).
  int worker = 0;          ///< welcome: coordinator-assigned worker id (>= 1).
  double period_s = 0.0;   ///< welcome: heartbeat cadence the worker must keep.
  double deadline_s = 0.0; ///< welcome: silence past this declares the worker dead.
  std::uint64_t lease = 0; ///< grant/done: lease id.
  std::uint64_t point = 0; ///< grant: grid-point index.
  int begin = 0;           ///< grant: first trial of the leased range.
  int end = 0;             ///< grant: one past the last trial.
  std::uint64_t executed = 0;  ///< done: trials executed under the lease.
  int retry_ms = 0;        ///< wait: how long to back off before re-requesting.

  [[nodiscard]] std::string encode() const;

  /// Parse one frame payload. Throws std::runtime_error on malformed JSON,
  /// an unknown type, or a fabric-schema mismatch (naming both versions).
  [[nodiscard]] static Message decode(std::string_view payload);

  // Factories for the common shapes (fields not listed default to zero).
  [[nodiscard]] static Message hello(std::string header_line, int threads,
                                     std::string token = {});
  [[nodiscard]] static Message request();
  [[nodiscard]] static Message done(std::uint64_t lease, std::uint64_t executed);
  [[nodiscard]] static Message heartbeat(std::string line);
  [[nodiscard]] static Message welcome(int worker, double period_s, double deadline_s);
  [[nodiscard]] static Message grant(std::uint64_t lease, std::uint64_t point, int begin, int end);
  [[nodiscard]] static Message wait(int retry_ms);
  [[nodiscard]] static Message drain();
  [[nodiscard]] static Message error(std::string message);
};

[[nodiscard]] const char* type_name(Message::Type type);

}  // namespace netcons::fabric
