// The fabric coordinator: one poll()-driven TCP server that owns the
// campaign grid and hands out trial-range leases to however many workers
// connect (tools/netcons_coord.cpp is a thin CLI over this).
//
// The coordinator never executes a trial and never touches records on
// disk. Workers stream records through their own TrialRecordSinks exactly
// as sharded runs do; the coordinator's only authority is *scheduling*:
// which slots are committed, which ranges are outstanding, and which
// workers are still alive. Correctness therefore reduces to the
// CoordinatorCore invariants (fabric/lease.hpp) plus last-wins record
// semantics — a worker SIGKILLed mid-lease costs at most that lease's
// trials, re-executed elsewhere to bit-identical outcomes, and the merged
// summary is byte-identical to a single-host run.
//
// Liveness: any frame from a worker refreshes its deadline; between
// grants, the worker's CampaignMonitor heartbeats (forwarded verbatim as
// heartbeat frames) keep the connection warm. A worker silent past
// `deadline_seconds` is declared dead, its connection is closed, and its
// leases go back to the front of the queue.
#pragma once

#include "campaign/campaign.hpp"
#include "campaign/trial_record.hpp"
#include "fabric/lease.hpp"

#include <cstdint>
#include <functional>
#include <string>

namespace netcons::telemetry {
class Registry;
}  // namespace netcons::telemetry

namespace netcons::fabric {

struct CoordinatorOptions {
  std::string host = "127.0.0.1";
  int port = 0;  ///< 0: kernel-assigned; read the announce line for the port.
  /// Work-stealing granularity and liveness deadline (see CoreOptions).
  int lease_size = 32;
  double deadline_seconds = 10.0;
  /// Heartbeat cadence workers are told to keep (welcome.period_s); must
  /// be comfortably below the deadline.
  double heartbeat_period_seconds = 1.0;
  /// With work remaining but no connected workers for this long, give up
  /// and return an incomplete summary (0: wait forever for a worker).
  double max_idle_seconds = 0.0;
  /// Shared secret: when non-empty, a hello whose token differs (including
  /// a missing one) is refused with an error frame before the spec
  /// fingerprint is even parsed. An empty expected token also rejects
  /// token-carrying hellos — both sides must agree on whether auth is on.
  std::string token;
  bool quiet = false;  ///< Suppress per-worker lifecycle lines on stderr.
  /// fabric.* gauges published here per poll iteration (may be null).
  telemetry::Registry* registry = nullptr;
  /// Invoked once the listener is bound, with the (possibly
  /// kernel-assigned) port — how an embedding process (the serve-layer
  /// Scheduler) learns where to point workers without parsing the stdout
  /// announce line. May be null.
  std::function<void(int port)> on_listening;
};

struct CoordinatorSummary {
  bool complete = false;  ///< Every (point, trial) slot committed.
  std::uint64_t trials_total = 0;
  std::uint64_t trials_committed = 0;
  CoordinatorCore::Stats stats;
  double wall_seconds = 0.0;
};

class Coordinator {
 public:
  /// `header` is the campaign fingerprint every worker's hello must match.
  /// `resume` precommits slots already recorded by an earlier run (not
  /// owned; may be null; must outlive serve()).
  Coordinator(campaign::CampaignHeader header, const campaign::OutcomeMap* resume,
              CoordinatorOptions options);

  /// Bind, print "netcons_coord listening on HOST:PORT" on stdout (flushed,
  /// so orchestrators can parse the kernel-assigned port), then serve until
  /// every slot is committed or the idle deadline fires. Throws
  /// std::runtime_error on bind failure.
  [[nodiscard]] CoordinatorSummary serve();

 private:
  campaign::CampaignHeader header_;
  const campaign::OutcomeMap* resume_;
  CoordinatorOptions options_;
};

}  // namespace netcons::fabric
