#include "serve/http.hpp"

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

namespace netcons::serve {

namespace {

constexpr std::size_t kStreamChunk = 64u * 1024u;

/// Write all of `data`, restarting on EINTR; false once the peer is gone.
/// (fabric/frame.cpp keeps its twin file-local, deliberately: the framed
/// protocol and the byte-stream protocol own their I/O loops.)
bool send_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    // MSG_NOSIGNAL: a vanished client must surface as EPIPE, not SIGPIPE.
    const ssize_t written = ::send(fd, data, size, MSG_NOSIGNAL);
    if (written < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += written;
    size -= static_cast<std::size_t>(written);
  }
  return true;
}

void set_io_timeout(int fd, double seconds) {
  if (seconds <= 0.0) return;
  timeval timeout{};
  timeout.tv_sec = static_cast<time_t>(seconds);
  timeout.tv_usec =
      static_cast<suseconds_t>((seconds - static_cast<double>(timeout.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof timeout);
}

std::string lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) text.remove_prefix(1);
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) text.remove_suffix(1);
  return text;
}

/// Serialize status line + headers; the caller appends or streams the body.
std::string response_head(const HttpResponse& response, std::size_t content_length,
                          bool close_connection) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " ";
  head += status_reason(response.status);
  head += "\r\nContent-Type: " + response.content_type;
  head += "\r\nContent-Length: " + std::to_string(content_length);
  head += close_connection ? "\r\nConnection: close" : "\r\nConnection: keep-alive";
  head += "\r\n\r\n";
  return head;
}

/// False once the client is gone (the connection is then abandoned).
bool write_response(int fd, HttpResponse response, bool close_connection) {
  if (!response.file_path.empty()) {
    std::ifstream file(response.file_path, std::ios::binary);
    std::error_code ec;
    const auto size = std::filesystem::file_size(response.file_path, ec);
    if (!file || ec) {
      // The artifact vanished between the handler's check and the stream
      // (an eviction race): headers are not out yet, so say so honestly.
      response = HttpResponse{404, "application/json",
                              "{\"error\": {\"status\": 404, \"message\": "
                              "\"artifact disappeared before it could be streamed\"}}\n",
                              {}, response.close};
      return write_response(fd, std::move(response), close_connection);
    }
    const std::string head =
        response_head(response, static_cast<std::size_t>(size), close_connection);
    if (!send_all(fd, head.data(), head.size())) return false;
    std::string chunk(kStreamChunk, '\0');
    std::uintmax_t remaining = size;
    while (remaining > 0) {
      const std::size_t want =
          static_cast<std::size_t>(std::min<std::uintmax_t>(remaining, chunk.size()));
      file.read(chunk.data(), static_cast<std::streamsize>(want));
      if (file.gcount() <= 0) return false;  // Torn mid-stream; drop the connection.
      const std::size_t got = static_cast<std::size_t>(file.gcount());
      if (!send_all(fd, chunk.data(), got)) return false;
      remaining -= got;
    }
    return true;
  }
  const std::string head = response_head(response, response.body.size(), close_connection);
  return send_all(fd, head.data(), head.size()) &&
         send_all(fd, response.body.data(), response.body.size());
}

}  // namespace

std::string_view status_reason(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

RequestParser::State RequestParser::fail(const std::string& message) {
  error_ = message;
  state_ = State::kError;
  return state_;
}

bool RequestParser::parse_head(std::string_view head) {
  const std::size_t line_end = head.find("\r\n");
  std::string_view request_line = head.substr(0, line_end);
  const std::size_t method_end = request_line.find(' ');
  const std::size_t target_end =
      method_end == std::string_view::npos ? std::string_view::npos
                                           : request_line.find(' ', method_end + 1);
  if (method_end == std::string_view::npos || target_end == std::string_view::npos) {
    return false;
  }
  request_.method = std::string(request_line.substr(0, method_end));
  request_.target = std::string(request_line.substr(method_end + 1, target_end - method_end - 1));
  const std::string_view version = request_line.substr(target_end + 1);
  if (version != "HTTP/1.1" || request_.method.empty() || request_.target.empty() ||
      request_.target[0] != '/') {
    return false;
  }
  const std::size_t query = request_.target.find('?');
  request_.path = request_.target.substr(0, query);
  request_.query = query == std::string::npos ? std::string() : request_.target.substr(query + 1);

  std::size_t cursor = line_end == std::string_view::npos ? head.size() : line_end + 2;
  while (cursor < head.size()) {
    std::size_t end = head.find("\r\n", cursor);
    if (end == std::string_view::npos) end = head.size();
    const std::string_view line = head.substr(cursor, end - cursor);
    cursor = end + 2;
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) return false;
    request_.headers[lower(line.substr(0, colon))] = std::string(trim(line.substr(colon + 1)));
  }
  return true;
}

RequestParser::State RequestParser::advance() {
  if (state_ == State::kError) return state_;
  if (!head_done_) {
    const std::size_t head_end = buffer_.find("\r\n\r\n");
    if (head_end == std::string::npos) {
      if (buffer_.size() > limits_.max_head) return fail("request head too large");
      state_ = State::kIncomplete;
      return state_;
    }
    if (head_end > limits_.max_head) return fail("request head too large");
    if (!parse_head(std::string_view(buffer_).substr(0, head_end))) {
      return fail("malformed request line or header");
    }
    if (request_.headers.count("transfer-encoding") != 0) {
      return fail("transfer-encoding is not supported; send Content-Length");
    }
    if (const auto it = request_.headers.find("content-length"); it != request_.headers.end()) {
      const std::string& value = it->second;
      if (value.empty() ||
          value.find_first_not_of("0123456789") != std::string::npos ||
          value.size() > 12) {
        return fail("malformed Content-Length");
      }
      body_needed_ = static_cast<std::size_t>(std::stoull(value));
      if (body_needed_ > limits_.max_body) return fail("request body too large");
    }
    buffer_.erase(0, head_end + 4);
    head_done_ = true;
  }
  if (buffer_.size() < body_needed_) {
    state_ = State::kIncomplete;
    return state_;
  }
  request_.body = buffer_.substr(0, body_needed_);
  buffer_.erase(0, body_needed_);
  state_ = State::kReady;
  return state_;
}

RequestParser::State RequestParser::feed(const char* data, std::size_t size) {
  buffer_.append(data, size);
  return advance();
}

HttpRequest RequestParser::take() {
  HttpRequest out = std::move(request_);
  request_ = HttpRequest{};
  head_done_ = false;
  body_needed_ = 0;
  state_ = State::kIncomplete;
  advance();  // A pipelined next request may already be complete.
  return out;
}

HttpServer::HttpServer(Options options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

HttpServer::~HttpServer() { stop(); }

void HttpServer::start() {
  listener_ = fabric::listen_on(options_.host, options_.port);
  port_ = fabric::local_port(listener_);
  started_ = true;
  acceptor_ = std::thread([this] { accept_main(); });
  const int threads = std::max(1, options_.threads);
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

void HttpServer::stop() {
  if (!started_) return;
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  // shutdown(), not close(): on Linux closing a listening fd does not wake
  // a thread blocked in accept(), while shutdown() does (accept fails with
  // EINVAL). The fd itself is closed only after the acceptor joined, so it
  // cannot be reused by another open() mid-accept.
  if (listener_.valid()) ::shutdown(listener_.fd(), SHUT_RDWR);
  work_cv_.notify_all();
  acceptor_.join();
  for (std::thread& worker : workers_) worker.join();
  listener_.close();
}

void HttpServer::accept_main() {
  for (;;) {
    fabric::Socket client = fabric::accept_on(listener_);
    {
      std::lock_guard lock(mutex_);
      if (stopping_) return;
      if (!client.valid()) continue;  // Transient accept failure.
      pending_.push_back(std::move(client));
    }
    work_cv_.notify_one();
  }
}

void HttpServer::worker_main() {
  for (;;) {
    fabric::Socket socket;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [&] { return stopping_ || !pending_.empty(); });
      if (stopping_) return;  // Queued connections are dropped on stop.
      socket = std::move(pending_.front());
      pending_.pop_front();
    }
    serve_connection(std::move(socket));
  }
}

void HttpServer::serve_connection(fabric::Socket socket) {
  set_io_timeout(socket.fd(), options_.io_timeout_seconds);
  RequestParser parser(options_.limits);
  char buffer[16384];
  for (;;) {
    while (parser.state() == RequestParser::State::kReady) {
      const HttpRequest request = parser.take();
      const auto connection = request.headers.find("connection");
      const bool client_close =
          connection != request.headers.end() && lower(connection->second) == "close";
      HttpResponse response;
      try {
        response = handler_(request);
      } catch (const std::exception& error) {
        response.status = 500;
        response.body = std::string("{\"error\": {\"status\": 500, \"message\": \"") +
                        error.what() + "\"}}\n";
      }
      const bool close_connection = client_close || response.close;
      if (!write_response(socket.fd(), std::move(response), close_connection)) return;
      if (close_connection) return;
    }
    if (parser.state() == RequestParser::State::kError) {
      HttpResponse bad;
      bad.status = 400;
      bad.body = "{\"error\": {\"status\": 400, \"message\": \"" + parser.error() + "\"}}\n";
      write_response(socket.fd(), std::move(bad), true);
      return;
    }
    const ssize_t n = ::recv(socket.fd(), buffer, sizeof buffer, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // Timeout or hard error: drop the idle connection.
    }
    if (n == 0) return;  // Client closed.
    parser.feed(buffer, static_cast<std::size_t>(n));
  }
}

FetchResult http_fetch(const std::string& host, int port, const std::string& method,
                       const std::string& target, const std::string& body,
                       double timeout_seconds) {
  fabric::Socket socket = fabric::connect_to(host, port, timeout_seconds);
  std::string request = method + " " + target + " HTTP/1.1\r\nHost: " + host + ":" +
                        std::to_string(port) + "\r\nConnection: close\r\n";
  if (!body.empty() || method == "POST" || method == "PUT") {
    request += "Content-Type: application/json\r\nContent-Length: " +
               std::to_string(body.size()) + "\r\n";
  }
  request += "\r\n";
  request += body;
  if (!send_all(socket.fd(), request.data(), request.size())) {
    throw std::runtime_error("http_fetch: send failed: " + std::string(std::strerror(errno)));
  }

  std::string raw;
  char buffer[16384];
  for (;;) {
    const ssize_t n = ::recv(socket.fd(), buffer, sizeof buffer, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("http_fetch: recv failed: " + std::string(std::strerror(errno)));
    }
    if (n == 0) break;
    raw.append(buffer, static_cast<std::size_t>(n));
  }

  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos || raw.rfind("HTTP/1.1 ", 0) != 0) {
    throw std::runtime_error("http_fetch: malformed response");
  }
  FetchResult result;
  result.status = std::atoi(raw.c_str() + 9);
  std::size_t cursor = raw.find("\r\n") + 2;
  while (cursor < head_end) {
    std::size_t end = raw.find("\r\n", cursor);
    if (end == std::string::npos || end > head_end) end = head_end;
    const std::string_view line = std::string_view(raw).substr(cursor, end - cursor);
    cursor = end + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    result.headers[lower(line.substr(0, colon))] = std::string(trim(line.substr(colon + 1)));
  }
  result.body = raw.substr(head_end + 4);
  if (const auto it = result.headers.find("content-length"); it != result.headers.end()) {
    const std::size_t length = static_cast<std::size_t>(std::atoll(it->second.c_str()));
    if (result.body.size() < length) {
      throw std::runtime_error("http_fetch: truncated response body");
    }
    result.body.resize(length);
  }
  return result;
}

}  // namespace netcons::serve
