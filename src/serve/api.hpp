// The netcons-serve-v1 HTTP API surface: request routing, the JSON spec
// body -> CampaignSpec translation, status/error envelopes, and artifact
// streaming — everything between the HTTP server and the campaign
// Scheduler. One implementation, three drivers: tools/netcons_serve.cpp
// (the daemon), bench_serve_throughput (in-process load generator), and
// the unit tests.
//
// Wire spec: docs/serving-api.md. Every response body carries
// "schema": "netcons-serve-v1" (artifact downloads carry their own
// schemas: netcons-campaign-v3, netcons-trials-v2, netcons-report-v1,
// netcons-metrics-v1).
#pragma once

#include "campaign/scheduler.hpp"
#include "serve/http.hpp"

#include <string>

namespace netcons::telemetry {
class Registry;
}  // namespace netcons::telemetry

namespace netcons::serve {

class Api {
 public:
  /// Both references are borrowed and must outlive the Api (the daemon
  /// owns all three with the same lifetime). A non-empty `token` requires
  /// every request to carry "Authorization: Bearer <token>"; anything else
  /// is answered 401 before routing (empty: no authentication, the
  /// historical loopback trust model).
  Api(campaign::Scheduler& scheduler, telemetry::Registry& registry, std::string token = {});

  /// Route one request. Thread-safe (called from HTTP worker threads);
  /// never throws — every failure becomes a netcons-serve-v1 error
  /// envelope. Publishes serve.requests / serve.errors counters.
  [[nodiscard]] HttpResponse handle(const HttpRequest& request);

 private:
  [[nodiscard]] HttpResponse submit(const HttpRequest& request);
  [[nodiscard]] HttpResponse status(const std::string& id);
  [[nodiscard]] HttpResponse artifact(const std::string& id, const std::string& name);
  [[nodiscard]] HttpResponse metrics();

  [[nodiscard]] bool authorized(const HttpRequest& request) const;

  campaign::Scheduler& scheduler_;
  telemetry::Registry& registry_;
  std::string token_;
};

/// The netcons-serve-v1 error envelope:
///   {"schema": "netcons-serve-v1", "error": {"status": N, "message": "..."}}
[[nodiscard]] HttpResponse error_response(int status, const std::string& message);

/// The netcons-serve-v1 status document for one job poll.
[[nodiscard]] std::string status_json(const campaign::JobStatus& status);

}  // namespace netcons::serve
