#include "serve/api.hpp"

#include "campaign/json.hpp"
#include "campaign/spec_cli.hpp"
#include "telemetry/metrics.hpp"

#include <climits>
#include <iostream>
#include <mutex>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

namespace netcons::serve {

namespace {

namespace json = campaign::json;

/// What a POST /v1/campaigns body declares: the raw spec vocabulary (the
/// same names and defaults as the CLI spec flags) plus the dispatch mode.
struct Submission {
  campaign::SpecCli cli;
  campaign::JobDispatch dispatch = campaign::JobDispatch::kLocal;
};

std::vector<std::string> string_list(const json::Value& value) {
  std::vector<std::string> out;
  for (const json::Value& item : value.as_array()) out.push_back(item.as_string());
  return out;
}

int small_int(const json::Value& value, const std::string& what) {
  const std::uint64_t raw = value.as_u64();
  if (raw > static_cast<std::uint64_t>(INT_MAX)) {
    throw std::runtime_error(what + " out of range");
  }
  return static_cast<int>(raw);
}

/// Strict parse of the request document: unknown fields are errors (the
/// schema is drift-gated against docs/serving-api.md, so typos must not
/// silently fall back to defaults).
Submission parse_submission(const std::string& body) {
  Submission submission;
  const json::Value document = json::parse(body);
  for (const auto& [key, value] : document.as_object()) {
    if (key == "protocols") {
      submission.cli.protocols = string_list(value);
    } else if (key == "processes") {
      submission.cli.processes = string_list(value);
    } else if (key == "schedulers") {
      submission.cli.schedulers = string_list(value);
    } else if (key == "faults") {
      submission.cli.faults = string_list(value);
    } else if (key == "engines") {
      submission.cli.engines = string_list(value);
    } else if (key == "ns") {
      for (const json::Value& item : value.as_array()) {
        submission.cli.ns.push_back(small_int(item, "ns entry"));
      }
    } else if (key == "trials") {
      submission.cli.trials = small_int(value, "trials");
    } else if (key == "seed") {
      submission.cli.seed = value.as_u64();
    } else if (key == "params") {
      for (const auto& [name, param] : value.as_object()) {
        if (name == "k") {
          submission.cli.params.k = small_int(param, "params.k");
        } else if (name == "c") {
          submission.cli.params.c = small_int(param, "params.c");
        } else if (name == "d") {
          submission.cli.params.d = small_int(param, "params.d");
        } else {
          throw std::runtime_error("unknown params field '" + name + "' (k, c, d)");
        }
      }
    } else if (key == "dispatch") {
      const std::string& mode = value.as_string();
      if (mode == "local") {
        submission.dispatch = campaign::JobDispatch::kLocal;
      } else if (mode == "fabric") {
        submission.dispatch = campaign::JobDispatch::kFabric;
      } else {
        throw std::runtime_error("unknown dispatch '" + mode + "' (local, fabric)");
      }
    } else {
      throw std::runtime_error("unknown field '" + key + "'");
    }
  }
  return submission;
}

/// build_spec prints its diagnostics to stderr (it is shared with the
/// CLIs); capture them for the 400 envelope. The swap is process-global,
/// hence the static mutex across concurrent HTTP workers.
std::optional<campaign::CampaignSpec> build_spec_captured(const campaign::SpecCli& cli,
                                                          std::string& error) {
  static std::mutex capture_mutex;
  const std::lock_guard lock(capture_mutex);
  std::ostringstream captured;
  std::streambuf* const previous = std::cerr.rdbuf(captured.rdbuf());
  std::optional<campaign::CampaignSpec> spec;
  try {
    spec = campaign::build_spec(cli);
  } catch (...) {
    std::cerr.rdbuf(previous);
    throw;
  }
  std::cerr.rdbuf(previous);
  if (!spec) {
    error = captured.str();
    while (!error.empty() && error.back() == '\n') error.pop_back();
    if (error.empty()) error = "invalid campaign spec";
  }
  return spec;
}

constexpr std::string_view kCampaignsPrefix = "/v1/campaigns";

}  // namespace

HttpResponse error_response(int status, const std::string& message) {
  std::string body =
      "{\"schema\": \"netcons-serve-v1\", \"error\": {\"status\": " + std::to_string(status) +
      ", \"message\": ";
  json::append_escaped(body, message);
  body += "}}\n";
  HttpResponse response;
  response.status = status;
  response.body = std::move(body);
  return response;
}

std::string status_json(const campaign::JobStatus& status) {
  std::string body = "{\"schema\": \"netcons-serve-v1\", \"id\": ";
  json::append_escaped(body, status.id);
  body += ", \"state\": ";
  json::append_escaped(body, std::string(campaign::job_state_name(status.state)));
  body += ", \"cached\": ";
  body += status.cached ? "true" : "false";
  body += ", \"trials_total\": " + std::to_string(status.trials_total);
  body += ", \"trials_done\": " + std::to_string(status.trials_done);
  body += ", \"trials_per_sec\": ";
  json::append_double(body, status.trials_per_sec);
  body += ", \"eta_s\": ";
  json::append_double(body, status.eta_s);
  body += ", \"wall_seconds\": ";
  json::append_double(body, status.wall_seconds);
  body += ", \"fabric_port\": " + std::to_string(status.fabric_port);
  body += ", \"records_dir\": ";
  json::append_escaped(body, status.records_dir);
  body += ", \"error\": ";
  json::append_escaped(body, status.error);
  body += "}\n";
  return body;
}

Api::Api(campaign::Scheduler& scheduler, telemetry::Registry& registry, std::string token)
    : scheduler_(scheduler), registry_(registry), token_(std::move(token)) {}

bool Api::authorized(const HttpRequest& request) const {
  if (token_.empty()) return true;
  const auto header = request.headers.find("authorization");
  return header != request.headers.end() && header->second == "Bearer " + token_;
}

HttpResponse Api::handle(const HttpRequest& request) {
  registry_.add("serve.requests");
  HttpResponse response;
  try {
    if (!authorized(request)) {
      // Checked before routing, so an unauthenticated caller cannot even
      // probe which endpoints exist. The reason never echoes the token.
      response = error_response(401,
                                "missing or invalid Authorization header "
                                "(this daemon requires \"Authorization: Bearer <token>\")");
    } else if (request.path == "/v1/metrics") {
      response = request.method == "GET" ? metrics()
                                         : error_response(405, "use GET on /v1/metrics");
    } else if (request.path == kCampaignsPrefix) {
      response = request.method == "POST"
                     ? submit(request)
                     : error_response(405, "use POST /v1/campaigns to submit a spec");
    } else if (request.path.rfind(std::string(kCampaignsPrefix) + "/", 0) == 0) {
      const std::string rest = request.path.substr(kCampaignsPrefix.size() + 1);
      const std::size_t slash = rest.find('/');
      const std::string id = rest.substr(0, slash);
      const std::string name = slash == std::string::npos ? std::string() : rest.substr(slash + 1);
      if (request.method != "GET") {
        response = error_response(405, "campaign resources are read-only (GET)");
      } else if (id.empty()) {
        response = error_response(404, "missing campaign id");
      } else if (name.empty()) {
        response = status(id);
      } else {
        response = artifact(id, name);
      }
    } else {
      response = error_response(404, "no such endpoint (see docs/serving-api.md)");
    }
  } catch (const std::exception& error) {
    response = error_response(500, error.what());
  }
  if (response.status >= 400) registry_.add("serve.errors");
  return response;
}

HttpResponse Api::submit(const HttpRequest& request) {
  Submission submission;
  try {
    submission = parse_submission(request.body);
  } catch (const std::exception& error) {
    return error_response(400, std::string("bad request document: ") + error.what());
  }
  std::string spec_error;
  std::optional<campaign::CampaignSpec> spec;
  try {
    spec = build_spec_captured(submission.cli, spec_error);
  } catch (const std::exception& error) {
    return error_response(400, std::string("bad campaign spec: ") + error.what());
  }
  if (!spec) return error_response(400, "bad campaign spec: " + spec_error);

  const campaign::Scheduler::Submitted submitted =
      scheduler_.submit(*spec, submission.dispatch);
  const std::optional<campaign::JobStatus> polled = scheduler_.poll(submitted.id);
  campaign::JobStatus job_status;
  if (polled) job_status = *polled;

  std::string body = "{\"schema\": \"netcons-serve-v1\", \"id\": ";
  json::append_escaped(body, submitted.id);
  body += ", \"state\": ";
  json::append_escaped(body, std::string(campaign::job_state_name(job_status.state)));
  body += ", \"cached\": ";
  body += submitted.cached ? "true" : "false";
  body += ", \"coalesced\": ";
  body += submitted.coalesced ? "true" : "false";
  body += ", \"trials_total\": " + std::to_string(job_status.trials_total);
  body += "}\n";

  HttpResponse response;
  // 200: answerable right now (cache hit). 202: accepted, poll for it.
  response.status = submitted.cached ? 200 : 202;
  response.body = std::move(body);
  return response;
}

HttpResponse Api::status(const std::string& id) {
  const std::optional<campaign::JobStatus> polled = scheduler_.poll(id);
  if (!polled) return error_response(404, "unknown campaign id '" + id + "'");
  HttpResponse response;
  response.body = status_json(*polled);
  return response;
}

HttpResponse Api::artifact(const std::string& id, const std::string& name) {
  std::string file;
  std::string content_type = "application/json";
  if (name == "summary") {
    file = "summary.json";
  } else if (name == "summary.csv") {
    file = "summary.csv";
    content_type = "text/csv";
  } else if (name == "records") {
    file = "records.jsonl";
    content_type = "application/x-ndjson";
  } else if (name == "report") {
    file = "report.json";
  } else {
    return error_response(404, "unknown artifact '" + name +
                                   "' (summary, summary.csv, records, report)");
  }
  const std::string path = scheduler_.artifact_path(id, file);
  if (path.empty()) {
    const std::optional<campaign::JobStatus> polled = scheduler_.poll(id);
    if (!polled) return error_response(404, "unknown campaign id '" + id + "'");
    if (polled->state == campaign::JobState::kFailed) {
      return error_response(409, "campaign " + id + " failed: " + polled->error);
    }
    return error_response(409, "campaign " + id + " is " +
                                   std::string(campaign::job_state_name(polled->state)) +
                                   "; artifacts are available once it is done");
  }
  HttpResponse response;
  response.content_type = std::move(content_type);
  response.file_path = path;
  return response;
}

HttpResponse Api::metrics() {
  HttpResponse response;
  response.body = registry_.snapshot_json();
  return response;
}

}  // namespace netcons::serve
