// A minimal embedded HTTP/1.1 server over the fabric's POSIX socket
// primitives (fabric/frame.hpp) — no new dependencies, just enough of the
// protocol for the netcons_serve JSON API: request-line + headers parsing,
// Content-Length bodies, keep-alive, and file-streamed responses for the
// large cached artifacts (records stream in fixed-size chunks, never
// materialized in memory).
//
// Deliberately NOT implemented (requests using them get a 4xx/close):
// chunked transfer encoding on requests, HTTP/1.0 keep-alive, and TLS.
// Authentication lives one layer up (serve/api.hpp checks the optional
// bearer token); the transport trust model still matches
// docs/fabric-protocol.md: bind to loopback or a trusted network only —
// see docs/serving-api.md.
#pragma once

#include "fabric/frame.hpp"

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace netcons::serve {

struct HttpRequest {
  std::string method;  ///< Uppercase token as sent ("GET", "POST", ...).
  std::string target;  ///< The raw request-target ("/v1/campaigns?x=1").
  std::string path;    ///< Target up to the first '?'.
  std::string query;   ///< After the '?'; empty when absent.
  std::map<std::string, std::string> headers;  ///< Names lower-cased.
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Non-empty: stream this file as the body instead (Content-Length from
  /// the file size, 64 KiB chunks). `body` is ignored.
  std::string file_path;
  /// Ask the client to close after this response (also honored when the
  /// client sent "Connection: close").
  bool close = false;
};

[[nodiscard]] std::string_view status_reason(int status) noexcept;

/// Incremental HTTP/1.1 request parser (exposed for unit tests). Feed
/// bytes as they arrive; kReady means one complete request is available
/// via take(), which resets the parser for the next request on the
/// connection (keep-alive). kError is fatal for the connection.
class RequestParser {
 public:
  struct Limits {
    std::size_t max_head = 64u * 1024u;         ///< Request line + headers.
    std::size_t max_body = 8u * 1024u * 1024u;  ///< Content-Length cap.
  };

  enum class State { kIncomplete, kReady, kError };

  RequestParser() = default;
  explicit RequestParser(Limits limits) : limits_(limits) {}

  State feed(const char* data, std::size_t size);
  [[nodiscard]] State state() const noexcept { return state_; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  /// The parsed request; valid only in kReady. Resets for the next one.
  [[nodiscard]] HttpRequest take();

 private:
  State fail(const std::string& message);
  State advance();
  [[nodiscard]] bool parse_head(std::string_view head);

  Limits limits_;
  State state_ = State::kIncomplete;
  std::string buffer_;
  std::string error_;
  HttpRequest request_;
  std::size_t body_needed_ = 0;
  bool head_done_ = false;
};

/// Accept-thread + worker-pool HTTP server. Connections queue behind the
/// workers; each worker owns one connection at a time and serves its
/// keep-alive request sequence to completion.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;  ///< 0: kernel-assigned; read port() after start().
    int threads = 4;
    double io_timeout_seconds = 30.0;  ///< Per-socket read/write timeout.
    RequestParser::Limits limits;
  };

  /// `handler` runs on worker threads and must be thread-safe. A handler
  /// throw becomes a 500 response; it never kills the worker.
  HttpServer(Options options, Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Bind and start serving. Throws std::runtime_error on bind failure.
  void start();
  void stop();

  /// The bound TCP port; valid after start().
  [[nodiscard]] int port() const noexcept { return port_; }

 private:
  void accept_main();
  void worker_main();
  void serve_connection(fabric::Socket socket);

  Options options_;
  Handler handler_;
  fabric::Socket listener_;
  int port_ = -1;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::deque<fabric::Socket> pending_;
  bool stopping_ = false;
  bool started_ = false;
  std::thread acceptor_;
  std::vector<std::thread> workers_;
};

/// Minimal blocking HTTP/1.1 client for tests and benches: one request per
/// call over a fresh connection ("Connection: close").
struct FetchResult {
  int status = 0;
  std::map<std::string, std::string> headers;  ///< Names lower-cased.
  std::string body;
};

[[nodiscard]] FetchResult http_fetch(const std::string& host, int port,
                                     const std::string& method, const std::string& target,
                                     const std::string& body = {},
                                     double timeout_seconds = 30.0);

}  // namespace netcons::serve
