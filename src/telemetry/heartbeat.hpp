// Campaign progress/heartbeat publication.
//
// A CampaignMonitor watches one campaign::run invocation: the engine calls
// begin() with the number of trials this run will execute and the worker
// count, workers report each finished job through record_job(), and end()
// publishes the final state. A background ticker thread emits one
// *heartbeat* every period: a machine-readable JSONL line (consumed live by
// netcons_top, or archived for post-hoc analysis) and/or a one-line
// human-readable progress report on stderr. Each heartbeat carries
// trials-completed, trials/sec, ETA, queue depth (unstarted trials), and
// per-worker utilization (busy fraction since begin()).
//
// Heartbeat JSONL schema (one object per line, "netcons-heartbeat-v1"):
//   {"schema": "netcons-heartbeat-v1", "type": "heartbeat" | "final",
//    "seq": N, "elapsed_s": S, "trials_done": D, "trials_total": T,
//    "trials_per_sec": R, "eta_s": E, "queue_depth": Q, "workers": W,
//    "utilization": [u0, ..., u_{W-1}]}
//
// Determinism contract: the monitor reads atomics and the wall clock, never
// any Rng, and writes only to stderr and its own streams — the campaign's
// summary documents are byte-identical with or without a monitor attached
// (CI-gated).
#pragma once

#include "telemetry/metrics.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <string_view>
#include <thread>
#include <vector>

namespace netcons::telemetry {

/// One parsed netcons-heartbeat-v1 line (the schema CampaignMonitor emits).
struct HeartbeatPoint {
  bool final = false;
  std::uint64_t seq = 0;
  double elapsed_s = 0.0;
  std::uint64_t trials_done = 0;
  std::uint64_t trials_total = 0;
  double trials_per_sec = 0.0;
  double eta_s = 0.0;
  std::uint64_t queue_depth = 0;
  std::uint64_t workers = 0;
  std::vector<double> utilization;  ///< Busy fraction per worker slot.

  [[nodiscard]] double mean_utilization() const noexcept;
};

/// Parse one heartbeat line. nullopt on anything that is not a complete
/// netcons-heartbeat-v1 object — malformed JSON (typically the torn tail of
/// a line being written right now), a foreign schema, a missing field —
/// so tailing readers (netcons_top, the fabric coordinator) can skip and
/// retry instead of aborting.
[[nodiscard]] std::optional<HeartbeatPoint> parse_heartbeat_line(std::string_view line);

class CampaignMonitor {
 public:
  struct Options {
    /// Heartbeat cadence; <= 0 disables the ticker thread (begin()/end()
    /// still publish, so a finished run always has at least one line).
    double period_seconds = 2.0;
    /// JSONL heartbeat stream (not owned; may be null). Flushed per line so
    /// a tailing netcons_top sees points live.
    std::ostream* heartbeat = nullptr;
    /// Human-readable progress lines on stderr.
    bool progress_stderr = false;
    /// Campaign gauges/counters published here (not owned; may be null):
    /// campaign.trials_done / campaign.heartbeats counters, and
    /// campaign.trials_total / campaign.trials_per_sec / campaign.eta_s /
    /// campaign.queue_depth / campaign.wall_seconds gauges.
    Registry* registry = nullptr;
  };

  explicit CampaignMonitor(Options options);
  ~CampaignMonitor();

  CampaignMonitor(const CampaignMonitor&) = delete;
  CampaignMonitor& operator=(const CampaignMonitor&) = delete;

  /// Start of one campaign::run invocation: `trials_total` trials scheduled
  /// for execution on `workers` threads. Emits an immediate first heartbeat
  /// and starts the ticker.
  void begin(std::uint64_t trials_total, int workers);

  /// One finished pool job on the calling worker thread: `trials` trials
  /// executed over `busy_seconds` of work. Thread-safe, wait-free.
  void record_job(std::uint64_t trials, double busy_seconds);

  /// End of the run: stops the ticker and emits the final heartbeat
  /// ("type": "final"). Idempotent; also invoked by the destructor.
  void end();

  /// Emit one heartbeat now (the ticker's body; exposed for tests).
  void emit_now() { emit(false); }

  [[nodiscard]] std::uint64_t trials_done() const noexcept {
    return trials_done_.load(std::memory_order_relaxed);
  }

 private:
  /// Worker slot of the calling thread, assigned on first use.
  [[nodiscard]] std::size_t worker_slot() noexcept;

  void emit(bool final);
  void ticker_main();

  Options options_;
  const std::uint64_t id_;  ///< Distinguishes monitor instances in thread_local caches.

  std::uint64_t trials_total_ = 0;
  int workers_ = 0;
  std::chrono::steady_clock::time_point start_;
  std::atomic<std::uint64_t> generation_{0};  ///< Bumped per begin().
  std::atomic<std::uint64_t> trials_done_{0};
  std::atomic<std::size_t> next_slot_{0};
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> busy_ns_;

  std::uint64_t seq_ = 0;       ///< Guarded by emit_mutex_.
  std::mutex emit_mutex_;       ///< Serializes heartbeat emission.
  std::mutex ticker_mutex_;     ///< Guards stop_ for the cv.
  std::condition_variable ticker_cv_;
  bool stop_ = true;
  std::thread ticker_;
};

}  // namespace netcons::telemetry
