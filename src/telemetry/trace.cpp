#include "telemetry/trace.hpp"

#include "campaign/json.hpp"

#include <fstream>
#include <stdexcept>

namespace netcons::telemetry {

namespace {

std::atomic<std::uint64_t> g_next_tracer_id{1};

}  // namespace

Tracer::Tracer()
    : id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)),
      origin_(std::chrono::steady_clock::now()) {}

Tracer::Buffer& Tracer::local_buffer() {
  // Cache (tracer id, buffer) per thread: the id check is what keeps a
  // stale cache from a destroyed tracer (possibly reallocated at the same
  // address) from being dereferenced.
  thread_local std::uint64_t cached_id = 0;
  thread_local Buffer* cached = nullptr;
  if (cached_id != id_) {
    const std::lock_guard<std::mutex> lock(buffers_mutex_);
    buffers_.push_back(std::make_unique<Buffer>());
    buffers_.back()->tid = static_cast<int>(buffers_.size()) - 1;
    cached = buffers_.back().get();
    cached_id = id_;
  }
  return *cached;
}

bool Tracer::sample() noexcept {
  thread_local std::uint64_t phase = 0;
  const std::uint64_t every = sample_every_.load(std::memory_order_relaxed);
  return phase++ % every == 0;
}

void Tracer::complete(const char* name, const char* cat, double ts_us, double dur_us) {
  Buffer& buffer = local_buffer();
  const std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(Event{name, cat, ts_us, dur_us, 'X'});
}

void Tracer::instant(const char* name, const char* cat) {
  Buffer& buffer = local_buffer();
  const std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(Event{name, cat, now_us(), 0.0, 'i'});
}

std::string Tracer::to_json() const {
  const std::lock_guard<std::mutex> lock(buffers_mutex_);
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  const auto append = [&out, &first](const std::string& event) {
    out += first ? "\n" : ",\n";
    first = false;
    out += event;
  };
  for (const auto& buffer : buffers_) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    // One metadata record per track so Perfetto shows a readable name.
    std::string meta = "{\"ph\": \"M\", \"pid\": 1, \"tid\": " + std::to_string(buffer->tid) +
                       ", \"name\": \"thread_name\", \"args\": {\"name\": \"worker-" +
                       std::to_string(buffer->tid) + "\"}}";
    append(meta);
    for (const Event& event : buffer->events) {
      std::string line = "{\"ph\": \"";
      line += event.phase;
      line += "\", \"pid\": 1, \"tid\": " + std::to_string(buffer->tid) + ", \"name\": ";
      campaign::json::append_escaped(line, event.name);
      line += ", \"cat\": ";
      campaign::json::append_escaped(line, event.cat);
      line += ", \"ts\": ";
      campaign::json::append_double(line, event.ts_us);
      if (event.phase == 'X') {
        line += ", \"dur\": ";
        campaign::json::append_double(line, event.dur_us);
      } else if (event.phase == 'i') {
        line += ", \"s\": \"g\"";
      }
      line += "}";
      append(line);
    }
  }
  out += first ? "]}\n" : "\n]}\n";
  return out;
}

void Tracer::write_json(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  file << to_json();
  file.flush();
  if (!file) throw std::runtime_error("telemetry: cannot write trace to " + path);
}

std::size_t Tracer::event_count() const {
  const std::lock_guard<std::mutex> lock(buffers_mutex_);
  std::size_t total = 0;
  for (const auto& buffer : buffers_) {
    const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
    total += buffer->events.size();
  }
  return total;
}

}  // namespace netcons::telemetry
