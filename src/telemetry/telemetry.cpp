#include "telemetry/telemetry.hpp"

#include <atomic>

#if !defined(NETCONS_TELEMETRY_DISABLED)

namespace netcons::telemetry {

namespace {

std::atomic<Registry*> g_registry{nullptr};
std::atomic<Tracer*> g_tracer{nullptr};

}  // namespace

Registry* registry() noexcept { return g_registry.load(std::memory_order_relaxed); }

Tracer* tracer() noexcept { return g_tracer.load(std::memory_order_relaxed); }

void set_registry(Registry* registry) noexcept {
  g_registry.store(registry, std::memory_order_relaxed);
}

void set_tracer(Tracer* tracer) noexcept {
  g_tracer.store(tracer, std::memory_order_relaxed);
}

}  // namespace netcons::telemetry

#endif
