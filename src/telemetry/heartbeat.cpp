#include "telemetry/heartbeat.hpp"

#include "campaign/json.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace netcons::telemetry {

namespace {

std::atomic<std::uint64_t> g_next_monitor_id{1};

}  // namespace

double HeartbeatPoint::mean_utilization() const noexcept {
  if (utilization.empty()) return 0.0;
  double sum = 0.0;
  for (const double u : utilization) sum += u;
  return sum / static_cast<double>(utilization.size());
}

std::optional<HeartbeatPoint> parse_heartbeat_line(std::string_view line) {
  namespace json = campaign::json;
  try {
    const json::Value document = json::parse(line);
    const json::Object& object = document.as_object();
    if (json::field(object, "schema").as_string() != "netcons-heartbeat-v1") {
      return std::nullopt;
    }
    HeartbeatPoint point;
    point.final = json::field(object, "type").as_string() == "final";
    point.seq = json::field(object, "seq").as_u64();
    point.elapsed_s = json::field(object, "elapsed_s").as_double();
    point.trials_done = json::field(object, "trials_done").as_u64();
    point.trials_total = json::field(object, "trials_total").as_u64();
    point.trials_per_sec = json::field(object, "trials_per_sec").as_double();
    point.eta_s = json::field(object, "eta_s").as_double();
    point.queue_depth = json::field(object, "queue_depth").as_u64();
    point.workers = json::field(object, "workers").as_u64();
    for (const json::Value& u : json::field(object, "utilization").as_array()) {
      point.utilization.push_back(u.as_double());
    }
    return point;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

CampaignMonitor::CampaignMonitor(Options options)
    : options_(options), id_(g_next_monitor_id.fetch_add(1, std::memory_order_relaxed)) {}

CampaignMonitor::~CampaignMonitor() { end(); }

void CampaignMonitor::begin(std::uint64_t trials_total, int workers) {
  end();  // a monitor may watch several runs back to back
  generation_.fetch_add(1, std::memory_order_relaxed);
  trials_total_ = trials_total;
  workers_ = std::max(workers, 1);
  start_ = std::chrono::steady_clock::now();
  trials_done_.store(0, std::memory_order_relaxed);
  next_slot_.store(0, std::memory_order_relaxed);
  busy_ns_.clear();
  for (int w = 0; w < workers_; ++w) {
    busy_ns_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  }
  if (options_.registry != nullptr) {
    // Register the campaign metrics up front so a snapshot taken at any
    // point carries the full key set.
    options_.registry->counter("campaign.trials_done").add(0);
    options_.registry->counter("campaign.heartbeats").add(0);
    options_.registry->set("campaign.trials_total", static_cast<double>(trials_total_));
    options_.registry->set("campaign.workers", static_cast<double>(workers_));
  }
  emit(false);
  if (options_.period_seconds > 0.0 &&
      (options_.heartbeat != nullptr || options_.progress_stderr)) {
    const std::lock_guard<std::mutex> lock(ticker_mutex_);
    stop_ = false;
    ticker_ = std::thread([this] { ticker_main(); });
  }
}

std::size_t CampaignMonitor::worker_slot() noexcept {
  // Slot cached per (thread, monitor incarnation): the incarnation check
  // keeps a slot assigned under a previous monitor — or a previous begin()
  // of this one — from leaking into this run's utilization array.
  thread_local std::uint64_t cached_incarnation = 0;
  thread_local std::size_t slot = 0;
  const std::uint64_t incarnation =
      id_ * (1u << 20) + generation_.load(std::memory_order_relaxed);
  if (cached_incarnation != incarnation) {
    // Modulo guards against more reporting threads than declared workers
    // (two threads then share a slot; utilization stays bounded).
    slot = next_slot_.fetch_add(1, std::memory_order_relaxed) %
           static_cast<std::size_t>(workers_);
    cached_incarnation = incarnation;
  }
  return slot;
}

void CampaignMonitor::record_job(std::uint64_t trials, double busy_seconds) {
  trials_done_.fetch_add(trials, std::memory_order_relaxed);
  const std::size_t slot = worker_slot();
  busy_ns_[slot]->fetch_add(static_cast<std::uint64_t>(busy_seconds * 1e9),
                            std::memory_order_relaxed);
  if (options_.registry != nullptr) {
    options_.registry->counter("campaign.trials_done").add(trials);
  }
}

void CampaignMonitor::ticker_main() {
  std::unique_lock<std::mutex> lock(ticker_mutex_);
  const auto period = std::chrono::duration<double>(options_.period_seconds);
  while (!stop_) {
    if (ticker_cv_.wait_for(lock, period, [this] { return stop_; })) break;
    lock.unlock();
    emit(false);
    lock.lock();
  }
}

void CampaignMonitor::end() {
  {
    const std::lock_guard<std::mutex> lock(ticker_mutex_);
    stop_ = true;
  }
  ticker_cv_.notify_all();
  if (ticker_.joinable()) ticker_.join();
  // Only the first end() after a begin() emits the "final" point.
  if (workers_ > 0) {
    emit(true);
    workers_ = 0;
  }
}

void CampaignMonitor::emit(bool final) {
  const std::lock_guard<std::mutex> lock(emit_mutex_);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  const std::uint64_t done = trials_done_.load(std::memory_order_relaxed);
  const std::uint64_t total = trials_total_;
  const double rate = elapsed > 0.0 ? static_cast<double>(done) / elapsed : 0.0;
  const std::uint64_t remaining = total > done ? total - done : 0;
  const double eta = rate > 0.0 ? static_cast<double>(remaining) / rate : 0.0;

  std::vector<double> utilization;
  double busy_total = 0.0;
  utilization.reserve(busy_ns_.size());
  for (const auto& busy : busy_ns_) {
    const double busy_s = static_cast<double>(busy->load(std::memory_order_relaxed)) * 1e-9;
    busy_total += busy_s;
    utilization.push_back(elapsed > 0.0 ? std::min(busy_s / elapsed, 1.0) : 0.0);
  }
  const double mean_utilization =
      utilization.empty()
          ? 0.0
          : std::min(busy_total / (elapsed > 0.0 ? elapsed : 1.0) /
                         static_cast<double>(utilization.size()),
                     1.0);

  if (options_.heartbeat != nullptr) {
    std::string line = "{\"schema\": \"netcons-heartbeat-v1\", \"type\": \"";
    line += final ? "final" : "heartbeat";
    line += "\", \"seq\": " + std::to_string(seq_);
    line += ", \"elapsed_s\": ";
    campaign::json::append_double(line, elapsed);
    line += ", \"trials_done\": " + std::to_string(done);
    line += ", \"trials_total\": " + std::to_string(total);
    line += ", \"trials_per_sec\": ";
    campaign::json::append_double(line, rate);
    line += ", \"eta_s\": ";
    campaign::json::append_double(line, eta);
    line += ", \"queue_depth\": " + std::to_string(remaining);
    line += ", \"workers\": " + std::to_string(workers_ > 0 ? workers_ : 0);
    line += ", \"utilization\": [";
    for (std::size_t i = 0; i < utilization.size(); ++i) {
      if (i > 0) line += ", ";
      campaign::json::append_double(line, utilization[i]);
    }
    line += "]}\n";
    (*options_.heartbeat) << line << std::flush;
  }

  if (options_.progress_stderr) {
    const double percent =
        total > 0 ? 100.0 * static_cast<double>(done) / static_cast<double>(total) : 100.0;
    std::fprintf(stderr,
                 "[campaign] %" PRIu64 "/%" PRIu64 " trials (%.1f%%), %.1f trials/s, "
                 "eta %.0fs, util %.0f%%%s\n",
                 done, total, percent, rate, eta, 100.0 * mean_utilization,
                 final ? ", done" : "");
  }

  if (options_.registry != nullptr) {
    options_.registry->counter("campaign.heartbeats").add(1);
    options_.registry->set("campaign.trials_per_sec", rate);
    options_.registry->set("campaign.eta_s", eta);
    options_.registry->set("campaign.queue_depth", static_cast<double>(remaining));
    options_.registry->set("campaign.wall_seconds", elapsed);
    options_.registry->set("campaign.utilization", mean_utilization);
  }
  ++seq_;
}

}  // namespace netcons::telemetry
